"""E24 — Batch kernel: equality gate + cold-population throughput.

The acceptance gates of the ``repro.core.batch`` subsystem:

1. **Bit-for-bit trace equality** — one giant mixed batch holding the
   exhaustive small-n sweep (every connected shape × every tag vector
   of the shared grid), plus the full timed workload, classifies each
   instance to the *identical* :class:`~repro.core.trace.ClassifierTrace`
   the serial implementations produce, enforced through the shared
   differential harness (:func:`repro.testing.assert_trace_equal`).
2. **≥ 5× batch speedup** — on a cold batch of 1000 seeded random
   configurations (the census/service shape: mixed n, span and
   density), the lockstep kernel beats a serial loop of the compiled
   core by at least ``SPEEDUP_FLOOR`` in wall time. The measurement is
   written as a machine-readable ``BENCH_E24.json`` artifact
   (:mod:`repro.reporting.bench`), pass or fail.
3. **Record equality** — the kernel's census records equal the
   engine's :func:`repro.engine.pipeline.census_record` dict for dict,
   with and without election-round measurement.
"""

import time

import pytest

from repro.core.batch import (
    HAVE_NUMPY,
    batch_census_records,
    batch_classify,
)
from repro.core.compiled import compiled_classify
from repro.core.classifier import reference_classify
from repro.reporting.bench import BenchResult, write_bench_result

from conftest import (
    SMALL_SWEEP_GRID,
    assert_trace_equal,
    random_config_batch,
    sweep_configurations,
)

pytestmark = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")

#: ISSUE acceptance threshold: batch kernel vs serial compiled loop.
SPEEDUP_FLOOR = 5.0

#: Timed workload: 1000 cold random configurations, default census shape.
BATCH_SIZE = 1000
BASE_SEED = 20260808


def timed_workload():
    return random_config_batch(BATCH_SIZE, base_seed=BASE_SEED)


# ----------------------------------------------------------------------
# gate 1: bit-for-bit ClassifierTrace equality
# ----------------------------------------------------------------------
def test_exhaustive_sweep_in_one_mixed_batch():
    """The entire shared small-n grid packed as ONE batch: every
    instance's trace is bit-for-bit the faithful reference's."""
    cfgs = list(sweep_configurations(SMALL_SWEEP_GRID))
    assert len(cfgs) > 100
    for cfg, trace in zip(cfgs, batch_classify(cfgs)):
        assert_trace_equal(trace, reference_classify(cfg), context=repr(cfg))


def test_timed_workload_agrees_with_compiled():
    """The full 1k timed workload classifies identically to the serial
    compiled core, instance for instance."""
    cfgs = timed_workload()
    for i, trace in enumerate(batch_classify(cfgs)):
        assert_trace_equal(
            trace, compiled_classify(cfgs[i]), context=f"instance {i}"
        )


def test_census_records_equal_engine_records():
    """Record parity with the engine's per-configuration path."""
    from repro.engine.pipeline import census_record

    cfgs = random_config_batch(100, base_seed=BASE_SEED + 1)
    for measure_rounds in (False, True):
        assert batch_census_records(
            cfgs, measure_rounds=measure_rounds
        ) == [census_record(c, measure_rounds=measure_rounds) for c in cfgs]


# ----------------------------------------------------------------------
# gate 2: >= 5x cold-batch speedup, recorded as BENCH_E24.json
# ----------------------------------------------------------------------
def test_batch_speedup_at_least_5x():
    """The lockstep kernel beats a serial compiled loop ≥ 5× on a cold
    1000-configuration batch. Both sides produce census records from
    scratch (normalize + classify; no cache). Passes are interleaved
    and each side keeps its best of five, shielding the ratio from
    scheduler noise; outputs are compared for equality on every pass.
    The measurement is written to ``BENCH_E24.json`` before the floor
    is asserted."""
    cfgs = timed_workload()
    compiled_time = batch_time = float("inf")
    for _ in range(5):
        t0 = time.perf_counter()
        serial_records = [
            {
                "feasible": (t := compiled_classify(c)).feasible,
                "iterations": t.num_iterations,
                "rounds": None,
            }
            for c in cfgs
        ]
        compiled_time = min(compiled_time, time.perf_counter() - t0)

        t0 = time.perf_counter()
        records = batch_census_records(cfgs)
        batch_time = min(batch_time, time.perf_counter() - t0)
        assert records == serial_records  # every pass, not just the best

    speedup = compiled_time / batch_time
    write_bench_result(
        BenchResult(
            experiment="E24",
            workload={
                "batch_size": BATCH_SIZE,
                "base_seed": BASE_SEED,
                "generator": "random_config_batch",
            },
            timings_s={"compiled_loop": compiled_time, "batch": batch_time},
            speedup=speedup,
            floor=SPEEDUP_FLOOR,
            passed=speedup >= SPEEDUP_FLOOR,
        )
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"batch {batch_time:.4f}s vs compiled loop {compiled_time:.4f}s "
        f"= {speedup:.1f}x < {SPEEDUP_FLOOR}x on {BATCH_SIZE} configurations"
    )


# ----------------------------------------------------------------------
# timing rows (pytest-benchmark; informational)
# ----------------------------------------------------------------------
@pytest.mark.benchmark(group="e24-compiled-loop")
def test_compiled_loop_timing(benchmark):
    """Serial compiled classification of the cold 1k batch."""
    cfgs = timed_workload()
    records = benchmark(lambda: [compiled_classify(c).feasible for c in cfgs])
    assert len(records) == BATCH_SIZE


@pytest.mark.benchmark(group="e24-batch")
def test_batch_kernel_timing(benchmark):
    """Lockstep kernel classification of the cold 1k batch."""
    cfgs = timed_workload()
    records = benchmark(batch_census_records, cfgs)
    assert len(records) == BATCH_SIZE
