"""E11 — Channel ablation: how load-bearing is collision detection?

The paper assumes collision detection (Section 1.1). This experiment
re-runs the canonical-family refinement under the no-CD and beeping
channels over an exhaustive small census and asserts the predicted order:
CD dominates both weaker channels, and no-CD / beeping are incomparable
(witnesses exist in both directions). The engine-cached variant dedupes
the census up to isomorphism first — channel verdicts are
isomorphism-invariant, so it must reproduce the exact per-channel counts.
"""

import pytest

from repro.engine import ResultCache, cached_evaluate
from repro.graphs.enumeration import enumerate_configurations
from repro.variants.census import cross_model_row, exhaustive_cross_model_census
from repro.variants.channels import BEEP, CD, NO_CD
from repro.variants.canonical import variant_elect
from repro.variants.refinement import variant_classify
from repro.graphs.families import h_m


def channel_verdicts(cfg):
    """Engine-cache evaluator: channel name -> feasibility verdict."""
    return cross_model_row(cfg).feasible


@pytest.mark.benchmark(group="e11-census")
def test_cross_model_census_n4(benchmark):
    census = benchmark(exhaustive_cross_model_census, 4, 1)
    assert census.total == 90
    # CD dominates (weak-feasible ⇒ CD-feasible)
    assert census.inclusion_holds(NO_CD, CD)
    assert census.inclusion_holds(BEEP, CD)
    # strict drops under both weaker channels
    assert census.count(NO_CD) < census.count(CD)
    assert census.count(BEEP) < census.count(CD)
    # no-CD and beeping are incomparable
    assert census.witnesses(NO_CD, BEEP, 1)
    assert census.witnesses(BEEP, NO_CD, 1)


@pytest.mark.benchmark(group="e11-census")
def test_cross_model_census_n4_engine_cached(benchmark):
    direct = exhaustive_cross_model_census(4, 1)
    cache = ResultCache()

    def cached_counts():
        counts = {c.name: 0 for c in (CD, NO_CD, BEEP)}
        for cfg in enumerate_configurations(4, 1):
            verdicts = cached_evaluate(cfg, cache, channel_verdicts)
            for name, ok in verdicts.items():
                counts[name] += ok
        return counts

    counts = benchmark(cached_counts)
    for channel in (CD, NO_CD, BEEP):
        assert counts[channel.name] == direct.count(channel)
    # the cache collapsed the 90-config census to its isomorphism classes
    assert len(cache) < direct.total


@pytest.mark.benchmark(group="e11-classify")
@pytest.mark.parametrize("channel", [CD, NO_CD, BEEP], ids=lambda c: c.name)
def test_variant_classify_hm(benchmark, channel):
    trace = benchmark(variant_classify, h_m(8), channel)
    # H_m splits all four nodes immediately regardless of channel: the
    # asymmetry is in the wakeup offsets, not in collisions.
    assert trace.feasible


@pytest.mark.benchmark(group="e11-elect")
@pytest.mark.parametrize("channel", [CD, NO_CD, BEEP], ids=lambda c: c.name)
def test_variant_election_runs(benchmark, channel):
    result = benchmark(variant_elect, h_m(4), channel)
    assert result.elected
