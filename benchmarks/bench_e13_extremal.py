"""E13 — Extremal structure: minimal feasible spans and hardest tags.

Quantifies the paper's symmetry-breaking resource. Span 0 is infeasible
for every n ≥ 2 (all tags equal — the paper's opening observation), and
span 1 already suffices on the standard shapes; adversarial tag search
pushes election time well above the uniform-random baseline while
remaining within the O(n²σ) ceiling.
"""

import pytest

from repro.analysis.extremal import (
    election_rounds_objective,
    hardest_tags,
    max_iterations,
    min_feasible_span,
)
from repro.core.election import elect_leader
from repro.graphs.generators import (
    build,
    complete_edges,
    cycle_edges,
    path_edges,
    star_edges,
)

SHAPES = {
    "path": path_edges,
    "cycle": cycle_edges,
    "star": star_edges,
    "complete": complete_edges,
}


@pytest.mark.benchmark(group="e13-minspan")
@pytest.mark.parametrize("shape", sorted(SHAPES))
def test_min_feasible_span(benchmark, shape):
    edges = SHAPES[shape](5)
    result = benchmark(min_feasible_span, edges, 5, max_span=2)
    # Span 0 never works for n >= 2; span 1 suffices on all these shapes.
    assert result.span == 1
    assert result.exhaustive


@pytest.mark.benchmark(group="e13-iterations")
def test_max_iterations_n5(benchmark):
    ext = benchmark(max_iterations, 5, 1)
    assert 1 <= ext.iterations <= ext.ceiling
    assert ext.witnesses


@pytest.mark.benchmark(group="e13-hardest")
def test_hardest_tags_beat_random_baseline(benchmark):
    edges, n, span = path_edges(6), 6, 2

    def search():
        return hardest_tags(edges, n, span, restarts=3, steps=30, seed=13)

    result = benchmark(search)
    assert result.objective > 0
    # stays within the O(n²σ) ceiling
    cfg = result.config
    assert elect_leader(cfg).within_bound()
    # beats (or ties) a small uniform-random baseline
    from repro.graphs.tags import uniform_random

    baseline = max(
        election_rounds_objective(build(edges, uniform_random(range(n), span, s), n=n))
        for s in range(6)
    )
    assert result.objective >= baseline
