"""E9 — Section 1.3 contrast: labeled deterministic vs randomized election
in single-hop networks with collision detection.

Tree-split (IDs, deterministic) must track Θ(log n) slots; Willard-style
randomized election must beat it on average for large n (expected
O(log log n)) — the "randomization wins exponentially" shape the paper's
related-work section reports.
"""

import pytest

from repro.baselines.tree_split import tree_split_algorithm, tree_split_slot_bound
from repro.baselines.willard import willard_algorithm
from repro.graphs.generators import complete_configuration
from repro.radio.simulator import simulate


def run_tree(n):
    algo = tree_split_algorithm(n)
    cfg = complete_configuration([0] * n)
    ex = simulate(cfg, algo.factory, max_rounds=400)
    assert len(ex.decide_leaders(algo.decision)) == 1
    return ex.max_done_local()


def run_willard(n, seed):
    algo = willard_algorithm(seed=seed)
    cfg = complete_configuration([0] * n)
    ex = simulate(cfg, algo.factory, max_rounds=100_000)
    assert len(ex.decide_leaders(algo.decision)) == 1
    return ex.max_done_local()


@pytest.mark.benchmark(group="e9-tree-split")
@pytest.mark.parametrize("n", [8, 32, 128])
def test_tree_split(benchmark, n):
    slots = benchmark(run_tree, n)
    assert slots <= tree_split_slot_bound(n)


@pytest.mark.benchmark(group="e9-willard")
@pytest.mark.parametrize("n", [8, 32, 128])
def test_willard(benchmark, n):
    slots = benchmark(run_willard, n, 5)
    assert slots >= 3


@pytest.mark.benchmark(group="e9-shape")
def test_randomized_beats_deterministic_on_average(benchmark):
    def run():
        n = 256
        det = run_tree(n)
        rand_mean = sum(run_willard(n, seed) for seed in range(10)) / 10
        return det, rand_mean

    det, rand_mean = benchmark(run)
    # deterministic pays the full log n; randomized crosses below it
    # (expected O(log log n); with our constants the crossover is ~n=200)
    assert rand_mean < det, (rand_mean, det)


@pytest.mark.benchmark(group="e9-shape")
def test_tree_split_growth_is_logarithmic(benchmark):
    def run():
        return {n: run_tree(n) for n in (4, 16, 64, 256)}

    slots = benchmark(run)
    # doubling-squared n adds ~4 slots per 4x, never multiplies
    assert slots[256] <= slots[4] + 2 * 8
    assert slots[16] <= slots[4] + 6
    assert all(slots[a] <= slots[b] for a, b in ((4, 16), (16, 64), (64, 256)))
