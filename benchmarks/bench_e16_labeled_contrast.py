"""E16 — What labels buy you: round robin vs tree split vs anonymity.

Section 1.3's single-hop landscape, executed: with labels and no collision
detection, election takes Θ(N) slots (round robin); with labels and
collision detection, Θ(log n) (tree split); anonymously, feasibility
itself depends on wakeup tags — with all-equal tags the configuration is
infeasible at any size.
"""

import math

import pytest

from repro.baselines.round_robin import round_robin_algorithm, round_robin_slots
from repro.baselines.tree_split import tree_split_algorithm
from repro.core.classifier import is_feasible
from repro.graphs.generators import build, complete_edges
from repro.radio.simulator import simulate


def run(algo, n):
    cfg = build(complete_edges(n), n=n)
    return simulate(cfg, algo.factory)


@pytest.mark.benchmark(group="e16-round-robin")
@pytest.mark.parametrize("n", [8, 32, 128])
def test_round_robin(benchmark, n):
    algo = round_robin_algorithm(n)
    execution = benchmark(run, algo, n)
    assert execution.decide_leaders(algo.decision) == [0]
    assert execution.max_done_local() == round_robin_slots(n)  # Θ(n)


@pytest.mark.benchmark(group="e16-tree-split")
@pytest.mark.parametrize("n", [8, 32, 128])
def test_tree_split(benchmark, n):
    algo = tree_split_algorithm(n)
    execution = benchmark(run, algo, n)
    assert len(execution.decide_leaders(algo.decision)) == 1


@pytest.mark.benchmark(group="e16-shape")
def test_crossover_shape(benchmark):
    """Slot counts: round robin grows linearly, tree split
    logarithmically — the gap widens with n (who wins and by how much)."""

    def measure():
        out = {}
        for n in (8, 32, 128):
            rr = run(round_robin_algorithm(n), n).max_done_local()
            ts = run(tree_split_algorithm(n), n).max_done_local()
            out[n] = (rr, ts)
        return out

    result = benchmark(measure)
    for n, (rr, ts) in result.items():
        assert rr > ts, f"n={n}: tree split must win"
        assert ts <= 6 * math.log2(n) + 8
    # the advantage grows with n
    assert result[128][0] / result[128][1] > result[8][0] / result[8][1]


@pytest.mark.benchmark(group="e16-anonymous")
def test_anonymous_contrast(benchmark):
    """The same single-hop graph with all-equal tags is infeasible
    anonymously at every size tried — labels are doing real work above."""

    def check():
        return [
            is_feasible(build(complete_edges(n), n=n)) for n in (2, 4, 8, 16)
        ]

    assert benchmark(check) == [False] * 4
