"""E25 — Service load: sustained RPS / p99 gates + 429-on-saturation.

The acceptance gate of the PR-6 service hardening: an in-process load
generator drives the pure-asyncio front end over real sockets with
mixed warm/cold traffic from concurrent keep-alive clients, and the
server must (a) sustain at least ``RPS_FLOOR`` requests/second with a
p99 latency under ``P99_CEILING_S``, (b) answer every request
bit-for-bit equal to the serial oracle
(:func:`repro.service.serial_report`), (c) convert queue saturation
into ``429 Too Many Requests`` + ``Retry-After`` instead of hung
sockets, and (d) leave **zero** hung connections behind.

The measured numbers land in ``BENCH_E25.json``
(:mod:`repro.reporting.bench`) before the floors are asserted, so a
failing gate still leaves its evidence; CI uploads the file with the
other bench artifacts. ``speedup`` carries the measured RPS and
``floor`` the RPS gate (the schema's ratio slot, reused as
requests-per-second for a load benchmark).
"""

import http.client
import json
import random
import threading
import time

import pytest

from repro.core.configuration import Configuration
from repro.graphs.families import g_m
from repro.reporting.bench import BenchResult, write_bench_result
from repro.service import BatchClassifier, make_server, serial_report

from conftest import seeded_config

#: Sustained requests/second the mixed-load phase must reach. The warm
#: in-process service answers in well under a millisecond, so even CI
#: machines clear this by an order of magnitude — the gate catches
#: event-loop stalls and serialization regressions, not CPU speed.
RPS_FLOOR = 50.0

#: p99 request latency ceiling, seconds (generous for CI scheduler noise).
P99_CEILING_S = 0.25

#: Concurrent keep-alive clients and requests per client.
CLIENTS = 8
REQUESTS_PER_CLIENT = 60


def mixed_workload():
    """Per-client request sequences over a shared unique-config pool.

    ~10 uniques (the paper's expensive G_m family plus random G(n, p))
    repeated in shuffled order — duplicate-heavy, like real serving
    traffic — with a per-client cold straggler so the cold path stays
    exercised *during* the measured window, not just in warmup.
    """
    uniques = [(g_m(m), "decide") for m in (6, 8, 10)] + [
        (seeded_config(s, 12, 14), "decide") for s in range(4)
    ] + [(seeded_config(s, 8, 9), "elect") for s in range(3)]
    sequences = []
    for client in range(CLIENTS):
        rng = random.Random(100 + client)
        seq = [uniques[rng.randrange(len(uniques))]
               for _ in range(REQUESTS_PER_CLIENT - 1)]
        # one cold miss mid-stream, unique to this client
        cold = (seeded_config(50 + client, 10, 12), "decide")
        seq.insert(rng.randrange(len(seq)), cold)
        sequences.append(seq)
    return sequences


@pytest.fixture(scope="module")
def sequences():
    return mixed_workload()


@pytest.fixture(scope="module")
def oracle(sequences):
    """Serial reference report per (config, mode) — the equality bar."""
    expected = {}
    for seq in sequences:
        for cfg, mode in seq:
            key = (cfg, mode)
            if key not in expected:
                expected[key] = serial_report(cfg, mode)
    return expected


def run_client(address, sequence, oracle, latencies, failures):
    """One keep-alive client: POST every request, verify bit-for-bit."""
    conn = http.client.HTTPConnection(*address, timeout=30)
    try:
        for cfg, mode in sequence:
            payload = json.dumps(
                {
                    "edges": [list(e) for e in cfg.edges],
                    "tags": {str(v): t for v, t in cfg.tags.items()},
                    "mode": mode,
                }
            )
            t0 = time.perf_counter()
            conn.request(
                "POST", "/classify", body=payload,
                headers={"Content-Type": "application/json"},
            )
            resp = conn.getresponse()
            body = json.loads(resp.read())
            latencies.append(time.perf_counter() - t0)
            if resp.status != 200 or body["report"] != oracle[(cfg, mode)]:
                failures.append((resp.status, body))
    finally:
        conn.close()


def percentile(values, q):
    """The q-quantile of ``values`` (nearest-rank)."""
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


def test_mixed_load_sustains_rps_and_p99_floors(sequences, oracle):
    """The headline gate: CLIENTS concurrent keep-alive clients push
    mixed warm/cold traffic; the server sustains ``RPS_FLOOR`` with p99
    under ``P99_CEILING_S`` and every response bit-for-bit correct —
    then a saturation probe against a tiny queue must yield 429s, and
    the module ends with zero hung connections."""
    classifier = BatchClassifier(batch_window=0.001)
    server = make_server(port=0, classifier=classifier, quiet=True)
    serve_thread = threading.Thread(target=server.serve_forever, daemon=True)
    serve_thread.start()
    address = tuple(server.server_address[:2])
    latencies, failures = [], []
    try:
        # warm the cache with one pass of the shared uniques (library
        # path; the measured window still classifies each client's
        # private cold straggler)
        classifier.classify_many([cfg for cfg, _ in sequences[0][:10]])
        threads = [
            threading.Thread(
                target=run_client,
                args=(address, seq, oracle, latencies, failures),
            )
            for seq in sequences
        ]
        t0 = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        wall = time.perf_counter() - t0
        hung = [t for t in threads if t.is_alive()]
        total = CLIENTS * REQUESTS_PER_CLIENT
        rps = len(latencies) / wall if wall > 0 else 0.0
        p50 = percentile(latencies, 0.50) if latencies else float("inf")
        p99 = percentile(latencies, 0.99) if latencies else float("inf")

        # saturation probe: a cold batch bigger than a 2-slot queue can
        # ever hold must be refused with 429 + Retry-After, not hang
        saturated = saturation_probe()

        # connections drain once clients hang up
        deadline = time.monotonic() + 5
        while server.connection_count > 0 and time.monotonic() < deadline:
            time.sleep(0.02)

        passed = (
            not failures
            and not hung
            and len(latencies) == total
            and rps >= RPS_FLOOR
            and p99 <= P99_CEILING_S
            and saturated["status"] == 429
            and saturated["retry_after"] >= 1
            and server.connection_count == 0
        )
        write_bench_result(
            BenchResult(
                experiment="E25",
                workload={
                    "clients": CLIENTS,
                    "requests": total,
                    "unique_configs": len(oracle),
                    "saturation_status": saturated["status"],
                    "retry_after_s": saturated["retry_after"],
                    "hung_connections": len(hung) + server.connection_count,
                    "failures": len(failures),
                },
                timings_s={"wall": wall, "p50": p50, "p99": p99},
                speedup=rps,  # requests/second in the schema's ratio slot
                floor=RPS_FLOOR,
                passed=passed,
            )
        )
        assert not failures, f"{len(failures)} wrong responses: {failures[:3]}"
        assert not hung, f"{len(hung)} client(s) hung"
        assert len(latencies) == total
        assert rps >= RPS_FLOOR, f"{rps:.0f} rps < {RPS_FLOOR} floor"
        assert p99 <= P99_CEILING_S, f"p99 {p99:.3f}s > {P99_CEILING_S}s"
        assert saturated["status"] == 429 and saturated["retry_after"] >= 1
        assert server.connection_count == 0, "hung server-side connections"
    finally:
        server.shutdown()
        server.server_close()
        classifier.close()
        serve_thread.join(timeout=10)


def saturation_probe():
    """Drive a tiny-queue server into refusal; returns what came back."""
    classifier = BatchClassifier(batch_window=0.001, max_pending=2)
    server = make_server(port=0, classifier=classifier, quiet=True)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        requests = [
            {
                "edges": [[i, i + 1] for i in range(4)],
                "tags": {str(i): (seed + i * i) % (seed + 7)
                         for i in range(5)},
            }
            for seed in range(8)  # 8 cold misses >> 2 queue slots
        ]
        conn = http.client.HTTPConnection(*server.server_address[:2],
                                          timeout=30)
        try:
            conn.request(
                "POST", "/classify",
                body=json.dumps({"requests": requests}),
                headers={"Content-Type": "application/json"},
            )
            resp = conn.getresponse()
            body = json.loads(resp.read())
            retry_after = int(resp.headers.get("Retry-After", "0"))
        finally:
            conn.close()
        return {
            "status": resp.status,
            "retry_after": retry_after,
            "body": body,
        }
    finally:
        server.shutdown()
        server.server_close()
        classifier.close()
        thread.join(timeout=10)


@pytest.mark.benchmark(group="e25-service-load")
def test_warm_request_latency_over_keepalive(benchmark, sequences, oracle):
    """Timing row: one warm request over an established keep-alive
    connection — the steady-state unit of serving cost."""
    cfg, mode = sequences[0][0]
    expected = oracle[(cfg, mode)]
    payload = json.dumps(
        {
            "edges": [list(e) for e in cfg.edges],
            "tags": {str(v): t for v, t in cfg.tags.items()},
            "mode": mode,
        }
    )
    classifier = BatchClassifier(batch_window=0.001)
    server = make_server(port=0, classifier=classifier, quiet=True)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    conn = http.client.HTTPConnection(*server.server_address[:2], timeout=30)
    try:
        def one_request():
            conn.request(
                "POST", "/classify", body=payload,
                headers={"Content-Type": "application/json"},
            )
            resp = conn.getresponse()
            return resp.status, json.loads(resp.read())

        one_request()  # warm the cache outside the timer
        status, body = benchmark(one_request)
        assert status == 200 and body["report"] == expected
    finally:
        conn.close()
        server.shutdown()
        server.server_close()
        classifier.close()
        thread.join(timeout=10)
