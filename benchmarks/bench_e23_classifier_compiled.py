"""E23 — Compiled classifier core: equality gate + classification scaling.

The acceptance gates of the ``repro.core.compiled`` subsystem:

1. **Bit-for-bit trace equality** — on an exhaustive small-n sweep
   (every connected shape × every tag vector), on the paper families
   and on random configurations, the three classifier implementations
   behind the ``algorithm`` knob — ``reference`` (faithful O(n³Δ)),
   ``fast`` (hash-based ablation) and ``compiled`` (indexed, interned,
   split-driven incremental) — produce the *identical*
   :class:`~repro.core.trace.ClassifierTrace`: same labels, same class
   numbering, same representatives, same decision, leader and
   iteration count.
2. **≥ 5× classification speedup** — on the adversarial ``G_m`` family
   (the paper's Ω(n) lower-bound instances, where the classifier needs
   Θ(n) refinement iterations), the compiled core beats the reference
   by at least ``SPEEDUP_FLOOR`` in wall time. The measurement is also
   written as a machine-readable ``BENCH_E23.json`` artifact
   (:mod:`repro.reporting.bench`), pass or fail.
3. **Auto default** — ``classify`` with the default knob returns the
   compiled core's trace, so every caller in the repo (decide, census,
   engine, service, CLI) is on the fast path.
"""

import time

import pytest

from repro.core.classifier import classify, reference_classify
from repro.core.compiled import compiled_classify
from repro.core.fast_classifier import fast_classify, traces_equal
from repro.graphs.enumeration import enumerate_configurations
from repro.graphs.families import g_m, h_m, s_m
from repro.reporting.bench import BenchResult, write_bench_result

from conftest import random_config_batch

#: ISSUE acceptance threshold: compiled vs reference classification.
SPEEDUP_FLOOR = 5.0

#: Timed workload: the lower-bound family at n = 161 — Θ(n) refinement
#: iterations, the classifier's worst case in iteration count.
TIMED_M = 40


# ----------------------------------------------------------------------
# gate 1: bit-for-bit ClassifierTrace equality
# ----------------------------------------------------------------------
def assert_all_algorithms_agree(cfg):
    """Reference, fast and compiled traces must be field-for-field equal,
    both called directly and through the dispatcher knob."""
    ref = reference_classify(cfg)
    assert traces_equal(ref, fast_classify(cfg)), f"fast diverges on {cfg!r}"
    assert traces_equal(ref, compiled_classify(cfg)), (
        f"compiled diverges on {cfg!r}"
    )
    for algorithm in ("reference", "fast", "compiled", "auto"):
        assert traces_equal(ref, classify(cfg, algorithm=algorithm)), (
            f"dispatcher({algorithm}) diverges on {cfg!r}"
        )


@pytest.mark.parametrize(
    "n,max_tag", [(1, 2), (2, 2), (3, 2), (4, 2), (5, 1)]
)
def test_exhaustive_small_n_agreement(n, max_tag):
    """Every connected shape × every tag vector up to the sweep bound."""
    count = 0
    for cfg in enumerate_configurations(n, max_tag):
        assert_all_algorithms_agree(cfg)
        count += 1
    assert count > 0


@pytest.mark.parametrize("m", [2, 3, 8])
def test_family_agreement(m):
    """The paper's G_m / H_m / S_m families, including infeasible ones."""
    for family in (g_m, h_m, s_m):
        assert_all_algorithms_agree(family(m))


def test_random_batch_agreement():
    """Seeded random configurations (mixed n, span, density)."""
    for cfg in random_config_batch(60, base_seed=2323):
        assert_all_algorithms_agree(cfg)


def test_auto_default_is_compiled_everywhere():
    """The dispatcher's ``auto`` resolves to the compiled core, and the
    default-knob trace equals the compiled one on a nontrivial input."""
    from repro.core.classifier import resolve_algorithm

    assert resolve_algorithm("auto") == "compiled"
    cfg = g_m(5)
    assert traces_equal(classify(cfg), compiled_classify(cfg))


# ----------------------------------------------------------------------
# gate 2: >= 5x classification speedup, recorded as BENCH_E23.json
# ----------------------------------------------------------------------
def test_classification_speedup_at_least_5x():
    """The compiled core beats the faithful reference ≥ 5× in wall time
    on G_40 (n = 161, Θ(n) iterations), with identical output. Compiled
    times are the best of three passes to shield the ratio from
    scheduler noise; the reference runs once — it is tens of
    milliseconds and stable. The measurement is written to
    ``BENCH_E23.json`` before the floor is asserted."""
    cfg = g_m(TIMED_M)

    t0 = time.perf_counter()
    ref = reference_classify(cfg)
    ref_time = time.perf_counter() - t0

    compiled_time = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        comp = compiled_classify(cfg)
        compiled_time = min(compiled_time, time.perf_counter() - t0)
    assert traces_equal(ref, comp)  # same trace, not merely same verdict

    speedup = ref_time / compiled_time
    write_bench_result(
        BenchResult(
            experiment="E23",
            workload={
                "family": f"G_{TIMED_M}",
                "n": cfg.n,
                "span": cfg.span,
                "iterations": ref.num_iterations,
            },
            timings_s={"reference": ref_time, "compiled": compiled_time},
            speedup=speedup,
            floor=SPEEDUP_FLOOR,
            passed=speedup >= SPEEDUP_FLOOR,
        )
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"compiled {compiled_time:.4f}s vs reference {ref_time:.4f}s "
        f"= {speedup:.1f}x < {SPEEDUP_FLOOR}x on G_{TIMED_M} (n={cfg.n})"
    )


def test_incremental_path_does_less_metered_work():
    """The op meters agree with the wall clock: on a many-iteration
    workload the compiled core's metered work is a small fraction of
    the reference's Lemma 3.5 accounting."""
    cfg = g_m(12)
    ref_ops = reference_classify(cfg, count_ops=True).total_ops
    compiled_ops = compiled_classify(cfg, count_ops=True).total_ops
    assert 0 < compiled_ops < ref_ops / 5


# ----------------------------------------------------------------------
# timing rows (pytest-benchmark; informational)
# ----------------------------------------------------------------------
BENCH_CASES = {
    "gm-12": lambda: g_m(12),
    "gm-25": lambda: g_m(25),
    "gm-40": lambda: g_m(TIMED_M),
}


@pytest.mark.benchmark(group="e23-reference")
@pytest.mark.parametrize("case", sorted(BENCH_CASES))
def test_reference_timing(benchmark, case):
    """Reference classification wall time per family instance."""
    cfg = BENCH_CASES[case]()
    trace = benchmark(reference_classify, cfg)
    assert trace.decision


@pytest.mark.benchmark(group="e23-compiled")
@pytest.mark.parametrize("case", sorted(BENCH_CASES))
def test_compiled_timing(benchmark, case):
    """Compiled classification wall time per family instance."""
    cfg = BENCH_CASES[case]()
    trace = benchmark(compiled_classify, cfg)
    assert trace.decision


@pytest.mark.benchmark(group="e23-fast")
@pytest.mark.parametrize("case", sorted(BENCH_CASES))
def test_fast_timing(benchmark, case):
    """Hash-ablation classification wall time per family instance."""
    cfg = BENCH_CASES[case]()
    trace = benchmark(fast_classify, cfg)
    assert trace.decision
