"""E26 — Observability overhead: near-zero disabled, bounded enabled.

The acceptance gates of the :mod:`repro.obs` tracing/telemetry layer:

1. **Disabled ≈ free** — with observability off, every instrumented
   hot path pays exactly one attribute check (``if STATE.enabled:``).
   The gate measures the cost of that check directly (a tight
   micro-benchmark) and multiplies it by the number of guard
   executions an *enabled* run of the same census actually performs
   (read off the registry counters, which increment once per guard
   site, plus the span count from the trace). That worst-case total
   must stay under 5% of the measured disabled wall time — the
   "disabled census within 5% of pre-instrumentation wall time"
   criterion, proven from first principles instead of comparing two
   noisy timings of the same binary.
2. **Enabled ≤ 15% overhead** — the same census with full JSONL
   tracing enabled finishes within ``OVERHEAD_CEILING`` (1.15×) of the
   disabled wall time, best-of-``PASSES`` on each side, interleaved.
3. **Round-trip** — the event log written during the timed enabled
   run validates against the closed schema and renders through
   :func:`repro.obs.summarize_file` with per-shard rows intact.

The measurement is written as ``BENCH_E26.json``
(:mod:`repro.reporting.bench`) before any floor is asserted, with
``speedup = disabled / enabled`` gated against ``floor = 1/1.15``.
"""

import time

from repro import obs
from repro.canon.canonize import clear_memo
from repro.engine.cache import ResultCache
from repro.engine.pipeline import sharded_census
from repro.obs.events import read_events, validate_events
from repro.reporting.bench import BenchResult, write_bench_result

from conftest import random_config_batch

#: ISSUE acceptance ceiling: enabled/disabled wall-time ratio.
OVERHEAD_CEILING = 1.15

#: Disabled-mode budget: total guard cost as a fraction of wall time.
DISABLED_BUDGET = 0.05

#: Timed workload: cold random census, the engine's default shape.
POPULATION = 400
NUM_SHARDS = 8
BASE_SEED = 20260826

#: Best-of passes per side (interleaved, shielding the ratio from
#: scheduler noise the same way the other gated benchmarks do).
PASSES = 5


def timed_workload():
    return random_config_batch(POPULATION, base_seed=BASE_SEED)


def _run_census(cfgs):
    """One cold census pass: fresh result cache AND cold canonize memo,
    so both sides do identical full work every pass (the process-global
    memo would otherwise warm up across passes and skew the ratio)."""
    clear_memo()
    t0 = time.perf_counter()
    run = sharded_census(cfgs, num_shards=NUM_SHARDS, cache=ResultCache())
    return time.perf_counter() - t0, run


def _guard_cost_ns() -> float:
    """Nanoseconds per disabled ``if STATE.enabled:`` check, measured.

    The loop body below is exactly the no-op fast path every
    instrumented call site executes when observability is off: one
    attribute load and a falsy branch. Best of five tight loops.
    """
    state = obs.STATE
    assert not state.enabled
    n = 200_000
    best = float("inf")
    for _ in range(5):
        t0 = time.perf_counter()
        for _ in range(n):
            if state.enabled:  # pragma: no cover - never taken
                raise AssertionError("obs must stay disabled here")
        best = min(best, time.perf_counter() - t0)
    return best / n * 1e9


def test_overhead_gates(tmp_path):
    """All three E26 gates, one interleaved measurement, one artifact."""
    cfgs = timed_workload()
    trace_path = tmp_path / "census.jsonl"

    _run_census(cfgs)  # warm imports/codepaths before timing either side
    t_disabled = t_enabled = float("inf")
    try:
        for i in range(PASSES):
            assert not obs.STATE.enabled
            wall, baseline = _run_census(cfgs)
            t_disabled = min(t_disabled, wall)

            obs.registry.reset()
            obs.enable(trace_path=str(trace_path))
            try:
                wall, traced = _run_census(cfgs)
            finally:
                obs.disable()
            t_enabled = min(t_enabled, wall)
            # equality every pass: tracing must never change results
            assert traced.result.rows == baseline.result.rows
        snapshot = obs.snapshot()
    finally:
        obs.disable()
        obs.registry.reset()

    # gate 3: the last pass's event log round-trips (validated parse,
    # summarizer render, per-shard rows present)
    events = read_events(str(trace_path), validate=True)
    assert validate_events(events) == len(events) > 0
    summary = obs.summarize_file(str(trace_path))
    rendered = summary.render()
    assert summary.span_total >= NUM_SHARDS
    assert len(summary.shard_rows) == NUM_SHARDS
    assert "census.shard" in rendered and "hit" in rendered

    # gate 1: worst-case disabled guard cost < 5% of disabled wall time.
    # Guard executions ≈ counter increments (one per guarded site that
    # fired) + spans + events (each span/event call is itself guarded).
    counters = snapshot["counters"]
    guard_executions = (
        sum(counters.values()) + summary.span_total + summary.event_total
    )
    per_guard_s = _guard_cost_ns() / 1e9
    disabled_cost = guard_executions * per_guard_s
    assert disabled_cost <= DISABLED_BUDGET * t_disabled, (
        f"{guard_executions} guards x {per_guard_s * 1e9:.1f}ns = "
        f"{disabled_cost:.6f}s > {DISABLED_BUDGET:.0%} of "
        f"{t_disabled:.4f}s disabled census"
    )

    # gate 2: enabled tracing within the overhead ceiling
    speedup = t_disabled / t_enabled
    floor = round(1.0 / OVERHEAD_CEILING, 4)
    write_bench_result(
        BenchResult(
            experiment="E26",
            workload={
                "population": POPULATION,
                "num_shards": NUM_SHARDS,
                "base_seed": BASE_SEED,
                "generator": "random_config_batch",
                "guard_executions": guard_executions,
                "guard_cost_ns": round(per_guard_s * 1e9, 2),
            },
            timings_s={"disabled": t_disabled, "enabled": t_enabled},
            speedup=speedup,
            floor=floor,
            passed=speedup >= floor,
        )
    )
    ratio = t_enabled / t_disabled
    assert ratio <= OVERHEAD_CEILING, (
        f"enabled {t_enabled:.4f}s vs disabled {t_disabled:.4f}s = "
        f"{ratio:.3f}x > {OVERHEAD_CEILING}x overhead ceiling"
    )
