"""E1 — Theorem 3.17 correctness census.

Classifier vs the simulation ground truth (unique canonical history) and
the automorphism necessary condition, over every 4-node configuration with
span <= 1 plus a random batch; benchmarks the full-census throughput,
both serial and through the canonical-form census engine
(:mod:`repro.engine`), whose cached path is the default for production
sweeps.
"""

import pytest

from repro.analysis.automorphisms import has_fixed_node
from repro.analysis.census import census
from repro.baselines.bruteforce import simulation_feasible
from repro.core.classifier import classify, is_feasible
from repro.engine import EnumerationWorkload, ResultCache, sharded_census
from repro.graphs.enumeration import enumerate_configurations

from conftest import seeded_config


def census_agreement(n, max_tag):
    total = agree = 0
    for cfg in enumerate_configurations(n, max_tag):
        total += 1
        agree += is_feasible(cfg) == simulation_feasible(cfg)
    return total, agree


@pytest.mark.benchmark(group="e1-census")
def test_exhaustive_census_n4(benchmark):
    total, agree = benchmark(census_agreement, 4, 1)
    assert total == 6 * 15  # 6 shapes x (2^4 - 1) normalized tag vectors
    assert agree == total  # 100% agreement: the headline of Theorem 3.17


@pytest.mark.benchmark(group="e1-census")
def test_exhaustive_census_n3_span2(benchmark):
    total, agree = benchmark(census_agreement, 3, 2)
    assert agree == total


@pytest.mark.benchmark(group="e1-census")
def test_random_census_agreement(benchmark):
    configs = [seeded_config(900 + i, n=9, span=2) for i in range(15)]

    def run():
        return sum(
            is_feasible(c) == simulation_feasible(c) for c in configs
        )

    agree = benchmark(run)
    assert agree == len(configs)


@pytest.mark.benchmark(group="e1-census-engine")
def test_engine_census_matches_serial(benchmark):
    workload = EnumerationWorkload(4, 1)
    serial = census(iter(workload))

    def run():
        return sharded_census(workload, num_shards=4).result

    result = benchmark(run)
    assert result.rows == serial.rows  # the engine's equality contract
    assert result.total == 90


@pytest.mark.benchmark(group="e1-census-engine")
def test_engine_census_cached_rerun(benchmark):
    workload = EnumerationWorkload(4, 1)
    cache = ResultCache()
    warm = sharded_census(workload, cache=cache)  # populate once

    def rerun():
        return sharded_census(workload, num_shards=4, cache=cache)

    run = benchmark(rerun)
    assert run.stats.classified == 0  # every item a cache hit
    assert run.result.rows == warm.result.rows


@pytest.mark.benchmark(group="e1-census")
def test_yes_implies_fixed_node(benchmark):
    configs = [seeded_config(7000 + i, n=7, span=2) for i in range(20)]

    def run():
        ok = 0
        for c in configs:
            trace = classify(c)
            if not trace.feasible or has_fixed_node(trace.config):
                ok += 1
        return ok

    assert benchmark(run) == len(configs)
