"""E3 — Proposition 4.1: Ω(n) election on the span-1 family G_m.

The dedicated algorithm's election time on G_m must (a) respect the
proof's floor of m-1 rounds, (b) grow linearly in m = Θ(n), and (c) stay
inside the O(n²σ) ceiling of Theorem 3.15.
"""

import pytest

from repro.analysis.rounds import sweep
from repro.core.election import elect_leader
from repro.graphs.families import g_m, g_m_center, g_m_size


@pytest.mark.benchmark(group="e3-gm")
@pytest.mark.parametrize("m", [2, 4, 8, 16])
def test_elect_g_m(benchmark, m):
    cfg = g_m(m)
    result = benchmark(elect_leader, cfg)
    assert result.elected
    assert result.leader == g_m_center(m)
    assert result.rounds >= m - 1  # Ω(n) floor from the proof
    assert result.within_bound()  # O(n²σ) ceiling


@pytest.mark.benchmark(group="e3-gm-shape")
def test_rounds_linear_in_m(benchmark):
    ms = [2, 4, 8, 16]

    def measure():
        return sweep(
            "gm-rounds",
            ms,
            lambda m: elect_leader(g_m(int(m))).rounds,
            bound=lambda m: 2 * (g_m_size(int(m)) ** 2) * 1 + g_m_size(int(m)),
        )

    result = benchmark(measure)
    assert result.all_within_bounds()
    exponent = result.growth_exponent()
    # linear-to-mildly-superlinear in m (schedule adds per-phase blocks):
    assert 0.8 <= exponent <= 2.2, exponent
    values = [p.value for p in result.points]
    assert values == sorted(values)  # monotone growth with n
