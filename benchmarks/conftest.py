"""Shared helpers for the benchmark/experiment harness.

Run with::

    pytest benchmarks/ --benchmark-only

Each ``bench_eN_*.py`` module regenerates one experiment from DESIGN.md's
per-experiment index: it benchmarks the relevant operation *and* asserts
the paper's qualitative shape (who wins, growth rate, impossibility), so a
regression in either speed or correctness shows up here.
"""

from __future__ import annotations

import random

from repro.core.configuration import Configuration
from repro.graphs.generators import build, random_connected_gnp_edges
from repro.graphs.tags import uniform_random


def seeded_config(seed: int, n: int, span: int, p: float = 0.3) -> Configuration:
    edges = random_connected_gnp_edges(n, p, seed)
    tags = uniform_random(range(n), span, seed + 1)
    return build(edges, tags, n=n)


def feasible_batch(count: int, seed: int, n: int, span: int, p: float = 0.3):
    """Reproducible batch of *feasible* random configurations."""
    from repro.core.classifier import classify

    out = []
    attempt = 0
    while len(out) < count and attempt < 50 * count:
        cfg = seeded_config(seed + attempt, n, span, p)
        attempt += 1
        if classify(cfg).feasible:
            out.append(cfg)
    return out
