"""Shared helpers for the benchmark/experiment harness.

Run with::

    pytest benchmarks/ --benchmark-only

Each ``bench_eN_*.py`` module regenerates one experiment from the
``docs/experiments.md`` index: it benchmarks the relevant operation *and*
asserts the paper's qualitative shape (who wins, growth rate,
impossibility), so a regression in either speed or correctness shows up
here.

The workload builders live in :mod:`repro.engine.workloads` and are
re-exported here (and in ``tests/conftest.py``) under identical names:
when pytest collects ``benchmarks/`` and ``tests/`` in one run, both
directories' ``conftest`` modules compete for the ``conftest`` entry in
``sys.modules``, and keeping their public helper surface identical makes
the race harmless.
"""

from __future__ import annotations

from repro.testing import (  # noqa: F401  (re-exported for bench/test modules)
    SMALL_SWEEP_GRID,
    assert_execution_equal,
    assert_trace_equal,
    configurations,
    diverse_configurations,
    feasible_batch,
    make_random_config,
    random_config_batch,
    random_relabel,
    seeded_config,
    sweep_configurations,
)
