"""E21 — Refinement canonical labeling: oracle agreement + scaling gate.

The acceptance gates of the `repro.canon` subsystem:

1. **Bit-for-bit oracle agreement** — on an exhaustive small-n sweep
   (every enumerated configuration up to n = 6, plus every connected
   7-node shape under a fixed set of tag vectors), the refinement
   canonizer returns the *identical* ``(n, tags, edges)`` tuple the
   brute-force enumeration defines. Not "same equivalence classes":
   the same bytes, so every cache key, checkpoint, and JSONL store
   written by the old path stays valid.
2. **≥ 5× canonization speedup** on an n = 12–16 random workload — the
   territory where the seed's ``default_keyer`` gave up and fell back
   to ``labeled_key`` (the old ``CANONICAL_N_LIMIT = 10`` ceiling).
   The workload is filtered to configurations whose brute-force search
   space (the product of profile-class factorials) is large enough to
   measure but small enough to finish, so both sides are timed
   honestly on identical inputs.
3. **The ceiling is gone** — ``default_keyer`` now collapses relabeled
   isomorphs far above n = 10, and configurations whose brute-force
   space is astronomically out of reach (``G_12``: n = 49, ~10^46
   relabelings) canonize in milliseconds.
"""

import math
import random
import time
from collections import Counter

import pytest

from repro.analysis.isomorphism import canonical_form
from repro.canon import canonize
from repro.core.configuration import Configuration
from repro.engine import EngineStats, ResultCache, batch_records, default_keyer
from repro.graphs.enumeration import connected_graphs, enumerate_configurations
from repro.graphs.families import g_m
from repro.reporting.bench import BenchResult, write_bench_result

from conftest import seeded_config

#: ISSUE acceptance threshold: refinement canonizer vs brute-force oracle.
SPEEDUP_FLOOR = 5.0

#: The seed's brute-force keying ceiling, kept for the gate's framing.
OLD_CANONICAL_N_LIMIT = 10

#: Tag vectors used for the n = 7 shape sweep: the uniform vector keeps
#: every profile class maximal (the brute force's worst case — this is
#: where regular shapes cost it 7! relabelings), the alternating and
#: mixed vectors exercise asymmetric seeds.
N7_TAG_VECTORS = [
    (0, 0, 0, 0, 0, 0, 0),
    (0, 1, 0, 1, 0, 1, 0),
    (0, 1, 1, 0, 2, 0, 0),
]


def bruteforce_space(cfg: Configuration) -> int:
    """Number of relabelings the brute-force oracle enumerates: the
    product of the factorials of the (tag, degree) profile class sizes."""
    cfg = cfg.normalize()
    counts = Counter((cfg.tag(v), cfg.degree(v)) for v in cfg.nodes)
    space = 1
    for k in counts.values():
        space *= math.factorial(k)
    return space


def relabeled(cfg: Configuration, seed: int) -> Configuration:
    """A seeded random relabeling of ``cfg``."""
    nodes = list(cfg.nodes)
    shuffled = list(nodes)
    random.Random(seed).shuffle(shuffled)
    return cfg.relabel(dict(zip(nodes, shuffled)))


def speedup_workload():
    """n = 12–16 random configurations the old keyer refused to canonize.

    Seeded and filtered deterministically: spans 0–1 keep profile
    classes fat (that is what makes brute force slow), and the
    search-space window keeps the oracle measurable without letting one
    unlucky configuration run the benchmark off a cliff.
    """
    out = []
    for s in range(48):
        cfg = seeded_config(s, 12 + (s % 5), s % 2, 0.35)
        if 5_000 <= bruteforce_space(cfg) <= 60_000:
            out.append(cfg)
    return out


@pytest.fixture(scope="module")
def workload():
    configs = speedup_workload()
    assert len(configs) >= 6, "deterministic filter must keep a real sample"
    return configs


# ----------------------------------------------------------------------
# gate 1: bit-for-bit oracle agreement, exhaustively
# ----------------------------------------------------------------------
@pytest.mark.parametrize("n,max_tag", [(1, 3), (2, 3), (3, 2), (4, 2), (5, 1), (6, 1)])
def test_exhaustive_agreement_up_to_n6(n, max_tag):
    count = 0
    for cfg in enumerate_configurations(n, max_tag):
        assert canonical_form(cfg, strategy="refinement") == canonical_form(
            cfg, strategy="bruteforce"
        )
        count += 1
    assert count > 0


def test_exhaustive_shape_agreement_at_n7():
    """Every connected 7-node shape, under uniform / alternating / mixed
    tag vectors — including the regular shapes where the oracle pays the
    full 7! — agrees bit for bit."""
    shapes = connected_graphs(7)
    assert len(shapes) == 853
    for edges in shapes:
        for vec in N7_TAG_VECTORS:
            cfg = Configuration(edges, {i: vec[i] for i in range(7)})
            assert canonical_form(cfg, strategy="refinement") == canonical_form(
                cfg, strategy="bruteforce"
            )


# ----------------------------------------------------------------------
# gate 2: >= 5x speedup where the old path struggles
# ----------------------------------------------------------------------
def test_canonization_speedup_at_least_5x(workload):
    """Cold refinement canonization beats the brute-force oracle ≥ 5×
    in total wall time on the n = 12–16 workload, with identical
    output. Canon times are summed over three passes (best pass used)
    to shield the ratio from scheduler noise; the oracle runs once —
    its times are tens of milliseconds per configuration and stable."""
    t0 = time.perf_counter()
    oracle = [canonical_form(c, strategy="bruteforce") for c in workload]
    oracle_time = time.perf_counter() - t0

    canon_time = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        forms = [canonize(c, use_memo=False).form for c in workload]
        canon_time = min(canon_time, time.perf_counter() - t0)
    assert forms == oracle  # same bytes, not merely same classes

    speedup = oracle_time / canon_time
    write_bench_result(
        BenchResult(
            experiment="E21",
            workload={
                "configs": len(workload),
                "n_range": [min(c.n for c in workload), max(c.n for c in workload)],
            },
            timings_s={"bruteforce": oracle_time, "refinement": canon_time},
            speedup=speedup,
            floor=SPEEDUP_FLOOR,
            passed=speedup >= SPEEDUP_FLOOR,
        )
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"canon {canon_time:.4f}s vs bruteforce {oracle_time:.4f}s "
        f"= {speedup:.1f}x < {SPEEDUP_FLOOR}x "
        f"(workload: {len(workload)} configs, spaces "
        f"{[bruteforce_space(c) for c in workload]})"
    )


def test_untouchable_for_bruteforce_canonizes_in_milliseconds():
    """G_12 (n = 49) has ~10^46 profile-respecting relabelings — the
    oracle could never finish — yet the search canonizes it fast,
    collapses a relabeling, and discovers the mirror symmetry."""
    cfg = g_m(12)
    assert bruteforce_space(cfg) > 10**40
    t0 = time.perf_counter()
    lab = canonize(cfg, use_memo=False)
    elapsed = time.perf_counter() - t0
    assert elapsed < 1.0, f"n=49 canonization took {elapsed:.3f}s"
    assert canonize(relabeled(cfg, 3), use_memo=False).form == lab.form
    assert not lab.is_rigid  # the mirror automorphism


# ----------------------------------------------------------------------
# gate 3: default_keyer collapses isomorphs above the old ceiling
# ----------------------------------------------------------------------
def test_default_keyer_collapses_above_old_limit(workload):
    """The engine's default keyer — hence census caching and service
    coalescing — now collapses relabeled, tag-shifted isomorphs at
    n = 12–16, where the seed fell back to the non-collapsing
    labeled_key."""
    for cfg in workload:
        assert cfg.n > OLD_CANONICAL_N_LIMIT
        iso = relabeled(cfg, 7).shift_tags(2)
        assert default_keyer(cfg) == default_keyer(iso)


def test_batch_records_coalesces_large_isomorph_traffic(workload):
    """End to end through the engine's batch hook: 3 relabeled copies of
    each large configuration cost exactly one classification each."""
    cfg_batch = [relabeled(c, s) for c in workload[:4] for s in range(3)]
    stats = EngineStats()
    records = batch_records(cfg_batch, ResultCache(), stats=stats)
    assert stats.classified == 4
    assert stats.cache_hits + stats.deduped == len(cfg_batch) - 4
    for i in range(0, len(records), 3):
        assert records[i] == records[i + 1] == records[i + 2]


# ----------------------------------------------------------------------
# timing harness
# ----------------------------------------------------------------------
@pytest.mark.benchmark(group="e21-canonization")
def test_bruteforce_canonization_timing(benchmark, workload):
    # a slice keeps the oracle's repeated benchmark rounds affordable;
    # the speedup gate above times the full workload once
    benchmark(lambda: [canonical_form(c, strategy="bruteforce") for c in workload[:3]])


@pytest.mark.benchmark(group="e21-canonization")
def test_refinement_canonization_timing(benchmark, workload):
    benchmark(lambda: [canonize(c, use_memo=False).form for c in workload[:3]])


@pytest.mark.benchmark(group="e21-warm-keying")
def test_warm_memoized_keying_timing(benchmark, workload):
    """The service's steady state: repeat keying of warm configurations
    rides the canonization memo at O(n + m) per request."""
    for cfg in workload:
        default_keyer(cfg)  # warm the memo outside the timer
    benchmark(lambda: [default_keyer(c) for c in workload])
