"""E8 — Ablation: faithful representative-scan Refine vs hash-based Refine.

Same outputs (asserted), different asymptotics: the paper's O(n³Δ) loop vs
the dict-based O(nΔ log Δ)-per-iteration variant. The benchmark pair
quantifies the win; the correctness assertion keeps the ablation honest.
"""

import pytest

from repro.core.classifier import classify
from repro.core.configuration import Configuration
from repro.core.fast_classifier import fast_classify, traces_equal
from repro.graphs.generators import path_edges
from repro.graphs.tags import one_early_riser

from conftest import seeded_config


def worst_case_path(n):
    return Configuration(path_edges(n), one_early_riser(range(n)))


@pytest.mark.benchmark(group="e8-ablation-n64")
def test_faithful_n64(benchmark):
    cfg = worst_case_path(64)
    trace = benchmark(classify, cfg)
    assert trace.decision


@pytest.mark.benchmark(group="e8-ablation-n64")
def test_fast_n64(benchmark):
    cfg = worst_case_path(64)
    trace = benchmark(fast_classify, cfg)
    assert trace.decision


@pytest.mark.benchmark(group="e8-ablation-n128")
def test_faithful_n128(benchmark):
    cfg = worst_case_path(128)
    trace = benchmark(classify, cfg)
    assert trace.decision


@pytest.mark.benchmark(group="e8-ablation-n128")
def test_fast_n128(benchmark):
    cfg = worst_case_path(128)
    trace = benchmark(fast_classify, cfg)
    assert trace.decision


@pytest.mark.benchmark(group="e8-ablation-equality")
def test_outputs_identical_across_workloads(benchmark):
    configs = [worst_case_path(48)] + [
        seeded_config(8600 + i, n=14, span=3) for i in range(8)
    ]

    def run():
        return all(
            traces_equal(classify(c), fast_classify(c)) for c in configs
        )

    assert benchmark(run)
