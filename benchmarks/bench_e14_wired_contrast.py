"""E14 — Radio vs wired anonymous networks (the intro's contrast).

Section 1.1 argues anonymous radio is the most adverse scenario: wired
anonymous networks elect from topology alone. Executable form: the view
refinement (wired feasibility) strictly dominates Classifier (radio
feasibility) on an exhaustive census — every radio-feasible configuration
is wired-feasible, and witnesses exist for the strict part.
"""

import pytest

from repro.analysis.views import (
    color_refinement,
    radio_vs_wired,
    views_stabilize_like_refinement,
    wired_feasible,
)
from repro.core.classifier import is_feasible
from repro.core.configuration import Configuration
from repro.engine import ResultCache, cached_evaluate
from repro.graphs.enumeration import enumerate_configurations
from repro.graphs.families import g_m


def contrast_verdicts(cfg):
    """Engine-cache evaluator: radio and wired feasibility verdicts."""
    return {"radio": is_feasible(cfg), "wired": wired_feasible(cfg)}


@pytest.mark.benchmark(group="e14-contrast")
def test_exhaustive_contrast_n4(benchmark):
    census = benchmark(
        lambda: radio_vs_wired(enumerate_configurations(4, 1))
    )
    assert census.dominance_holds()  # radio ⊆ wired, no exceptions
    assert census.count("wired-only") > 0  # strictness witnesses
    assert census.count("both") > 0


@pytest.mark.benchmark(group="e14-contrast")
def test_exhaustive_contrast_n4_engine_cached(benchmark):
    direct = radio_vs_wired(enumerate_configurations(4, 1))
    cache = ResultCache()

    def cached_contrast():
        both = wired_only = neither = 0
        for cfg in enumerate_configurations(4, 1):
            v = cached_evaluate(cfg, cache, contrast_verdicts)
            assert v["wired"] or not v["radio"]  # dominance, per config
            if v["radio"]:
                both += 1
            elif v["wired"]:
                wired_only += 1
            else:
                neither += 1
        return both, wired_only, neither

    both, wired_only, neither = benchmark(cached_contrast)
    # identical counts to the uncached census (verdicts are invariants)
    assert both == direct.count("both")
    assert wired_only == direct.count("wired-only")
    assert neither == direct.count("neither")


@pytest.mark.benchmark(group="e14-refinement")
@pytest.mark.parametrize("m", [2, 4, 8])
def test_color_refinement_gm(benchmark, m):
    cfg = g_m(m)
    result = benchmark(color_refinement, cfg)
    # G_m's centre is wired-electable too (it is radio-electable).
    assert result.singleton_nodes()
    assert result.num_rounds <= cfg.n


@pytest.mark.benchmark(group="e14-views")
def test_views_equal_refinement(benchmark):
    broom = Configuration(
        [(0, 1), (1, 2), (1, 3), (3, 4)], {i: 0 for i in range(5)}
    )

    def check():
        return views_stabilize_like_refinement(broom) and wired_feasible(broom)

    assert benchmark(check)
