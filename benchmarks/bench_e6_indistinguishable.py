"""E6 — Proposition 4.5: no distributed feasibility decision.

For each candidate algorithm with first tag-0 transmission round t, the
feasible H_{t+1} and the infeasible S_{t+1} must induce byte-identical
histories at *every* node — so no node can output a differing decision.
"""

import pytest

from repro.baselines.universal_candidates import (
    candidate_portfolio,
    compare_executions,
    first_tag0_transmission,
    quiet_prober,
)
from repro.core.classifier import classify
from repro.graphs.families import h_m, s_m


@pytest.mark.benchmark(group="e6-indistinguishable")
def test_h_vs_s_for_portfolio(benchmark):
    def run():
        results = []
        for cand in candidate_portfolio():
            t = first_tag0_transmission(cand, probe_m=48)
            if t is None:
                continue
            per_node = compare_executions(h_m(t + 1), s_m(t + 1), cand)
            results.append((cand.name, per_node))
        return results

    results = benchmark(run)
    assert results
    for name, per_node in results:
        assert all(per_node.values()), (name, per_node)


@pytest.mark.benchmark(group="e6-indistinguishable")
def test_feasibility_actually_differs(benchmark):
    # the configurations are NOT equivalent — one is feasible, one is not.
    def run():
        return [
            (classify(h_m(m)).feasible, classify(s_m(m)).feasible)
            for m in (2, 5, 9)
        ]

    statuses = benchmark(run)
    assert all(h and not s for h, s in statuses)


@pytest.mark.benchmark(group="e6-indistinguishable")
def test_single_candidate_comparison(benchmark):
    cand = quiet_prober(4)
    t = first_tag0_transmission(cand, probe_m=48)
    result = benchmark(compare_executions, h_m(t + 1), s_m(t + 1), cand)
    assert all(result.values())
