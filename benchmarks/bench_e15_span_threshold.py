"""E15 — Feasibility probability as a function of span.

The paper's symmetry-breaking resource, measured: for random connected
G(n, p) with uniform tags in 0..σ, the probability that the configuration
is feasible is 0 at σ = 0 (all tags equal — nobody ever hears anything)
and rises steeply with σ. This is the quantitative face of "time as
symmetry breaker". Sampling runs through the engine's canonical-form
cache, so re-plotting a curve (same seed, or a warm shared cache) skips
reclassification; the cached curve is asserted identical to a cold one.
"""

import pytest

from repro.analysis.extremal import feasibility_probability
from repro.engine import ResultCache


@pytest.mark.benchmark(group="e15-threshold")
def test_probability_curve(benchmark):
    points = benchmark(
        feasibility_probability, 8, [0, 1, 2, 4], samples=40, p=0.3, seed=5
    )
    fracs = {p.span: p.fraction for p in points}
    assert fracs[0] == 0.0  # span 0: provably infeasible for n >= 2
    assert fracs[1] > 0.3  # a single extra wakeup round already helps a lot
    assert fracs[4] >= fracs[1]  # more span, no worse
    assert fracs[4] > 0.8  # near-certain by span 4 at n = 8


@pytest.mark.benchmark(group="e15-threshold-cached")
def test_probability_curve_warm_cache(benchmark):
    cold = feasibility_probability(8, [0, 1, 2], samples=30, p=0.3, seed=5)
    cache = ResultCache()
    feasibility_probability(8, [0, 1, 2], samples=30, p=0.3, seed=5, cache=cache)

    def warm():
        return feasibility_probability(
            8, [0, 1, 2], samples=30, p=0.3, seed=5, cache=cache
        )

    points = benchmark(warm)
    # caching never changes the curve (feasibility is iso-invariant)
    assert [(pt.span, pt.feasible) for pt in points] == [
        (pt.span, pt.feasible) for pt in cold
    ]
    assert cache.stats.hits > 0


@pytest.mark.benchmark(group="e15-threshold-size")
@pytest.mark.parametrize("n", [6, 10, 14])
def test_probability_at_fixed_span(benchmark, n):
    (point,) = benchmark(
        feasibility_probability, n, [2], samples=30, p=0.3, seed=9
    )
    assert 0.0 <= point.fraction <= 1.0
    assert point.samples == 30
