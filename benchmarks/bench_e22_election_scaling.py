"""E22 — Pluggable simulation backends: equality gate + election scaling.

The acceptance gates of the ``repro.radio.backends`` subsystem:

1. **Bit-for-bit equality** — on paper families, random configurations,
   fault injection and variant channels, the event-driven ``fast``
   backend produces the *identical*
   :class:`~repro.radio.events.ExecutionResult` the per-round
   ``reference`` oracle produces: histories (sparse entries and
   lengths), wake rounds and kinds, ``done_local``, ``rounds_elapsed``
   and the full per-round trace.
2. **≥ 5× election speedup** — on the adversarial ``G_m`` family (the
   paper's Ω(n) lower-bound instances, where canonical executions are
   thousands of near-silent rounds), compiling the schedule and
   skipping silence beats walking every (round, node) pair by at least
   ``SPEEDUP_FLOOR`` in wall time.
3. **Elections at n ≥ 100** — the full dedicated-election pipeline
   (classify + simulate + decide) completes on ``G_25`` (n = 101)
   inside a strict time cap, a scale at which ISSUE 4's motivation
   ("elections at n in the hundreds") becomes routine.
"""

import time

import pytest

from repro.core.canonical import CanonicalProtocol
from repro.core.classifier import classify
from repro.core.election import elect_leader
from repro.graphs.families import g_m, g_m_center, h_m
from repro.radio.faults import jam_rounds, jammed_simulate
from repro.reporting.bench import BenchResult, write_bench_result
from repro.radio.simulator import simulate
from repro.variants.canonical import VariantCanonicalProtocol
from repro.variants.channels import CHANNELS
from repro.variants.refinement import variant_classify
from repro.variants.simulator import variant_simulate

from conftest import seeded_config

#: ISSUE acceptance threshold: fast vs reference election simulation.
SPEEDUP_FLOOR = 5.0

#: Wall-clock cap for a complete n >= 100 election (classify included).
N100_TIME_CAP = 2.0

#: Timed workload: the lower-bound family at n = 161 — Θ(n) phases,
#: thousands of rounds, every one of them near-silent.
TIMED_M = 40


def canonical_workload(cfg):
    trace = classify(cfg)
    protocol = CanonicalProtocol.from_trace(trace)
    network = trace.config
    return network, protocol


def run_backend(network, protocol, backend, record_trace=False):
    return simulate(
        network,
        protocol.factory,
        max_rounds=protocol.round_budget(network.span),
        record_trace=record_trace,
        backend=backend,
    )


# ----------------------------------------------------------------------
# gate 1: bit-for-bit ExecutionResult equality
# ----------------------------------------------------------------------
EQUALITY_CASES = {
    "hm-8": lambda: h_m(8),
    "gm-4": lambda: g_m(4),
    "random-n18": lambda: seeded_config(5, 18, 3),
    "random-n24": lambda: seeded_config(11, 24, 3),
}


@pytest.mark.parametrize("case", sorted(EQUALITY_CASES))
def test_backends_bit_for_bit_equal(case):
    """Histories, wake rounds/kinds, done_local and trace all coincide."""
    network, protocol = canonical_workload(EQUALITY_CASES[case]())
    ref = run_backend(network, protocol, "reference", record_trace=True)
    fast = run_backend(network, protocol, "fast", record_trace=True)
    assert ref == fast


def test_backends_equal_under_faults_and_channels():
    """The equality contract extends to jammed and variant-channel runs."""
    cfg = h_m(3)
    network, protocol = canonical_workload(cfg)
    budget = protocol.round_budget(network.span)
    jammer_rounds = [1, 4, 9]
    ref = jammed_simulate(
        network, protocol.factory, jammer=jam_rounds(jammer_rounds),
        max_rounds=budget, record_trace=True, backend="reference",
    )
    fast = jammed_simulate(
        network, protocol.factory, jammer=jam_rounds(jammer_rounds),
        max_rounds=budget, record_trace=True, backend="fast",
    )
    assert ref == fast
    for channel in CHANNELS:
        trace = variant_classify(cfg, channel)
        vproto = VariantCanonicalProtocol.from_trace(trace, channel)
        vnet = trace.config
        vbudget = vproto.round_budget(vnet.span)
        vref = variant_simulate(
            vnet, vproto.factory, channel=channel, max_rounds=vbudget,
            record_trace=True, backend="reference",
        )
        vfast = variant_simulate(
            vnet, vproto.factory, channel=channel, max_rounds=vbudget,
            record_trace=True, backend="fast",
        )
        assert vref == vfast, f"divergence under channel {channel.name}"


# ----------------------------------------------------------------------
# gate 2: >= 5x election speedup
# ----------------------------------------------------------------------
def test_election_speedup_at_least_5x():
    """Event-driven execution beats the per-round loop ≥ 5× on G_40
    (n = 161), with identical output. Fast times are the best of three
    passes to shield the ratio from scheduler noise; the reference runs
    once — it is hundreds of milliseconds and stable."""
    network, protocol = canonical_workload(g_m(TIMED_M))

    t0 = time.perf_counter()
    ref = run_backend(network, protocol, "reference")
    ref_time = time.perf_counter() - t0

    fast_time = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        fast = run_backend(network, protocol, "fast")
        fast_time = min(fast_time, time.perf_counter() - t0)
    assert ref == fast  # same execution, not merely same leader

    speedup = ref_time / fast_time
    write_bench_result(
        BenchResult(
            experiment="E22",
            workload={
                "family": f"G_{TIMED_M}",
                "n": network.n,
                "rounds": ref.rounds_elapsed,
            },
            timings_s={"reference": ref_time, "fast": fast_time},
            speedup=speedup,
            floor=SPEEDUP_FLOOR,
            passed=speedup >= SPEEDUP_FLOOR,
        )
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"fast {fast_time:.4f}s vs reference {ref_time:.4f}s "
        f"= {speedup:.1f}x < {SPEEDUP_FLOOR}x "
        f"({fast.backend_stats.describe()})"
    )
    # the win comes from skipping silence, not from doing less work
    assert fast.backend_stats.rounds_skipped > 0
    assert fast.backend_stats.decisions < ref.backend_stats.decisions / 10


# ----------------------------------------------------------------------
# gate 3: elections at n >= 100 under a strict time cap
# ----------------------------------------------------------------------
def test_election_feasible_at_n_over_100():
    """The full pipeline elects on G_25 (n = 101) within the cap, and
    the winner is the centre node the theory isolates."""
    cfg = g_m(25)
    assert cfg.n >= 100
    t0 = time.perf_counter()
    result = elect_leader(cfg, backend="fast")
    elapsed = time.perf_counter() - t0
    assert result.elected
    assert result.leader == g_m_center(25)
    assert result.within_bound()
    assert elapsed < N100_TIME_CAP, (
        f"n={cfg.n} election took {elapsed:.2f}s >= {N100_TIME_CAP}s "
        f"({result.backend_stats.describe()})"
    )


# ----------------------------------------------------------------------
# timing rows (pytest-benchmark; informational)
# ----------------------------------------------------------------------
BENCH_CASES = {
    "gm-12": lambda: g_m(12),
    "gm-25": lambda: g_m(25),
    "hm-64": lambda: h_m(64),
}


@pytest.mark.benchmark(group="e22-reference")
@pytest.mark.parametrize("case", sorted(BENCH_CASES))
def test_reference_path(benchmark, case):
    network, protocol = canonical_workload(BENCH_CASES[case]())
    execution = benchmark(run_backend, network, protocol, "reference")
    assert execution.max_done_local() > 0


@pytest.mark.benchmark(group="e22-fast")
@pytest.mark.parametrize("case", sorted(BENCH_CASES))
def test_fast_path(benchmark, case):
    network, protocol = canonical_workload(BENCH_CASES[case]())
    execution = benchmark(run_backend, network, protocol, "fast")
    assert execution.max_done_local() > 0
