"""E28 — Adversary campaigns: replayable Monte Carlo robustness sweeps.

The acceptance gates of the robustness subsystem (:mod:`repro.adversary`
strategy zoo + :mod:`repro.campaigns` driver):

1. **1,000+-trial mixed campaign with per-trial fault isolation** — a
   seeded campaign over all five strategy arms completes; every trial
   lands in exactly one outcome bucket (survived / derailed /
   infeasible / timeout / match_error / error), failures carry their
   own replayable digests, and the sweep never aborts on a
   pathological trial.
2. **Bit-for-bit witness replay** — every extremal witness the
   campaign's metrics select (longest run, most jams, cheapest derail,
   failures) replays to an identical digest from the bundle manifest
   alone: configuration, adversary and round budget are all rebuilt
   from their recorded specs, never from live objects.
3. **No-op control arm equals the reference execution** — a campaign
   whose strategy mix is only ``"none"`` produces, trial for trial,
   exactly the digest of a direct failure-free reference-backend
   election on the same derived configuration.
4. **≥ 2.5× throughput** — the distributed campaign (batch
   classification kernel + 4 queue worker processes) vs the naive
   serial trial loop on the same spec. The measurement is written to
   ``BENCH_E28.json`` (:mod:`repro.reporting.bench`) on every run; the
   floor itself is only asserted when the host has at least 4 CPUs
   (the E27 precedent: on fewer cores there is no parallel speedup to
   measure, and recording the honest number beats asserting fiction).
"""

import time

import pytest

from repro.analysis.parallel import available_cpus
from repro.campaigns import (
    CampaignSpec,
    derive_trial,
    distributed_campaign,
    execution_digest,
    replay_trial,
    run_campaign,
    serial_trial_loop,
)
from repro.canon import clear_memo
from repro.core.canonical import CanonicalProtocol
from repro.core.classifier import classify
from repro.radio.simulator import simulate
from repro.reporting.bench import BenchResult, write_bench_result

#: ISSUE acceptance threshold: batch kernel + 4 queue workers vs the
#: serial one-trial-at-a-time loop.
SPEEDUP_FLOOR = 2.5

#: Worker-process count for the gated run.
WORKERS = 4

BASE_SEED = 20260808

#: All six outcome buckets a trial may land in.
OUTCOMES = frozenset(
    ("survived", "derailed", "infeasible", "timeout", "match_error", "error")
)

MIXED_STRATEGIES = (
    {"strategy": "none", "weight": 1.0},
    {"strategy": "random_budget", "weight": 1.0, "budget": 2},
    {"strategy": "phase_targeting", "weight": 1.0, "phase": 1, "hits": 1},
    {"strategy": "reactive", "weight": 1.0, "probability": 0.5, "budget": 1},
    {"strategy": "crash_sleep", "weight": 1.0, "count": 1},
)


def mixed_spec(trials: int = 1000) -> CampaignSpec:
    """The gated workload: a seeded mixed-strategy campaign."""
    return CampaignSpec(
        name="e28-mixed",
        seed=BASE_SEED,
        trials=trials,
        n_values=(4, 5, 6),
        span=2,
        p=0.3,
        strategies=MIXED_STRATEGIES,
    )


@pytest.fixture(scope="module")
def mixed_run():
    """One 1,000-trial campaign shared by the gates that inspect it."""
    return run_campaign(mixed_spec())


# ----------------------------------------------------------------------
# gate 1: the 1,000-trial sweep completes with per-trial isolation
# ----------------------------------------------------------------------
def test_thousand_trial_campaign_completes_with_fault_isolation(mixed_run):
    """Every trial is recorded with exactly one known outcome; failed
    trials carry digests like successes do (isolation, not omission)."""
    results = mixed_run.results
    assert len(results) == 1000
    assert [r["index"] for r in results] == list(range(1000))
    for record in results:
        assert record["outcome"] in OUTCOMES, record
        assert record["digest"], record
        assert record["config"] is not None
    outcomes = mixed_run.metrics["outcomes"]
    # the mix must actually exercise the adversarial arms: some trials
    # survive, some derail — a degenerate all-one-bucket sweep would
    # mean the adversaries (or the control arm) never engaged
    assert outcomes.get("survived", 0) > 0
    assert outcomes.get("derailed", 0) > 0
    strategies = {r["strategy"] for r in results}
    assert strategies == {s["strategy"] for s in MIXED_STRATEGIES}


# ----------------------------------------------------------------------
# gate 2: sampled witnesses replay bit-for-bit from the manifest alone
# ----------------------------------------------------------------------
def test_witness_trials_replay_bit_for_bit(tmp_path, mixed_run):
    """Write the bundle, reload it from disk, and replay every witness
    index the metrics selected — digests must match exactly."""
    from repro.campaigns import read_bundle

    mixed_run.write_bundle(str(tmp_path / "bundle"))
    manifest = read_bundle(str(tmp_path / "bundle"))
    witnesses = manifest["metrics"]["witnesses"]
    indices = sorted({i for ids in witnesses.values() for i in ids})
    assert indices, "the campaign selected no witnesses"
    for index in indices:
        report = replay_trial(manifest, index)
        assert report.match, report.describe()


# ----------------------------------------------------------------------
# gate 3: the no-op control arm reproduces reference executions exactly
# ----------------------------------------------------------------------
def test_noop_campaign_equals_direct_reference_elections():
    """A 'none'-only campaign digests identically to direct classify +
    reference-backend simulate + decide on the same derived configs."""
    spec = CampaignSpec(
        name="e28-control",
        seed=BASE_SEED + 1,
        trials=60,
        n_values=(4, 5),
        span=2,
        strategies=({"strategy": "none", "weight": 1.0},),
        backend="reference",
    )
    run = run_campaign(spec)
    for record in run.results:
        plan = derive_trial(spec, record["index"])
        trace = classify(plan.config)
        protocol = CanonicalProtocol.from_trace(trace)
        network = trace.config
        execution = simulate(
            network,
            protocol.factory,
            max_rounds=protocol.round_budget(network.span),
            record_trace=True,
            backend="reference",
        )
        leaders = execution.decide_leaders(protocol.decision)
        assert record["digest"] == execution_digest(execution, leaders), (
            record["index"]
        )
        assert record["outcome"] == (
            "survived" if trace.feasible else "infeasible"
        )


# ----------------------------------------------------------------------
# gate 4: >= 2.5x over the serial loop, recorded as BENCH_E28.json
# ----------------------------------------------------------------------
def test_distributed_campaign_speedup_at_least_2_5x(tmp_path):
    """Batch kernel + 4 queue workers vs the serial trial loop on one
    spec. The artifact is written before anything is asserted; the
    floor is enforced only on hosts with >= 4 CPUs (E27 precedent).

    10,000 trials make the sweep a few seconds of real work, so queue
    and process-spawn overhead (~0.3 s) amortizes and the 4-worker
    parallelism is actually measurable."""
    spec = mixed_spec(10000)
    # distributed first: the workers fork from a lean parent (running
    # the serial sweep first would bloat the parent heap with 10,000
    # result records and tax every worker with copy-on-write faults)
    clear_memo()  # forked workers must not inherit a warm canon memo
    t0 = time.perf_counter()
    run = distributed_campaign(
        spec,
        str(tmp_path / "campaign.sqlite"),
        num_workers=WORKERS,
    )
    t_distributed = time.perf_counter() - t0

    clear_memo()
    t0 = time.perf_counter()
    serial = serial_trial_loop(spec)
    t_serial = time.perf_counter() - t0

    speedup = t_serial / t_distributed
    cpus = available_cpus()
    write_bench_result(
        BenchResult(
            experiment="E28",
            workload={
                "campaign": spec.as_dict(),
                "workers": WORKERS,
            },
            timings_s={
                "serial_loop": t_serial,
                "distributed_4w": t_distributed,
            },
            speedup=speedup,
            floor=SPEEDUP_FLOOR,
            passed=speedup >= SPEEDUP_FLOOR,
        )
    )
    # bit-for-bit equality of all three paths, on any host
    assert run.results == serial
    if cpus < WORKERS:
        pytest.skip(
            f"speedup floor needs >= {WORKERS} CPUs (host has {cpus}); "
            f"measured {speedup:.2f}x, recorded in BENCH_E28.json"
        )
    assert speedup >= SPEEDUP_FLOOR, (
        f"distributed {t_distributed:.3f}s vs serial {t_serial:.3f}s "
        f"= {speedup:.2f}x < {SPEEDUP_FLOOR}x"
    )
