"""E18 — Fault injection: the canonical protocol's robustness boundary.

The paper's model is failure-free and its symmetry breaking carries zero
redundancy: every history bit is load-bearing. This experiment maps the
boundary with a jamming adversary:

* a no-op jammer reproduces the reference execution exactly;
* jamming confined to the trailing σ listen rounds (provably silent by
  the Lemma 3.7 schedule) leaves the election outcome intact;
* corrupting a single in-block round of the leader's history derails the
  election (wrong/no leader, or a protocol-detected match failure).

The jam abstraction's cost is recorded to ``BENCH_E18.json``
(:mod:`repro.reporting.bench`, like E21–E27): a no-op jammer run is
timed against the plain simulator on the same election, with
``speedup = plain / jammed`` gated against ``floor = 1/2`` (the fault
layer may at most double the per-round cost). The artifact is written
before the floor is asserted, so the honest number survives a failure.
"""

import time

import pytest

from repro.core.canonical import (
    CanonicalMatchError,
    CanonicalProtocol,
    build_canonical_data,
)
from repro.core.classifier import classify
from repro.graphs.families import g_m, h_m
from repro.radio.faults import jam_nothing, jam_pairs, jammed_simulate
from repro.radio.model import SILENCE
from repro.radio.simulator import simulate
from repro.reporting.bench import BenchResult, write_bench_result

#: The fault layer may at most double the per-round simulation cost.
OVERHEAD_CEILING = 2.0


def setup(cfg):
    trace = classify(cfg)
    protocol = CanonicalProtocol.from_trace(trace)
    network = trace.config
    budget = protocol.round_budget(network.span)
    return trace, protocol, network, budget


@pytest.mark.benchmark(group="e18-noop")
@pytest.mark.parametrize("m", [2, 8])
def test_noop_jammer_identical(benchmark, m):
    trace, protocol, network, budget = setup(h_m(m))
    ref = simulate(network, protocol.factory, max_rounds=budget)

    def run():
        return jammed_simulate(
            network, protocol.factory, jammer=jam_nothing(), max_rounds=budget
        )

    jam = benchmark(run)
    assert jam.histories == ref.histories


@pytest.mark.benchmark(group="e18-trailing")
def test_trailing_rounds_jamming_harmless(benchmark):
    trace, protocol, network, budget = setup(h_m(2))
    data = build_canonical_data(trace)
    sigma = data.sigma
    lo = data.phase_ends[-1] - sigma + 1
    jammer = jam_pairs(
        [
            (g, v)
            for v in network.nodes
            for g in range(
                lo + network.tag(v), data.phase_ends[-1] + network.tag(v) + 1
            )
        ]
    )
    ref = simulate(network, protocol.factory, max_rounds=budget)
    expected = ref.decide_leaders(protocol.decision)

    def run():
        jam = jammed_simulate(
            network, protocol.factory, jammer=jammer, max_rounds=budget
        )
        return jam.decide_leaders(protocol.decision)

    assert benchmark(run) == expected


def test_noop_jam_overhead_recorded():
    """Time the jam layer against the plain simulator and write the
    measurement to ``BENCH_E18.json`` before gating the ceiling."""
    trace, protocol, network, budget = setup(h_m(8))
    reps = 5

    def best_of(fn):
        times = []
        for _ in range(reps):
            t0 = time.perf_counter()
            fn()
            times.append(time.perf_counter() - t0)
        return min(times)

    t_plain = best_of(
        lambda: simulate(network, protocol.factory, max_rounds=budget)
    )
    t_jammed = best_of(
        lambda: jammed_simulate(
            network, protocol.factory, jammer=jam_nothing(), max_rounds=budget
        )
    )
    speedup = t_plain / t_jammed
    floor = round(1.0 / OVERHEAD_CEILING, 4)
    write_bench_result(
        BenchResult(
            experiment="E18",
            workload={
                "family": "h_m(8)",
                "n": network.n,
                "round_budget": budget,
                "jammer": "jam_nothing",
                "reps": reps,
            },
            timings_s={"plain": t_plain, "jammed_noop": t_jammed},
            speedup=speedup,
            floor=floor,
            passed=speedup >= floor,
        )
    )
    assert speedup >= floor, (
        f"no-op jammed run {t_jammed:.4f}s vs plain {t_plain:.4f}s — "
        f"the fault layer costs more than {OVERHEAD_CEILING}x"
    )


@pytest.mark.benchmark(group="e18-derail")
def test_single_jam_on_leader_derails(benchmark):
    trace, protocol, network, budget = setup(g_m(2))
    ref = simulate(network, protocol.factory, max_rounds=budget)
    expected = ref.decide_leaders(protocol.decision)
    data = build_canonical_data(trace)
    leader = trace.leader
    block_region_end = len(data.lists[0]) * data.block_width
    local = next(
        i
        for i in range(1, block_region_end + 1)
        if ref.histories[leader][i] is SILENCE
    )
    jammer = jam_pairs([(ref.wake_rounds[leader] + local, leader)])

    def run():
        try:
            jam = jammed_simulate(
                network, protocol.factory, jammer=jammer, max_rounds=budget
            )
            return jam.decide_leaders(protocol.decision)
        except CanonicalMatchError:
            return "match-error"

    outcome = benchmark(run)
    assert outcome != expected  # the single fault is fatal
