"""E18 — Fault injection: the canonical protocol's robustness boundary.

The paper's model is failure-free and its symmetry breaking carries zero
redundancy: every history bit is load-bearing. This experiment maps the
boundary with a jamming adversary:

* a no-op jammer reproduces the reference execution exactly;
* jamming confined to the trailing σ listen rounds (provably silent by
  the Lemma 3.7 schedule) leaves the election outcome intact;
* corrupting a single in-block round of the leader's history derails the
  election (wrong/no leader, or a protocol-detected match failure).
"""

import pytest

from repro.core.canonical import (
    CanonicalMatchError,
    CanonicalProtocol,
    build_canonical_data,
)
from repro.core.classifier import classify
from repro.graphs.families import g_m, h_m
from repro.radio.faults import jam_nothing, jam_pairs, jammed_simulate
from repro.radio.model import SILENCE
from repro.radio.simulator import simulate


def setup(cfg):
    trace = classify(cfg)
    protocol = CanonicalProtocol.from_trace(trace)
    network = trace.config
    budget = protocol.round_budget(network.span)
    return trace, protocol, network, budget


@pytest.mark.benchmark(group="e18-noop")
@pytest.mark.parametrize("m", [2, 8])
def test_noop_jammer_identical(benchmark, m):
    trace, protocol, network, budget = setup(h_m(m))
    ref = simulate(network, protocol.factory, max_rounds=budget)

    def run():
        return jammed_simulate(
            network, protocol.factory, jammer=jam_nothing(), max_rounds=budget
        )

    jam = benchmark(run)
    assert jam.histories == ref.histories


@pytest.mark.benchmark(group="e18-trailing")
def test_trailing_rounds_jamming_harmless(benchmark):
    trace, protocol, network, budget = setup(h_m(2))
    data = build_canonical_data(trace)
    sigma = data.sigma
    lo = data.phase_ends[-1] - sigma + 1
    jammer = jam_pairs(
        [
            (g, v)
            for v in network.nodes
            for g in range(
                lo + network.tag(v), data.phase_ends[-1] + network.tag(v) + 1
            )
        ]
    )
    ref = simulate(network, protocol.factory, max_rounds=budget)
    expected = ref.decide_leaders(protocol.decision)

    def run():
        jam = jammed_simulate(
            network, protocol.factory, jammer=jammer, max_rounds=budget
        )
        return jam.decide_leaders(protocol.decision)

    assert benchmark(run) == expected


@pytest.mark.benchmark(group="e18-derail")
def test_single_jam_on_leader_derails(benchmark):
    trace, protocol, network, budget = setup(g_m(2))
    ref = simulate(network, protocol.factory, max_rounds=budget)
    expected = ref.decide_leaders(protocol.decision)
    data = build_canonical_data(trace)
    leader = trace.leader
    block_region_end = len(data.lists[0]) * data.block_width
    local = next(
        i
        for i in range(1, block_region_end + 1)
        if ref.histories[leader][i] is SILENCE
    )
    jammer = jam_pairs([(ref.wake_rounds[leader] + local, leader)])

    def run():
        try:
            jam = jammed_simulate(
                network, protocol.factory, jammer=jammer, max_rounds=budget
            )
            return jam.decide_leaders(protocol.decision)
        except CanonicalMatchError:
            return "match-error"

    outcome = benchmark(run)
    assert outcome != expected  # the single fault is fatal
