"""E10 — Observation 3.2 / Corollary 3.3: refinement monotonicity and the
⌈n/2⌉ iteration cap, measured over family and random workloads.
"""

import math

import pytest

from repro.core.classifier import classify
from repro.core.partition import class_members
from repro.graphs.families import g_m, s_m

from conftest import seeded_config


@pytest.mark.benchmark(group="e10-chains")
def test_chain_monotone_on_random_batch(benchmark):
    configs = [seeded_config(555 + i, n=12, span=3) for i in range(12)]

    def run():
        ok = 0
        for cfg in configs:
            trace = classify(cfg)
            chain = trace.class_count_chain()
            monotone = all(a <= b for a, b in zip(chain, chain[1:]))
            capped = trace.num_iterations <= math.ceil(cfg.n / 2)
            strictly_growing_before_exit = all(
                a < b for a, b in zip(chain[:-1], chain[1:-1])
            )
            ok += monotone and capped and strictly_growing_before_exit
        return ok

    assert benchmark(run) == len(configs)


@pytest.mark.benchmark(group="e10-chains")
def test_gm_chain_peels_one_layer_per_iteration(benchmark):
    def run():
        trace = classify(g_m(6))
        return trace

    trace = benchmark(run)
    chain = trace.class_count_chain()
    # G_m: iterations strictly refine until the centre separates
    assert chain[0] == 1
    assert all(a < b for a, b in zip(chain[:-1], chain[1:-1]))
    assert trace.decided_at >= 6


@pytest.mark.benchmark(group="e10-chains")
def test_sm_fixpoint_detected(benchmark):
    def run():
        return classify(s_m(4))

    trace = benchmark(run)
    chain = trace.class_count_chain()
    assert chain[-1] == chain[-2]  # the "No" exit fires on stabilization
    blocks = class_members(trace.final_classes())
    assert sorted(len(v) for v in blocks.values()) == [2, 2]


@pytest.mark.benchmark(group="e10-chains")
def test_every_partition_refines_previous(benchmark):
    configs = [seeded_config(9100 + i, n=10, span=2) for i in range(8)]

    def run():
        bad = 0
        for cfg in configs:
            trace = classify(cfg)
            for j in range(1, trace.num_iterations + 1):
                coarse, fine = trace.classes_at(j), trace.classes_at(j + 1)
                for block in class_members(fine).values():
                    if len({coarse[v] for v in block}) != 1:
                        bad += 1
        return bad

    assert benchmark(run) == 0
