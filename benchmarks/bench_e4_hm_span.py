"""E4 — Lemma 4.2 / Proposition 4.3: Ω(σ) election on the 4-node H_m.

Election time at fixed n = 4 must be at least m (the proof's floor),
grow linearly in σ = m+1, and stay within the O(n²σ) ceiling.
"""

import pytest

from repro.analysis.rounds import sweep
from repro.core.classifier import classify
from repro.core.election import elect_leader
from repro.graphs.families import h_m


@pytest.mark.benchmark(group="e4-hm")
@pytest.mark.parametrize("m", [1, 4, 16, 64])
def test_elect_h_m(benchmark, m):
    result = benchmark(elect_leader, h_m(m))
    assert result.elected
    assert result.rounds >= m  # Lemma 4.2 floor
    assert result.within_bound()


@pytest.mark.benchmark(group="e4-hm-shape")
def test_rounds_linear_in_sigma(benchmark):
    ms = [1, 2, 4, 8, 16, 32, 64]

    def measure():
        return sweep(
            "hm-rounds",
            ms,
            lambda m: elect_leader(h_m(int(m))).rounds,
            bound=lambda m: 2 * (4**2) * (int(m) + 1) + 4,  # 2·n²σ + n
        )

    result = benchmark(measure)
    assert result.all_within_bounds()
    # n fixed at 4: growth must be ~linear in σ. Rounds follow a·m + b, so
    # fit the tail to strip the additive constant's bias at small m.
    exponent = result.growth_exponent(tail=4)
    assert 0.8 <= exponent <= 1.2, exponent


@pytest.mark.benchmark(group="e4-hm-classify")
@pytest.mark.parametrize("m", [1, 16, 64])
def test_classify_h_m_one_iteration(benchmark, m):
    trace = benchmark(classify, h_m(m))
    assert trace.feasible
    assert trace.decided_at == 1  # all four nodes split immediately
