"""E27 — Distributed census: durable queue, lease workers, resilience.

The acceptance gates of the distributed census subsystem
(:mod:`repro.engine.queue` + :mod:`repro.engine.scheduler` wired through
:func:`repro.engine.pipeline.distributed_census`):

1. **Bit-for-bit equality** — a cold census drained by 4 worker
   *processes* through the SQLite work queue merges to exactly the rows
   the serial :func:`~repro.engine.pipeline.sharded_census` produces.
   Row addition is commutative integer sums and the merge reads each
   committed shard once, so shard order and worker identity must not
   matter. Asserted unconditionally, on any machine.
2. **≥ 2.5× wall-clock over 1 worker** — the same cold census with 4
   workers vs 1 worker, identical shard plan. The measurement is
   written to ``BENCH_E27.json`` (:mod:`repro.reporting.bench`) on
   every run; the floor itself is only *asserted* when the host has at
   least 4 CPUs (on a 1-core box the four processes time-slice one
   core and no parallel speedup is physically available — recording
   the honest number and skipping beats asserting fiction; the CI
   runners have 4 vCPUs and enforce the floor).
3. **SIGKILL resilience** — one of two workers is killed -9 while it
   holds a lease mid-shard. Its lease expires, the surviving worker
   reclaims and recomputes the shard, and the merged census is still
   bit-for-bit equal to the serial result. At most the in-flight shard
   is lost and retried; committed work survives the crash.
"""

import os
import signal
import time
import multiprocessing

import pytest

from repro.analysis.parallel import available_cpus
from repro.canon import clear_memo
from repro.engine import (
    EnumerationWorkload,
    RandomGnpWorkload,
    WorkQueue,
    census_queue_worker,
    collect_census_queue,
    create_census_queue,
    distributed_census,
    sharded_census,
)
from repro.reporting.bench import BenchResult, write_bench_result

#: ISSUE acceptance threshold: 4 queue workers vs 1 on a cold census.
SPEEDUP_FLOOR = 2.5

#: Worker-process count for the gated run.
WORKERS = 4

#: Shard count, shared by every timed run (4 shards of slack per
#: worker, matching the ``distributed_census`` default for 4 workers).
NUM_SHARDS = 16

BASE_SEED = 20260808


def timed_workload() -> RandomGnpWorkload:
    """Cold census workload: 48 seeded G(n, p) samples at n = 30..32.

    At this size classification costs ~100 ms per configuration, so a
    shard is real work (process-spawn and queue overhead amortize) and
    the serial run stays a few seconds.
    """
    return RandomGnpWorkload(
        [30, 31, 32], span=2, p=0.25, samples=16, seed=BASE_SEED
    )


@pytest.fixture(scope="module")
def serial_run():
    """The serial census every distributed run must reproduce exactly."""
    return sharded_census(timed_workload())


# ----------------------------------------------------------------------
# gate 1: bit-for-bit equality, 4 worker processes vs serial
# ----------------------------------------------------------------------
def test_four_worker_exhaustive_census_bit_for_bit_equal_to_serial(
    tmp_path,
):
    """Four worker processes drain a cold *exhaustive* census (every
    5-node configuration with tags 0..2, 4431 of them); the merged
    result equals the serial run row for row, count for count."""
    workload = EnumerationWorkload(5, 2)
    serial = sharded_census(workload)
    clear_memo()  # forked workers must not inherit a warm canon memo
    run = distributed_census(
        workload,
        str(tmp_path / "census.sqlite"),
        num_workers=WORKERS,
        num_shards=NUM_SHARDS,
    )
    assert run.result.rows == serial.result.rows
    assert run.stats.total_configs == serial.stats.total_configs == 4431
    assert run.stats.shards_total == NUM_SHARDS


def test_four_worker_random_census_bit_for_bit_equal_to_serial(
    tmp_path, serial_run
):
    """Same contract on the timed workload's heavy random population."""
    clear_memo()
    run = distributed_census(
        timed_workload(),
        str(tmp_path / "census.sqlite"),
        num_workers=WORKERS,
        num_shards=NUM_SHARDS,
    )
    assert run.result.rows == serial_run.result.rows
    assert run.stats.total_configs == serial_run.stats.total_configs
    assert run.stats.classified == serial_run.stats.classified
    assert run.stats.shards_total == NUM_SHARDS


# ----------------------------------------------------------------------
# gate 2: >= 2.5x over 1 worker, recorded as BENCH_E27.json
# ----------------------------------------------------------------------
def test_four_worker_speedup_at_least_2_5x(tmp_path, serial_run):
    """4 workers vs 1 worker on identical cold queues. The measurement
    is written to ``BENCH_E27.json`` before anything is asserted; the
    floor is only enforced on hosts with >= 4 CPUs (there is no
    parallel speedup to measure on fewer cores — the artifact still
    records the honest number)."""
    timings = {}
    runs = {}
    for label, workers in (("workers_1", 1), ("workers_4", WORKERS)):
        path = str(tmp_path / f"census-{label}.sqlite")
        # the canonization memo is fork-inherited: clear it in the
        # parent so every worker process starts genuinely cold
        clear_memo()
        t0 = time.perf_counter()
        runs[label] = distributed_census(
            timed_workload(),
            path,
            num_workers=workers,
            num_shards=NUM_SHARDS,
        )
        timings[label] = time.perf_counter() - t0

    speedup = timings["workers_1"] / timings["workers_4"]
    cpus = available_cpus()
    write_bench_result(
        BenchResult(
            experiment="E27",
            workload={
                "workload": timed_workload().to_spec(),
                "num_shards": NUM_SHARDS,
                "workers": [1, WORKERS],
            },
            timings_s=timings,
            speedup=speedup,
            floor=SPEEDUP_FLOOR,
            passed=speedup >= SPEEDUP_FLOOR,
        )
    )
    # equality is asserted on both timed runs regardless of host size
    for label in ("workers_1", "workers_4"):
        assert runs[label].result.rows == serial_run.result.rows, label
    if cpus < WORKERS:
        pytest.skip(
            f"speedup floor needs >= {WORKERS} CPUs (host has {cpus}); "
            f"measured {speedup:.2f}x, recorded in BENCH_E27.json"
        )
    assert speedup >= SPEEDUP_FLOOR, (
        f"4 workers {timings['workers_4']:.3f}s vs 1 worker "
        f"{timings['workers_1']:.3f}s = {speedup:.2f}x < {SPEEDUP_FLOOR}x"
    )


# ----------------------------------------------------------------------
# gate 3: SIGKILL one worker mid-shard; the census still completes
# ----------------------------------------------------------------------
def test_sigkill_one_worker_mid_run_census_completes(tmp_path, serial_run):
    """Two workers share the queue; one is killed -9 while it holds a
    lease. The survivor reclaims the expired lease and the merged
    census is bit-for-bit the serial result — a crash loses at most the
    one in-flight shard, never committed work."""
    path = str(tmp_path / "census-kill.sqlite")
    clear_memo()  # cold workers: shards must take real time to compute,
    # or the victim could finish everything before the kill lands
    queue = create_census_queue(
        path, timed_workload(), num_shards=NUM_SHARDS, lease_ttl=2.0
    )
    queue.close()  # SQLite connections must not cross a fork

    victim = multiprocessing.Process(
        target=census_queue_worker,
        args=(path,),
        kwargs={"owner": "victim", "poll": 0.05},
        daemon=True,
    )
    survivor = multiprocessing.Process(
        target=census_queue_worker,
        args=(path,),
        kwargs={"owner": "survivor", "poll": 0.05},
        daemon=True,
    )
    victim.start()
    survivor.start()

    # wait until the victim actually holds a lease, then kill -9
    deadline = time.monotonic() + 30.0
    with WorkQueue(path) as q:
        while time.monotonic() < deadline:
            if any(
                s["status"] == "leased" and s["owner"] == "victim"
                for s in q.shard_states()
            ):
                break
            time.sleep(0.01)
        else:
            pytest.fail("victim worker never leased a shard")
    os.kill(victim.pid, signal.SIGKILL)
    victim.join()

    survivor.join(timeout=120.0)
    assert not survivor.is_alive(), "survivor did not finish the queue"
    # drain guard, exactly as distributed_census does: if the survivor
    # somehow exited early, finish the queue in-process
    with WorkQueue(path) as check:
        while not check.finished():
            census_queue_worker(path, wait=False, poll=0.05)
            if not check.finished():
                time.sleep(0.05)
        counts = check.counts()

    run = collect_census_queue(path, wait=False)
    assert run.result.rows == serial_run.result.rows
    assert run.stats.total_configs == serial_run.stats.total_configs
    assert counts["done"] == counts["total"] == NUM_SHARDS
    assert counts["failed"] == 0


# ----------------------------------------------------------------------
# timing rows (pytest-benchmark; informational)
# ----------------------------------------------------------------------
@pytest.mark.benchmark(group="e27-census")
def test_serial_census_timing(benchmark):
    """Serial baseline over the E27 workload."""
    run = benchmark.pedantic(
        sharded_census, args=(timed_workload(),), rounds=1, iterations=1
    )
    assert run.stats.total_configs == len(timed_workload())
