"""E20 — Batch classification service: warm throughput gate + timing.

The acceptance gate of the service layer (`repro.service`): on a
duplicate-heavy workload, the warm batched service answers requests at
**≥ 5×** the throughput of naive per-request ``decide`` — while every
response stays bit-for-bit equal to the serial reference report
(:func:`repro.service.serial_report`). The workload mixes the paper's
worst-case family G_m (Θ(n) classifier iterations — the expensive
requests a cache exists for) with random G(n, p) configurations, each
repeated many times in shuffled order, which is what serving "heavy
traffic" looks like: most requests have been answered before.

A second gate pins the coalescing story at small n: relabeled isomorphs
collapse onto one classification via the canonical keyer.
"""

import json
import random
import time

import pytest

from repro.core.configuration import Configuration
from repro.graphs.families import g_m
from repro.service import BatchClassifier, serial_report

from conftest import seeded_config

#: ISSUE acceptance threshold: warm batched service vs naive serial decide.
SPEEDUP_FLOOR = 5.0


def duplicate_heavy_requests():
    """~200 requests over 10 unique configurations, shuffled: the
    G_m family supplies realistically expensive uniques, G(n, p) the
    easy ones."""
    uniques = [g_m(m) for m in range(6, 13)] + [
        seeded_config(s, 18, 20) for s in range(3)
    ]
    requests = uniques * 20
    random.Random(7).shuffle(requests)
    return requests


@pytest.fixture(scope="module")
def requests():
    return duplicate_heavy_requests()


@pytest.fixture(scope="module")
def reference(requests):
    """Serial per-request decide reports — the oracle AND the baseline."""
    return [serial_report(cfg) for cfg in requests]


def test_warm_service_throughput_at_least_5x_naive(requests, reference):
    """The headline gate: throughput ≥ 5× naive per-request decide on
    the warm duplicate-heavy workload, responses bit-for-bit equal.

    Naive time is one serial pass of ``decide`` per request; warm time
    is the best of three full passes through ``submit_many``/``report``
    (best-of-three shields the ratio from scheduler noise, as in the
    engine's warm-rerun gate)."""
    t0 = time.perf_counter()
    naive = [serial_report(cfg) for cfg in requests]
    naive_time = time.perf_counter() - t0

    with BatchClassifier(batch_window=0.001) as svc:
        svc.classify_many(requests)  # warm the canonical-form cache
        warm_time = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            reports = [t.report() for t in svc.submit_many(requests)]
            warm_time = min(warm_time, time.perf_counter() - t0)
        # bit-for-bit: identical JSON serialization, request for request
        assert [json.dumps(r, sort_keys=True) for r in reports] == [
            json.dumps(r, sort_keys=True) for r in naive
        ]
        assert reports == reference
        # the cache, not reclassification, answered the warm passes
        from repro.engine import default_keyer

        unique_keys = {default_keyer(c.normalize()) for c in requests}
        assert svc.stats.engine.classified == len(unique_keys)

    speedup = naive_time / warm_time
    assert speedup >= SPEEDUP_FLOOR, (
        f"warm service {warm_time:.4f}s vs naive {naive_time:.4f}s "
        f"= {speedup:.1f}x < {SPEEDUP_FLOOR}x"
    )


def test_isomorph_coalescing_classifies_once_per_class():
    """Small-n duplicate traffic arrives as *relabeled isomorphs*, not
    literal repeats; the canonical keyer must collapse each isomorphism
    class to one classification with identical responses."""
    base = Configuration([(0, 1), (1, 2), (1, 3)], {0: 0, 1: 1, 2: 0, 3: 2})
    variants = []
    for i in range(12):
        nodes = list(base.nodes)
        shuffled = list(nodes)
        random.Random(i).shuffle(shuffled)
        perm = dict(zip(nodes, shuffled))
        iso = Configuration(
            [(perm[u], perm[v]) for u, v in base.edges],
            {perm[v]: base.tag(v) for v in base.nodes},
        )
        variants.append(iso.shift_tags(i % 3))
    with BatchClassifier(batch_window=0.001) as svc:
        records = svc.classify_many(variants, mode="elect")
        assert svc.stats.engine.classified == 1
        assert len(svc.cache) == 1
    expected = [serial_report(v, "elect") for v in variants]
    from repro.service import record_to_report

    assert [record_to_report(r, "elect") for r in records] == expected


@pytest.mark.benchmark(group="e20-throughput")
def test_naive_decide_timing(benchmark, requests, reference):
    result = benchmark(lambda: [serial_report(c) for c in requests])
    assert result == reference


@pytest.mark.benchmark(group="e20-throughput")
def test_warm_service_timing(benchmark, requests, reference):
    with BatchClassifier(batch_window=0.001) as svc:
        svc.classify_many(requests)  # warm once, outside the timer
        result = benchmark(
            lambda: [t.report() for t in svc.submit_many(requests)]
        )
    assert result == reference
