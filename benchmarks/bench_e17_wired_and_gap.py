"""E17 — Distributed wired election, and the O(n+σ) open problem.

Two final quantifications:

* the wired substrate run for real: the distributed view exchange must
  reproduce the centralized refinement verdict configuration for
  configuration, and it elects in exactly n rounds — topology alone,
  no wakeup asymmetry;
* the paper's closing open problem: is there an O(n+σ) dedicated radio
  election? The canonical algorithm is O(n²σ); on G_m the measured gap
  rounds/(n+σ) grows ~linearly with n, exhibiting exactly the headroom
  the open problem asks about.
"""

import pytest

from repro.analysis.rounds import sweep
from repro.core.election import elect_leader
from repro.graphs.enumeration import enumerate_configurations
from repro.graphs.families import g_m, g_m_size, h_m
from repro.wired import wired_elect, wired_election_agrees_with_views


@pytest.mark.benchmark(group="e17-wired-gate")
def test_distributed_wired_matches_central(benchmark):
    def check():
        return all(
            wired_election_agrees_with_views(cfg)
            for cfg in enumerate_configurations(4, 1)
        )

    assert benchmark(check)


@pytest.mark.benchmark(group="e17-wired-elect")
@pytest.mark.parametrize("m", [2, 4, 8])
def test_wired_election_on_gm(benchmark, m):
    cfg = g_m(m)
    result = benchmark(wired_elect, cfg)
    assert result.elected
    assert result.rounds == cfg.n  # exactly n rounds, always


@pytest.mark.benchmark(group="e17-gap")
def test_open_problem_gap_on_gm(benchmark):
    """rounds/(n+σ) grows on G_m: the canonical algorithm is far from the
    conjectured O(n+σ) optimum, and the gap widens with n."""
    ms = [2, 4, 8, 16]

    def measure():
        return sweep(
            "gap",
            ms,
            lambda m: elect_leader(g_m(int(m))).rounds
            / (g_m_size(int(m)) + 1),
        )

    result = benchmark(measure)
    gaps = [p.value for p in result.points]
    assert gaps == sorted(gaps)  # monotone growth: real headroom
    assert gaps[-1] > 2 * gaps[0]  # and substantial


@pytest.mark.benchmark(group="e17-gap-hm")
def test_hm_is_near_optimal(benchmark):
    """On H_m the canonical algorithm is already O(σ) = O(n+σ): the gap
    stays bounded — the open problem's difficulty is in the n dimension,
    not the σ dimension."""
    ms = [4, 16, 64]

    def measure():
        return [
            elect_leader(h_m(m)).rounds / (4 + m + 1) for m in ms
        ]

    gaps = benchmark(measure)
    assert max(gaps) < 4.0  # bounded ratio: near-linear in n+σ
