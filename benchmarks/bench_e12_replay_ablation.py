"""E12 — Closed-form replay vs round-by-round simulation.

Lemma 3.7/3.8 predict the canonical execution completely; the replay
computes every node's terminal history in O(phases × edges) instead of
O(rounds × n). This experiment gates on byte-identical histories, then
times both paths — the speedup is the measurable content of the lemmas.
"""

import pytest

from repro.core.canonical import CanonicalProtocol
from repro.core.classifier import classify
from repro.core.replay import replay_histories, replay_matches_simulation
from repro.graphs.families import g_m, h_m
from repro.radio.simulator import simulate

from conftest import seeded_config


def simulate_canonical(trace):
    protocol = CanonicalProtocol.from_trace(trace)
    network = trace.config
    return simulate(
        network, protocol.factory, max_rounds=protocol.round_budget(network.span)
    )


CASES = {
    "hm-16": lambda: h_m(16),
    "gm-4": lambda: g_m(4),
    "random-n24": lambda: seeded_config(11, 24, 3),
}


@pytest.mark.benchmark(group="e12-simulate")
@pytest.mark.parametrize("case", sorted(CASES))
def test_simulator_path(benchmark, case):
    trace = classify(CASES[case]())
    execution = benchmark(simulate_canonical, trace)
    assert execution.max_done_local() > 0


@pytest.mark.benchmark(group="e12-replay")
@pytest.mark.parametrize("case", sorted(CASES))
def test_replay_path(benchmark, case):
    trace = classify(CASES[case]())
    histories = benchmark(replay_histories, trace)
    assert len(histories) == trace.config.n


@pytest.mark.benchmark(group="e12-gate")
def test_replay_is_exact(benchmark):
    """Correctness gate: replay equals simulation on every case (and a
    handful of extras) before any speedup claims count."""

    def check():
        ok = all(replay_matches_simulation(make()) for make in CASES.values())
        ok = ok and all(
            replay_matches_simulation(seeded_config(s, 12, 2)) for s in range(4)
        )
        return ok

    assert benchmark(check)
