"""E2 — Lemma 3.5: Classifier runs in O(n³Δ).

Benchmarks wall-clock classification at increasing n on bounded-degree
(paths: Δ=2) and maximal-degree (complete graphs: Δ=n-1) shapes, and
asserts the metered-operation growth exponent stays at or below the
paper's cubic-in-n (times Δ) envelope.
"""

import pytest

from repro.analysis.rounds import sweep
from repro.core.classifier import classifier_ops, classify
from repro.core.configuration import Configuration
from repro.graphs.generators import complete_edges, path_edges
from repro.graphs.tags import one_early_riser


def path_cfg(n):
    # one early riser forces ~n/2 refinement iterations (worst-case-ish)
    return Configuration(path_edges(n), one_early_riser(range(n)))


def complete_cfg(n):
    return Configuration(complete_edges(n), one_early_riser(range(n)))


@pytest.mark.benchmark(group="e2-scaling-path")
@pytest.mark.parametrize("n", [16, 32, 64, 128])
def test_classify_path(benchmark, n):
    cfg = path_cfg(n)
    trace = benchmark(classify, cfg)
    assert trace.decision  # decided


@pytest.mark.benchmark(group="e2-scaling-complete")
@pytest.mark.parametrize("n", [8, 16, 32, 64])
def test_classify_complete(benchmark, n):
    cfg = complete_cfg(n)
    trace = benchmark(classify, cfg)
    assert trace.decision


@pytest.mark.benchmark(group="e2-exponent")
def test_op_growth_within_cubic_times_delta(benchmark):
    ns = [12, 24, 48, 96]

    def measure():
        return sweep(
            "classifier-ops",
            ns,
            lambda n: classifier_ops(path_cfg(int(n))),
            bound=lambda n: 50 * n**3 * 2,  # c · n³Δ with Δ=2
        )

    result = benchmark(measure)
    assert result.all_within_bounds()
    # paths with one early riser: ops grow polynomially, within O(n³Δ);
    # the log-log slope must not exceed ~3 (+ fit slack).
    assert result.growth_exponent() <= 3.3, result.growth_exponent()
