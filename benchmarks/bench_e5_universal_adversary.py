"""E5 — Proposition 4.4: no universal algorithm for 4-node configurations.

Runs the constructive adversary against the whole candidate portfolio:
extract each candidate's first tag-0 transmission round t, build H_{t+1},
verify the candidate fails on it (while the *dedicated* algorithm for the
same configuration succeeds — feasibility is not the obstacle).
"""

import pytest

from repro.baselines.universal_candidates import (
    candidate_portfolio,
    defeat,
    eager_beacon,
    quiet_prober,
)
from repro.core.election import elect_leader


@pytest.mark.benchmark(group="e5-adversary")
def test_defeat_whole_portfolio(benchmark):
    def run():
        return [defeat(c, probe_m=48) for c in candidate_portfolio()]

    reports = benchmark(run)
    assert reports and all(r.defeated for r in reports), [
        r.describe() for r in reports
    ]


@pytest.mark.benchmark(group="e5-adversary")
def test_defeat_single_candidate(benchmark):
    report = benchmark(defeat, quiet_prober(3), 48)
    assert report.defeated
    assert report.bc_histories_equal and report.ad_histories_equal


@pytest.mark.benchmark(group="e5-adversary")
def test_killer_config_is_feasible(benchmark):
    # The adversary's configuration is itself feasible: its dedicated
    # algorithm elects. The candidate, not the configuration, fails.
    report = defeat(eager_beacon(), probe_m=48)
    result = benchmark(elect_leader, report.killer)
    assert result.elected
    assert report.defeated
