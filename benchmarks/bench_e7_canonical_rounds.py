"""E7 — Theorem 3.15 + Lemma 3.9 on random feasible configurations.

Sweeps random feasible configurations, runs the full distributed election,
and asserts: unique leader, O(n²σ) budget, per-phase history⟺class
partition equality. Benchmarks the end-to-end election pipeline.
"""

import pytest

from repro.core.election import elect_leader
from repro.core.partition import partition_key

from conftest import feasible_batch


@pytest.mark.benchmark(group="e7-election")
@pytest.mark.parametrize("n,span", [(8, 2), (16, 3), (32, 4), (48, 6)])
def test_elect_random_feasible(benchmark, n, span):
    cfg = feasible_batch(1, seed=37 * n + span, n=n, span=span)[0]
    result = benchmark(elect_leader, cfg)
    assert result.elected
    assert result.within_bound()


@pytest.mark.benchmark(group="e7-lemma39")
def test_lemma_3_9_on_batch(benchmark):
    configs = feasible_batch(6, seed=4242, n=10, span=2)

    def run():
        violations = 0
        for cfg in configs:
            result = elect_leader(cfg)
            trace = result.trace
            ends = result.protocol.data.phase_ends
            for j in range(1, trace.num_iterations + 2):
                if j - 1 >= len(ends):
                    break
                sim = tuple(
                    tuple(g)
                    for g in result.execution.prefix_partition(ends[j - 1])
                )
                if sim != partition_key(trace.classes_at(j)):
                    violations += 1
        return violations

    assert benchmark(run) == 0


@pytest.mark.benchmark(group="e7-bound-margin")
def test_bound_never_violated_across_sweep(benchmark):
    def run():
        worst_ratio = 0.0
        for n, span in ((6, 1), (10, 2), (14, 3), (20, 4)):
            for cfg in feasible_batch(2, seed=1000 + n, n=n, span=span):
                r = elect_leader(cfg)
                worst_ratio = max(worst_ratio, r.rounds / r.round_bound())
        return worst_ratio

    worst = benchmark(run)
    assert worst <= 1.0
