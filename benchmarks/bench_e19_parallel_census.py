"""E19 — Parallel census execution: correctness gate plus timing.

Feasibility censuses are embarrassingly parallel; the process-pool map
must be bit-for-bit interchangeable with the serial path (that is the
gate), and the timing rows let a user judge on their machine where the
pool overhead amortizes. No speedup is *asserted* — at census scales the
per-item cost is microseconds and a small pool can legitimately lose to
the serial loop; the honest content is the equality plus the measured
numbers.
"""

import pytest

from repro.analysis.parallel import (
    parallel_cross_model,
    parallel_feasibility,
)
from repro.core.classifier import is_feasible
from repro.graphs.enumeration import enumerate_configurations
from repro.variants.census import cross_model_row


@pytest.fixture(scope="module")
def population():
    return list(enumerate_configurations(4, 1))


@pytest.mark.benchmark(group="e19-feasibility")
def test_serial_feasibility(benchmark, population):
    result = benchmark(lambda: [is_feasible(c) for c in population])
    assert len(result) == len(population)


@pytest.mark.benchmark(group="e19-feasibility")
def test_parallel_feasibility(benchmark, population):
    result = benchmark(
        parallel_feasibility, population, max_workers=2, chunksize=16
    )
    assert result == [is_feasible(c) for c in population]  # the gate


@pytest.mark.benchmark(group="e19-cross-model")
def test_serial_cross_model(benchmark, population):
    sample = population[:30]
    result = benchmark(lambda: [cross_model_row(c).feasible for c in sample])
    assert len(result) == 30


@pytest.mark.benchmark(group="e19-cross-model")
def test_parallel_cross_model(benchmark, population):
    sample = population[:30]
    result = benchmark(
        parallel_cross_model, sample, max_workers=2, chunksize=8
    )
    assert result == [cross_model_row(c).feasible for c in sample]
