"""Helpers shared by the example scripts (kept import-light)."""

from repro.core.classifier import classify
from repro.graphs.generators import build, random_connected_gnp_edges
from repro.graphs.tags import uniform_random


def seeded_config(seed: int, n: int, span: int, p: float = 0.3):
    edges = random_connected_gnp_edges(n, p, seed)
    tags = uniform_random(range(n), span, seed + 1)
    return build(edges, tags, n=n)


def feasible_batch(count: int, seed: int, n: int, span: int, p: float = 0.3):
    """Reproducible batch of feasible random configurations."""
    out = []
    attempt = 0
    while len(out) < count and attempt < 50 * count:
        cfg = seeded_config(seed + attempt, n, span, p)
        attempt += 1
        if classify(cfg).feasible:
            out.append(cfg)
    return out
