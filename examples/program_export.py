#!/usr/bin/env python
"""Compile, ship and run a canonical-DRIP program.

The paper's Section 3 promise: once Classifier has run, the dedicated
distributed leader election algorithm exists "without any additional
computation" — it is just data (the lists L_j plus σ). This example makes
the promise literal: compile a configuration's program to JSON, pretend
to ship it to another machine, load it back, install the identical blob
on every (anonymous) node, and watch the election come out the same.

Run:  python examples/program_export.py
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

from repro.core.classifier import classify
from repro.core.election import elect_leader
from repro.core.program import (
    compile_program,
    dumps,
    load,
    program_algorithm,
    save,
)
from repro.graphs.families import g_m, h_m
from repro.radio.simulator import simulate


def main() -> None:
    cfg = g_m(2)  # the paper's Ω(n) family, m = 2 (9 nodes, span 1)
    print("configuration:")
    print(cfg.describe())
    print()

    # --- compile ------------------------------------------------------
    program = compile_program(cfg)
    blob = dumps(program, indent=2)
    print(
        f"compiled canonical program: {program.num_phases} phase(s), "
        f"σ={program.sigma}, done_v={program.done_round}, "
        f"{len(blob)} bytes of JSON"
    )
    print("first lines of the wire format:")
    print("\n".join(blob.splitlines()[:8]), "\n  ...")
    print()

    # --- ship ---------------------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "gm2-program.json"
        save(program, path)
        shipped = load(path)
    assert shipped == program
    print(f"round-trip through {path.name}: identical program ✓")
    print()

    # --- run on anonymous nodes ----------------------------------------
    algo = program_algorithm(shipped)
    trace = classify(cfg)
    network = trace.config
    execution = simulate(
        network, algo.factory, max_rounds=network.span + program.done_round + 2
    )
    leaders = execution.decide_leaders(algo.decision)
    direct = elect_leader(cfg)
    print(f"program execution leaders : {leaders}")
    print(f"direct elect_leader()     : [{direct.leader}]")
    assert leaders == [direct.leader]
    print("identical outcome ✓")
    print()

    # --- programs are per-configuration (Prop 4.4 in miniature) --------
    other = h_m(3)
    wrong_algo = program_algorithm(compile_program(h_m(7)))
    other_trace = classify(other)
    execution = simulate(
        other_trace.config,
        wrong_algo.factory,
        max_rounds=2_000,
    )
    wrong_leaders = execution.decide_leaders(wrong_algo.decision)
    print(
        "running H_7's program on H_3 elects "
        f"{wrong_leaders or 'nobody'} — dedicated programs do not transfer "
        "(no universal algorithm exists, Proposition 4.4)"
    )


if __name__ == "__main__":
    main()
