#!/usr/bin/env python
"""Feasibility census over random radio networks.

How often does wakeup-time asymmetry suffice to elect a leader? This
sweeps random connected G(n, p) graphs with uniform random tags and
reports the feasible fraction, mean classifier iterations, and mean
election time — a "results table" the theory paper itself never ran.

Run:  python examples/census_random.py
"""

from repro.analysis.census import census, random_census
from repro.graphs.generators import build, random_connected_gnp_edges
from repro.graphs.tags import uniform_random
from repro.reporting.tables import format_table

# --- feasibility vs network size (fixed span) ----------------------------
result = random_census(
    n_values=[4, 6, 8, 12, 16],
    span=2,
    p=0.3,
    samples=30,
    seed=2020,
    measure_rounds=True,
)
print(
    format_table(
        result.TABLE_HEADERS,
        result.as_table(),
        title="Feasibility vs n (span σ=2, p=0.3, 30 samples per size)",
    )
)
print()

# --- feasibility vs span (fixed size): more asymmetry, more feasible ------
def configs_for_span(span, samples=30, n=10, p=0.3, seed=77):
    for s in range(samples):
        base = seed + 1009 * s + 31 * span
        edges = random_connected_gnp_edges(n, p, base)
        yield build(edges, uniform_random(range(n), span, base + 1), n=n)


rows = []
for span in (0, 1, 2, 3, 5, 8):
    res = census(configs_for_span(span), group_by=lambda c: span)
    row = res.sorted_rows()[0]
    rows.append((span, row.total, row.feasible, f"{row.feasible_fraction:.2f}"))
print(
    format_table(
        ("span σ", "configs", "feasible", "fraction"),
        rows,
        title="Feasibility vs span (n=10, p=0.3): σ=0 is always infeasible,"
        " larger σ breaks more symmetry",
    )
)
assert rows[0][2] == 0  # σ = 0: simultaneous wakeup, never feasible (n>1)
