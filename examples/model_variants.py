#!/usr/bin/env python
"""Channel ablation: collision detection, no-CD, and the beeping model.

The paper assumes collision detection. How much of the feasibility
landscape survives without it? This example classifies every connected
4-node configuration with tags in {0, 1} under three channels, prints the
census, exhibits separating witnesses, and runs a real election under
each channel on one of them.

Run:  python examples/model_variants.py
"""

from __future__ import annotations

from repro.graphs.enumeration import enumerate_configurations
from repro.reporting.tables import format_table
from repro.variants import (
    BEEP,
    CD,
    CHANNELS,
    NO_CD,
    variant_elect,
)
from repro.variants.census import exhaustive_cross_model_census


def main() -> None:
    n, max_tag = 4, 1
    census = exhaustive_cross_model_census(n, max_tag)
    print(
        format_table(
            census.TABLE_HEADERS,
            census.as_table(),
            title=(
                f"Feasibility by channel — all {census.total} connected "
                f"configurations, n={n}, tags 0..{max_tag}"
            ),
        )
    )
    print()

    print("inclusions (weak-feasible ⇒ strong-feasible):")
    for weak, strong in ((NO_CD, CD), (BEEP, CD), (NO_CD, BEEP), (BEEP, NO_CD)):
        holds = census.inclusion_holds(weak, strong)
        print(f"  {weak.name:>6} ⊆ {strong.name:<6} : {'holds' if holds else 'NO'}")
    print()

    print("separating witnesses:")
    for yes, no in ((CD, NO_CD), (BEEP, NO_CD), (NO_CD, BEEP)):
        w = census.witnesses(yes, no, limit=1)
        if w:
            cfg = w[0]
            print(
                f"  feasible under {yes.name}, not under {no.name}: "
                f"edges={cfg.edges}, tags={cfg.tags}"
            )
    print()

    # run a genuine election under each channel on a CD/BEEP/no-NO_CD witness
    cfg = census.witnesses(CD, NO_CD, limit=1)[0]
    print(f"elections on edges={cfg.edges}, tags={cfg.tags}:")
    for channel in CHANNELS:
        result = variant_elect(cfg, channel)
        outcome = (
            f"leader {result.leader} in {result.rounds} local rounds"
            if result.elected
            else "no leader (refinement says No)"
        )
        print(f"  {channel.name:>6}: {outcome}")
    print()
    print(
        "Collision detection is load-bearing: the same network with the "
        "same wakeup tags flips between feasible and infeasible depending "
        "only on what the channel reveals about simultaneous transmissions."
    )


if __name__ == "__main__":
    main()
