#!/usr/bin/env python
"""The Section 4 impossibility results as an interactive demonstration.

1. Proposition 4.4 — take any candidate "universal" election algorithm,
   extract the first global round t in which its tag-0 nodes transmit,
   and watch it fail on the feasible configuration H_{t+1}.
2. Proposition 4.5 — run an algorithm on H_{t+1} (feasible) and S_{t+1}
   (infeasible) and verify every node sees an identical history: no
   distributed algorithm can decide feasibility.

Run:  python examples/impossibility_demo.py
"""

from repro import elect
from repro.baselines.universal_candidates import (
    candidate_portfolio,
    compare_executions,
    defeat,
    first_tag0_transmission,
)
from repro.graphs.families import FOUR_NODE_NAMES, h_m, s_m
from repro.reporting.tables import format_table

# --- Proposition 4.4 ------------------------------------------------------
print("Proposition 4.4: no universal algorithm, even for 4-node configs")
print()
rows = []
for cand in candidate_portfolio():
    rep = defeat(cand, probe_m=48)
    t = rep.first_tag0_transmission
    rows.append(
        (
            cand.name,
            t if t is not None else "-",
            f"H_{(t or 0) + 1}",
            "crash" if rep.crashed else len(rep.leaders),
            "defeated" if rep.defeated else "SURVIVED?!",
        )
    )
    assert rep.defeated
    # ... while the dedicated algorithm for the same configuration works:
    assert elect(rep.killer).elected
print(
    format_table(
        ("candidate", "t", "killer", "#leaders", "outcome"),
        rows,
        title="every candidate fails on its own H_{t+1} "
        "(which IS feasible — its dedicated algorithm elects)",
    )
)
print()

# --- Proposition 4.5 -------------------------------------------------------
print("Proposition 4.5: feasibility is not distributedly decidable")
print()
cand = candidate_portfolio()[4]  # a quiet prober
t = first_tag0_transmission(cand, probe_m=48)
per_node = compare_executions(h_m(t + 1), s_m(t + 1), cand)
rows = [
    (FOUR_NODE_NAMES[v], "identical" if same else "DIFFERENT")
    for v, same in sorted(per_node.items())
]
print(
    format_table(
        ("node", f"history on H_{t + 1} vs S_{t + 1}"),
        rows,
        title=f"algorithm {cand.name!r} (first tag-0 transmission: t={t})",
    )
)
assert all(per_node.values())
print()
print(
    f"H_{t + 1} is feasible, S_{t + 1} is not — yet under {cand.name!r} "
    "every node's\nview is identical on both, so any distributed decision "
    "procedure must answer\nthe same on both. Contradiction."
)
