#!/usr/bin/env python
"""Watch a canonical election happen: space-time diagrams and jamming.

Renders the canonical DRIP's execution on the paper's H_m family as an
ASCII space-time grid (rounds across, nodes down), then injects a single
jammed round into the leader's history and shows the election derail —
the model's symmetry breaking has zero redundancy.

Run:  python examples/timeline_debug.py
"""

from __future__ import annotations

from repro.core.canonical import (
    CanonicalMatchError,
    CanonicalProtocol,
    build_canonical_data,
)
from repro.core.classifier import classify
from repro.graphs.families import h_m
from repro.radio.faults import jam_pairs, jammed_simulate
from repro.radio.model import SILENCE
from repro.radio.simulator import simulate
from repro.reporting.timeline import legend, timeline, transmission_density


def main() -> None:
    cfg = h_m(2)
    trace = classify(cfg)
    protocol = CanonicalProtocol.from_trace(trace)
    network = trace.config
    budget = protocol.round_budget(network.span)

    print("configuration (the paper's H_2):")
    print(network.describe())
    print()

    execution = simulate(
        network, protocol.factory, max_rounds=budget, record_trace=True
    )
    leaders = execution.decide_leaders(protocol.decision)
    print(f"canonical execution — leader: {leaders}")
    print(legend())
    print(timeline(execution))
    print()
    print(
        f"transmission density: {transmission_density(execution):.3f} "
        "(canonical executions are overwhelmingly silent — the sparse "
        "history storage exploits exactly this)"
    )
    print()

    # --- jam one round of the leader's history --------------------------
    data = build_canonical_data(trace)
    leader = trace.leader
    block_region_end = len(data.lists[0]) * data.block_width
    local = next(
        i
        for i in range(1, block_region_end + 1)
        if execution.histories[leader][i] is SILENCE
    )
    target = (execution.wake_rounds[leader] + local, leader)
    print(
        f"jamming global round {target[0]} at node {target[1]} "
        f"(a silent in-block round of the leader)..."
    )
    try:
        jammed = jammed_simulate(
            network,
            protocol.factory,
            jammer=jam_pairs([target]),
            max_rounds=budget,
            record_trace=True,
        )
        outcome = jammed.decide_leaders(protocol.decision)
        print(f"jammed execution — leaders: {outcome or 'none'}")
        print(timeline(jammed))
    except CanonicalMatchError as exc:
        print(f"protocol detected the corruption: {exc}")
    print()
    print(
        "One corrupted round flips the outcome: every bit of a node's "
        "history is load-bearing for the paper's symmetry breaking."
    )


if __name__ == "__main__":
    main()
