#!/usr/bin/env python
"""Quickstart: decide feasibility and elect a leader on a small network.

Builds a 5-node radio network, asks the centralized Classifier whether
deterministic anonymous leader election is possible (Theorem 3.17), and —
since it is — runs the dedicated distributed algorithm (the canonical
DRIP of Theorem 3.15) on the simulator and inspects the execution.

Run:  python examples/quickstart.py
"""

from repro import Configuration, decide, elect

# A radio network: the graph says who hears whom; the integer tag of each
# node is the global round in which it would wake up spontaneously.
#
#        1(t=0)
#       /      \
#  0(t=1)       3(t=2) --- 4(t=0)
#       \      /
#        2(t=0)
config = Configuration(
    edges=[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)],
    tags={0: 1, 1: 0, 2: 0, 3: 2, 4: 0},
)
print(config.describe())
print()

# --- 1. the centralized decision (Algorithms 1-4) ----------------------
report = decide(config)
print(f"Classifier says: {report.decision!r} "
      f"after {report.iterations} refinement iteration(s)")
print(report.describe())
print()

# --- 2. the dedicated distributed election (canonical DRIP) -------------
result = elect(config)
print(result.describe())
print(f"elected leader : node {result.leader}")
print(f"election rounds: {result.rounds} "
      f"(O(n²σ) budget: {result.round_bound()})")

# The leader is exactly the node the classifier isolated, and it is the
# only node whose history differs from everyone else's:
leader_history = result.execution.histories[result.leader]
print(f"leader history : {leader_history.render()}")
for v in result.config.nodes:
    if v != result.leader:
        assert result.execution.histories[v] != leader_history

# --- 3. what happens on a symmetric network ------------------------------
sym = Configuration([(0, 1)], {0: 0, 1: 0})
print()
print(f"two nodes waking together -> {decide(sym).decision!r} "
      "(no deterministic algorithm can break the tie)")
