#!/usr/bin/env python
"""What labels and randomness buy you (the paper's Section 1.3 context).

The paper studies the hardest corner: anonymous + deterministic, where
election is only possible when wakeup times differ. This example runs the
two classical single-hop escapes on the same simulator:

* unique IDs + collision detection  -> deterministic Θ(log n) tree-split;
* private coins + collision detection -> randomized expected O(log log n)
  (Willard-style).

Both work even with *simultaneous* wakeup (all tags 0) — exactly the
situation where anonymous deterministic election is provably impossible.

Run:  python examples/single_hop_contrast.py
"""

import math

from repro import decide
from repro.baselines.tree_split import tree_split_algorithm, tree_split_slot_bound
from repro.baselines.willard import willard_algorithm
from repro.graphs.generators import complete_configuration
from repro.radio.simulator import simulate
from repro.reporting.series import ascii_chart
from repro.reporting.tables import format_table

SIZES = [4, 8, 16, 32, 64, 128, 256]
SEEDS = range(12)

rows = []
tree_slots, willard_means = [], []
for n in SIZES:
    cfg = complete_configuration([0] * n)

    # anonymous deterministic: impossible (tags all equal)
    anon = decide(cfg).decision

    # labeled deterministic tree splitting
    algo = tree_split_algorithm(n)
    ex = simulate(cfg, algo.factory, max_rounds=500)
    assert len(ex.decide_leaders(algo.decision)) == 1
    det = ex.max_done_local()
    tree_slots.append(det)

    # randomized (mean over seeds)
    samples = []
    for seed in SEEDS:
        walgo = willard_algorithm(seed=seed)
        wex = simulate(cfg, walgo.factory, max_rounds=100_000)
        assert len(wex.decide_leaders(walgo.decision)) == 1
        samples.append(wex.max_done_local())
    rand_mean = sum(samples) / len(samples)
    willard_means.append(rand_mean)

    rows.append(
        (
            n,
            anon,
            det,
            tree_split_slot_bound(n),
            f"{rand_mean:.1f}",
            f"{math.log2(max(2, math.log2(n))):.1f}",
        )
    )

print(
    format_table(
        (
            "n",
            "anonymous det.",
            "tree-split slots",
            "Θ(log n) bound",
            "willard mean slots",
            "log₂log₂ n",
        ),
        rows,
        title="Single-hop leader election, simultaneous wakeup "
        "(K_n, all tags 0, 12 random seeds)",
    )
)
print()
print(ascii_chart(SIZES, tree_slots, title="tree-split slots vs n",
                  x_label="n", y_label="slots"))
print()
print(ascii_chart(SIZES, willard_means, title="willard mean slots vs n",
                  x_label="n", y_label="slots"))
