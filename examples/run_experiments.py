#!/usr/bin/env python
"""Print the measured tables for experiments E1–E10.

For the full generated document covering E1–E18 (including the channel
ablations, wired contrast, extremal and fault-injection experiments) run
``python examples/generate_experiments_md.py`` instead — it writes
EXPERIMENTS.md.

This is the paper-facing harness: each section prints the measured
numbers next to the paper's claim. The pytest-benchmark files in
``benchmarks/`` time the same workloads; this script focuses on the
*values* (rounds, decisions, agreements) rather than wall-clock.

Run:  python examples/run_experiments.py
"""

from __future__ import annotations

import math
import time

from repro.analysis.automorphisms import has_fixed_node
from repro.analysis.rounds import sweep
from repro.baselines.bruteforce import simulation_feasible
from repro.baselines.tree_split import tree_split_algorithm, tree_split_slot_bound
from repro.baselines.universal_candidates import (
    candidate_portfolio,
    compare_executions,
    defeat,
    first_tag0_transmission,
)
from repro.baselines.willard import willard_algorithm
from repro.core.classifier import classifier_ops, classify, is_feasible
from repro.core.configuration import Configuration
from repro.core.election import elect_leader
from repro.core.fast_classifier import fast_classify, traces_equal
from repro.core.partition import partition_key
from repro.graphs.enumeration import enumerate_configurations
from repro.graphs.families import g_m, g_m_size, h_m, s_m
from repro.graphs.generators import complete_configuration, path_edges
from repro.graphs.tags import one_early_riser
from repro.radio.simulator import simulate
from repro.reporting.tables import format_table

from benchmarks_helpers import feasible_batch  # local helper (below)


def banner(eid: str, claim: str) -> None:
    print()
    print("=" * 72)
    print(f"{eid}: {claim}")
    print("=" * 72)


def e1():
    banner("E1", "Theorem 3.17 — Classifier == simulation ground truth")
    rows = []
    for n, max_tag in ((1, 2), (2, 2), (3, 2), (4, 1)):
        total = agree = fixed_ok = 0
        for cfg in enumerate_configurations(n, max_tag):
            total += 1
            cls = is_feasible(cfg)
            agree += cls == simulation_feasible(cfg)
            if not cls or has_fixed_node(cfg.normalize()):
                fixed_ok += 1
        rows.append((f"n={n}, tags<=+{max_tag}", total, agree, fixed_ok))
    print(
        format_table(
            ("population", "configs", "classifier==simulation", "necessary-cond ok"),
            rows,
            title="exhaustive agreement (expected: all three columns equal)",
        )
    )


def e2():
    banner("E2", "Lemma 3.5 — Classifier time O(n³Δ)")
    ns = [12, 24, 48, 96, 192]

    def path_cfg(n):
        return Configuration(path_edges(n), one_early_riser(range(n)))

    rows = []
    for n in ns:
        ops = classifier_ops(path_cfg(n))
        t0 = time.perf_counter()
        classify(path_cfg(n))
        secs = time.perf_counter() - t0
        rows.append((n, ops, f"{ops / (n**3 * 2):.4f}", f"{secs * 1000:.1f}"))
    result = sweep("ops", ns, lambda n: classifier_ops(path_cfg(int(n))))
    print(
        format_table(
            ("n (path, Δ=2)", "metered ops", "ops / n³Δ", "ms"),
            rows,
            title=f"growth exponent (log-log slope): "
            f"{result.growth_exponent():.2f} — paper bound: <= 3",
        )
    )


def e3():
    banner("E3", "Proposition 4.1 — Ω(n) election on G_m (σ=1)")
    rows = []
    for m in (2, 4, 8, 16, 24):
        r = elect_leader(g_m(m))
        n = g_m_size(m)
        rows.append((m, n, r.rounds, m - 1, r.round_bound(), "yes" if r.elected else "NO"))
    print(
        format_table(
            ("m", "n", "election rounds", "Ω floor m-1", "O(n²σ) budget", "elected"),
            rows,
        )
    )


def e4():
    banner("E4", "Lemma 4.2 / Prop 4.3 — Ω(σ) election on H_m (n=4)")
    rows = []
    for m in (1, 2, 4, 8, 16, 32, 64):
        r = elect_leader(h_m(m))
        rows.append((m, m + 1, r.rounds, m, "yes" if r.elected else "NO"))
    print(
        format_table(
            ("m", "σ", "election rounds", "Ω floor m", "elected"), rows
        )
    )


def e5():
    banner("E5", "Proposition 4.4 — no universal algorithm (4-node configs)")
    rows = []
    for cand in candidate_portfolio():
        rep = defeat(cand, probe_m=48)
        t = rep.first_tag0_transmission
        rows.append(
            (
                cand.name,
                t if t is not None else "-",
                f"H_{(t or 0) + 1}",
                "crash" if rep.crashed else len(rep.leaders),
                "defeated" if rep.defeated else "SURVIVED",
            )
        )
    print(format_table(("candidate", "t", "killer", "#leaders", "outcome"), rows))


def e6():
    banner("E6", "Proposition 4.5 — H_{t+1} / S_{t+1} indistinguishable")
    rows = []
    for cand in candidate_portfolio():
        t = first_tag0_transmission(cand, probe_m=48)
        if t is None:
            continue
        per_node = compare_executions(h_m(t + 1), s_m(t + 1), cand)
        rows.append(
            (
                cand.name,
                t,
                "all identical" if all(per_node.values()) else "DIFFER",
                classify(h_m(t + 1)).decision,
                classify(s_m(t + 1)).decision,
            )
        )
    print(
        format_table(
            ("algorithm", "t", "node histories", "H feasible", "S feasible"),
            rows,
        )
    )


def e7():
    banner("E7", "Theorem 3.15 — O(n²σ) + Lemma 3.9 on random feasible configs")
    rows = []
    for n, span in ((6, 1), (10, 2), (16, 3), (24, 4), (36, 5)):
        cfgs = feasible_batch(3, seed=31 * n + span, n=n, span=span)
        worst = 0.0
        lemma_ok = True
        rounds = []
        for cfg in cfgs:
            r = elect_leader(cfg)
            rounds.append(r.rounds)
            worst = max(worst, r.rounds / r.round_bound())
            ends = r.protocol.data.phase_ends
            for j in range(1, r.trace.num_iterations + 2):
                if j - 1 >= len(ends):
                    break
                sim = tuple(tuple(g) for g in r.execution.prefix_partition(ends[j - 1]))
                lemma_ok &= sim == partition_key(r.trace.classes_at(j))
        rows.append(
            (
                n,
                span,
                f"{sum(rounds) / len(rounds):.0f}",
                f"{worst:.3f}",
                "ok" if lemma_ok else "VIOLATED",
            )
        )
    print(
        format_table(
            ("n", "σ", "mean rounds", "worst rounds/budget", "Lemma 3.9"), rows
        )
    )


def e8():
    banner("E8", "Ablation — faithful vs hash-based classifier")
    rows = []
    for n in (32, 64, 128, 256):
        cfg = Configuration(path_edges(n), one_early_riser(range(n)))
        t0 = time.perf_counter()
        a = classify(cfg)
        t_slow = time.perf_counter() - t0
        t0 = time.perf_counter()
        b = fast_classify(cfg)
        t_fast = time.perf_counter() - t0
        assert traces_equal(a, b)
        rows.append(
            (
                n,
                f"{t_slow * 1000:.1f}",
                f"{t_fast * 1000:.1f}",
                f"{t_slow / t_fast:.1f}x",
                "identical",
            )
        )
    print(
        format_table(
            ("n", "faithful ms", "hash ms", "speedup", "outputs"), rows
        )
    )


def e9():
    banner("E9", "Section 1.3 contrast — labeled Θ(log n) vs randomized")
    rows = []
    for n in (8, 32, 128, 256):
        cfg = complete_configuration([0] * n)
        algo = tree_split_algorithm(n)
        ex = simulate(cfg, algo.factory, max_rounds=500)
        det = ex.max_done_local()
        samples = []
        for seed in range(10):
            walgo = willard_algorithm(seed=seed)
            wex = simulate(cfg, walgo.factory, max_rounds=100_000)
            samples.append(wex.max_done_local())
        rows.append(
            (
                n,
                det,
                tree_split_slot_bound(n),
                f"{sum(samples) / len(samples):.1f}",
                f"{math.log2(math.log2(n)):.1f}",
            )
        )
    print(
        format_table(
            ("n", "tree-split slots", "Θ(log n) bound", "willard mean", "log₂log₂n"),
            rows,
        )
    )


def e10():
    banner("E10", "Obs 3.2 / Cor 3.3 — refinement chains")
    rows = []
    for name, cfg in (
        ("G_6", g_m(6)),
        ("H_8", h_m(8)),
        ("S_4", s_m(4)),
        ("path-16", Configuration(path_edges(16), one_early_riser(range(16)))),
    ):
        trace = classify(cfg)
        chain = trace.class_count_chain()
        rows.append(
            (
                name,
                "->".join(map(str, chain)),
                trace.num_iterations,
                math.ceil(cfg.n / 2),
                trace.decision,
            )
        )
    print(
        format_table(
            ("config", "class-count chain", "iters", "⌈n/2⌉ cap", "decision"),
            rows,
        )
    )


if __name__ == "__main__":
    t0 = time.perf_counter()
    for fn in (e1, e2, e3, e4, e5, e6, e7, e8, e9, e10):
        fn()
    print()
    print(f"all experiments completed in {time.perf_counter() - t0:.1f}s")
