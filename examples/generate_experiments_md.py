#!/usr/bin/env python
"""Regenerate EXPERIMENTS.md: paper claim vs measured, for E1–E18.

Every table in EXPERIMENTS.md is produced by this script — the document
is an artifact of the code, never hand-edited. Workloads are sized to
finish in a couple of minutes on a laptop; the pytest-benchmark files in
``benchmarks/`` time the same workloads with statistical rigor.

Run:  python examples/generate_experiments_md.py [output-path]
"""

from __future__ import annotations

import math
import sys
import time
from pathlib import Path

from repro.analysis.automorphisms import has_fixed_node
from repro.analysis.extremal import (
    feasibility_probability,
    hardest_tags,
    max_iterations,
    min_feasible_span,
)
from repro.analysis.rounds import sweep
from repro.analysis.views import radio_vs_wired
from repro.baselines.bruteforce import simulation_feasible
from repro.baselines.round_robin import round_robin_algorithm, round_robin_slots
from repro.baselines.tree_split import tree_split_algorithm
from repro.baselines.universal_candidates import candidate_portfolio, defeat
from repro.baselines.willard import willard_algorithm
from repro.core.classifier import classifier_ops, classify, is_feasible
from repro.core.configuration import Configuration
from repro.core.election import elect_leader
from repro.core.fast_classifier import fast_classify, traces_equal
from repro.core.replay import replay_histories, replay_matches_simulation
from repro.core.canonical import CanonicalProtocol
from repro.graphs.enumeration import enumerate_configurations
from repro.graphs.families import g_m, g_m_size, h_m, s_m
from repro.graphs.generators import (
    build,
    complete_edges,
    cycle_edges,
    path_edges,
    random_connected_gnp_edges,
    star_edges,
)
from repro.graphs.tags import one_early_riser, uniform_random
from repro.radio.simulator import simulate
from repro.reporting.markdown import (
    MarkdownDoc,
    md_checklist,
    md_kv,
    md_table,
)
from repro.variants.census import exhaustive_cross_model_census
from repro.variants.channels import BEEP, CD, NO_CD


def path_cfg(n):
    return Configuration(path_edges(n), one_early_riser(range(n)))


def seeded_cfg(seed, n, span, p=0.3):
    edges = random_connected_gnp_edges(n, p, seed)
    return build(edges, uniform_random(range(n), span, seed + 1), n=n)


# ----------------------------------------------------------------------
def e1(doc):
    rows = []
    all_agree = True
    for n, max_tag in ((1, 2), (2, 2), (3, 2), (4, 1)):
        total = agree = 0
        for cfg in enumerate_configurations(n, max_tag):
            total += 1
            agree += is_feasible(cfg) == simulation_feasible(cfg)
        all_agree &= agree == total
        rows.append((f"n={n}, tags 0..{max_tag}", total, agree))
    doc.section(
        "E1 — Theorem 3.17: Classifier decides feasibility",
        "**Paper claim:** Classifier outputs Yes iff the configuration is "
        "feasible. **Measured:** exhaustive agreement with simulation-based "
        "ground truth (run the canonical DRIP, check a unique history "
        "exists).",
        md_table(rows, ("population", "configurations", "agree")),
        md_checklist([("classifier == ground truth on every instance", all_agree)]),
    )


def e2(doc):
    # Easy instances (decide in one iteration) and hard ones (G_m needs
    # Θ(n) iterations) bracket the classifier's real cost range.
    easy = [12, 24, 48, 96]
    rows = [
        ("path + early riser", n, classifier_ops(path_cfg(n)), f"{classifier_ops(path_cfg(n)) / (n ** 3 * 2):.5f}")
        for n in easy
    ]
    hard_ms = [2, 4, 8, 16]
    for m in hard_ms:
        n = g_m_size(m)
        ops = classifier_ops(g_m(m))
        rows.append((f"G_{m} (Θ(n) iterations)", n, ops, f"{ops / (n ** 3 * 2):.5f}"))
    exp_easy = sweep("e", easy, lambda n: classifier_ops(path_cfg(int(n)))).growth_exponent()
    exp_hard = sweep(
        "h", [g_m_size(m) for m in hard_ms],
        lambda n: classifier_ops(g_m((int(n) - 1) // 4)),
    ).growth_exponent()
    doc.section(
        "E2 — Lemma 3.5: Classifier runs in O(n³Δ)",
        "**Paper claim:** worst-case time O(n³Δ). **Measured:** metered "
        "triple/label operations; easy instances decide in one iteration "
        "(ops ~ n), the G_m family forces Θ(n) iterations (ops ~ n³ on a "
        "Δ=2 graph).",
        md_table(rows, ("workload", "n", "metered ops", "ops / n³Δ")),
        md_kv(
            [
                ("growth exponent, easy paths", f"{exp_easy:.2f}"),
                ("growth exponent, G_m", f"{exp_hard:.2f}"),
                ("paper ceiling", 3),
            ]
        ),
        md_checklist(
            [
                ("easy-instance growth ≤ cubic", exp_easy <= 3.05),
                ("hard-instance growth ≤ cubic", exp_hard <= 3.05),
            ]
        ),
    )


def e3(doc):
    rows = []
    ok = True
    for m in (2, 4, 8, 16):
        r = elect_leader(g_m(m))
        ok &= r.elected and r.rounds >= m - 1 and r.within_bound()
        rows.append((m, g_m_size(m), r.rounds, m - 1, r.round_bound()))
    exp = sweep(
        "gm", [2, 4, 8, 16], lambda m: elect_leader(g_m(int(m))).rounds
    ).growth_exponent()
    doc.section(
        "E3 — Proposition 4.1: Ω(n) election on G_m (span 1)",
        "**Paper claim:** every dedicated algorithm on G_m needs Ω(n) "
        "rounds. **Measured:** canonical election rounds vs the m−1 floor "
        "and the O(n²σ) budget.",
        md_table(rows, ("m", "n", "rounds", "floor m−1", "O(n²σ) budget")),
        md_kv([("growth exponent in m (n ∝ m)", f"{exp:.2f}")]),
        md_checklist(
            [
                ("elected and ≥ floor and ≤ budget on every m", ok),
                (
                    "growth between the Ω(n) floor and O(n²σ) ceiling "
                    "(the canonical schedule adds a block per class per "
                    "phase, so it runs ~quadratically on G_m)",
                    0.9 <= exp <= 2.2,
                ),
            ]
        ),
    )


def e4(doc):
    rows = []
    ok = True
    for m in (1, 4, 16, 64):
        r = elect_leader(h_m(m))
        ok &= r.elected and r.rounds >= m and r.within_bound()
        rows.append((m, m + 1, r.rounds, m))
    exp = sweep(
        "hm", [1, 2, 4, 8, 16, 32, 64], lambda m: elect_leader(h_m(int(m))).rounds
    ).growth_exponent(tail=4)
    doc.section(
        "E4 — Lemma 4.2 / Proposition 4.3: Ω(σ) election on H_m (n = 4)",
        "**Paper claim:** every algorithm for H_m needs ≥ m rounds; hence "
        "Ω(σ) even at constant size. **Measured:** canonical election "
        "rounds at n = 4.",
        md_table(rows, ("m", "σ", "rounds", "floor m")),
        md_kv([("tail growth exponent in σ", f"{exp:.2f}")]),
        md_checklist(
            [
                ("elected, ≥ m, within O(n²σ) for every m", ok),
                ("linear-in-σ shape", 0.8 <= exp <= 1.2),
            ]
        ),
    )


def e5(doc):
    rows = []
    all_defeated = True
    for cand in candidate_portfolio():
        rep = defeat(cand, probe_m=64)
        all_defeated &= rep.defeated
        t = rep.first_tag0_transmission
        rows.append(
            (
                rep.candidate,
                t if t is not None else "—",
                f"H_{(t or 0) + 1}",
                "crash" if rep.crashed else len(rep.leaders),
                "yes" if rep.defeated else "NO",
            )
        )
    doc.section(
        "E5 — Proposition 4.4: no universal algorithm (even for n = 4)",
        "**Paper claim:** no single deterministic algorithm elects on all "
        "feasible 4-node configurations. **Measured:** for each candidate "
        "universal algorithm, the adversary finds its first-transmission "
        "round t and defeats it on H_{t+1}.",
        md_table(rows, ("candidate", "t", "killer config", "leaders", "defeated")),
        md_checklist([("every candidate defeated", all_defeated)]),
    )


def e6(doc):
    from repro.baselines.universal_candidates import (
        compare_executions,
        first_tag0_transmission,
    )

    rows = []
    ok = True
    for cand in candidate_portfolio():
        t = first_tag0_transmission(cand, probe_m=64)
        if t is None:
            continue
        per_node = compare_executions(h_m(t + 1), s_m(t + 1), cand)
        identical = all(per_node.values())
        ok &= identical
        rows.append((cand.name, t, f"H_{t+1} vs S_{t+1}", "yes" if identical else "NO"))
    doc.section(
        "E6 — Proposition 4.5: no distributed feasibility decision",
        "**Paper claim:** H_{t+1} (feasible) and S_{t+1} (infeasible) are "
        "indistinguishable to every node for any algorithm that first "
        "transmits at round t. **Measured:** per-node histories compared "
        "across both configurations.",
        md_table(rows, ("algorithm", "t", "pair", "all histories identical")),
        md_checklist([("indistinguishable for every probe", ok)]),
    )


def e7(doc):
    rows = []
    ok = True
    checked = 0
    for seed in range(6):
        cfg = seeded_cfg(seed, 16 + 4 * (seed % 3), 3)
        trace = classify(cfg)
        if not trace.feasible:
            continue
        r = elect_leader(cfg, trace=trace)
        checked += 1
        ok &= r.elected and r.within_bound()
        rows.append(
            (f"random seed {seed}", cfg.n, cfg.span, r.rounds, r.round_bound(), "yes" if r.elected else "NO")
        )
    # family rows where the schedule is genuinely long
    for name, cfg in (("G_8", g_m(8)), ("H_32", h_m(32))):
        r = elect_leader(cfg)
        checked += 1
        ok &= r.elected and r.within_bound()
        rows.append(
            (name, cfg.n, cfg.span, r.rounds, r.round_bound(), "yes" if r.elected else "NO")
        )
    doc.section(
        "E7 — Theorem 3.15: canonical DRIP elects within O(n²σ)",
        "**Paper claim:** every feasible configuration admits a dedicated "
        "O(n²σ)-round election. **Measured:** random feasible "
        "configurations, canonical protocol run distributedly.",
        md_table(rows, ("seed", "n", "σ", "rounds", "budget", "elected")),
        md_checklist(
            [(f"all {checked} feasible samples elected within budget", ok)]
        ),
    )


def e8(doc):
    rows = []
    identical = True
    for m in (8, 16, 32):
        cfg = g_m(m)
        t0 = time.perf_counter()
        a = classify(cfg)
        t_faithful = time.perf_counter() - t0
        t0 = time.perf_counter()
        b = fast_classify(cfg)
        t_fast = time.perf_counter() - t0
        identical &= traces_equal(a, b)
        rows.append(
            (
                f"G_{m} (n={cfg.n})",
                f"{t_faithful * 1e3:.2f}",
                f"{t_fast * 1e3:.2f}",
                f"{t_faithful / max(t_fast, 1e-9):.1f}×",
            )
        )
    doc.section(
        "E8 — Ablation: faithful Refine vs hash refinement",
        "**Claim:** the dict-based refinement replaces the paper's "
        "O(n²Δ)-per-iteration representative scan with "
        "O(nΔ log Δ)-per-iteration hashing while producing bit-identical "
        "traces (same partitions, class numbers and labels). **Measured:** "
        "identity asserted on every size; wall-clock compared. At these "
        "laptop scales label *construction* (shared by both variants) "
        "dominates, so the observed speedup is a modest constant — the "
        "asymptotic separation is in the refinement step only.",
        md_table(rows, ("workload", "faithful ms", "fast ms", "speedup")),
        md_checklist([("bit-identical traces on all sizes", identical)]),
    )


def e9(doc):
    rows = []
    for n in (8, 32, 128):
        cfg = build(complete_edges(n), n=n)
        ts = simulate(cfg, tree_split_algorithm(n).factory).max_done_local()
        wl = simulate(cfg, willard_algorithm(seed=5).factory).max_done_local()
        rows.append((n, ts, f"{2 * math.log2(n):.0f}", wl))
    doc.section(
        "E9 — Related-work contrast: labeled/randomized single-hop election",
        "**Paper context (§1.3):** with collision detection, deterministic "
        "labeled election takes O(log n) (tree splitting) and randomized "
        "O(log log n) expected (Willard). **Measured:** slots to elect on "
        "complete graphs.",
        md_table(rows, ("n", "tree-split slots", "~2·log₂n", "willard slots (seed 5)")),
    )


def e10(doc):
    rows = []
    ok = True
    for name, cfg in (
        ("H_3", h_m(3)),
        ("S_3", s_m(3)),
        ("G_2", g_m(2)),
        ("random n=12", seeded_cfg(3, 12, 2)),
    ):
        chain = classify(cfg).class_count_chain()
        strict = all(a < b for a, b in zip(chain[:-1], chain[1:]))
        capped = len(chain) - 1 <= math.ceil(cfg.n / 2)
        ok &= capped
        rows.append((name, " → ".join(map(str, chain)), "yes" if strict else "stops", capped))
    doc.section(
        "E10 — Observation 3.2 / Corollary 3.3: refinement monotonicity",
        "**Paper claim:** class counts never decrease, separation is "
        "permanent, and Classifier needs ≤ ⌈n/2⌉ iterations. **Measured:** "
        "class-count chains.",
        md_table(rows, ("configuration", "class counts", "strictly grows", "≤ ⌈n/2⌉ iters")),
        md_checklist([("iteration cap respected everywhere", ok)]),
    )


def e11(doc):
    census = exhaustive_cross_model_census(4, 1)
    rows = [
        (c.name, census.count(c), census.total, f"{census.count(c)/census.total:.3f}")
        for c in (CD, NO_CD, BEEP)
    ]
    doc.section(
        "E11 — Channel ablation: collision detection / no-CD / beeping",
        "**Question:** how load-bearing is the paper's collision-detection "
        "assumption? **Measured:** canonical-family feasibility under three "
        "channels, all 90 connected 4-node configurations with tags 0..1.",
        md_table(rows, ("channel", "feasible", "total", "fraction")),
        md_checklist(
            [
                ("no-cd ⊆ cd (CD only adds information)", census.inclusion_holds(NO_CD, CD)),
                ("beep ⊆ cd", census.inclusion_holds(BEEP, CD)),
                (
                    "no-cd and beep incomparable (witnesses both ways)",
                    bool(census.witnesses(NO_CD, BEEP, 1))
                    and bool(census.witnesses(BEEP, NO_CD, 1)),
                ),
            ]
        ),
    )


def e12(doc):
    rows = []
    exact = True
    for name, cfg in (
        ("H_16", h_m(16)),
        ("G_4", g_m(4)),
        ("random n=24", seeded_cfg(11, 24, 3)),
    ):
        trace = classify(cfg)
        protocol = CanonicalProtocol.from_trace(trace)
        network = trace.config
        t0 = time.perf_counter()
        simulate(network, protocol.factory, max_rounds=protocol.round_budget(network.span))
        t_sim = time.perf_counter() - t0
        t0 = time.perf_counter()
        replay_histories(trace)
        t_rep = time.perf_counter() - t0
        exact &= replay_matches_simulation(cfg)
        rows.append(
            (name, f"{t_sim*1e3:.2f}", f"{t_rep*1e3:.2f}", f"{t_sim/max(t_rep,1e-9):.1f}×")
        )
    doc.section(
        "E12 — Ablation: closed-form replay vs round-by-round simulation",
        "**Claim (Lemmas 3.7/3.8):** the canonical execution is fully "
        "predicted by the classifier trace. **Measured:** byte-identical "
        "histories, then wall-clock for both paths.",
        md_table(rows, ("configuration", "simulate ms", "replay ms", "speedup")),
        md_checklist([("replay byte-identical to simulation", exact)]),
    )


def e13(doc):
    shape_rows = []
    for name, edges in (
        ("path", path_edges(5)),
        ("cycle", cycle_edges(5)),
        ("star", star_edges(5)),
        ("complete", complete_edges(5)),
    ):
        r = min_feasible_span(edges, 5, max_span=2)
        shape_rows.append((name, r.span, "exhaustive" if r.exhaustive else "sampled"))
    ext = max_iterations(5, 1)
    hard = hardest_tags(path_edges(6), 6, 2, restarts=3, steps=30, seed=13)
    doc.section(
        "E13 — Extremal structure: span thresholds and hardest instances",
        "**Question:** how much wakeup asymmetry does a graph need, and "
        "how hard can instances be? **Measured:** minimal feasible span "
        "per shape (n = 5), classifier-iteration maximum (n = 5), and "
        "adversarial tag search (path, n = 6, span 2).",
        md_table(shape_rows, ("shape", "min feasible span", "search")),
        md_kv(
            [
                ("max classifier iterations at n=5, tags 0..1", f"{ext.iterations} of ⌈n/2⌉ = {ext.ceiling}"),
                ("hardest-tags election rounds (path n=6, σ≤2)", hard.objective),
                ("hardest tags found", dict(sorted(hard.config.tags.items()))),
            ]
        ),
        md_checklist([("span 0 infeasible for every shape (n ≥ 2)", all(r[1] >= 1 for r in shape_rows))]),
    )


def e14(doc):
    census = radio_vs_wired(enumerate_configurations(4, 1))
    rows = census.as_table()
    doc.section(
        "E14 — Radio vs wired anonymous networks (intro contrast)",
        "**Paper claim (§1.1):** anonymous radio is the most adverse "
        "scenario; wired anonymous networks elect from topology alone. "
        "**Measured:** Classifier vs unique-view feasibility, all 4-node "
        "configurations.",
        md_table(rows, ("kind", "count", "total")),
        md_checklist(
            [
                ("dominance: radio-feasible ⊆ wired-feasible", census.dominance_holds()),
                ("strict: wired-only witnesses exist", census.count("wired-only") > 0),
            ]
        ),
    )


def e15(doc):
    points = feasibility_probability(8, [0, 1, 2, 3, 4], samples=60, seed=17)
    rows = [(p.span, p.samples, p.feasible, f"{p.fraction:.2f}") for p in points]
    doc.section(
        "E15 — Feasibility probability vs span (time as symmetry breaker)",
        "**Question:** quantitatively, how quickly does wakeup-time "
        "slack unlock election? **Measured:** random connected G(8, 0.3), "
        "uniform tags 0..σ.",
        md_table(rows, ("span σ", "samples", "feasible", "fraction")),
        md_checklist(
            [
                ("σ = 0 exactly 0 (paper's opening observation)", points[0].fraction == 0.0),
                ("monotone-ish rise to ~1", points[-1].fraction > 0.9),
            ]
        ),
    )


def e16(doc):
    rows = []
    for n in (8, 32, 128):
        cfg = build(complete_edges(n), n=n)
        rr_algo = round_robin_algorithm(n)
        rr_exec = simulate(cfg, rr_algo.factory)
        ts = simulate(cfg, tree_split_algorithm(n).factory).max_done_local()
        anon = is_feasible(cfg)
        rows.append(
            (n, rr_exec.max_done_local(), ts, "no" if not anon else "yes")
        )
    doc.section(
        "E16 — What labels buy: round robin vs tree split vs anonymity",
        "**Paper context (§1.3):** labels + no collision detection → Θ(N) "
        "(round robin); labels + CD → Θ(log n) (tree split); anonymous + "
        "equal tags → infeasible at any size. **Measured:** slots on "
        "complete graphs; anonymous column uses all-zero tags.",
        md_table(
            rows,
            ("n", "round-robin slots (Θ(n))", "tree-split slots (Θ(log n))", "anonymous feasible"),
        ),
        md_checklist([("round robin matches N+1 slots exactly",
                       all(r[1] == round_robin_slots(r[0]) for r in rows))]),
    )


def e17(doc):
    from repro.wired import wired_elect, wired_election_agrees_with_views

    agree = all(
        wired_election_agrees_with_views(cfg)
        for cfg in enumerate_configurations(4, 1)
    )
    gap_rows = []
    for m in (2, 4, 8, 16):
        cfg = g_m(m)
        radio = elect_leader(cfg).rounds
        wired = wired_elect(cfg).rounds
        gap_rows.append(
            (m, cfg.n, radio, wired, f"{radio / (cfg.n + cfg.span + 1):.1f}")
        )
    hm_gaps = [elect_leader(h_m(m)).rounds / (4 + m + 1) for m in (4, 16, 64)]
    doc.section(
        "E17 — Distributed wired election & the O(n+σ) open problem",
        "**Substrate check:** the distributed view-exchange election "
        "(reliable port-numbered message passing) reproduces the "
        "centralized refinement verdict on every small configuration, and "
        "elects in exactly n rounds. **Open problem (paper conclusion):** "
        "does an O(n+σ) dedicated radio election exist? The measured gap "
        "rounds/(n+σ) of the canonical algorithm grows on G_m (headroom "
        "in the n dimension) but stays bounded on H_m (already "
        "near-optimal in σ).",
        md_table(
            gap_rows,
            ("m", "n", "radio rounds (canonical)", "wired rounds", "radio gap to n+σ"),
        ),
        md_kv(
            [
                (
                    "H_m gap rounds/(n+σ) at m = 4, 16, 64",
                    ", ".join(f"{g:.2f}" for g in hm_gaps),
                )
            ]
        ),
        md_checklist(
            [
                ("distributed wired == centralized refinement (90/90)", agree),
                ("G_m gap grows (open problem headroom)",
                 gap_rows[-1][2] / (gap_rows[-1][1] + 2) > gap_rows[0][2] / (gap_rows[0][1] + 2)),
                ("H_m gap bounded (< 4×)", max(hm_gaps) < 4.0),
            ]
        ),
    )


def e18(doc):
    from repro.core.canonical import CanonicalMatchError, build_canonical_data
    from repro.radio.faults import jam_nothing, jam_pairs, jammed_simulate
    from repro.radio.model import SILENCE

    trace = classify(g_m(2))
    protocol = CanonicalProtocol.from_trace(trace)
    network = trace.config
    budget = protocol.round_budget(network.span)
    ref = simulate(network, protocol.factory, max_rounds=budget)
    expected = ref.decide_leaders(protocol.decision)

    noop = jammed_simulate(
        network, protocol.factory, jammer=jam_nothing(), max_rounds=budget
    )
    noop_identical = noop.histories == ref.histories

    data = build_canonical_data(trace)
    sigma = data.sigma
    lo = data.phase_ends[-1] - sigma + 1
    trailing = jam_pairs(
        [
            (g, v)
            for v in network.nodes
            for g in range(
                lo + network.tag(v), data.phase_ends[-1] + network.tag(v) + 1
            )
        ]
    )
    trail_exec = jammed_simulate(
        network, protocol.factory, jammer=trailing, max_rounds=budget
    )
    trailing_ok = trail_exec.decide_leaders(protocol.decision) == expected

    leader = trace.leader
    block_region_end = len(data.lists[0]) * data.block_width
    local = next(
        i
        for i in range(1, block_region_end + 1)
        if ref.histories[leader][i] is SILENCE
    )
    try:
        derailed_exec = jammed_simulate(
            network,
            protocol.factory,
            jammer=jam_pairs([(ref.wake_rounds[leader] + local, leader)]),
            max_rounds=budget,
        )
        derail_outcome = derailed_exec.decide_leaders(protocol.decision)
        derailed = derail_outcome != expected
        derail_desc = str(derail_outcome or "none")
    except CanonicalMatchError:
        derailed = True
        derail_desc = "protocol-detected corruption"

    rows = [
        ("no-op jammer", "identical execution" if noop_identical else "DIFFERS"),
        ("jam all trailing-σ listen rounds", "leader unchanged" if trailing_ok else "DERAILED"),
        ("jam 1 in-block round of the leader", f"derailed → {derail_desc}"),
    ]
    doc.section(
        "E18 — Fault injection: robustness boundary under jamming",
        "**Question:** the model is failure-free — how brittle are its "
        "protocols? **Measured:** a jamming adversary against the "
        "canonical DRIP on G_2. Jamming provably-silent rounds (the "
        "trailing σ listen rounds of Lemma 3.7's schedule) is harmless; "
        "one corrupted in-block round of the leader is fatal — the "
        "history encoding has zero redundancy.",
        md_table(rows, ("jam schedule", "outcome")),
        md_checklist(
            [
                ("no-op jammer reproduces the reference execution", noop_identical),
                ("trailing-σ jamming harmless", trailing_ok),
                ("single in-block jam derails", derailed),
            ]
        ),
    )


def main() -> None:
    out = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(__file__).resolve().parent.parent / "EXPERIMENTS.md"
    t0 = time.perf_counter()
    doc = MarkdownDoc(
        "EXPERIMENTS — paper vs measured",
        "Reproduction record for *Deterministic Leader Election in "
        "Anonymous Radio Networks* (Miller, Pelc, Yadav; SPAA 2020, "
        "arXiv:2002.02641). The paper is a theory paper — its evaluation "
        "is a set of theorems, so each experiment asserts the *shape* of "
        "a claim (who wins, growth rate, impossibility) rather than "
        "testbed wall-clock. Absolute timings below are from the machine "
        "that generated this file.\n\n"
        "**Generated by** `python examples/generate_experiments_md.py` — "
        "do not edit by hand. The pytest-benchmark files in `benchmarks/` "
        "re-run every experiment with statistical timing; see "
        "`docs/experiments.md` for the experiment ↔ module ↔ claim index.",
    )
    for fn in (e1, e2, e3, e4, e5, e6, e7, e8, e9, e10, e11, e12, e13, e14, e15, e16, e17, e18):
        start = time.perf_counter()
        fn(doc)
        print(f"{fn.__name__}: {time.perf_counter() - start:.1f}s", flush=True)
    doc.add(
        f"---\n\n*Total generation time: {time.perf_counter() - t0:.1f}s.*"
    )
    doc.write(out)
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
