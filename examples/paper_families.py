#!/usr/bin/env python
"""The paper's Section 4 families, reproduced as running code.

* G_m  (Prop 4.1): feasible span-1 lines needing Ω(n) rounds;
* H_m  (Lemma 4.2): feasible 4-node lines needing >= m rounds (Ω(σ));
* S_m  (Prop 4.5): infeasible mirror-symmetric twins of H_m.

Run:  python examples/paper_families.py
"""

from repro import decide, elect
from repro.graphs.families import g_m, g_m_center, g_m_names, h_m, s_m
from repro.reporting.tables import format_table

# --- G_m: the Ω(n) family -----------------------------------------------
rows = []
for m in (2, 3, 4, 6):
    cfg = g_m(m)
    result = elect(cfg)
    names = g_m_names(m)
    rows.append(
        (
            f"G_{m}",
            cfg.n,
            cfg.span,
            result.rounds,
            m - 1,  # proof floor
            f"{names[result.leader]} (node {result.leader})",
        )
    )
    assert result.leader == g_m_center(m)
print(
    format_table(
        ("config", "n", "σ", "election rounds", "Ω(n) floor", "leader"),
        rows,
        title="Proposition 4.1 — G_m needs Ω(n) rounds (span fixed at 1)",
    )
)
print()

# --- H_m vs S_m: Ω(σ) and the feasibility frontier -----------------------
rows = []
for m in (1, 2, 4, 8, 16):
    hm, sm = h_m(m), s_m(m)
    h_res = elect(hm)
    rows.append(
        (
            m,
            decide(hm).decision,
            h_res.rounds,
            m,  # Lemma 4.2 floor
            decide(sm).decision,
        )
    )
    assert h_res.rounds >= m
print(
    format_table(
        ("m", "H_m feasible?", "H_m rounds", "Ω(σ) floor", "S_m feasible?"),
        rows,
        title=(
            "Lemma 4.2 / Prop 4.3 / Prop 4.5 — H_m (tags m,0,0,m+1) vs "
            "S_m (tags m,0,0,m)"
        ),
    )
)
print()
print(
    "Note the engine of Prop 4.5: H_m and S_m differ only in node d's "
    "tag,\nyet one is feasible and the other is not — and before round m "
    "no node\ncan tell them apart."
)
