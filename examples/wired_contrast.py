#!/usr/bin/env python
"""How adverse is the radio model? Wired contrast and span thresholds.

Two quantitative readings of the paper's introduction:

1. *"Anonymous radio networks are the most adverse scenario"* — in the
   wired anonymous model (reliable simultaneous delivery), election works
   whenever some node has a unique view; in the radio model the channel
   itself gates communication. The contrast census shows radio-feasible ⊆
   wired-feasible, strictly.
2. *"Time as symmetry breaker"* — the probability that a random
   configuration is feasible as a function of its span: exactly 0 at
   span 0, then rising steeply.

Run:  python examples/wired_contrast.py
"""

from __future__ import annotations

from repro.analysis.extremal import feasibility_probability, min_feasible_span
from repro.analysis.views import radio_vs_wired, wired_feasible
from repro.core.classifier import is_feasible
from repro.core.configuration import Configuration
from repro.graphs.enumeration import enumerate_configurations
from repro.graphs.generators import (
    complete_edges,
    cycle_edges,
    path_edges,
    star_edges,
    wheel_edges,
)
from repro.reporting.tables import format_table


def main() -> None:
    # --- 1. radio vs wired ---------------------------------------------
    census = radio_vs_wired(enumerate_configurations(4, 1))
    print(
        format_table(
            census.TABLE_HEADERS,
            census.as_table(),
            title="Radio (Classifier) vs wired (unique view), n=4, tags 0..1",
        )
    )
    print(f"  dominance radio ⊆ wired: {census.dominance_holds()}")
    example = census.wired_only_examples(limit=1)[0]
    print(
        f"  wired-only witness: edges={example.edges}, tags={example.tags}"
    )
    print()

    # an all-equal-tags graph: radio-hopeless, wired-trivial
    broom = Configuration(
        [(0, 1), (1, 2), (1, 3), (3, 4)], {i: 0 for i in range(5)}
    )
    print(
        "all-zero-tag broom: radio feasible = "
        f"{is_feasible(broom)}, wired feasible = {wired_feasible(broom)}"
    )
    print(
        "  (equal tags silence the radio network forever; the wired model "
        "elects from the degree asymmetry alone)"
    )
    print()

    # --- 2. minimal feasible span per shape -----------------------------
    shapes = {
        "path": path_edges(6),
        "cycle": cycle_edges(6),
        "star": star_edges(6),
        "complete": complete_edges(6),
        "wheel": wheel_edges(6),
    }
    rows = []
    for name, edges in shapes.items():
        r = min_feasible_span(edges, 6, max_span=3)
        rows.append((name, r.span, str(dict(sorted(r.witness.items())))))
    print(
        format_table(
            ("shape (n=6)", "min feasible span", "witness tags"),
            rows,
            title="Least wakeup asymmetry needed per graph shape",
        )
    )
    print()

    # --- 3. probability-of-feasibility curve ----------------------------
    points = feasibility_probability(8, [0, 1, 2, 3, 4], samples=60, seed=17)
    print(
        format_table(
            ("span σ", "samples", "feasible", "fraction"),
            [(p.span, p.samples, p.feasible, f"{p.fraction:.2f}") for p in points],
            title="P(feasible) for random connected G(8, 0.3), uniform tags 0..σ",
        )
    )
    print(
        "  span 0 is provably 0; one round of wakeup slack already breaks "
        "most symmetries."
    )


if __name__ == "__main__":
    main()
