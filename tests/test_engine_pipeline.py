"""Sharded census pipeline: equality with the serial path, resume, CLI.

The pipeline's contract is bit-for-bit equality with
:func:`repro.analysis.census.census` for every shard count, worker
count, cache state, and resume history — these tests pin that contract,
including on the rendered table bytes.
"""

import json
import os

import pytest

from repro.analysis.census import census, random_census
from repro.engine import (
    EnumerationWorkload,
    RandomGnpWorkload,
    ResultCache,
    SequenceWorkload,
    as_workload,
    plan_shards,
    sharded_census,
)
from repro.reporting.tables import format_table

from conftest import random_config_batch


def render(result) -> str:
    """The census table bytes (what the CLI prints)."""
    return format_table(result.TABLE_HEADERS, result.as_table())


@pytest.fixture(scope="module")
def workload():
    return RandomGnpWorkload([5, 6, 7], span=2, p=0.3, samples=8, seed=11)


@pytest.fixture(scope="module")
def serial(workload):
    return census(iter(workload), measure_rounds=True)


# ----------------------------------------------------------------------
# shard planning
# ----------------------------------------------------------------------
class TestPlanShards:
    def test_balanced_contiguous_cover(self):
        shards = plan_shards(10, 3)
        assert [(s.start, s.stop) for s in shards] == [(0, 4), (4, 7), (7, 10)]
        assert [s.index for s in shards] == [0, 1, 2]

    def test_more_shards_than_items(self):
        shards = plan_shards(2, 5)
        assert [(s.start, s.stop) for s in shards] == [(0, 1), (1, 2)]

    def test_single_shard(self):
        (s,) = plan_shards(7, 1)
        assert (s.start, s.stop, s.size) == (0, 7, 7)

    def test_zero_items(self):
        assert plan_shards(0, 4) == []

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            plan_shards(10, 0)


# ----------------------------------------------------------------------
# workloads
# ----------------------------------------------------------------------
class TestWorkloads:
    def test_random_workload_slices_match_full_iteration(self, workload):
        full = list(workload)
        assert len(full) == len(workload) == 24
        sliced = list(workload.generate(0, 10)) + list(workload.generate(10, 24))
        assert sliced == full

    def test_random_workload_matches_serial_census_order(self, workload):
        # same seeding formula as random_census -> comparable row-for-row
        direct = random_census(
            [5, 6, 7], span=2, p=0.3, samples=8, seed=11, use_engine=False
        )
        engine = sharded_census(workload, group_by=lambda c: c.n, num_shards=4)
        assert engine.result.rows == direct.rows

    def test_enumeration_workload_slices(self):
        w = EnumerationWorkload(3, 1)
        assert list(w.generate(2, 5)) == list(w)[2:5]

    def test_as_workload_coerces_sequences(self):
        batch = random_config_batch(4, base_seed=9, n_hi=5)
        w = as_workload(batch)
        assert isinstance(w, SequenceWorkload)
        assert list(w) == batch
        assert as_workload(w) is w


# ----------------------------------------------------------------------
# equality with the serial census
# ----------------------------------------------------------------------
class TestEquality:
    @pytest.mark.parametrize("num_shards", [1, 2, 5, 24, 100])
    def test_any_shard_count_bit_for_bit(self, workload, serial, num_shards):
        run = sharded_census(workload, num_shards=num_shards, measure_rounds=True)
        assert run.result.rows == serial.rows
        assert render(run.result) == render(serial)  # byte-identical table

    def test_parallel_workers_bit_for_bit(self, workload, serial):
        run = sharded_census(
            workload, num_shards=3, max_workers=2, measure_rounds=True
        )
        assert run.result.rows == serial.rows
        assert render(run.result) == render(serial)

    def test_warm_cache_bit_for_bit(self, workload, serial):
        cache = ResultCache()
        sharded_census(workload, cache=cache, measure_rounds=True)
        run = sharded_census(
            workload, num_shards=7, cache=cache, measure_rounds=True
        )
        assert run.stats.classified == 0
        assert render(run.result) == render(serial)

    def test_rounds_upgrade_on_cached_entries(self, workload, serial):
        # a cache populated WITHOUT rounds must transparently upgrade
        cache = ResultCache()
        sharded_census(workload, cache=cache, measure_rounds=False)
        run = sharded_census(workload, cache=cache, measure_rounds=True)
        assert run.result.rows == serial.rows

    def test_foreign_cache_records_self_heal(self, workload, serial):
        # a cache polluted by a different evaluator's records (against
        # the one-cache-per-evaluator convention) is reclassified and
        # overwritten, not crashed on
        from repro.analysis.extremal import _feasible_record
        from repro.engine import cached_evaluate

        cache = ResultCache()
        for cfg in workload:
            cached_evaluate(cfg, cache, _feasible_record)
        run = sharded_census(workload, cache=cache, measure_rounds=True)
        assert run.stats.classified > 0
        assert render(run.result) == render(serial)

    def test_bounded_lru_cache_still_exact(self, workload, serial):
        # an aggressively bounded LRU forces evictions mid-run; the
        # pipeline pins shard records locally, so results stay exact
        run = sharded_census(
            workload,
            num_shards=3,
            cache=ResultCache(max_entries=2),
            measure_rounds=True,
        )
        assert render(run.result) == render(serial)

    def test_exhaustive_population_with_dedup(self):
        w = EnumerationWorkload(4, 1)
        direct = census(iter(w))
        run = sharded_census(w, num_shards=6)
        assert run.result.rows == direct.rows
        # the canonical cache classified strictly fewer than total configs,
        # and every item is accounted for exactly once
        assert run.stats.classified < run.stats.total_configs
        assert (
            run.stats.classified + run.stats.cache_hits + run.stats.deduped
            == run.stats.total_configs
        )

    def test_random_census_engine_default_equals_reference(self):
        kw = dict(span=2, p=0.3, samples=6, seed=4)
        reference = random_census([5, 6], use_engine=False, **kw)
        engine = random_census([5, 6], **kw)  # default: engine path
        sharded = random_census([5, 6], num_shards=3, max_workers=2, **kw)
        assert render(engine) == render(reference) == render(sharded)


# ----------------------------------------------------------------------
# resume semantics
# ----------------------------------------------------------------------
class TestResume:
    def test_full_resume_replays_checkpoints(self, tmp_path, workload, serial):
        ckpt = str(tmp_path / "ckpt")
        first = sharded_census(
            workload, num_shards=4, checkpoint_dir=ckpt, measure_rounds=True
        )
        assert sorted(os.listdir(ckpt)) == [
            f"shard-{i:05d}.json" for i in range(4)
        ]
        resumed = sharded_census(
            workload,
            num_shards=4,
            checkpoint_dir=ckpt,
            cache=ResultCache(),  # fresh cache: rows come from checkpoints
            measure_rounds=True,
        )
        assert resumed.stats.shards_resumed == 4
        assert resumed.stats.classified == 0
        assert render(resumed.result) == render(first.result) == render(serial)

    def test_partial_resume_recomputes_missing_shard(
        self, tmp_path, workload, serial
    ):
        ckpt = str(tmp_path / "ckpt")
        sharded_census(
            workload, num_shards=4, checkpoint_dir=ckpt, measure_rounds=True
        )
        os.remove(os.path.join(ckpt, "shard-00002.json"))  # "interrupted" run
        resumed = sharded_census(
            workload,
            num_shards=4,
            checkpoint_dir=ckpt,
            cache=ResultCache(),
            measure_rounds=True,
        )
        assert resumed.stats.shards_resumed == 3
        assert resumed.stats.classified > 0
        assert render(resumed.result) == render(serial)

    def test_mismatched_options_invalidate_checkpoints(self, tmp_path, workload):
        ckpt = str(tmp_path / "ckpt")
        sharded_census(
            workload, num_shards=2, checkpoint_dir=ckpt, measure_rounds=True
        )
        # different measure_rounds -> fingerprints differ -> recompute
        rerun = sharded_census(
            workload, num_shards=2, checkpoint_dir=ckpt, measure_rounds=False
        )
        assert rerun.stats.shards_resumed == 0

    def test_different_group_by_invalidates_checkpoints(self, tmp_path, workload):
        ckpt = str(tmp_path / "ckpt")
        sharded_census(workload, num_shards=2, checkpoint_dir=ckpt)
        rerun = sharded_census(
            workload, num_shards=2, checkpoint_dir=ckpt, group_by=lambda c: c.n
        )
        # grouping changed -> fingerprints differ -> rows recomputed
        assert rerun.stats.shards_resumed == 0
        assert set(rerun.result.rows) == {5, 6, 7}

    def test_different_sequence_population_invalidates_checkpoints(
        self, tmp_path
    ):
        ckpt = str(tmp_path / "ckpt")
        pop_a = SequenceWorkload(random_config_batch(8, base_seed=1, n_hi=5))
        pop_b = SequenceWorkload(random_config_batch(8, base_seed=99, n_hi=5))
        sharded_census(pop_a, num_shards=2, checkpoint_dir=ckpt)
        rerun = sharded_census(pop_b, num_shards=2, checkpoint_dir=ckpt)
        # same size, different configs -> content digest differs -> recompute
        assert rerun.stats.shards_resumed == 0
        assert rerun.result.rows == census(iter(pop_b)).rows

    def test_enumeration_labeled_flag_changes_fingerprint(self):
        plain = EnumerationWorkload(3, 1)
        labeled = EnumerationWorkload(3, 1, labeled=True)
        assert plain.describe() != labeled.describe()

    def test_different_shard_count_ignores_stale_files(self, tmp_path, workload, serial):
        ckpt = str(tmp_path / "ckpt")
        sharded_census(
            workload, num_shards=4, checkpoint_dir=ckpt, measure_rounds=True
        )
        rerun = sharded_census(
            workload, num_shards=3, checkpoint_dir=ckpt, measure_rounds=True
        )
        # shard ranges moved, so old files fail validation, results stay right
        assert render(rerun.result) == render(serial)

    def test_corrupt_checkpoint_recomputed(self, tmp_path, workload, serial):
        ckpt = str(tmp_path / "ckpt")
        sharded_census(
            workload, num_shards=2, checkpoint_dir=ckpt, measure_rounds=True
        )
        with open(os.path.join(ckpt, "shard-00000.json"), "w") as fh:
            fh.write("{not json")
        rerun = sharded_census(
            workload, num_shards=2, checkpoint_dir=ckpt, measure_rounds=True
        )
        assert rerun.stats.shards_resumed == 1
        assert render(rerun.result) == render(serial)

    def test_truncated_checkpoint_recomputed(self, tmp_path, workload, serial):
        """A checkpoint torn mid-write (e.g. the disk filled, or the
        file was copied while being written) resumes by recomputing the
        shard, never by crashing or merging partial rows."""
        ckpt = str(tmp_path / "ckpt")
        sharded_census(
            workload, num_shards=2, checkpoint_dir=ckpt, measure_rounds=True
        )
        path = os.path.join(ckpt, "shard-00001.json")
        with open(path, "r", encoding="utf-8") as fh:
            full = fh.read()
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(full[: len(full) // 2])  # torn: valid prefix, no tail
        rerun = sharded_census(
            workload, num_shards=2, checkpoint_dir=ckpt, measure_rounds=True
        )
        assert rerun.stats.shards_resumed == 1
        assert render(rerun.result) == render(serial)

    def test_wrong_shape_checkpoint_recomputed(self, tmp_path, workload, serial):
        """Valid JSON of the wrong shape (hand-edited, foreign tool) is
        treated as stale, not trusted."""
        ckpt = str(tmp_path / "ckpt")
        first = sharded_census(
            workload, num_shards=2, checkpoint_dir=ckpt, measure_rounds=True
        )
        path = os.path.join(ckpt, "shard-00000.json")
        with open(path, "r", encoding="utf-8") as fh:
            obj = json.load(fh)
        obj["rows"] = {"not": "a list"}
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(obj, fh)
        rerun = sharded_census(
            workload, num_shards=2, checkpoint_dir=ckpt, measure_rounds=True
        )
        assert rerun.stats.shards_resumed == 1
        assert render(rerun.result) == render(first.result) == render(serial)

    def test_checkpoint_write_leaves_no_temp_files(self, tmp_path, workload):
        ckpt = str(tmp_path / "ckpt")
        sharded_census(workload, num_shards=3, checkpoint_dir=ckpt)
        assert all(".tmp" not in name for name in os.listdir(ckpt))


# ----------------------------------------------------------------------
# CLI integration
# ----------------------------------------------------------------------
class TestCli:
    def run_census(self, capsys, *extra):
        from repro.cli import main

        assert (
            main(
                [
                    "census",
                    "--n",
                    "5,6",
                    "--span",
                    "2",
                    "--samples",
                    "6",
                    "--seed",
                    "2",
                    *extra,
                ]
            )
            == 0
        )
        return capsys.readouterr().out

    def test_census_sharded_output_matches_plain(self, capsys, tmp_path):
        plain = self.run_census(capsys)
        sharded = self.run_census(
            capsys, "--shards", "3", "--cache", str(tmp_path / "c.jsonl")
        )
        table = lambda out: [  # noqa: E731
            line for line in out.splitlines() if line.startswith(("|", "+"))
        ]
        assert table(plain) == table(sharded)
        assert "engine:" in sharded and "cache:" in sharded

    def test_census_cache_reuse_across_invocations(self, capsys, tmp_path):
        cache = str(tmp_path / "c.jsonl")
        self.run_census(capsys, "--cache", cache)
        out = self.run_census(capsys, "--cache", cache)
        assert "0 classified" in out  # second CLI run fully cache-served

    def test_census_checkpoint_resume(self, capsys, tmp_path):
        ckpt = str(tmp_path / "ckpt")
        self.run_census(capsys, "--shards", "2", "--checkpoint", ckpt)
        out = self.run_census(capsys, "--shards", "2", "--checkpoint", ckpt)
        assert "2 resumed" in out

    def test_cli_checkpoints_resumable_from_api(self, capsys, tmp_path):
        # CLI and random_census share group_by_n, so their checkpoint
        # fingerprints are interchangeable for the same census
        from repro.analysis.census import group_by_n

        ckpt = str(tmp_path / "ckpt")
        self.run_census(capsys, "--shards", "2", "--checkpoint", ckpt)
        run = sharded_census(
            RandomGnpWorkload([5, 6], span=2, p=0.3, samples=6, seed=2),
            group_by=group_by_n,
            num_shards=2,
            checkpoint_dir=ckpt,
        )
        assert run.stats.shards_resumed == 2
