"""Tests for ASCII space-time rendering (repro.reporting.timeline)."""

import pytest

from repro.core.canonical import CanonicalProtocol
from repro.core.classifier import classify
from repro.core.configuration import Configuration, line_configuration
from repro.graphs.families import h_m
from repro.radio.protocol import AlwaysListenDRIP, ScheduleDRIP
from repro.radio.simulator import simulate
from repro.reporting.timeline import (
    legend,
    timeline,
    transmission_density,
)


def canonical_execution(cfg, record_trace=True):
    trace = classify(cfg)
    protocol = CanonicalProtocol.from_trace(trace)
    network = trace.config
    execution = simulate(
        network,
        protocol.factory,
        max_rounds=protocol.round_budget(network.span),
        record_trace=record_trace,
    )
    return network, protocol, execution


class TestTimeline:
    def test_grid_shape(self):
        network, _, execution = canonical_execution(h_m(1))
        text = timeline(execution)
        lines = text.splitlines()
        assert len(lines) == 2 + network.n  # header + ruler + one per node
        widths = {len(line) for line in lines[2:]}
        assert len(widths) == 1  # aligned rows

    def test_symbols_present_and_sensible(self):
        network, _, execution = canonical_execution(h_m(2))
        text = timeline(execution)
        assert "T" in text  # someone transmitted
        assert "z" in text  # late wakers slept
        assert "!" in text  # wakeups marked
        assert "#" in text or text  # termination may be past the window

    def test_sleep_before_tag(self):
        network, _, execution = canonical_execution(h_m(3))
        text = timeline(execution)
        # node 0 has tag m=3: its row starts with 3 z's then !
        row0 = next(l for l in text.splitlines() if l.startswith("0 |"))
        cells = row0.split("|", 1)[1]
        assert cells[:4] == "zzz!"

    def test_window(self):
        _, _, execution = canonical_execution(h_m(1))
        text = timeline(execution, start=2, end=5)
        row = text.splitlines()[2]
        assert len(row.split("|", 1)[1]) == 4

    def test_bad_window_rejected(self):
        _, _, execution = canonical_execution(h_m(1))
        with pytest.raises(ValueError):
            timeline(execution, start=5, end=2)
        with pytest.raises(ValueError):
            timeline(execution, start=-1)

    def test_without_trace_no_transmit_marks(self):
        _, _, execution = canonical_execution(h_m(1), record_trace=False)
        text = timeline(execution)  # must not raise
        assert "T" not in text  # transmissions indistinguishable from silence

    def test_message_symbol(self):
        cfg = line_configuration([0, 0])

        def factory(v):
            if v == 0:
                return ScheduleDRIP({1: "m"}, done_round=3)
            return AlwaysListenDRIP(3)

        execution = simulate(cfg, factory, record_trace=True)
        text = timeline(execution)
        row1 = next(l for l in text.splitlines() if l.startswith("1 |"))
        assert "<" in row1

    def test_legend_mentions_all_symbols(self):
        text = legend()
        for sym in "z!T.*<#":
            assert sym in text


class TestDensity:
    def test_canonical_executions_are_sparse(self):
        _, _, execution = canonical_execution(h_m(8))
        density = transmission_density(execution)
        # one transmission per node per phase: far below 50%
        assert 0 < density < 0.5

    def test_requires_trace(self):
        _, _, execution = canonical_execution(h_m(1), record_trace=False)
        with pytest.raises(ValueError):
            transmission_density(execution)
