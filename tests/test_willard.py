"""Unit tests for the randomized single-hop baseline."""

import pytest

from repro.baselines.willard import (
    WillardDRIP,
    willard_algorithm,
    willard_expected_slots_bound,
)
from repro.graphs.generators import complete_configuration
from repro.radio.simulator import simulate


def run(n, seed):
    algo = willard_algorithm(seed=seed)
    cfg = complete_configuration([0] * n)
    ex = simulate(cfg, algo.factory, max_rounds=50_000)
    return ex, ex.decide_leaders(algo.decision)


class TestElection:
    @pytest.mark.parametrize("n", [2, 3, 5, 8, 16, 40])
    def test_unique_leader(self, n):
        ex, leaders = run(n, seed=7)
        assert len(leaders) == 1, f"n={n}: {leaders}"

    def test_different_seeds_can_differ_but_always_elect(self):
        outcomes = set()
        for seed in range(6):
            _, leaders = run(8, seed)
            assert len(leaders) == 1
            outcomes.add(leaders[0])
        # randomization: over several seeds, not always the same node
        assert len(outcomes) >= 2

    def test_all_terminate_same_round(self):
        ex, _ = run(10, seed=3)
        assert len(set(ex.done_local.values())) == 1

    def test_deterministic_given_seed(self):
        a, la = run(12, seed=11)
        b, lb = run(12, seed=11)
        assert la == lb
        assert a.max_done_local() == b.max_done_local()


class TestSlotCounts:
    def test_expected_slots_small(self):
        # average over seeds stays far below the deterministic log bound
        ns = [8, 64]
        means = {}
        for n in ns:
            counts = [run(n, seed)[0].max_done_local() for seed in range(10)]
            means[n] = sum(counts) / len(counts)
        for n in ns:
            assert means[n] <= willard_expected_slots_bound(n), means

    def test_bound_helper_monotone_enough(self):
        assert willard_expected_slots_bound(4) <= willard_expected_slots_bound(2**16)


class TestSafetyValve:
    def test_max_slots_terminates_lone_node(self):
        # n = 1 cannot elect (no ack partner); the valve stops it.
        algo = willard_algorithm(seed=1, max_slots=50)
        cfg = complete_configuration([0])
        ex = simulate(cfg, algo.factory, max_rounds=200)
        assert ex.done_local[0] <= 51

    def test_drip_construction(self):
        import random

        d = WillardDRIP(random.Random(1))
        assert d._phase == "double"
