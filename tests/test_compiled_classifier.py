"""Cross-algorithm agreement: reference == fast == compiled == batch.

The contract every non-reference implementation signs is bit-for-bit
:class:`~repro.core.trace.ClassifierTrace` equality with the faithful
reference — same labels, class numbering, representatives, decision and
leader — plus error-path parity and sensible op metering on the
incremental path. These tests enforce it through the shared differential
harness (:mod:`repro.testing`) on hypothesis-generated configurations
(varied tags, spans, densities and non-integer node names) and on
targeted units.
"""

import pytest
from hypothesis import HealthCheck, given, settings

from conftest import (
    assert_trace_equal,
    configurations,
    diverse_configurations,
    random_config_batch,
)

from repro.core.classifier import (
    ALGORITHM_NAMES,
    ClassifierInvariantError,
    classifier_ops,
    classify,
    is_feasible,
    reference_classify,
    resolve_algorithm,
)
from repro.core.compiled import (
    IndexedConfiguration,
    LabelInterner,
    compile_configuration,
    compiled_classify,
)
from repro.core.configuration import (
    Configuration,
    ConfigurationError,
    line_configuration,
)
from repro.core.fast_classifier import fast_classify
from repro.core.partition import OpCounter
from repro.graphs.families import g_m

relaxed = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# ----------------------------------------------------------------------
# trace agreement
# ----------------------------------------------------------------------
@relaxed
@given(configurations(max_n=9, max_span=4))
def test_three_algorithms_agree(cfg):
    ref = reference_classify(cfg)
    assert_trace_equal(fast_classify(cfg), ref, context="fast")
    assert_trace_equal(compiled_classify(cfg), ref, context="compiled")


@relaxed
@given(configurations(max_n=7, max_span=3))
def test_agreement_survives_non_integer_node_names(cfg):
    """The compiled re-indexing must be transparent to node identity:
    relabel the nodes to (sortable) strings and the traces still agree,
    with the leader reported under the new name."""
    named = cfg.relabel({v: f"node-{v:03d}" for v in cfg.nodes})
    ref = reference_classify(named)
    assert_trace_equal(compiled_classify(named), ref, context="compiled")
    assert_trace_equal(fast_classify(named), ref, context="fast")
    if ref.feasible:
        assert isinstance(ref.leader, str)


@relaxed
@given(diverse_configurations(max_n=8, max_span=3))
def test_dispatcher_knob_is_pure_performance(cfg):
    """Every ``algorithm`` value yields the same trace through classify
    — including on shifted-tag and string-named configurations."""
    ref = classify(cfg, algorithm="reference")
    for algorithm in ALGORITHM_NAMES:
        assert_trace_equal(
            classify(cfg, algorithm=algorithm), ref, context=algorithm
        )


def test_agreement_on_seeded_batch_with_shifted_tags():
    """Tag shifts normalize away identically in all implementations."""
    for cfg in random_config_batch(25, base_seed=4242):
        shifted = cfg.shift_tags(3)
        ref = reference_classify(shifted)
        assert_trace_equal(compiled_classify(shifted), ref)


# ----------------------------------------------------------------------
# error-path parity
# ----------------------------------------------------------------------
def test_unknown_algorithm_rejected():
    cfg = line_configuration([0, 1])
    with pytest.raises(ValueError, match="unknown classifier algorithm"):
        classify(cfg, algorithm="quantum")
    with pytest.raises(ValueError):
        resolve_algorithm("quantum")


def test_fast_algorithm_refuses_op_metering():
    cfg = line_configuration([0, 1])
    with pytest.raises(ValueError, match="does not meter"):
        classify(cfg, algorithm="fast", count_ops=True)


def test_disconnected_input_fails_identically_for_every_algorithm():
    """Disconnection is rejected at Configuration construction, before
    any algorithm runs — so all knob values share the error path."""
    with pytest.raises(ConfigurationError, match="not connected"):
        Configuration([(0, 1)], {0: 0, 1: 0, 2: 1})
    for algorithm in ALGORITHM_NAMES:
        with pytest.raises(ConfigurationError):
            classify(
                Configuration([(0, 1)], {0: 0, 1: 0, 2: 1}),
                algorithm=algorithm,
            )


def test_invariant_violation_parity(monkeypatch):
    """Starve every implementation of iterations (fake ⌈n/2⌉ = 0): each
    must raise ClassifierInvariantError, not return a partial trace."""

    class ZeroCeil:
        @staticmethod
        def ceil(x):
            return 0

    import repro.core.batch as batch_mod
    import repro.core.classifier as ref_mod
    import repro.core.compiled as compiled_mod
    import repro.core.fast_classifier as fast_mod

    cfg = line_configuration([0, 1, 0])
    runs = [
        (ref_mod, lambda: reference_classify(cfg)),
        (fast_mod, lambda: fast_classify(cfg)),
        (compiled_mod, lambda: compiled_classify(cfg)),
    ]
    if batch_mod.HAVE_NUMPY:
        runs.append((batch_mod, lambda: classify(cfg, algorithm="batch")))
    for mod, run in runs:
        monkeypatch.setattr(mod, "math", ZeroCeil)
        with pytest.raises(ClassifierInvariantError, match="Lemma 3.4"):
            run()
        monkeypatch.undo()


# ----------------------------------------------------------------------
# op metering on the incremental path
# ----------------------------------------------------------------------
def test_compiled_op_counter_sanity():
    """Compiled metering is positive, splits into both counters, and on
    a many-iteration workload undercuts the reference accounting."""
    cfg = g_m(8)
    counter = OpCounter()
    trace = compiled_classify(cfg, counter=counter)
    assert counter.triple_ops > 0
    assert counter.label_ops > 0
    assert trace.total_ops == counter.total > 0
    assert counter.total < reference_classify(cfg, count_ops=True).total_ops


def test_compiled_frontier_shrinks_metered_work():
    """The incremental win is observable in the meters: on G_20 (where
    splits crawl outward for Θ(n) iterations), the compiled label work
    stays well below one full-population recompute per iteration."""
    cfg = g_m(20)
    counter = OpCounter()
    trace = compiled_classify(cfg, counter=counter)
    iters = trace.num_iterations
    assert iters == 20  # the split really does crawl outward
    # recomputing every label every iteration costs at least
    # sum(deg) = 2·m triple-op units per iteration (2·80·20 = 3200
    # here); the frontier path must land far below that
    assert counter.triple_ops < cfg.n * iters  # 982 < 1620 measured


def test_classifier_ops_pins_reference_units():
    """Lemma 3.5 accounting stays tied to the faithful implementation
    no matter what the repo-wide default algorithm is."""
    cfg = g_m(3)
    assert (
        classifier_ops(cfg)
        == reference_classify(cfg, count_ops=True).total_ops
    )


# ----------------------------------------------------------------------
# the compiled representation itself
# ----------------------------------------------------------------------
def test_compile_configuration_shape():
    cfg = Configuration([("b", "c"), ("a", "b")], {"a": 2, "b": 3, "c": 4})
    comp = compile_configuration(cfg)
    assert isinstance(comp, IndexedConfiguration)
    assert comp.nodes == ("a", "b", "c")
    assert comp.tags == (0, 1, 2)  # normalized
    assert comp.adj == ((1,), (0, 2), (1,))
    assert comp.adj_offsets == (0, 1, 3, 4)
    assert comp.adj_targets == (1, 0, 2, 1)
    assert comp.n == 3
    assert comp.num_edges == 2
    assert comp.span == 2
    assert [comp.degree(i) for i in range(3)] == [1, 2, 1]


def test_compiled_representation_is_shared_with_canon():
    """One compilation step serves classifier and canon alike: the canon
    package's IndexedGraph/index_graph are the compiled core's."""
    from repro.canon.refine import IndexedGraph, index_graph

    assert IndexedGraph is IndexedConfiguration
    cfg = line_configuration([0, 2, 1])
    assert index_graph(cfg) == compile_configuration(cfg)


def test_label_interner_dense_ids():
    interner = LabelInterner()
    a = interner.intern(((1, 2, 1),))
    b = interner.intern(((1, 3, 2),))
    assert (a, b) == (0, 1)
    assert interner.intern(((1, 2, 1),)) == a  # stable on re-intern
    assert interner.label(b) == ((1, 3, 2),)
    assert len(interner) == 2


def test_is_feasible_knob_passthrough():
    cfg = line_configuration([0, 1, 0])
    assert all(
        is_feasible(cfg, algorithm=a) for a in ALGORITHM_NAMES
    )
