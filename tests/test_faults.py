"""Tests for jamming fault injection (repro.radio.faults)."""

import pytest

from repro.core.canonical import CanonicalMatchError, CanonicalProtocol
from repro.core.classifier import classify
from repro.core.configuration import Configuration, line_configuration
from repro.graphs.families import g_m, h_m
from repro.radio.faults import (
    JammedRadioSimulator,
    jam_nothing,
    jam_pairs,
    jam_rounds,
    jammed_simulate,
)
from repro.radio.model import COLLISION, SILENCE, Message
from repro.radio.protocol import AlwaysListenDRIP, ScheduleDRIP, anonymous_factory
from repro.radio.simulator import simulate


def canonical_setup(cfg):
    trace = classify(cfg)
    protocol = CanonicalProtocol.from_trace(trace)
    network = trace.config
    budget = protocol.round_budget(network.span)
    return trace, protocol, network, budget


class TestSchedules:
    def test_jam_nothing_is_false_everywhere(self):
        j = jam_nothing()
        assert not j(0, 0) and not j(99, "x")

    def test_jam_pairs(self):
        j = jam_pairs([(3, "a"), (5, "b")])
        assert j(3, "a") and j(5, "b")
        assert not j(3, "b") and not j(4, "a")

    def test_jam_rounds_hits_all_nodes(self):
        j = jam_rounds([2, 7])
        assert j(2, "anything") and j(7, 0)
        assert not j(3, 0)


class TestFailureFreeEquivalence:
    """With no jamming, the jammed simulator is the reference simulator."""

    @pytest.mark.parametrize("cfg", [h_m(2), g_m(2), line_configuration([0, 1, 0])],
                             ids=lambda c: f"n{c.n}s{c.span}")
    def test_identical_to_reference(self, cfg):
        trace, protocol, network, budget = canonical_setup(cfg)
        ref = simulate(network, protocol.factory, max_rounds=budget)
        jam = jammed_simulate(
            network, protocol.factory, jammer=jam_nothing(), max_rounds=budget
        )
        assert ref.histories == jam.histories
        assert ref.wake_rounds == jam.wake_rounds
        assert ref.done_local == jam.done_local


class TestJammingSemantics:
    def test_jammed_listener_hears_noise(self):
        cfg = line_configuration([0, 0])

        def factory(v):
            if v == 0:
                return ScheduleDRIP({1: "hi"}, done_round=3)
            return AlwaysListenDRIP(3)

        jam = jammed_simulate(cfg, factory, jammer=jam_pairs([(1, 1)]))
        # node 1's local round 1 happens in global round 1 (tag 0)
        assert jam.histories[1][1] is COLLISION
        clean = jammed_simulate(cfg, factory, jammer=jam_nothing())
        assert clean.histories[1][1] == Message("hi")

    def test_transmitter_immune(self):
        cfg = line_configuration([0, 0])
        factory = anonymous_factory(lambda: ScheduleDRIP({1: "x"}, done_round=3))
        jam = jammed_simulate(cfg, factory, jammer=jam_rounds([1]))
        # both transmit in global round 1; their own entries stay silent
        assert jam.histories[0][1] is SILENCE
        assert jam.histories[1][1] is SILENCE

    def test_jamming_blocks_forced_wakeup(self):
        cfg = Configuration([(0, 1)], {0: 0, 1: 9})

        def factory(v):
            if v == 0:
                return ScheduleDRIP({1: "wake"}, done_round=3)
            return AlwaysListenDRIP(2)

        clean = jammed_simulate(cfg, factory, jammer=jam_nothing())
        assert clean.wake_rounds[1] == 1  # forced by the message
        jam = jammed_simulate(cfg, factory, jammer=jam_pairs([(1, 1)]))
        assert jam.wake_rounds[1] == 9  # message suppressed; sleeps to tag

    def test_effective_jams_recorded(self):
        cfg = line_configuration([0, 0])

        def factory(v):
            if v == 0:
                return ScheduleDRIP({1: "hi"}, done_round=4)
            return AlwaysListenDRIP(4)

        sim = JammedRadioSimulator(
            cfg, factory, jammer=jam_pairs([(1, 1), (2, 1)])
        )
        sim.run()
        # round 1: message -> noise (effective); round 2: silence -> noise
        assert (1, 1) in sim.effective_jams
        assert (2, 1) in sim.effective_jams


class TestCanonicalRobustness:
    """The robustness boundary of the canonical DRIP."""

    def test_jamming_trailing_listen_rounds_is_harmless_to_schedule(self):
        """The σ trailing rounds of the final phase carry no information
        the decision uses beyond 'silence expected'... but the canonical
        matcher reads *all* rounds of block regions only — trailing-σ
        entries are outside every block region, so corrupting them leaves
        tBlock matching intact and the same leader is elected."""
        cfg = h_m(2)
        trace, protocol, network, budget = canonical_setup(cfg)
        from repro.core.canonical import build_canonical_data

        data = build_canonical_data(trace)
        sigma = data.sigma
        # global rounds of the last phase's trailing listen region for the
        # earliest-waking node: ends[-1]-sigma+1 .. ends[-1] (local), and
        # all tags <= sigma, so jam generously across that window for all.
        lo = data.phase_ends[-1] - sigma + 1
        jammer = jam_pairs(
            [(g, v) for v in network.nodes
             for g in range(lo + network.tag(v), data.phase_ends[-1] + network.tag(v) + 1)]
        )
        jam = jammed_simulate(network, protocol.factory, jammer=jammer, max_rounds=budget)
        leaders = jam.decide_leaders(protocol.decision)
        ref = simulate(network, protocol.factory, max_rounds=budget)
        assert leaders == ref.decide_leaders(protocol.decision)

    def test_jamming_a_transmission_slot_derails_election(self):
        """One jammed round inside a transmission block changes a history
        and the dedicated algorithm no longer elects the predicted leader
        (it may crash on an unmatched history or elect wrongly) — the
        model's symmetry breaking has zero redundancy."""
        cfg = g_m(2)
        trace, protocol, network, budget = canonical_setup(cfg)
        ref = simulate(network, protocol.factory, max_rounds=budget, record_trace=True)
        expected = ref.decide_leaders(protocol.decision)
        assert expected == [trace.leader]
        # Corrupt the *leader's* view: jam one of its silent rounds inside
        # a phase-1 transmission block (silence → noise changes the label
        # it matches against L_2 / the terminal list). Jamming any other
        # node only changes that node's own 0-decision — the model has no
        # redundancy, but it localizes faults to the faulted node.
        from repro.core.canonical import build_canonical_data
        from repro.radio.model import SILENCE

        data = build_canonical_data(trace)
        leader = trace.leader
        block_region_end = len(data.lists[0]) * data.block_width
        local = next(
            i
            for i in range(1, block_region_end + 1)
            if ref.histories[leader][i] is SILENCE
        )
        target = (ref.wake_rounds[leader] + local, leader)
        try:
            jam = jammed_simulate(
                network, protocol.factory, jammer=jam_pairs([target]),
                max_rounds=budget,
            )
            outcome = jam.decide_leaders(protocol.decision)
            derailed = outcome != expected
        except CanonicalMatchError:
            derailed = True  # the protocol itself detected the corruption
        assert derailed
