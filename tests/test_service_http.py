"""HTTP service tests: routes, batch semantics, error surfaces.

The server binds an ephemeral port per module; every assertion about
response *content* defers to :func:`repro.service.serial_report`, so
these tests pin the wire contract documented in docs/service.md.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.core.configuration import line_configuration
from repro.service import (
    MAX_BODY_BYTES,
    MODES,
    config_from_json,
    config_to_json,
    make_server,
    serial_report,
)

try:
    from hypothesis import given, settings, strategies as st

    from repro.testing import configurations

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is an install extra
    HAVE_HYPOTHESIS = False


@pytest.fixture(scope="module")
def base_url():
    import threading

    server = make_server(port=0, quiet=True)
    host, port = server.server_address[:2]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield f"http://{host}:{port}"
    server.shutdown()
    server.server_close()
    server.classifier.close()
    thread.join(timeout=5)


def fetch(base_url, path, payload=None, raw=None):
    """POST ``payload`` (or GET when None); returns (status, json body)."""
    data = raw if raw is not None else (
        json.dumps(payload).encode("utf-8") if payload is not None else None
    )
    request = urllib.request.Request(base_url + path, data=data)
    try:
        with urllib.request.urlopen(request, timeout=30) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


class TestClassifyRoute:
    def test_single_decide(self, base_url):
        status, body = fetch(base_url, "/classify", {"line": [0, 1, 0]})
        assert status == 200 and body["ok"]
        assert body["mode"] == "decide" and body["n"] == 3 and body["span"] == 1
        assert body["report"] == serial_report(line_configuration([0, 1, 0]))

    def test_single_elect(self, base_url):
        cfg = line_configuration([0, 2, 1, 0])
        status, body = fetch(
            base_url, "/classify", {**config_to_json(cfg), "mode": "elect"}
        )
        assert status == 200
        assert body["report"] == serial_report(cfg, "elect")

    def test_tags_as_list(self, base_url):
        status, body = fetch(
            base_url, "/classify", {"edges": [[0, 1], [1, 2]], "tags": [0, 1, 0]}
        )
        assert status == 200
        assert body["report"]["decision"] == "Yes"

    def test_batch_mixed_good_and_bad(self, base_url):
        status, body = fetch(
            base_url,
            "/classify",
            {
                "requests": [
                    {"line": [0, 1, 0], "mode": "elect"},
                    {"edges": [[0, 1], [2, 3]], "tags": [0, 1, 0, 1]},  # disconnected
                    {"line": [0, 1]},
                    {"line": [0, 1, 0], "mode": "vote"},  # unknown mode
                ]
            },
        )
        assert status == 200 and body["ok"]
        ok_flags = [r["ok"] for r in body["responses"]]
        assert ok_flags == [True, False, True, False]
        assert "not connected" in body["responses"][1]["error"]
        assert "vote" in body["responses"][3]["error"]
        assert body["responses"][0]["report"] == serial_report(
            line_configuration([0, 1, 0]), "elect"
        )

    def test_batch_responses_in_request_order(self, base_url):
        lines = [[0, 1, 0], [0, 0], [0, 2, 1], [0, 1, 0]]
        status, body = fetch(
            base_url, "/classify", {"requests": [{"line": ln} for ln in lines]}
        )
        assert status == 200
        got = [r["report"] for r in body["responses"]]
        assert got == [serial_report(line_configuration(ln)) for ln in lines]

    def test_responses_carry_meta_counters(self, base_url):
        """Every successful /classify response ships the classifier's
        cumulative hit/miss/collapse counters under ``meta`` (single and
        batched shapes both), and duplicate traffic shows up there."""
        line = {"line": [0, 2, 1, 0]}
        status, single = fetch(base_url, "/classify", line)
        assert status == 200
        meta = single["meta"]
        assert set(meta) == {"service", "engine", "cache"}
        status, batched = fetch(base_url, "/classify", {"requests": [line] * 4})
        assert status == 200
        meta2 = batched["meta"]
        # four isomorphic duplicates later: submissions grew, the cache
        # entry count did not, and hits/coalescing account for them all
        assert meta2["service"]["submitted"] == meta["service"]["submitted"] + 4
        assert meta2["cache"]["entries"] == meta["cache"]["entries"]
        served = (
            meta2["service"]["fast_hits"]
            + meta2["engine"]["cache_hits"]
            + meta2["engine"]["coalesced"]
        )
        assert served >= 4
        assert meta2["engine"]["classified"] == meta["engine"]["classified"]

    def test_malformed_json_is_400(self, base_url):
        status, body = fetch(base_url, "/classify", raw=b"{nope")
        assert status == 400 and not body["ok"]
        assert "invalid JSON" in body["error"]

    def test_missing_fields_is_400(self, base_url):
        status, body = fetch(base_url, "/classify", {"nodes": 3})
        assert status == 400 and not body["ok"]

    def test_requests_must_be_list(self, base_url):
        status, body = fetch(base_url, "/classify", {"requests": {"line": [0, 1]}})
        assert status == 400 and "list" in body["error"]

    def test_oversized_body_is_413(self, base_url):
        request = urllib.request.Request(
            base_url + "/classify", data=b"x", method="POST"
        )
        request.add_header("Content-Length", str(MAX_BODY_BYTES + 1))
        try:
            with urllib.request.urlopen(request, timeout=30) as resp:
                status, body = resp.status, json.loads(resp.read())
        except urllib.error.HTTPError as exc:
            status, body = exc.code, json.loads(exc.read())
        assert status == 413 and "exceeds" in body["error"]


class TestOtherRoutes:
    def test_healthz(self, base_url):
        status, body = fetch(base_url, "/healthz")
        assert status == 200 and body["ok"]

    def test_stats_counts_requests(self, base_url):
        fetch(base_url, "/classify", {"line": [0, 1, 0]})
        status, body = fetch(base_url, "/stats")
        assert status == 200 and body["ok"]
        assert body["requests"] >= 1
        assert body["cache_entries"] >= 1
        assert "service:" in body["summary"]

    def test_unknown_route_is_404(self, base_url):
        assert fetch(base_url, "/nope")[0] == 404
        assert fetch(base_url, "/nope", {"line": [0, 1]})[0] == 404


@pytest.mark.skipif(not HAVE_HYPOTHESIS, reason="hypothesis not installed")
class TestWireSchemaProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(
            st.tuples(
                configurations(max_n=5, max_span=2),
                st.sampled_from(MODES),
            ),
            min_size=1,
            max_size=4,
        )
    )
    def test_valid_batches_round_trip_through_http(self, base_url, batch):
        """Arbitrary valid request batches survive encode → HTTP →
        decode unchanged: the JSON encoding round-trips the
        configuration, and every response's report is bit-for-bit the
        serial oracle's answer for that (configuration, mode)."""
        requests = []
        for cfg, mode in batch:
            encoded = config_to_json(cfg)
            # the wire encoding itself is lossless
            assert config_from_json(encoded).normalize() == cfg.normalize()
            requests.append({**encoded, "mode": mode})
        status, body = fetch(base_url, "/classify", {"requests": requests})
        assert status == 200 and body["ok"]
        assert len(body["responses"]) == len(batch)
        for (cfg, mode), response in zip(batch, body["responses"]):
            assert response["ok"], response
            assert response["mode"] == mode
            assert response["report"] == serial_report(cfg, mode)

    @settings(max_examples=30, deadline=None)
    @given(
        st.one_of(
            st.binary(max_size=200),
            st.text(max_size=200).map(lambda s: s.encode("utf-8")),
            st.recursive(
                st.one_of(
                    st.none(), st.booleans(), st.integers(), st.text(max_size=8)
                ),
                lambda inner: st.one_of(
                    st.lists(inner, max_size=4),
                    st.dictionaries(st.text(max_size=8), inner, max_size=4),
                ),
                max_leaves=12,
            ).map(lambda obj: json.dumps(obj).encode("utf-8")),
        )
    )
    def test_malformed_bodies_get_structured_400s(self, base_url, raw):
        """Garbage bodies — random bytes, random text, random JSON of
        the wrong shape — always get a *structured* error response:
        never a 500, never a hang, always JSON with an ``ok`` field."""
        status, body = fetch(base_url, "/classify", raw=raw)
        assert status in (200, 400, 413), (status, raw)
        assert "ok" in body
        if status != 200:
            assert body["ok"] is False and body["error"]


def test_cli_serve_parser_defaults():
    """The serve subcommand parses with documented defaults."""
    from repro.cli import build_parser

    args = build_parser().parse_args(["serve", "--port", "0"])
    assert args.func.__name__ == "cmd_serve"
    assert args.host == "127.0.0.1" and args.port == 0
    assert args.max_batch == 64 and args.max_pending == 1024
    assert args.workers == 1
    assert args.max_connections == 128
    assert args.request_timeout == 30.0
    assert args.drain_timeout == 5.0
