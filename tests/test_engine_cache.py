"""Engine cache correctness: canonical keying, LRU, JSONL persistence.

The load-bearing property: classifying a configuration and a relabeled
isomorph of it produces ONE cache entry and identical reports — that is
what makes the canonical-form memoization sound.
"""

import json
import os
import time

import pytest

from repro.core.classifier import classify
from repro.core.configuration import Configuration
from repro.engine import (
    ResultCache,
    cached_evaluate,
    canonical_key,
    census_record,
    certificate_key,
    default_keyer,
    labeled_key,
)

from conftest import random_config_batch

#: The seed's brute-force canonization ceiling; the refinement canonizer
#: removed it, and the tests below pin that keying collapses beyond it.
OLD_CANONICAL_N_LIMIT = 10


def _append_burst(path: str, prefix: str, count: int) -> None:
    """Subprocess body: hammer `count` appends into a shared store."""
    cache = ResultCache(path)
    for i in range(count):
        cache.put(f"{prefix}{i}", {"writer": prefix, "i": i, "pad": "x" * 64})
    cache.close()


def relabel(cfg: Configuration, perm) -> Configuration:
    """Apply a node permutation (dict old -> new) to a configuration."""
    return Configuration(
        [(perm[u], perm[v]) for u, v in cfg.edges],
        {perm[v]: cfg.tag(v) for v in cfg.nodes},
    )


# ----------------------------------------------------------------------
# keys
# ----------------------------------------------------------------------
class TestKeys:
    def test_relabeled_isomorph_same_canonical_key(self):
        cfg = Configuration([(0, 1), (1, 2), (2, 3), (1, 3)], {0: 0, 1: 1, 2: 0, 3: 2})
        iso = relabel(cfg, {0: 3, 1: 0, 2: 2, 3: 1})
        assert canonical_key(cfg) == canonical_key(iso)

    def test_tag_shift_same_key(self):
        cfg = Configuration([(0, 1), (1, 2)], {0: 1, 1: 2, 2: 1})
        shifted = Configuration([(0, 1), (1, 2)], {0: 0, 1: 1, 2: 0})
        assert canonical_key(cfg) == canonical_key(shifted)
        assert labeled_key(cfg) == labeled_key(shifted)

    def test_non_isomorphic_different_key(self):
        path = Configuration([(0, 1), (1, 2)], {0: 0, 1: 1, 2: 0})
        triangle = Configuration([(0, 1), (1, 2), (0, 2)], {0: 0, 1: 1, 2: 0})
        other_tags = Configuration([(0, 1), (1, 2)], {0: 1, 1: 0, 2: 0})
        assert canonical_key(path) != canonical_key(triangle)
        assert canonical_key(path) != canonical_key(other_tags)

    def test_labeled_key_does_not_collapse_isomorphs(self):
        cfg = Configuration([(0, 1), (1, 2)], {0: 0, 1: 1, 2: 2})
        iso = relabel(cfg, {0: 2, 1: 1, 2: 0})
        assert labeled_key(cfg) != labeled_key(iso)
        assert canonical_key(cfg) == canonical_key(iso)

    def test_default_keyer_is_canonical_at_every_size(self):
        small = Configuration([(0, 1)], {0: 0, 1: 1})
        assert default_keyer(small) == canonical_key(small)
        big_n = OLD_CANONICAL_N_LIMIT + 2
        big = Configuration(
            [(i, i + 1) for i in range(big_n - 1)],
            {i: i % 2 for i in range(big_n)},
        )
        # above the seed's brute-force ceiling, the keyer still canonizes
        assert default_keyer(big) == canonical_key(big)
        # ... and therefore collapses relabeled isomorphs the old
        # labeled-key fallback kept apart
        iso = relabel(big, {i: (i * 7 + 3) % big_n for i in range(big_n)})
        assert default_keyer(big) == default_keyer(iso)
        assert labeled_key(big) != labeled_key(iso)

    def test_certificate_key_collapses_isomorphs(self):
        cfg = Configuration([(0, 1), (1, 2), (2, 3)], {0: 0, 1: 1, 2: 0, 3: 2})
        iso = relabel(cfg, {0: 3, 1: 1, 2: 0, 3: 2})
        assert certificate_key(cfg) == certificate_key(iso)
        other = Configuration([(0, 1), (1, 2), (2, 3)], {0: 2, 1: 1, 2: 0, 3: 0})
        assert certificate_key(cfg) != certificate_key(other)

    def test_canonical_key_random_isomorph_batch(self):
        import random

        for i, cfg in enumerate(random_config_batch(10, base_seed=77, n_hi=6)):
            nodes = list(cfg.nodes)
            shuffled = list(nodes)
            random.Random(i).shuffle(shuffled)
            iso = relabel(cfg, dict(zip(nodes, shuffled)))
            assert canonical_key(cfg) == canonical_key(iso)


# ----------------------------------------------------------------------
# cache behavior
# ----------------------------------------------------------------------
class TestResultCache:
    def test_isomorph_yields_one_entry_and_identical_report(self):
        cfg = Configuration([(0, 1), (1, 2), (2, 3)], {0: 0, 1: 1, 2: 0, 3: 2})
        iso = relabel(cfg, {0: 2, 1: 3, 2: 1, 3: 0})
        cache = ResultCache()
        rec_a = cached_evaluate(cfg, cache, census_record)
        rec_b = cached_evaluate(iso, cache, census_record)
        assert len(cache) == 1  # one canonical entry for the pair
        assert rec_a is rec_b  # literally the same cached record
        # and the cached verdict matches a fresh classification of both
        assert rec_a["feasible"] == classify(cfg).feasible == classify(iso).feasible
        assert rec_a["iterations"] == classify(iso).num_iterations
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_lru_eviction(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", {"x": 1})
        cache.put("b", {"x": 2})
        assert cache.get("a") == {"x": 1}  # refresh a; b is now LRU
        cache.put("c", {"x": 3})
        assert "b" not in cache
        assert "a" in cache and "c" in cache
        assert cache.stats.evictions == 1

    def test_put_overwrites_without_growth(self):
        cache = ResultCache()
        cache.put("k", {"v": 1})
        cache.put("k", {"v": 2})
        assert len(cache) == 1
        assert cache.peek("k") == {"v": 2}

    def test_jsonl_round_trip(self, tmp_path):
        path = str(tmp_path / "cache.jsonl")
        c1 = ResultCache(path)
        c1.put("k1", {"feasible": True, "iterations": 2, "rounds": None})
        c1.put("k2", {"feasible": False, "iterations": 1, "rounds": None})
        c2 = ResultCache(path)
        assert len(c2) == 2
        assert c2.stats.loaded == 2
        assert c2.get("k1") == {"feasible": True, "iterations": 2, "rounds": None}

    def test_truncated_trailing_line_ignored(self, tmp_path):
        path = str(tmp_path / "cache.jsonl")
        c1 = ResultCache(path)
        c1.put("k1", {"v": 1})
        c1.put("k2", {"v": 2})
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"key": "k3", "record"')  # crashed mid-append
        c2 = ResultCache(path)
        assert len(c2) == 2
        assert "k3" not in c2

    def test_last_line_wins_on_duplicate_keys(self, tmp_path):
        path = str(tmp_path / "cache.jsonl")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps({"key": "k", "record": {"v": 1}}) + "\n")
            fh.write(json.dumps({"key": "k", "record": {"v": 2}}) + "\n")
        assert ResultCache(path).peek("k") == {"v": 2}

    def test_persistent_handle_flushes_per_line(self, tmp_path):
        path = str(tmp_path / "cache.jsonl")
        writer = ResultCache(path)
        writer.put("k1", {"v": 1})
        # line-buffered handle: the record is on disk before close()
        assert len(ResultCache(path)) == 1
        writer.put("k2", {"v": 2})
        writer.close()
        assert len(ResultCache(path)) == 2
        writer.put("k3", {"v": 3})  # handle reopens lazily after close
        assert len(ResultCache(path)) == 3

    def test_bad_max_entries_rejected(self):
        with pytest.raises(ValueError):
            ResultCache(max_entries=0)

    def test_two_processes_appending_concurrently_never_tear_lines(
        self, tmp_path
    ):
        """Each put is one O_APPEND write(2), so concurrent writer
        processes — the distributed census sharing one cache file —
        interleave only at line granularity: every line parses, every
        key from both writers survives."""
        import multiprocessing

        path = str(tmp_path / "shared.jsonl")
        n_each = 200
        procs = [
            multiprocessing.Process(
                target=_append_burst, args=(path, prefix, n_each)
            )
            for prefix in ("a", "b")
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join()
        assert all(p.exitcode == 0 for p in procs)
        with open(path, "r", encoding="utf-8") as fh:
            lines = fh.read().splitlines()
        assert len(lines) == 2 * n_each
        parsed = [json.loads(line) for line in lines]  # no torn lines
        keys = {obj["key"] for obj in parsed}
        assert keys == {
            f"{prefix}{i}" for prefix in ("a", "b") for i in range(n_each)
        }
        # replay sees every record from both writers
        merged = ResultCache(path)
        assert len(merged) == 2 * n_each
        assert merged.peek("a0") == {"writer": "a", "i": 0, "pad": "x" * 64}


# ----------------------------------------------------------------------
# compaction
# ----------------------------------------------------------------------
class TestCompact:
    def test_compact_drops_superseded_lines(self, tmp_path):
        path = str(tmp_path / "cache.jsonl")
        cache = ResultCache(path)
        cache.put("a", {"v": 1})
        cache.put("b", {"v": 1})
        cache.put("a", {"v": 2})  # supersedes the first "a" line
        cache.put("a", {"v": 3})
        assert cache.compact() == 2
        assert cache.stats.compacted == 2
        with open(path, encoding="utf-8") as fh:
            lines = [json.loads(line) for line in fh if line.strip()]
        assert [ln["key"] for ln in lines] == ["a", "b"]  # first-seen order
        assert lines[0]["record"] == {"v": 3}  # ... with the last record
        replayed = ResultCache(path)
        assert replayed.peek("a") == {"v": 3}
        assert replayed.peek("b") == {"v": 1}

    def test_compact_keeps_entries_evicted_from_memory(self, tmp_path):
        """Compaction replays the file, not the LRU: a disk entry whose
        memory copy was evicted must survive the rewrite."""
        path = str(tmp_path / "cache.jsonl")
        cache = ResultCache(path, max_entries=1)
        cache.put("a", {"v": 1})
        cache.put("b", {"v": 2})  # evicts "a" from memory only
        assert "a" not in cache
        assert cache.compact() == 0
        assert ResultCache(path).peek("a") == {"v": 1}

    def test_compact_drops_truncated_lines_and_appends_still_work(self, tmp_path):
        path = str(tmp_path / "cache.jsonl")
        cache = ResultCache(path)
        cache.put("k", {"v": 1})
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"key": "x", "rec')  # crashed half-append
        assert cache.compact() == 1
        cache.put("k2", {"v": 2})  # handle reopens lazily post-compaction
        assert len(ResultCache(path)) == 2

    def test_compact_without_store_is_noop(self):
        assert ResultCache().compact() == 0


# ----------------------------------------------------------------------
# the headline: repeat census >= 5x faster through the cache
# ----------------------------------------------------------------------
def test_repeated_census_at_least_5x_faster():
    """Acceptance gate: the second run of the same workload through the
    engine is >= 5x faster than the first, because every configuration is
    answered from the canonical-form cache without classification or
    election. The workload uses sizable spans so the classified work
    dominates the irreducible warm-path cost (workload regeneration plus
    keying); the warm time is the best of three runs to shield the ratio
    from scheduler noise."""
    from repro.engine import RandomGnpWorkload, sharded_census

    workload = RandomGnpWorkload([24], span=30, p=0.15, samples=12, seed=3)
    cache = ResultCache()

    t0 = time.perf_counter()
    first = sharded_census(workload, cache=cache, measure_rounds=True)
    cold = time.perf_counter() - t0

    warm = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        second = sharded_census(workload, cache=cache, measure_rounds=True)
        warm = min(warm, time.perf_counter() - t0)
        assert second.result.rows == first.result.rows
        assert second.stats.classified == 0  # pure cache hits

    assert cold / warm >= 5.0, f"cold={cold:.4f}s warm={warm:.4f}s"
