"""Smoke tests: every example script runs to completion.

Examples are the public face of the library; a release where
``python examples/quickstart.py`` crashes is broken no matter what the
unit tests say. Each script is executed in a subprocess with a generous
timeout; scripts that write files are pointed at a temp directory.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"
SRC = Path(__file__).resolve().parent.parent / "src"

#: scripts executed with no arguments
PLAIN_SCRIPTS = [
    "quickstart.py",
    "paper_families.py",
    "impossibility_demo.py",
    "census_random.py",
    "single_hop_contrast.py",
    "program_export.py",
    "model_variants.py",
    "wired_contrast.py",
    "timeline_debug.py",
]


def run_example(name: str, *args: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    # The scripts run with cwd=examples, so a relative PYTHONPATH entry
    # (the usual `PYTHONPATH=src pytest` invocation) would not resolve;
    # prepend the absolute src/ directory.
    env["PYTHONPATH"] = os.pathsep.join(
        [str(SRC)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=600,
        cwd=str(EXAMPLES),
        env=env,
    )


@pytest.mark.parametrize("script", PLAIN_SCRIPTS)
def test_example_runs_clean(script):
    result = run_example(script)
    assert result.returncode == 0, (
        f"{script} failed\nstdout:\n{result.stdout[-2000:]}\n"
        f"stderr:\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{script} produced no output"


def test_generate_experiments_md(tmp_path):
    out = tmp_path / "EXPERIMENTS.md"
    result = run_example("generate_experiments_md.py", str(out))
    assert result.returncode == 0, result.stderr[-2000:]
    text = out.read_text(encoding="utf-8")
    assert text.startswith("# EXPERIMENTS")
    assert "❌" not in text, "a reproduction check regressed"
    for eid in range(1, 19):
        assert f"E{eid} —" in text, f"missing section E{eid}"


def test_run_experiments_script():
    result = run_example("run_experiments.py")
    assert result.returncode == 0, result.stderr[-2000:]
    for eid in ("E1", "E5", "E10"):
        assert eid in result.stdout
