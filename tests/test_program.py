"""Unit tests for serializable canonical programs (repro.core.program)."""

import json

import pytest

from repro.core.classifier import classify
from repro.core.canonical import CanonicalProtocol, build_canonical_data
from repro.core.configuration import Configuration, line_configuration
from repro.core.program import (
    FORMAT_VERSION,
    CanonicalProgram,
    ProgramFormatError,
    compile_program,
    dumps,
    export_program,
    import_program,
    load,
    loads,
    program_algorithm,
    program_drip,
    program_from_data,
    program_from_trace,
    roundtrip_equal,
    save,
)
from repro.graphs.families import g_m, h_m, s_m
from repro.radio.history import History
from repro.radio.simulator import simulate

SAMPLES = [
    h_m(1),
    h_m(3),
    s_m(2),
    g_m(2),
    line_configuration([0, 1, 0]),
    line_configuration([0, 2, 1, 0]),
    Configuration([(0, 1), (1, 2), (2, 0)], {0: 0, 1: 1, 2: 2}),
]


class TestCompilation:
    def test_compile_matches_trace_data(self):
        cfg = h_m(2)
        trace = classify(cfg)
        data = build_canonical_data(trace)
        prog = compile_program(cfg)
        assert prog == program_from_data(data)
        assert prog == program_from_trace(trace)

    def test_sigma_and_feasibility_propagate(self):
        prog = compile_program(h_m(5))
        assert prog.sigma == 6  # tags {0, 0, 5, 6} -> span 6
        assert prog.feasible
        assert prog.leader_class is not None

    def test_infeasible_program_has_no_leader_class(self):
        prog = compile_program(s_m(2))
        assert not prog.feasible
        assert prog.leader_class is None

    def test_l1_shape(self):
        for cfg in SAMPLES:
            prog = compile_program(cfg)
            assert prog.lists[0] == ((1, ()),)

    def test_phase_ends_match_canonical_data(self):
        for cfg in SAMPLES:
            trace = classify(cfg)
            data = build_canonical_data(trace)
            prog = program_from_data(data)
            assert prog.phase_ends == data.phase_ends
            assert prog.done_round == data.done_round

    def test_to_canonical_data_is_lossless(self):
        trace = classify(h_m(2))
        data = build_canonical_data(trace)
        back = program_from_data(data).to_canonical_data()
        assert back.sigma == data.sigma
        assert back.lists == data.lists
        assert back.final_list == data.final_list
        assert back.leader_class == data.leader_class
        assert back.feasible == data.feasible
        assert back.phase_ends == data.phase_ends


class TestWireFormat:
    @pytest.mark.parametrize("cfg", SAMPLES, ids=lambda c: f"n{c.n}s{c.span}")
    def test_roundtrip_identity(self, cfg):
        assert roundtrip_equal(compile_program(cfg))

    def test_export_is_json_serializable(self):
        blob = export_program(compile_program(h_m(1)))
        text = json.dumps(blob)
        assert json.loads(text) == blob

    def test_dumps_is_deterministic(self):
        prog = compile_program(g_m(2))
        assert dumps(prog) == dumps(prog)

    def test_export_has_versioned_header(self):
        blob = export_program(compile_program(h_m(1)))
        assert blob["format"] == "repro-canonical-drip"
        assert blob["version"] == FORMAT_VERSION

    def test_save_load_file(self, tmp_path):
        prog = compile_program(h_m(2))
        path = tmp_path / "hm2.json"
        save(prog, path)
        assert load(path) == prog

    def test_marks_survive_roundtrip(self):
        # A star whose leaves share a tag: the centre hears a collision,
        # so labels contain STAR marks (in the phase lists or in the
        # terminal-partition list).
        from repro.graphs.generators import star_configuration

        prog = compile_program(star_configuration([1, 0, 0, 0]))
        all_entries = [e for entries in prog.lists for e in entries]
        all_entries += list(prog.final_list)
        has_star = any(
            c == 2 for (_, label) in all_entries for (_, _, c) in label
        )
        assert has_star
        assert loads(dumps(prog)) == prog


class TestImportValidation:
    def good(self):
        return export_program(compile_program(h_m(1)))

    def test_rejects_non_dict(self):
        with pytest.raises(ProgramFormatError):
            import_program([1, 2, 3])

    def test_rejects_unknown_format(self):
        blob = self.good()
        blob["format"] = "something-else"
        with pytest.raises(ProgramFormatError, match="format"):
            import_program(blob)

    def test_rejects_wrong_version(self):
        blob = self.good()
        blob["version"] = FORMAT_VERSION + 1
        with pytest.raises(ProgramFormatError, match="version"):
            import_program(blob)

    def test_rejects_negative_sigma(self):
        blob = self.good()
        blob["sigma"] = -1
        with pytest.raises(ProgramFormatError, match="sigma"):
            import_program(blob)

    def test_rejects_non_bool_feasible(self):
        blob = self.good()
        blob["feasible"] = "yes"
        with pytest.raises(ProgramFormatError, match="feasible"):
            import_program(blob)

    def test_rejects_feasible_without_leader(self):
        blob = self.good()
        blob["leader_class"] = None
        with pytest.raises(ProgramFormatError, match="leader"):
            import_program(blob)

    def test_rejects_leader_class_out_of_range(self):
        blob = self.good()
        blob["leader_class"] = len(blob["final_list"]) + 1
        with pytest.raises(ProgramFormatError, match="leader_class"):
            import_program(blob)

    def test_rejects_empty_lists(self):
        blob = self.good()
        blob["lists"] = []
        with pytest.raises(ProgramFormatError, match="lists"):
            import_program(blob)

    def test_rejects_bad_l1(self):
        blob = self.good()
        blob["lists"][0] = [[2, []]]
        with pytest.raises(ProgramFormatError, match="L_1"):
            import_program(blob)

    @staticmethod
    def _first_labeled_entry(blob):
        """First entry with a non-empty label, searching phase lists then
        the terminal list."""
        for entries in list(blob["lists"]) + [blob["final_list"]]:
            for entry in entries:
                if entry[1]:
                    return entry
        pytest.fail("expected a non-empty label in the exported program")

    def test_rejects_bad_mark(self):
        blob = export_program(compile_program(g_m(2)))
        entry = self._first_labeled_entry(blob)
        entry[1][0][2] = "?"
        with pytest.raises(ProgramFormatError, match="mark"):
            import_program(blob)

    def test_rejects_bad_triple_shape(self):
        blob = export_program(compile_program(h_m(2)))
        entry = self._first_labeled_entry(blob)
        entry[1][0] = [1, 2]
        with pytest.raises(ProgramFormatError, match="triple"):
            import_program(blob)

    def test_rejects_invalid_json_text(self):
        with pytest.raises(ProgramFormatError, match="JSON"):
            loads("{not json")

    def test_rejects_empty_final_list(self):
        blob = self.good()
        blob["final_list"] = []
        with pytest.raises(ProgramFormatError, match="final_list"):
            import_program(blob)


class TestInterpreter:
    @pytest.mark.parametrize("cfg", SAMPLES, ids=lambda c: f"n{c.n}s{c.span}")
    def test_program_execution_equals_direct_canonical(self, cfg):
        """Export → import → interpret must reproduce the exact execution."""
        trace = classify(cfg)
        protocol = CanonicalProtocol.from_trace(trace)
        network = trace.config
        budget = protocol.round_budget(network.span)
        direct = simulate(network, protocol.factory, max_rounds=budget)

        prog = loads(dumps(program_from_trace(trace)))
        via_program = simulate(
            network, lambda _v: program_drip(prog), max_rounds=budget
        )
        for v in network.nodes:
            assert direct.histories[v] == via_program.histories[v]

    def test_program_algorithm_elects_same_leader(self):
        cfg = h_m(2)
        trace = classify(cfg)
        protocol = CanonicalProtocol.from_trace(trace)
        network = trace.config
        algo = program_algorithm(loads(dumps(program_from_trace(trace))))
        execution = simulate(
            network, algo.factory, max_rounds=protocol.round_budget(network.span)
        )
        leaders = execution.decide_leaders(algo.decision)
        assert leaders == [trace.leader]

    def test_infeasible_program_elects_nobody(self):
        cfg = s_m(1)
        trace = classify(cfg)
        protocol = CanonicalProtocol.from_trace(trace)
        network = trace.config
        algo = program_algorithm(program_from_trace(trace))
        execution = simulate(
            network, algo.factory, max_rounds=protocol.round_budget(network.span)
        )
        assert execution.decide_leaders(algo.decision) == []

    def test_decision_is_a_function_of_history_only(self):
        # Identical histories must yield identical decisions.
        prog = compile_program(h_m(1))
        algo = program_algorithm(prog)
        h = History.from_entries([])
        # An empty history matches nothing; decision must be 0, not an error.
        assert algo.decision(h) == 0


class TestProgramValueSemantics:
    def test_equality_is_structural(self):
        a = compile_program(h_m(2))
        b = compile_program(h_m(2))
        assert a == b and hash(a) == hash(b)

    def test_distinct_configs_give_distinct_programs(self):
        assert compile_program(h_m(1)) != compile_program(h_m(2))

    def test_program_is_frozen(self):
        prog = compile_program(h_m(1))
        with pytest.raises(AttributeError):
            prog.sigma = 99
