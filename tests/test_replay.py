"""Unit tests for the closed-form canonical replay (repro.core.replay)."""

import pytest

from repro.core.canonical import CanonicalProtocol
from repro.core.classifier import classify
from repro.core.configuration import Configuration, line_configuration
from repro.core.election import elect_leader
from repro.core.replay import (
    _phase_events_numpy,
    _phase_events_python,
    replay_elect,
    replay_execution,
    replay_histories,
    replay_matches_simulation,
)
from repro.core.canonical import build_canonical_data
from repro.graphs.families import g_m, h_m, s_m
from repro.graphs.generators import (
    build,
    complete_configuration,
    cycle_configuration,
    random_connected_gnp_edges,
    star_configuration,
)
from repro.graphs.tags import uniform_random
from repro.radio.events import SPONTANEOUS
from repro.radio.simulator import simulate

SAMPLES = [
    h_m(1),
    h_m(4),
    s_m(2),
    g_m(2),
    g_m(3),
    line_configuration([0, 1, 0]),
    line_configuration([0, 2, 1, 0, 2]),
    complete_configuration([0, 1, 2, 3]),
    cycle_configuration([0, 0, 1, 1, 2]),
    star_configuration([1, 0, 0, 2, 0]),
]


def _simulated(cfg):
    trace = classify(cfg)
    protocol = CanonicalProtocol.from_trace(trace)
    network = trace.config
    execution = simulate(
        network, protocol.factory, max_rounds=protocol.round_budget(network.span)
    )
    return trace, network, execution


class TestAgainstSimulator:
    @pytest.mark.parametrize("cfg", SAMPLES, ids=lambda c: f"n{c.n}s{c.span}")
    def test_histories_byte_identical(self, cfg):
        trace, network, execution = _simulated(cfg)
        replayed = replay_histories(trace)
        assert set(replayed) == set(network.nodes)
        for v in network.nodes:
            assert replayed[v] == execution.histories[v], f"node {v}"

    @pytest.mark.parametrize("seed", range(6))
    def test_random_configurations(self, seed):
        n = 10 + seed
        edges = random_connected_gnp_edges(n, 0.3, seed)
        tags = uniform_random(range(n), 3, seed + 100)
        cfg = build(edges, tags, n=n)
        assert replay_matches_simulation(cfg)

    def test_python_and_numpy_paths_agree(self):
        for cfg in SAMPLES:
            trace = classify(cfg)
            data = build_canonical_data(trace)
            py = _phase_events_python(trace, data, trace.config)
            npv = _phase_events_numpy(trace, data, trace.config)
            assert py == npv

    def test_vectorized_flag_false_matches(self):
        cfg = g_m(2)
        trace = classify(cfg)
        assert replay_histories(trace, vectorized=False) == replay_histories(
            trace, vectorized=True
        )


class TestExecutionPackaging:
    def test_replay_execution_fields(self):
        cfg = h_m(2)
        trace, network, execution = _simulated(cfg)
        rep = replay_execution(trace)
        assert rep.done_local == execution.done_local
        assert rep.wake_rounds == execution.wake_rounds
        assert all(k == SPONTANEOUS for k in rep.wake_kinds.values())
        assert rep.rounds_elapsed == execution.rounds_elapsed
        assert rep.history_partition() == execution.history_partition()

    def test_single_node_configuration(self):
        cfg = Configuration([], {0: 0})
        trace = classify(cfg)
        replayed = replay_histories(trace)
        assert list(replayed) == [0]
        # single node: classifier says Yes immediately; history all silent
        assert all(e.__class__.__name__ == "_Sentinel" for e in replayed[0])


class TestReplayElection:
    @pytest.mark.parametrize("m", [1, 2, 3, 8])
    def test_replay_leader_equals_simulated_leader(self, m):
        cfg = h_m(m)
        leaders, _ = replay_elect(cfg)
        sim = elect_leader(cfg)
        assert leaders == [sim.leader]

    def test_infeasible_elects_nobody(self):
        leaders, _ = replay_elect(s_m(3))
        assert leaders == []

    def test_gm_center_wins(self):
        from repro.graphs.families import g_m_center

        m = 3
        leaders, _ = replay_elect(g_m(m))
        assert leaders == [g_m_center(m)]

    def test_reuses_supplied_trace(self):
        cfg = h_m(2)
        trace = classify(cfg)
        leaders, _ = replay_elect(cfg, trace)
        assert leaders == [trace.leader]


class TestHistoryShapes:
    def test_history_length_is_done_plus_one(self):
        cfg = h_m(3)
        trace = classify(cfg)
        data = build_canonical_data(trace)
        for h in replay_histories(trace).values():
            assert len(h) == data.done_round + 1

    def test_wakeup_entry_is_silence(self):
        # Canonical executions are patient: H[0] = (∅) for every node.
        for cfg in SAMPLES:
            trace = classify(cfg)
            for h in replay_histories(trace).values():
                from repro.radio.model import SILENCE

                assert h[0] is SILENCE

    def test_each_node_hears_each_neighbour_once_per_phase(self):
        """Lemma 3.8: per phase, neighbour transmissions account for all
        non-silent entries, collisions counted by round."""
        cfg = h_m(2)
        trace = classify(cfg)
        data = build_canonical_data(trace)
        network = trace.config
        for v, h in replay_histories(trace).items():
            for j in range(1, data.num_phases + 1):
                lo = data.phase_ends[j - 1] + 1
                hi = data.phase_ends[j]
                heard = h.events_in(lo, hi)
                # deg(v) transmissions; those colliding or overlapping v's
                # own slot reduce the distinct event count.
                assert len(heard) <= network.degree(v)
