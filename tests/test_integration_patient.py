"""Integration: the Lemma 3.12 patient transformation, end to end.

The canonical DRIP is already patient (Lemma 3.6), so wrapping it must
not change any outcome; wrapping deliberately *impatient* protocols must
remove forced wakeups while preserving decisions (shifted by σ).
"""

from conftest import random_config_batch

from repro.core.canonical import CanonicalProtocol
from repro.core.classifier import classify
from repro.graphs.families import h_m
from repro.core.configuration import line_configuration
from repro.radio.model import SILENCE
from repro.radio.protocol import (
    LeaderElectionAlgorithm,
    ScheduleDRIP,
    anonymous_factory,
    make_patient,
)
from repro.radio.simulator import simulate


class TestPatientCanonical:
    def test_wrapping_canonical_preserves_election(self):
        for cfg in (h_m(2), line_configuration([0, 1, 0]), line_configuration([0, 2, 1])):
            trace = classify(cfg)
            protocol = CanonicalProtocol.from_trace(trace)
            algo = protocol.algorithm()
            wrapped = make_patient(algo, span=trace.config.span)

            budget = 4 * protocol.round_budget(trace.config.span) + 8
            raw_ex = simulate(trace.config, algo.factory, max_rounds=budget)
            pat_ex = simulate(trace.config, wrapped.factory, max_rounds=budget)

            raw_leaders = raw_ex.decide_leaders(algo.decision)
            pat_leaders = pat_ex.decide_leaders(wrapped.decision)
            assert raw_leaders == pat_leaders
            assert pat_ex.all_spontaneous()

    def test_wrapping_on_random_feasible_configs(self):
        hits = 0
        for cfg in random_config_batch(20, base_seed=2024, n_hi=7):
            trace = classify(cfg)
            if not trace.feasible:
                continue
            hits += 1
            protocol = CanonicalProtocol.from_trace(trace)
            algo = protocol.algorithm()
            wrapped = make_patient(algo, span=trace.config.span)
            budget = 4 * protocol.round_budget(trace.config.span) + 8
            pat_ex = simulate(trace.config, wrapped.factory, max_rounds=budget)
            assert pat_ex.all_spontaneous()
            leaders = pat_ex.decide_leaders(wrapped.decision)
            assert leaders == [trace.leader]
        assert hits >= 3  # the batch contains feasible configurations


class TestPatientImpatient:
    def test_impatient_beacon_made_patient(self):
        # beacon at local round 1: on span-2 tags this forces wakeups.
        algo = LeaderElectionAlgorithm(
            anonymous_factory(lambda: ScheduleDRIP({1: "b"}, done_round=10)),
            lambda h: 1 if h.first_message_round() is None else 0,
            name="beacon",
        )
        cfg = line_configuration([0, 2, 2])
        raw_ex = simulate(cfg, algo.factory)
        assert not raw_ex.all_spontaneous()

        wrapped = make_patient(algo, span=cfg.span)
        pat_ex = simulate(cfg, wrapped.factory)
        assert pat_ex.all_spontaneous()
        # Claim 2(3): per-node decisions unchanged by the transformation.
        assert raw_ex.decide_leaders(algo.decision) == pat_ex.decide_leaders(
            wrapped.decision
        )

    def test_patient_histories_are_shifted_copies(self):
        # statement (3) of Claim 2: H_x^pat[s_x .. ] == H_x[0 .. ]
        algo = LeaderElectionAlgorithm(
            anonymous_factory(lambda: ScheduleDRIP({2: "z"}, done_round=6)),
            lambda h: 0,
            name="z",
        )
        cfg = line_configuration([0, 1])
        span = cfg.span
        wrapped = make_patient(algo, span=span)
        raw_ex = simulate(cfg, algo.factory)
        pat_ex = simulate(cfg, wrapped.factory)
        from repro.radio.history import shifted_view_key
        from repro.radio.protocol import patient_span_of

        for v in cfg.nodes:
            raw_h = raw_ex.histories[v]
            pat_h = pat_ex.histories[v]
            s = patient_span_of(pat_h, span)
            assert shifted_view_key(pat_h, s, len(pat_h) - 1) == raw_h.key()
