"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestClassify:
    def test_line(self, capsys):
        assert main(["classify", "--line", "0,1,0"]) == 0
        out = capsys.readouterr().out
        assert "Yes" in out

    def test_family(self, capsys):
        assert main(["classify", "--family", "sm:2"]) == 0
        assert "No" in capsys.readouterr().out

    def test_verbose(self, capsys):
        main(["classify", "--line", "0,1", "-v"])
        assert "partition_1" in capsys.readouterr().out

    def test_gnp(self, capsys):
        assert main(["classify", "--gnp", "8,0.3,2,5"]) == 0
        out = capsys.readouterr().out
        assert "decision" in out

    def test_missing_config(self):
        with pytest.raises(SystemExit):
            main(["classify"])

    def test_unknown_family(self):
        with pytest.raises(SystemExit):
            main(["classify", "--family", "zz:1"])

    @pytest.mark.parametrize(
        "algorithm", ["auto", "compiled", "fast", "reference"]
    )
    def test_algorithm_knob_same_answer(self, algorithm, capsys):
        assert main(
            ["classify", "--line", "0,1,0", "--algorithm", algorithm]
        ) == 0
        assert "Yes" in capsys.readouterr().out

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            main(["classify", "--line", "0,1", "--algorithm", "quantum"])

    def test_profile_prints_op_totals_and_timing(self, capsys):
        assert main(
            ["classify", "--family", "gm:4", "--profile",
             "--algorithm", "compiled"]
        ) == 0
        out = capsys.readouterr().out
        assert "Profile" in out
        assert "algorithm" in out and "compiled" in out
        assert "per iteration" in out
        assert "triple ops" in out and "label ops" in out

    def test_profile_fast_has_wall_time_but_no_ops(self, capsys):
        assert main(
            ["classify", "--line", "0,1,0", "--profile",
             "--algorithm", "fast"]
        ) == 0
        out = capsys.readouterr().out
        assert "wall time" in out
        assert "fast does not meter" in out


class TestElect:
    def test_feasible(self, capsys):
        assert main(["elect", "--family", "hm:2"]) == 0
        assert "leader=" in capsys.readouterr().out

    def test_infeasible(self, capsys):
        assert main(["elect", "--family", "sm:2"]) == 0
        assert "no leader" in capsys.readouterr().out

    def test_verbose_history(self, capsys):
        main(["elect", "--line", "0,1", "-v"])
        assert "leader history" in capsys.readouterr().out


class TestCensus:
    def test_runs(self, capsys):
        assert main(
            ["census", "--n", "4,5", "--span", "1", "--samples", "3", "--seed", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "census" in out.lower()
        assert " 4 |" in out and " 5 |" in out  # one row per size

    def test_algorithm_knob_identical_table(self, capsys):
        """The census table is bit-for-bit identical across algorithms."""
        base = ["census", "--n", "4,5", "--span", "1", "--samples", "4",
                "--seed", "3"]
        outputs = []
        for algorithm in ("reference", "compiled"):
            assert main(base + ["--algorithm", algorithm]) == 0
            out = capsys.readouterr().out
            outputs.append(out[: out.index("engine:")])  # table only
        assert outputs[0] == outputs[1]

    def test_stats_flag_prints_counters(self, capsys):
        assert main(
            ["census", "--n", "4", "--samples", "3", "--seed", "2", "--stats"]
        ) == 0
        out = capsys.readouterr().out
        assert "Engine stats" in out and "Cache stats" in out
        assert "coalesced" in out and "misses" in out

    def test_compact_cache_flag(self, tmp_path, capsys):
        cache = str(tmp_path / "census.jsonl")
        base = ["census", "--n", "4", "--samples", "3", "--seed", "2", "--cache", cache]
        assert main(base) == 0
        # the --rounds rerun upgrades every record: superseded lines appear
        assert main(base + ["--rounds", "--compact-cache"]) == 0
        out = capsys.readouterr().out
        assert "compacted" in out and "dropped" in out
        with open(cache, encoding="utf-8") as fh:
            lines = [line for line in fh if line.strip()]
        keys = [json.loads(line)["key"] for line in lines]
        assert len(keys) == len(set(keys))  # no superseded duplicates left

    def test_compact_cache_requires_cache(self):
        with pytest.raises(SystemExit):
            main(["census", "--n", "4", "--samples", "2", "--compact-cache"])


class TestDefeat:
    def test_all_defeated(self, capsys):
        assert main(["defeat", "--probe-m", "24"]) == 0
        out = capsys.readouterr().out
        assert "DEFEAT" in out.upper() or "yes" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
