"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main


class TestClassify:
    def test_line(self, capsys):
        assert main(["classify", "--line", "0,1,0"]) == 0
        out = capsys.readouterr().out
        assert "Yes" in out

    def test_family(self, capsys):
        assert main(["classify", "--family", "sm:2"]) == 0
        assert "No" in capsys.readouterr().out

    def test_verbose(self, capsys):
        main(["classify", "--line", "0,1", "-v"])
        assert "partition_1" in capsys.readouterr().out

    def test_gnp(self, capsys):
        assert main(["classify", "--gnp", "8,0.3,2,5"]) == 0
        out = capsys.readouterr().out
        assert "decision" in out

    def test_missing_config(self):
        with pytest.raises(SystemExit):
            main(["classify"])

    def test_unknown_family(self):
        with pytest.raises(SystemExit):
            main(["classify", "--family", "zz:1"])


class TestElect:
    def test_feasible(self, capsys):
        assert main(["elect", "--family", "hm:2"]) == 0
        assert "leader=" in capsys.readouterr().out

    def test_infeasible(self, capsys):
        assert main(["elect", "--family", "sm:2"]) == 0
        assert "no leader" in capsys.readouterr().out

    def test_verbose_history(self, capsys):
        main(["elect", "--line", "0,1", "-v"])
        assert "leader history" in capsys.readouterr().out


class TestCensus:
    def test_runs(self, capsys):
        assert main(
            ["census", "--n", "4,5", "--span", "1", "--samples", "3", "--seed", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "census" in out.lower()
        assert " 4 |" in out and " 5 |" in out  # one row per size


class TestDefeat:
    def test_all_defeated(self, capsys):
        assert main(["defeat", "--probe-m", "24"]) == 0
        out = capsys.readouterr().out
        assert "DEFEAT" in out.upper() or "yes" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
