"""Unit tests for DRIP interfaces and the Lemma 3.12 patient wrapper."""

import pytest

from repro.core.configuration import line_configuration
from repro.radio.history import History
from repro.radio.model import LISTEN, SILENCE, TERMINATE, Message, Transmit
from repro.radio.protocol import (
    AlwaysListenDRIP,
    FunctionDRIP,
    LeaderElectionAlgorithm,
    PatientWrapper,
    ScheduleDRIP,
    anonymous_factory,
    make_patient,
    patient_span_of,
)
from repro.radio.simulator import simulate


class TestFunctionDRIP:
    def test_wraps_callable(self):
        d = FunctionDRIP(lambda h: TERMINATE if len(h) >= 2 else LISTEN)
        h = History.from_entries([SILENCE])
        assert d.decide(h) is LISTEN
        h.append(SILENCE)
        assert d.decide(h) is TERMINATE


class TestAlwaysListen:
    def test_horizon(self):
        d = AlwaysListenDRIP(3)
        h = History.from_entries([SILENCE])
        assert d.decide(h) is LISTEN
        h.append(SILENCE)
        h.append(SILENCE)
        assert d.decide(h) is TERMINATE

    def test_invalid_horizon(self):
        with pytest.raises(ValueError):
            AlwaysListenDRIP(0)


class TestScheduleDRIP:
    def test_transmits_on_schedule(self):
        d = ScheduleDRIP({2: "m"}, done_round=4)
        h = History.from_entries([SILENCE])
        assert d.decide(h) is LISTEN
        h.append(SILENCE)
        assert d.decide(h) == Transmit("m")
        h.append(SILENCE)
        assert d.decide(h) is LISTEN
        h.append(SILENCE)
        assert d.decide(h) is TERMINATE

    def test_done_must_follow_schedule(self):
        with pytest.raises(ValueError):
            ScheduleDRIP({5: "m"}, done_round=5)
        with pytest.raises(ValueError):
            ScheduleDRIP({}, done_round=0)


class TestPatientWrapper:
    def test_listens_through_span_without_messages(self):
        inner = ScheduleDRIP({1: "inner"}, done_round=3)
        w = PatientWrapper(inner, span=3)
        h = History.from_entries([SILENCE])
        # rounds 1..3: listening window (s_w = span = 3)
        for _ in range(3):
            assert w.decide(h) is LISTEN
            h.append(SILENCE)
        # round 4 = s_w + 1: inner round 1 -> transmit
        assert w.decide(h) == Transmit("inner")

    def test_message_cuts_wait_short(self):
        inner = ScheduleDRIP({1: "inner"}, done_round=3)
        w = PatientWrapper(inner, span=5)
        h = History.from_entries([SILENCE])
        assert w.decide(h) is LISTEN  # round 1
        h.append(Message("wake"))  # message in round 1 -> s_w = 1
        # round 2 = s_w + 1: inner sees H[0] = (M 'wake') and round 1 fires
        assert w.decide(h) == Transmit("inner")

    def test_inner_sees_shifted_history(self):
        seen = []

        def probe(h):
            seen.append(h.to_list())
            return TERMINATE

        w = PatientWrapper(FunctionDRIP(probe), span=2)
        h = History.from_entries([SILENCE, SILENCE, SILENCE])  # rounds 0..2
        w.decide(h)  # round 3 -> inner round 1 with inner H[0] = outer H[2]
        assert seen == [[SILENCE]]

    def test_span_zero_passthrough(self):
        inner = ScheduleDRIP({1: "x"}, done_round=2)
        w = PatientWrapper(inner, span=0)
        h = History.from_entries([SILENCE])
        assert w.decide(h) == Transmit("x")

    def test_negative_span_rejected(self):
        with pytest.raises(ValueError):
            PatientWrapper(AlwaysListenDRIP(1), span=-1)


class TestPatientSpanOf:
    def test_no_message(self):
        h = History.from_entries([SILENCE] * 5)
        assert patient_span_of(h, 3) == 3

    def test_early_message(self):
        h = History.from_entries([SILENCE, Message("m"), SILENCE])
        assert patient_span_of(h, 3) == 1

    def test_late_message_ignored(self):
        h = History.from_entries([SILENCE] * 4 + [Message("m")])
        assert patient_span_of(h, 3) == 3


class TestMakePatient:
    def test_patient_execution_has_no_forced_wakeups(self):
        # An impatient protocol: transmit immediately at local round 1.
        # On tags [0, 2] the raw protocol would wake node 1 early; the
        # patient version must not (Claim 1 of Lemma 3.12).
        raw = LeaderElectionAlgorithm(
            anonymous_factory(lambda: ScheduleDRIP({1: "go"}, done_round=8)),
            lambda h: 0,
            name="impatient",
        )
        cfg = line_configuration([0, 2])
        raw_ex = simulate(cfg, raw.factory)
        assert not raw_ex.all_spontaneous()

        pat = make_patient(raw, span=cfg.span)
        pat_ex = simulate(cfg, pat.factory)
        assert pat_ex.all_spontaneous()

    def test_patient_preserves_decisions(self):
        # Decision = "I heard a message at some point" -> exactly the
        # non-transmitting node. Preserved under the wrapper (Claim 2).
        def decision(h):
            return 1 if h.first_message_round() is not None else 0

        raw = LeaderElectionAlgorithm(
            anonymous_factory(lambda: ScheduleDRIP({2: "z"}, done_round=5)),
            decision,
            name="hear-detector",
        )
        cfg = line_configuration([0, 1])
        pat = make_patient(raw, span=cfg.span)

        raw_ex = simulate(cfg, raw.factory)
        pat_ex = simulate(cfg, pat.factory)
        raw_leaders = raw_ex.decide_leaders(raw.decision)
        pat_leaders = pat_ex.decide_leaders(pat.decision)
        assert raw_leaders == pat_leaders

    def test_name_annotated(self):
        algo = LeaderElectionAlgorithm(
            anonymous_factory(lambda: AlwaysListenDRIP(2)), lambda h: 0, "x"
        )
        assert "patient(x" in make_patient(algo, 2).name
