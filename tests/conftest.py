"""Shared fixtures, helpers and hypothesis strategies for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.core.configuration import Configuration, line_configuration
from repro.graphs.generators import build, random_connected_gnp_edges
from repro.graphs.tags import uniform_random


# ----------------------------------------------------------------------
# deterministic sample configurations
# ----------------------------------------------------------------------
@pytest.fixture
def singleton():
    """One isolated node (trivially feasible)."""
    return Configuration([], {0: 0})


@pytest.fixture
def sym_pair():
    """Two nodes, same tag — the canonical infeasible configuration."""
    return Configuration([(0, 1)], {0: 0, 1: 0})


@pytest.fixture
def asym_pair():
    """Two nodes, tags 0/1 — the smallest nontrivial feasible one."""
    return Configuration([(0, 1)], {0: 0, 1: 1})


@pytest.fixture
def small_path():
    """Path 0-1-2 with tags 0,1,0 — feasible; the middle node leads."""
    return line_configuration([0, 1, 0])


@pytest.fixture
def sym_path():
    """Path 0-1-2 with tags 0,1... (0,0,0): all-same tags — infeasible?
    No: the middle node has degree 2, but tags are equal so no one ever
    transmits distinctively. Kept as the all-zero path."""
    return line_configuration([0, 0, 0])


# ----------------------------------------------------------------------
# random configuration generation (seeded, library-independent of tests)
# ----------------------------------------------------------------------
def make_random_config(seed: int, n_lo=3, n_hi=10, span_hi=3, p=0.35) -> Configuration:
    """One seeded random connected configuration."""
    rng = random.Random(seed)
    n = rng.randint(n_lo, n_hi)
    span = rng.randint(0, span_hi)
    edges = random_connected_gnp_edges(n, p, rng.randrange(2**31))
    tags = uniform_random(range(n), span, rng.randrange(2**31))
    return build(edges, tags, n=n)


def random_config_batch(count: int, base_seed: int = 1234, **kw):
    """A reproducible batch of random configurations."""
    return [make_random_config(base_seed + i, **kw) for i in range(count)]


# ----------------------------------------------------------------------
# hypothesis strategies
# ----------------------------------------------------------------------
try:
    from hypothesis import strategies as st

    @st.composite
    def configurations(draw, max_n: int = 8, max_span: int = 3):
        """Random connected tagged graphs: a random spanning tree plus a
        random subset of extra edges, with uniform tags."""
        n = draw(st.integers(min_value=1, max_value=max_n))
        # random spanning tree: attach node i to a uniform earlier node
        edges = set()
        for i in range(1, n):
            parent = draw(st.integers(min_value=0, max_value=i - 1))
            edges.add((parent, i))
        # optional extra edges
        if n >= 3:
            extras = draw(
                st.lists(
                    st.tuples(
                        st.integers(0, n - 1), st.integers(0, n - 1)
                    ),
                    max_size=n,
                )
            )
            for u, v in extras:
                if u != v:
                    edges.add((min(u, v), max(u, v)))
        tags = {
            i: draw(st.integers(min_value=0, max_value=max_span))
            for i in range(n)
        }
        return Configuration(sorted(edges), tags)

except ImportError:  # pragma: no cover - hypothesis is an install extra
    configurations = None
