"""Shared fixtures, helpers and hypothesis strategies for the test suite.

The seeded workload builders live in :mod:`repro.engine.workloads`; they
are re-exported here (and in ``benchmarks/conftest.py``) under identical
names so that a combined ``tests`` + ``benchmarks`` collection — where
both ``conftest`` modules race for the same ``sys.modules`` slot — keeps
every ``from conftest import ...`` working no matter which file wins.
"""

from __future__ import annotations

import pytest

from repro.core.configuration import Configuration, line_configuration
from repro.testing import (  # noqa: F401  (re-exported for test modules)
    SMALL_SWEEP_GRID,
    assert_execution_equal,
    assert_trace_equal,
    configurations,
    diverse_configurations,
    feasible_batch,
    make_random_config,
    random_config_batch,
    random_relabel,
    seeded_config,
    sweep_configurations,
)


# ----------------------------------------------------------------------
# deterministic sample configurations
# ----------------------------------------------------------------------
@pytest.fixture
def singleton():
    """One isolated node (trivially feasible)."""
    return Configuration([], {0: 0})


@pytest.fixture
def sym_pair():
    """Two nodes, same tag — the canonical infeasible configuration."""
    return Configuration([(0, 1)], {0: 0, 1: 0})


@pytest.fixture
def asym_pair():
    """Two nodes, tags 0/1 — the smallest nontrivial feasible one."""
    return Configuration([(0, 1)], {0: 0, 1: 1})


@pytest.fixture
def small_path():
    """Path 0-1-2 with tags 0,1,0 — feasible; the middle node leads."""
    return line_configuration([0, 1, 0])


@pytest.fixture
def sym_path():
    """Path 0-1-2 with all-zero tags: every node wakes in the same round,
    so nobody's history ever differs — kept as the canonical infeasible
    path (the classifier rejects it immediately)."""
    return line_configuration([0, 0, 0])
