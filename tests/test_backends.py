"""Backend equivalence suite: the event-driven ``fast`` backend must be
bit-for-bit interchangeable with the per-round ``reference`` oracle —
histories, wake rounds/kinds, ``done_local``, ``rounds_elapsed`` and the
full trace — across canonical elections, hand-built schedules, fault
injection and the variant channels. Also regression-tests the round
budget off-by-one and the diagnostic timeout."""

import pytest

from repro.core.canonical import CanonicalMatchError, CanonicalProtocol
from repro.core.classifier import classify
from repro.core.configuration import Configuration, line_configuration
from repro.core.election import elect_leader
from repro.graphs.families import g_m, h_m, s_m
from repro.radio.backends import (
    BackendUnsupported,
    FastBackend,
    ReferenceBackend,
    SimulationSpec,
    resolve_backend,
)
from repro.radio.faults import jam_pairs, jam_rounds, jammed_simulate
from repro.radio.model import LISTEN, TERMINATE
from repro.radio.protocol import (
    AlwaysListenDRIP,
    Commitment,
    DRIP,
    ScheduleDRIP,
    ScheduleOblivious,
    anonymous_factory,
)
from repro.radio.simulator import (
    ProtocolViolation,
    SimulationTimeout,
    simulate,
)
from repro.testing import (
    assert_execution_equal,
    configurations,
    make_random_config,
    sweep_configurations,
)
from repro.variants.canonical import VariantCanonicalProtocol
from repro.variants.channels import BEEP, CD, NO_CD
from repro.variants.refinement import variant_classify
from repro.variants.simulator import variant_simulate

try:
    from hypothesis import given, settings, strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is an install extra
    HAVE_HYPOTHESIS = False


def canonical_setup(cfg):
    trace = classify(cfg)
    protocol = CanonicalProtocol.from_trace(trace)
    network = trace.config
    return network, protocol


def both_backends(network, factory, *, max_rounds, record_trace=True):
    """Run both backends on one workload; return (reference, fast)."""
    ref = simulate(
        network,
        factory,
        max_rounds=max_rounds,
        record_trace=record_trace,
        backend="reference",
    )
    fast = simulate(
        network,
        factory,
        max_rounds=max_rounds,
        record_trace=record_trace,
        backend="fast",
    )
    return ref, fast


class TestCanonicalEquivalence:
    @pytest.mark.parametrize(
        "make",
        [
            lambda: h_m(1),
            lambda: h_m(5),
            lambda: g_m(2),
            lambda: g_m(4),
            lambda: s_m(3),
            lambda: line_configuration([0]),
            lambda: line_configuration([0, 3, 0, 2]),
        ],
    )
    def test_families_bit_for_bit(self, make):
        network, protocol = canonical_setup(make())
        ref, fast = both_backends(
            network,
            protocol.factory,
            max_rounds=protocol.round_budget(network.span),
        )
        assert_execution_equal(fast, ref)

    def test_exhaustive_small_n_sweep(self):
        """Every configuration shape with n <= 4, tags 0..2: identical
        canonical executions under both backends."""
        checked = 0
        for cfg in sweep_configurations(((1, 2), (2, 2), (3, 2), (4, 2))):
            network, protocol = canonical_setup(cfg)
            ref, fast = both_backends(
                network,
                protocol.factory,
                max_rounds=protocol.round_budget(network.span),
            )
            assert_execution_equal(fast, ref, context=repr(cfg))
            checked += 1
        assert checked > 100  # the sweep must actually sweep

    def test_elect_leader_backend_knob(self):
        cfg = g_m(3)
        ref = elect_leader(cfg, backend="reference")
        fast = elect_leader(cfg, backend="fast")
        auto = elect_leader(cfg)  # canonical DRIP is oblivious -> fast
        assert ref.execution == fast.execution == auto.execution
        assert ref.leaders == fast.leaders == auto.leaders
        assert ref.backend_stats.backend == "reference"
        assert fast.backend_stats.backend == "fast"
        assert auto.backend_stats.backend == "fast"
        assert fast.backend_stats.rounds_skipped > 0
        assert (
            fast.backend_stats.rounds_simulated
            + fast.backend_stats.rounds_skipped
            == fast.backend_stats.rounds_elapsed
        )

    def test_fast_does_fewer_decisions(self):
        network, protocol = canonical_setup(g_m(4))
        ref, fast = both_backends(
            network,
            protocol.factory,
            max_rounds=protocol.round_budget(network.span),
        )
        assert fast.backend_stats.decisions < ref.backend_stats.decisions / 5


class TestScheduleEquivalence:
    """Hand-built fixed schedules exercise forced wakeups, collisions and
    termination-round entries — all the reception edge cases."""

    def schedules_case(self, tags, schedules, done):
        cfg = line_configuration(tags)

        def factory(v):
            return ScheduleDRIP(schedules.get(v, {}), done)

        return both_backends(cfg, factory, max_rounds=1000)

    def test_forced_wakeup(self):
        ref, fast = self.schedules_case([0, 5], {0: {1: "hi"}}, 3)
        assert_execution_equal(fast, ref)
        assert fast.wake_kinds[1] == "forced"

    def test_collision_does_not_wake(self):
        ref, fast = self.schedules_case(
            [0, 5, 0], {0: {1: "x"}, 2: {1: "x"}}, 7
        )
        assert_execution_equal(fast, ref)

    def test_terminate_round_reception(self):
        # node 1 terminates in the round node 0 transmits: the entry must
        # still land in H[done] under both backends.
        cfg = line_configuration([0, 0])

        def factory(v):
            if v == 0:
                return ScheduleDRIP({2: "late"}, 3)
            return ScheduleDRIP({}, 2)

        ref, fast = both_backends(cfg, factory, max_rounds=1000)
        assert_execution_equal(fast, ref)
        from repro.radio.model import Message

        assert fast.histories[1][2] == Message("late")

    def test_simultaneous_transmissions(self):
        ref, fast = self.schedules_case(
            [0, 0, 0, 0], {0: {2: "x"}, 3: {2: "y"}}, 4
        )
        assert_execution_equal(fast, ref)


class TestFaultEquivalence:
    def test_jammed_canonical_execution(self):
        network, protocol = canonical_setup(h_m(2))
        budget = protocol.round_budget(network.span)
        jammer = jam_rounds([0, 3, 7])
        results = []
        for backend in ("reference", "fast"):
            try:
                results.append(
                    jammed_simulate(
                        network,
                        protocol.factory,
                        jammer=jammer,
                        max_rounds=budget,
                        record_trace=True,
                        backend=backend,
                    )
                )
            except CanonicalMatchError as exc:
                results.append(("match-error", str(exc)))
        assert results[0] == results[1]

    def test_effective_jams_identical(self):
        network, protocol = canonical_setup(line_configuration([0, 1, 0]))
        budget = protocol.round_budget(network.span)
        jammer = jam_pairs([(2, 0), (5, 1), (9, 2)])
        from repro.radio.faults import JammedRadioSimulator

        runs = {}
        for backend in ("reference", "fast"):
            sim = JammedRadioSimulator(
                network,
                protocol.factory,
                jammer=jam_pairs([(2, 0), (5, 1), (9, 2)]),
                max_rounds=budget,
                backend=backend,
            )
            try:
                result = sim.run()
            except CanonicalMatchError:
                result = "match-error"
            runs[backend] = (result, sim.effective_jams)
        assert runs["reference"] == runs["fast"]

    @pytest.mark.parametrize("channel", [NO_CD, BEEP], ids=lambda c: c.name)
    def test_jamming_respects_weak_channel_alphabet(self, channel):
        """Jam noise is rendered through the channel (a jammed round
        sounds like a >= 2-transmitter round): without collision
        detection it is silence, when beeping it is a carrier — never
        the CD-only COLLISION sentinel. Both backends agree."""
        from repro.radio.model import COLLISION

        cfg = line_configuration([0, 1, 0])
        trace = variant_classify(cfg, channel)
        protocol = VariantCanonicalProtocol.from_trace(trace, channel)
        network = trace.config
        budget = protocol.round_budget(network.span)
        runs = []
        for backend in ("reference", "fast"):
            spec = SimulationSpec(
                network,
                protocol.factory,
                channel=channel,
                jammer=jam_rounds([0, 2, 5]),
                max_rounds=budget,
                record_trace=True,
            )
            try:
                runs.append(resolve_backend(backend, spec).run(spec))
            except CanonicalMatchError:
                runs.append("match-error")
        assert runs[0] == runs[1]
        if runs[0] != "match-error":
            for h in runs[0].histories.values():
                assert all(e is not COLLISION for e in h)

    def test_opaque_jammer_falls_back_to_reference(self):
        network, protocol = canonical_setup(h_m(1))
        result = jammed_simulate(
            network,
            protocol.factory,
            jammer=lambda r, v: False,  # no event_rounds() -> not fast-able
            max_rounds=protocol.round_budget(network.span),
        )
        assert result.backend_stats.backend == "reference"


class TestChannelEquivalence:
    @pytest.mark.parametrize("channel", [CD, NO_CD, BEEP], ids=lambda c: c.name)
    @pytest.mark.parametrize("tags", [[0, 1, 0], [2, 0, 1, 0], [0, 0]])
    def test_variant_canonical(self, channel, tags):
        cfg = line_configuration(tags)
        trace = variant_classify(cfg, channel)
        protocol = VariantCanonicalProtocol.from_trace(trace, channel)
        network = trace.config
        budget = protocol.round_budget(network.span)
        outcomes = []
        for backend in ("reference", "fast"):
            try:
                outcomes.append(
                    variant_simulate(
                        network,
                        protocol.factory,
                        channel=channel,
                        max_rounds=budget,
                        record_trace=True,
                        backend=backend,
                    )
                )
            except CanonicalMatchError:
                outcomes.append("match-error")
        assert outcomes[0] == outcomes[1]


@pytest.mark.skipif(not HAVE_HYPOTHESIS, reason="hypothesis not installed")
class TestPropertyEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(configurations(max_n=6, max_span=3))
    def test_random_canonical_configs(self, cfg):
        network, protocol = canonical_setup(cfg)
        ref, fast = both_backends(
            network,
            protocol.factory,
            max_rounds=protocol.round_budget(network.span),
        )
        assert_execution_equal(fast, ref)

    @settings(max_examples=25, deadline=None)
    @given(
        configurations(max_n=5, max_span=2),
        st.lists(
            st.tuples(st.integers(0, 30), st.integers(0, 4)), max_size=6
        ),
    )
    def test_random_fault_injection(self, cfg, pairs):
        network, protocol = canonical_setup(cfg)
        budget = protocol.round_budget(network.span)
        pairs = [(r, v) for r, v in pairs if v < network.n]
        outcomes = []
        for backend in ("reference", "fast"):
            try:
                outcomes.append(
                    jammed_simulate(
                        network,
                        protocol.factory,
                        jammer=jam_pairs(pairs),
                        max_rounds=budget,
                        record_trace=True,
                        backend=backend,
                    )
                )
            except (CanonicalMatchError, SimulationTimeout) as exc:
                outcomes.append((type(exc).__name__,))
        assert outcomes[0] == outcomes[1]

    @settings(max_examples=25, deadline=None)
    @given(
        configurations(max_n=5, max_span=2),
        st.sampled_from([CD, NO_CD, BEEP]),
    )
    def test_random_variant_channels(self, cfg, channel):
        trace = variant_classify(cfg, channel)
        protocol = VariantCanonicalProtocol.from_trace(trace, channel)
        network = trace.config
        budget = protocol.round_budget(network.span)
        outcomes = []
        for backend in ("reference", "fast"):
            try:
                outcomes.append(
                    variant_simulate(
                        network,
                        protocol.factory,
                        channel=channel,
                        max_rounds=budget,
                        record_trace=True,
                        backend=backend,
                    )
                )
            except (CanonicalMatchError, SimulationTimeout) as exc:
                outcomes.append((type(exc).__name__,))
        assert outcomes[0] == outcomes[1]

    @settings(max_examples=30, deadline=None)
    @given(st.data())
    def test_random_fixed_schedules(self, data):
        n = data.draw(st.integers(2, 5))
        tags = [data.draw(st.integers(0, 3)) for _ in range(n)]
        cfg = line_configuration(tags)
        done = data.draw(st.integers(1, 12))
        schedules = {}
        for v in range(n):
            rounds = data.draw(
                st.lists(st.integers(1, done - 1), max_size=3, unique=True)
            ) if done > 1 else []
            schedules[v] = {t: f"m{v}" for t in rounds}

        def factory(v):
            return ScheduleDRIP(schedules.get(v, {}), done)

        ref, fast = both_backends(cfg, factory, max_rounds=500)
        assert_execution_equal(fast, ref)


class TestRoundBudget:
    """Satellite regressions: the historical ``r > max_rounds`` check
    permitted ``max_rounds + 1`` rounds; the timeout is now diagnostic."""

    def test_budget_is_exact(self):
        # AlwaysListen(5) on one tag-0 node terminates in local round 5,
        # i.e. needs rounds 0..5 = 6 rounds exactly.
        cfg = line_configuration([0])
        ok = simulate(cfg, anonymous_factory(lambda: AlwaysListenDRIP(5)),
                      max_rounds=6)
        assert ok.rounds_elapsed == 6
        with pytest.raises(SimulationTimeout):
            simulate(cfg, anonymous_factory(lambda: AlwaysListenDRIP(5)),
                     max_rounds=5)

    @pytest.mark.parametrize("backend", ["reference", "fast"])
    def test_timeout_is_diagnostic(self, backend):
        cfg = line_configuration([0, 2, 7])
        with pytest.raises(SimulationTimeout) as err:
            simulate(
                cfg,
                anonymous_factory(lambda: AlwaysListenDRIP(100)),
                max_rounds=5,
                backend=backend,
            )
        exc = err.value
        assert exc.round_reached == 5
        # at round 5: tags 0 and 2 are awake, tag 7 still asleep
        assert (exc.awake, exc.asleep, exc.terminated) == (2, 1, 0)
        assert "reached round 5" in str(exc)
        assert "2 awake" in str(exc) and "1 asleep" in str(exc)

    def test_timeouts_agree_across_backends(self):
        cfg = line_configuration([0, 1])
        caught = {}
        for backend in ("reference", "fast"):
            with pytest.raises(SimulationTimeout) as err:
                simulate(
                    cfg,
                    anonymous_factory(lambda: AlwaysListenDRIP(50)),
                    max_rounds=10,
                    backend=backend,
                )
            e = err.value
            caught[backend] = (str(e), e.round_reached, e.awake, e.asleep,
                               e.terminated)
        assert caught["reference"] == caught["fast"]


class TestBackendSelection:
    def test_explicit_fast_rejects_adaptive_protocol(self):
        class Adaptive(DRIP):
            def decide(self, history):
                return TERMINATE if len(history) >= 2 else LISTEN

        cfg = line_configuration([0, 0])
        with pytest.raises(BackendUnsupported):
            simulate(cfg, anonymous_factory(Adaptive), backend="fast")

    def test_auto_falls_back_for_adaptive_protocol(self):
        class Adaptive(DRIP):
            def decide(self, history):
                return TERMINATE if len(history) >= 2 else LISTEN

        cfg = line_configuration([0, 0])
        result = simulate(cfg, anonymous_factory(Adaptive))
        assert result.backend_stats.backend == "reference"

    def test_auto_picks_fast_for_oblivious_protocol(self):
        cfg = line_configuration([0, 1])
        result = simulate(
            cfg, anonymous_factory(lambda: AlwaysListenDRIP(3))
        )
        assert result.backend_stats.backend == "fast"

    def test_unknown_backend_rejected(self):
        cfg = line_configuration([0])
        with pytest.raises(ValueError):
            simulate(cfg, anonymous_factory(lambda: AlwaysListenDRIP(1)),
                     backend="warp")

    def test_resolve_backend_objects(self):
        cfg = line_configuration([0])
        spec = SimulationSpec(
            cfg, anonymous_factory(lambda: AlwaysListenDRIP(1))
        )
        assert isinstance(resolve_backend("auto", spec), FastBackend)
        assert isinstance(
            resolve_backend("reference", spec), ReferenceBackend
        )


class TestCommitmentContract:
    def test_broken_commitment_fails_loudly(self):
        class Liar(DRIP, ScheduleOblivious):
            """Commits to transmitting but then listens."""

            def decide(self, history):
                return LISTEN

            def next_commitment(self, history):
                return Commitment.transmit(len(history), "never")

        cfg = line_configuration([0])
        with pytest.raises(ProtocolViolation):
            simulate(cfg, anonymous_factory(Liar), backend="fast",
                     max_rounds=50)

    def test_non_progressing_recheck_rejected(self):
        class Stuck(DRIP, ScheduleOblivious):
            def decide(self, history):
                return LISTEN

            def next_commitment(self, history):
                return Commitment.recheck(len(history))

        cfg = line_configuration([0])
        with pytest.raises(ProtocolViolation):
            simulate(cfg, anonymous_factory(Stuck), backend="fast",
                     max_rounds=50)

    def test_schedule_drip_commitments(self):
        from repro.radio.history import History
        from repro.radio.model import SILENCE

        drip = ScheduleDRIP({2: "a", 5: "b"}, 7)
        h = History.from_entries([SILENCE])
        com = drip.next_commitment(h)
        assert (com.kind, com.round, com.message) == (
            Commitment.TRANSMIT, 2, "a")
        h = History.from_entries([SILENCE] * 6)
        com = drip.next_commitment(h)
        assert (com.kind, com.round) == (Commitment.TERMINATE, 7)


class TestEquivalenceViaReplay:
    def test_replay_triangulates_both_backends(self):
        from repro.core.replay import replay_matches_simulation

        for make in (lambda: h_m(3), lambda: g_m(2),
                     lambda: make_random_config(7)):
            cfg = make()
            assert replay_matches_simulation(cfg, backend="reference")
            assert replay_matches_simulation(cfg, backend="fast")
