"""Tests for quotient graphs (repro.analysis.quotient)."""

import pytest

from repro.analysis.quotient import (
    classifier_quotient,
    equitability_violations,
    infeasibility_certificate,
    quotient_graph,
    radio_stable,
)
from repro.core.classifier import classify, is_feasible
from repro.core.configuration import Configuration
from repro.graphs.enumeration import enumerate_configurations
from repro.graphs.families import g_m, h_m, s_m
from repro.graphs.generators import (
    complete_configuration,
    cycle_configuration,
    path_configuration,
)


class TestQuotientConstruction:
    def test_trivial_partition(self):
        cfg = path_configuration([0, 0, 0])
        q = quotient_graph(cfg, {0: 1, 1: 1, 2: 1})
        assert q.num_classes == 1
        assert q.classes[0].size == 3
        assert q.classes[0].tag == 0
        # one class, degrees 1..2 -> non-uniform: (1,1) must be None
        assert q.degrees[(1, 1)] is None
        assert not q.is_equitable()

    def test_discrete_partition_is_equitable(self):
        cfg = path_configuration([0, 1, 2])
        q = quotient_graph(cfg, {0: 1, 1: 2, 2: 3})
        assert q.is_equitable()
        assert q.singleton_classes() == [1, 2, 3]

    def test_mixed_tags_reported_as_none(self):
        cfg = path_configuration([0, 1, 0])
        q = quotient_graph(cfg, {0: 1, 1: 1, 2: 1})
        assert q.classes[0].tag is None

    def test_render_mentions_classes(self):
        cfg = cycle_configuration([0, 0, 0, 0])
        q = classifier_quotient(cfg)
        text = q.render()
        assert "quotient" in text and "C1" in text


class TestClassifierQuotient:
    def test_no_partitions_are_radio_stable(self):
        """A classifier No-partition is a refinement fixpoint: one more
        Partitioner pass splits nothing."""
        for cfg in enumerate_configurations(4, 1):
            trace = classify(cfg)
            if not trace.feasible:
                assert radio_stable(trace.config, trace.final_classes()), cfg

    def test_radio_stable_need_not_be_equitable(self):
        """The all-equal-tags star: one class, radio-stable (everyone
        transmits simultaneously, nobody hears anything), but NOT
        equitable — the hub's degree differs. This is the paper's model
        vs the wired model in one example."""
        star = Configuration(
            [(0, 3), (1, 3), (2, 3)], {0: 0, 1: 0, 2: 0, 3: 0}
        )
        partition = {v: 1 for v in star.nodes}
        assert radio_stable(star, partition)
        assert equitability_violations(star, partition)

    def test_wired_fixpoints_are_equitable(self):
        """Color-refinement fixpoints are equitable partitions."""
        from repro.analysis.views import color_refinement

        for cfg in enumerate_configurations(4, 1):
            result = color_refinement(cfg)
            # densify class ids to 1-based for the quotient helper
            partition = {v: c + 1 for v, c in result.stable.items()}
            assert equitability_violations(cfg, partition) == []

    def test_class_tags_uniform_on_fixpoints(self):
        """Nodes sharing a history share a wakeup round history, hence a
        tag — classifier classes are always tag-uniform after iteration 1."""
        for cfg in (s_m(1), s_m(3), cycle_configuration([0, 0, 0, 0])):
            q = classifier_quotient(cfg)
            assert all(c.tag is not None for c in q.classes)

    def test_feasible_quotient_has_singleton(self):
        for cfg in (h_m(1), g_m(2), path_configuration([0, 1, 0])):
            q = classifier_quotient(cfg)
            assert q.singleton_classes()


class TestCertificates:
    def test_feasible_has_no_certificate(self):
        assert infeasibility_certificate(h_m(2)) is None

    def test_infeasible_certificate_properties(self):
        for cfg in (s_m(2), complete_configuration([0, 0, 0])):
            q = infeasibility_certificate(cfg)
            assert q is not None
            assert radio_stable(q.config, {v: c.index for c in q.classes for v in c.members})
            assert all(c.size >= 2 for c in q.classes)

    def test_sm_certificate_is_two_pairs(self):
        q = infeasibility_certificate(s_m(3))
        sizes = sorted(c.size for c in q.classes)
        assert sizes == [2, 2]  # {a, d} and {b, c}

    def test_certificate_matches_feasibility_exhaustively(self):
        for cfg in enumerate_configurations(3, 2):
            cert = infeasibility_certificate(cfg)
            assert (cert is None) == is_feasible(cfg)
