"""Property tests for the classifier over random configurations."""

import math

from hypothesis import HealthCheck, given, settings

from conftest import configurations

from repro.analysis.automorphisms import has_fixed_node
from repro.core.classifier import classify
from repro.core.fast_classifier import fast_classify, traces_equal
from repro.core.partition import class_members, partition_key

relaxed = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@relaxed
@given(configurations())
def test_fast_equals_faithful(cfg):
    assert traces_equal(classify(cfg), fast_classify(cfg))


@relaxed
@given(configurations())
def test_iteration_cap_and_monotonicity(cfg):
    trace = classify(cfg)
    assert 1 <= trace.num_iterations <= math.ceil(cfg.n / 2)
    chain = trace.class_count_chain()
    assert all(a <= b for a, b in zip(chain, chain[1:]))
    assert 1 <= chain[-1] <= cfg.n


@relaxed
@given(configurations())
def test_decision_consistency(cfg):
    trace = classify(cfg)
    singles = sorted(
        k for k, vs in class_members(trace.final_classes()).items() if len(vs) == 1
    )
    if trace.feasible:
        assert singles
        # Lemma 3.11: the leader class is the *smallest* singleton class.
        assert trace.leader_class == singles[0]
        assert trace.final_classes()[trace.leader] == trace.leader_class
    else:
        assert not singles
        # No exit: the last two partitions must be identical
        assert trace.num_classes_at(trace.num_iterations + 1) == trace.num_classes_at(
            trace.num_iterations
        )


@relaxed
@given(configurations())
def test_separation_is_permanent(cfg):
    # Observation 3.2 on arbitrary random configurations.
    trace = classify(cfg)
    nodes = trace.config.nodes
    for j in range(1, trace.num_iterations + 1):
        before, after = trace.classes_at(j), trace.classes_at(j + 1)
        pairs = [(v, w) for v in nodes for w in nodes if v < w]
        for v, w in pairs:
            if before[v] != before[w]:
                assert after[v] != after[w]


@relaxed
@given(configurations(max_n=6))
def test_feasible_implies_fixed_node(cfg):
    # the automorphism necessary condition, adversarially sampled
    trace = classify(cfg)
    if trace.feasible:
        assert has_fixed_node(trace.config)


@relaxed
@given(configurations())
def test_tag_shift_invariance(cfg):
    shifted = cfg.shift_tags(3)
    a, b = classify(cfg), classify(shifted)
    assert a.decision == b.decision
    assert a.leader == b.leader
    assert [partition_key(a.classes_at(j)) for j in range(1, a.num_iterations + 2)] == [
        partition_key(b.classes_at(j)) for j in range(1, b.num_iterations + 2)
    ]


@relaxed
@given(configurations())
def test_refine_respects_blocks(cfg):
    # each partition_{j+1} block is contained in a partition_j block
    trace = classify(cfg)
    for j in range(1, trace.num_iterations + 1):
        coarse = trace.classes_at(j)
        fine = trace.classes_at(j + 1)
        for block in class_members(fine).values():
            assert len({coarse[v] for v in block}) == 1
