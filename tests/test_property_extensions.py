"""Property tests (hypothesis) for the extension modules: serializable
programs, closed-form replay, channel variants, wired contrast."""

from hypothesis import HealthCheck, given, settings

from conftest import configurations

from repro.analysis.views import color_refinement, wired_feasible
from repro.core.classifier import classify
from repro.core.partition import partition_key
from repro.core.program import (
    compile_program,
    dumps,
    loads,
    program_from_trace,
)
from repro.core.replay import replay_histories, replay_matches_simulation
from repro.variants.channels import BEEP, CD, NO_CD
from repro.variants.refinement import variant_classify
from repro.wired import wired_elect, wired_election_agrees_with_views

relaxed = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

small = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# ----------------------------------------------------------------------
# serializable programs
# ----------------------------------------------------------------------
@relaxed
@given(configurations())
def test_program_roundtrip(cfg):
    prog = compile_program(cfg)
    assert loads(dumps(prog)) == prog


@relaxed
@given(configurations())
def test_program_mirrors_trace(cfg):
    trace = classify(cfg)
    prog = program_from_trace(trace)
    assert prog.feasible == trace.feasible
    assert prog.sigma == trace.sigma
    assert prog.num_phases == trace.decided_at
    data = prog.to_canonical_data()
    assert data.done_round == prog.done_round


# ----------------------------------------------------------------------
# closed-form replay
# ----------------------------------------------------------------------
@small
@given(configurations(max_n=7, max_span=2))
def test_replay_equals_simulation(cfg):
    assert replay_matches_simulation(cfg)


@relaxed
@given(configurations())
def test_replay_histories_shape(cfg):
    trace = classify(cfg)
    histories = replay_histories(trace)
    assert set(histories) == set(trace.config.nodes)
    lengths = {len(h) for h in histories.values()}
    assert len(lengths) == 1  # synchronized local termination (done_v)


@relaxed
@given(configurations())
def test_replay_history_partition_matches_classifier(cfg):
    """Lemma 3.9 at the terminal partition: nodes share a terminal class
    iff they share a terminal history."""
    trace = classify(cfg)
    histories = replay_histories(trace)
    by_history = {}
    for v in sorted(histories):
        by_history.setdefault(histories[v].key(), []).append(v)
    history_partition = sorted(tuple(g) for g in by_history.values())
    class_partition = sorted(partition_key(trace.final_classes()))
    assert history_partition == class_partition


# ----------------------------------------------------------------------
# channel variants
# ----------------------------------------------------------------------
@relaxed
@given(configurations())
def test_cd_refinement_is_classifier(cfg):
    a = classify(cfg)
    b = variant_classify(cfg, CD)
    assert a.decision == b.decision
    assert a.leader == b.leader
    assert a.partition_keys() == b.partition_keys()


@relaxed
@given(configurations())
def test_weak_channels_dominated_by_cd(cfg):
    cd = variant_classify(cfg, CD).feasible
    for weak in (NO_CD, BEEP):
        if variant_classify(cfg, weak).feasible:
            assert cd


@relaxed
@given(configurations())
def test_weak_partitions_coarser_stagewise(cfg):
    """At every common refinement stage j, the weak partition is coarser
    than the CD partition (each weak block is a union of CD blocks).
    Final partitions are *not* compared directly: CD may stop early on a
    singleton while a weak channel keeps refining past that stage."""
    cd_trace = variant_classify(cfg, CD)
    for weak in (NO_CD, BEEP):
        weak_trace = variant_classify(cfg, weak)
        common = min(weak_trace.num_iterations, cd_trace.num_iterations)
        for j in range(1, common + 2):
            cd_blocks = {
                frozenset(b) for b in partition_key(cd_trace.classes_at(j))
            }
            for block in partition_key(weak_trace.classes_at(j)):
                covered = set()
                for cb in cd_blocks:
                    if cb <= set(block):
                        covered |= cb
                assert covered == set(block)


# ----------------------------------------------------------------------
# wired contrast
# ----------------------------------------------------------------------
@relaxed
@given(configurations())
def test_radio_feasible_implies_wired_feasible(cfg):
    if classify(cfg).feasible:
        assert wired_feasible(cfg)


@small
@given(configurations(max_n=7, max_span=2))
def test_distributed_wired_matches_central(cfg):
    assert wired_election_agrees_with_views(cfg)


@relaxed
@given(configurations())
def test_wired_refinement_chain_monotone(cfg):
    chain = color_refinement(cfg).class_count_chain()
    assert all(a <= b for a, b in zip(chain, chain[1:]))
    assert chain[-1] <= cfg.n


@small
@given(configurations(max_n=6, max_span=2))
def test_wired_leader_is_singleton(cfg):
    result = wired_elect(cfg)
    if result.elected:
        vid = result.view_ids[result.leader]
        assert sum(1 for x in result.view_ids.values() if x == vid) == 1


# ----------------------------------------------------------------------
# isomorphism invariance and fault-free jamming
# ----------------------------------------------------------------------
@small
@given(configurations(max_n=6, max_span=2))
def test_feasibility_is_isomorphism_invariant(cfg):
    from repro.analysis.isomorphism import are_isomorphic, canonical_form

    nodes = list(cfg.nodes)
    mapping = {v: nodes[(i + 1) % len(nodes)] for i, v in enumerate(nodes)}
    other = cfg.relabel(mapping)
    assert are_isomorphic(cfg, other)
    assert canonical_form(cfg) == canonical_form(other)
    assert classify(cfg).feasible == classify(other).feasible


@small
@given(configurations(max_n=7, max_span=2))
def test_noop_jammer_is_reference_simulator(cfg):
    from repro.core.canonical import CanonicalProtocol
    from repro.radio.faults import jam_nothing, jammed_simulate
    from repro.radio.simulator import simulate

    trace = classify(cfg)
    protocol = CanonicalProtocol.from_trace(trace)
    network = trace.config
    budget = protocol.round_budget(network.span)
    ref = simulate(network, protocol.factory, max_rounds=budget)
    jam = jammed_simulate(
        network, protocol.factory, jammer=jam_nothing(), max_rounds=budget
    )
    assert ref.histories == jam.histories
    assert ref.done_local == jam.done_local


@small
@given(configurations(max_n=6, max_span=2))
def test_classifier_no_partition_is_radio_stable(cfg):
    from repro.analysis.quotient import radio_stable

    trace = classify(cfg)
    if not trace.feasible:
        assert radio_stable(trace.config, trace.final_classes())
