"""Tests for the seeded adversary zoo (repro.adversary)."""

import pytest

from repro.adversary import (
    ADVERSARY_KINDS,
    ReactiveJammer,
    adversary_from_spec,
    adversary_to_spec,
    crash_sleep_faults,
    phase_targeting_for_trace,
    phase_targeting_jammer,
    random_budget_jammer,
    random_crash_sleep,
    register_adversary_kind,
)
from repro.core.canonical import CanonicalProtocol, build_canonical_data
from repro.core.classifier import classify
from repro.graphs.families import g_m, h_m
from repro.radio.backends import adversary_is_adaptive
from repro.radio.faults import ExplicitJamSchedule, jam_nothing, jammed_simulate
from repro.testing import assert_execution_equal


def canonical_setup(cfg):
    trace = classify(cfg)
    protocol = CanonicalProtocol.from_trace(trace)
    network = trace.config
    budget = protocol.round_budget(network.span)
    return trace, protocol, network, budget


class TestRandomBudgetJammer:
    def test_deterministic_in_seed(self):
        a = random_budget_jammer(7, 3, 50)
        b = random_budget_jammer(7, 3, 50)
        assert a.to_spec() == b.to_spec()
        assert [a(r, 0) for r in range(50)] == [b(r, 0) for r in range(50)]

    def test_jams_exactly_budget_rounds(self):
        j = random_budget_jammer(3, 4, 30)
        jammed = [r for r in range(30) if j(r, "any")]
        assert len(jammed) == 4
        assert sorted(j.event_rounds()) == jammed

    def test_different_seeds_differ(self):
        a = random_budget_jammer(1, 5, 100)
        b = random_budget_jammer(2, 5, 100)
        assert a.to_spec() != b.to_spec()

    def test_roundtrip(self):
        j = random_budget_jammer(9, 2, 40)
        back = adversary_from_spec(j.to_spec())
        assert back.to_spec() == j.to_spec()
        assert [back(r, 0) for r in range(40)] == [j(r, 0) for r in range(40)]


class TestPhaseTargetingJammer:
    def test_hits_land_inside_the_phase_block_region(self):
        trace = classify(h_m(2))
        data = build_canonical_data(trace)
        cfg = trace.config
        j = phase_targeting_for_trace(trace, phase=1, seed=5, hits=1)
        lo = data.phase_ends[0]
        hi = data.phase_ends[1]
        block_region = hi - lo - data.sigma
        pairs = [
            (g, v)
            for v in cfg.nodes
            for g in j.event_rounds()
            if j(g, v)
        ]
        assert pairs
        for g, v in pairs:
            local = g - cfg.tag(v)
            assert lo < local <= lo + block_region

    def test_deterministic_and_roundtrips(self):
        trace = classify(g_m(2))
        a = phase_targeting_for_trace(trace, phase=1, seed=3, hits=2)
        b = phase_targeting_for_trace(trace, phase=1, seed=3, hits=2)
        assert a.to_spec() == b.to_spec()
        back = adversary_from_spec(a.to_spec())
        assert back.to_spec() == a.to_spec()
        nodes = classify(g_m(2)).config.nodes
        assert {
            (g, v) for v in nodes for g in back.event_rounds() if back(g, v)
        } == {(g, v) for v in nodes for g in a.event_rounds() if a(g, v)}

    def test_rejects_out_of_range_phase(self):
        trace = classify(h_m(2))
        data = build_canonical_data(trace)
        with pytest.raises(ValueError):
            phase_targeting_for_trace(
                trace, phase=data.num_phases + 1, seed=0, hits=1
            )


class TestCrashSleep:
    def test_window_semantics_half_open(self):
        j = crash_sleep_faults([("a", 3, 6)])
        assert not j(2, "a")
        assert j(3, "a") and j(5, "a")
        assert not j(6, "a")
        assert not j(4, "b")

    def test_random_windows_serialize_concretely(self):
        j = random_crash_sleep(11, ["a", "b", "c"], count=2, horizon=40)
        spec = j.to_spec()
        assert spec["kind"] == "crash_sleep"
        assert len(spec["windows"]) == 2
        back = adversary_from_spec(spec)
        assert back.to_spec() == spec

    def test_random_windows_deterministic(self):
        a = random_crash_sleep(4, [0, 1, 2], count=3, horizon=50)
        b = random_crash_sleep(4, [0, 1, 2], count=3, horizon=50)
        assert a.to_spec() == b.to_spec()


class TestReactiveJammer:
    def test_is_adaptive_and_explicit_strategies_are_not(self):
        assert adversary_is_adaptive(ReactiveJammer(1))
        assert not adversary_is_adaptive(random_budget_jammer(1, 2, 10))
        assert not adversary_is_adaptive(jam_nothing())
        assert not adversary_is_adaptive(None)

    def test_reset_rearms_the_same_decision_stream(self):
        j = ReactiveJammer(5, probability=0.7, budget=2)
        first = []
        for r in range(20):
            j.observe(r, r % 3)
            first.append(j(r, "v"))
        j.reset()
        second = []
        for r in range(20):
            j.observe(r, r % 3)
            second.append(j(r, "v"))
        assert first == second
        assert sum(first) <= 2

    def test_only_fires_on_activity(self):
        j = ReactiveJammer(5, probability=1.0, budget=3)
        for r in range(10):
            j.observe(r, 0)  # silent channel: nothing to react to
            assert not j(r, "v")

    def test_roundtrip_preserves_parameters(self):
        j = ReactiveJammer(8, probability=0.25, budget=4)
        back = adversary_from_spec(j.to_spec())
        assert isinstance(back, ReactiveJammer)
        assert back.to_spec() == j.to_spec()

    def test_auto_backend_falls_back_to_reference(self):
        trace, protocol, network, budget = canonical_setup(h_m(2))
        execution = jammed_simulate(
            network,
            protocol.factory,
            jammer=ReactiveJammer(3, probability=1.0, budget=1),
            max_rounds=budget,
            backend="auto",
        )
        assert execution.backend_stats.backend == "reference"

    def test_fast_backend_rejects_adaptive(self):
        trace, protocol, network, budget = canonical_setup(h_m(2))
        from repro.radio.backends import BackendUnsupported

        with pytest.raises(BackendUnsupported):
            jammed_simulate(
                network,
                protocol.factory,
                jammer=ReactiveJammer(3),
                max_rounds=budget,
                backend="fast",
            )

    def test_rerun_of_same_simulator_is_bit_for_bit(self):
        """reset() makes adaptive runs idempotent: simulating twice
        with the same jammer object yields identical executions."""
        trace, protocol, network, budget = canonical_setup(g_m(2))
        jammer = ReactiveJammer(2, probability=0.8, budget=2)
        first = jammed_simulate(
            network, protocol.factory, jammer=jammer, max_rounds=budget
        )
        second = jammed_simulate(
            network, protocol.factory, jammer=jammer, max_rounds=budget
        )
        assert_execution_equal(second, first, context="reactive rerun")


class TestSpecRegistry:
    def test_all_kinds_registered(self):
        assert set(ADVERSARY_KINDS) == {
            "jam_pairs",
            "jam_rounds",
            "jam_nothing",
            "random_budget",
            "phase_targeting",
            "crash_sleep",
            "reactive",
        }

    def test_none_maps_to_jam_nothing(self):
        spec = adversary_to_spec(None)
        assert spec == {"kind": "jam_nothing"}
        j = adversary_from_spec(spec)
        assert isinstance(j, ExplicitJamSchedule)
        assert not j(0, "v")

    def test_unknown_kind_raises(self):
        with pytest.raises(KeyError):
            adversary_from_spec({"kind": "martian"})

    def test_opaque_jammer_raises(self):
        with pytest.raises(TypeError):
            adversary_to_spec(lambda r, v: False)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_adversary_kind("reactive", lambda spec: None)

    @pytest.mark.parametrize(
        "jammer",
        [
            random_budget_jammer(1, 2, 20),
            crash_sleep_faults([("a", 1, 4), ("b", 2, 3)]),
            ReactiveJammer(1, probability=0.5, budget=1),
        ],
        ids=["random_budget", "crash_sleep", "reactive"],
    )
    def test_to_from_spec_roundtrip(self, jammer):
        spec = adversary_to_spec(jammer)
        assert adversary_to_spec(adversary_from_spec(spec)) == spec
