"""Unit tests for simulation-based feasibility ground truth."""

from conftest import random_config_batch

from repro.baselines.bruteforce import (
    refutes_by_symmetry,
    simulation_feasible,
    simulation_leader,
)
from repro.core.classifier import classify, is_feasible
from repro.graphs.families import g_m, h_m, s_m


class TestSimulationFeasible:
    def test_matches_classifier_on_families(self):
        for cfg in (h_m(1), h_m(3), s_m(1), s_m(3), g_m(2)):
            assert simulation_feasible(cfg) == is_feasible(cfg)

    def test_matches_classifier_on_random_batch(self):
        for cfg in random_config_batch(30, base_seed=90):
            assert simulation_feasible(cfg) == is_feasible(cfg), repr(cfg)


class TestSimulationLeader:
    def test_leader_is_unique_history_node(self):
        leader = simulation_leader(h_m(2))
        assert leader in (0, 1, 2, 3)

    def test_none_when_infeasible(self):
        assert simulation_leader(s_m(2)) is None

    def test_leader_in_classifier_singleton(self):
        # any unique-history node is a singleton class; the classifier
        # leader must also have a unique history
        trace = classify(g_m(2))
        leader = simulation_leader(g_m(2))
        assert leader is not None
        final = trace.final_classes()
        members = [v for v in trace.config.nodes if final[v] == final[leader]]
        assert members == [leader]


class TestSymmetryRefutation:
    def test_s_m_refuted(self):
        assert refutes_by_symmetry(s_m(1))
        assert refutes_by_symmetry(s_m(4))

    def test_h_m_not_refuted(self):
        assert not refutes_by_symmetry(h_m(1))

    def test_refutation_implies_infeasible(self):
        for cfg in random_config_batch(25, base_seed=404):
            if refutes_by_symmetry(cfg):
                assert not is_feasible(cfg), repr(cfg)
