"""Unit tests for labels, ≺hist ordering and Refine semantics."""

import pytest

from repro.core.configuration import Configuration, line_configuration
from repro.core.partition import (
    NULL_LABEL,
    ONE,
    STAR,
    OpCounter,
    class_members,
    compute_all_labels,
    compute_label,
    label_str,
    partition_key,
    refine,
    singleton_classes,
    triple_str,
)


class TestOrdering:
    def test_one_sorts_before_star(self):
        # Definition 3.1: (a,b,1) precedes (a,b,*)
        assert (1, 2, ONE) < (1, 2, STAR)

    def test_lexicographic_on_a_then_b(self):
        assert (1, 9, STAR) < (2, 1, ONE)
        assert (1, 2, STAR) < (1, 3, ONE)

    def test_rendering(self):
        assert triple_str((2, 5, ONE)) == "(2,5,1)"
        assert triple_str((2, 5, STAR)) == "(2,5,*)"
        assert label_str(NULL_LABEL) == "null"
        assert label_str(((1, 2, ONE), (1, 3, STAR))) == "(1,2,1)(1,3,*)"


class TestComputeLabel:
    def test_same_class_same_tag_excluded(self):
        # two nodes, same class and tag: the neighbour tuple is excluded
        # (simultaneous transmission — nothing received, no collision).
        cfg = Configuration([(0, 1)], {0: 0, 1: 0})
        classes = {0: 1, 1: 1}
        assert compute_label(cfg, 0, classes) == NULL_LABEL

    def test_different_tag_included(self):
        cfg = Configuration([(0, 1)], {0: 0, 1: 1})  # sigma = 1
        classes = {0: 1, 1: 1}
        # b = sigma + 1 + t_w - t_v = 1 + 1 + 1 - 0 = 3 at node 0
        assert compute_label(cfg, 0, classes) == ((1, 3, ONE),)
        # and 1 + 1 + 0 - 1 = 1 at node 1
        assert compute_label(cfg, 1, classes) == ((1, 1, ONE),)

    def test_different_class_included_even_same_tag(self):
        cfg = Configuration([(0, 1)], {0: 0, 1: 0})
        classes = {0: 1, 1: 2}
        assert compute_label(cfg, 0, classes) == ((2, 1, ONE),)

    def test_star_for_duplicate_tuples(self):
        # centre 0 with two leaves of equal class and tag -> collision mark
        cfg = Configuration([(0, 1), (0, 2)], {0: 0, 1: 1, 2: 1})
        classes = {0: 1, 1: 1, 2: 1}
        label = compute_label(cfg, 0, classes)
        assert label == ((1, 3, STAR),)

    def test_mixed_one_and_star_sorted(self):
        # leaves: two at tag 1 (same class) -> STAR; one at tag 2 -> ONE
        cfg = Configuration(
            [(0, 1), (0, 2), (0, 3)], {0: 0, 1: 1, 2: 1, 3: 2}
        )
        classes = {v: 1 for v in cfg.nodes}
        label = compute_label(cfg, 0, classes)
        # sigma = 2: b-values are 2+1+1=4 (twice) and 2+1+2=5
        assert label == ((1, 4, STAR), (1, 5, ONE))

    def test_triple_count_bounded_by_degree(self):
        cfg = Configuration(
            [(0, i) for i in range(1, 6)], {0: 0, **{i: i % 3 for i in range(1, 6)}}
        )
        classes = {v: 1 for v in cfg.nodes}
        assert len(compute_label(cfg, 0, classes)) <= cfg.degree(0)

    def test_op_counter_counts(self):
        cfg = Configuration([(0, 1), (0, 2)], {0: 0, 1: 1, 2: 1})
        counter = OpCounter()
        compute_all_labels(cfg, {v: 1 for v in cfg.nodes}, counter)
        assert counter.triple_ops > 0
        assert counter.total == counter.triple_ops + counter.label_ops


class TestRefine:
    def test_splits_by_label(self):
        nodes = [0, 1, 2]
        old = {0: 1, 1: 1, 2: 1}
        labels = {0: ((1, 1, ONE),), 1: ((1, 2, ONE),), 2: ((1, 1, ONE),)}
        reps = [None, 0]
        classes, reps, num = refine(nodes, old, labels, reps, 1)
        assert classes == {0: 1, 1: 2, 2: 1}
        assert num == 2
        assert reps[2] == 1

    def test_respects_old_classes(self):
        # equal labels but different old classes stay separated
        nodes = [0, 1]
        old = {0: 1, 1: 2}
        labels = {0: NULL_LABEL, 1: NULL_LABEL}
        reps = [None, 0, 1]
        classes, reps, num = refine(nodes, old, labels, reps, 2)
        assert classes == {0: 1, 1: 2}
        assert num == 2

    def test_class_numbers_stable(self):
        # the representative of each old class keeps its number
        nodes = [0, 1, 2, 3]
        old = {0: 1, 1: 2, 2: 1, 3: 2}
        labels = {0: NULL_LABEL, 1: NULL_LABEL, 2: ((1, 1, ONE),), 3: NULL_LABEL}
        reps = [None, 0, 1]
        classes, reps, num = refine(nodes, old, labels, reps, 2)
        assert classes[0] == 1 and classes[1] == 2 and classes[3] == 2
        assert classes[2] == 3  # split off into a fresh class
        assert num == 3

    def test_refinement_never_merges(self):
        # Observation 3.2: nodes in different classes stay different.
        nodes = [0, 1]
        old = {0: 1, 1: 2}
        labels = {0: ((9, 9, ONE),), 1: ((9, 9, ONE),)}
        reps = [None, 0, 1]
        classes, _, _ = refine(nodes, old, labels, reps, 2)
        assert classes[0] != classes[1]

    def test_counter_metered(self):
        counter = OpCounter()
        refine([0, 1], {0: 1, 1: 1}, {0: NULL_LABEL, 1: NULL_LABEL}, [None, 0], 1, counter)
        assert counter.label_ops > 0


class TestPartitionHelpers:
    def test_class_members(self):
        assert class_members({0: 1, 1: 2, 2: 1}) == {1: [0, 2], 2: [1]}

    def test_singletons(self):
        assert singleton_classes({0: 1, 1: 2, 2: 1}) == [2]
        assert singleton_classes({0: 1, 1: 1}) == []

    def test_partition_key_numbering_independent(self):
        assert partition_key({0: 1, 1: 2}) == partition_key({0: 5, 1: 3})
        assert partition_key({0: 1, 1: 1}) != partition_key({0: 1, 1: 2})
