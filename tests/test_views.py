"""Tests for the wired-model contrast (repro.analysis.views)."""

import pytest

from repro.core.classifier import is_feasible
from repro.core.configuration import Configuration, line_configuration
from repro.graphs.enumeration import enumerate_configurations
from repro.graphs.families import g_m, h_m, s_m
from repro.graphs.generators import (
    build,
    complete_configuration,
    cycle_configuration,
    path_configuration,
    random_connected_gnp_edges,
    star_configuration,
)
from repro.graphs.tags import uniform_random
from repro.analysis.views import (
    ContrastCensus,
    ContrastRow,
    color_refinement,
    radio_vs_wired,
    view_key,
    view_partition,
    views_stabilize_like_refinement,
    wired_feasible,
)


class TestColorRefinement:
    def test_initial_partition_by_tag_and_degree(self):
        cfg = path_configuration([0, 0, 0])  # endpoints deg 1, centre deg 2
        result = color_refinement(cfg)
        assert result.partition_at(0) == ((0, 2), (1,))

    def test_fixpoint_is_stable(self):
        for cfg in (h_m(2), g_m(2), s_m(2), complete_configuration([0, 1, 2])):
            result = color_refinement(cfg)
            # one more refinement round must not change the partition
            again = color_refinement(cfg)
            assert result.stable_partition() == again.stable_partition()

    def test_stabilizes_within_n_rounds(self):
        for cfg in enumerate_configurations(4, 1):
            assert color_refinement(cfg).num_rounds <= cfg.n

    def test_class_counts_nondecreasing(self):
        for cfg in enumerate_configurations(4, 1):
            chain = color_refinement(cfg).class_count_chain()
            assert all(a <= b for a, b in zip(chain, chain[1:]))

    def test_complete_same_tags_never_splits(self):
        cfg = complete_configuration([0, 0, 0, 0])
        result = color_refinement(cfg)
        assert len(set(result.stable.values())) == 1
        assert not wired_feasible(cfg)

    def test_tags_matter(self):
        cfg = cycle_configuration([0, 0, 0, 0])
        assert not wired_feasible(cfg)  # vertex-transitive, equal tags
        cfg2 = cycle_configuration([1, 0, 0, 0])
        assert wired_feasible(cfg2)  # the early riser is unique

    def test_use_flags(self):
        # without tags or degrees nothing distinguishes a path's nodes
        # beyond structure discovered by refinement
        cfg = path_configuration([5, 0, 0])
        with_tags = color_refinement(cfg, use_tags=True)
        without = color_refinement(cfg, use_tags=False)
        assert len(set(without.stable.values())) <= len(
            set(with_tags.stable.values())
        )

    def test_singleton_nodes_sorted_and_correct(self):
        cfg = star_configuration([0, 0, 0, 1])
        singles = color_refinement(cfg).singleton_nodes()
        counts = {}
        stable = color_refinement(cfg).stable
        for c in stable.values():
            counts[c] = counts.get(c, 0) + 1
        assert singles == sorted(
            v for v, c in stable.items() if counts[c] == 1
        )


class TestViews:
    def test_depth_zero_is_tag_degree(self):
        cfg = path_configuration([0, 1, 0])
        assert view_key(cfg, 0, 0) == ((0, 1), ())
        assert view_key(cfg, 1, 0) == ((1, 2), ())

    def test_negative_depth_rejected(self):
        with pytest.raises(ValueError):
            view_key(path_configuration([0, 0]), 0, -1)

    def test_symmetric_nodes_share_views(self):
        cfg = path_configuration([0, 1, 0])
        for d in range(4):
            assert view_key(cfg, 0, d) == view_key(cfg, 2, d)
            assert view_key(cfg, 0, d) != view_key(cfg, 1, d)

    def test_view_partition_refines_with_depth(self):
        cfg = g_m(2)
        prev = view_partition(cfg, 0)
        for d in range(1, 5):
            cur = view_partition(cfg, d)
            # every current block is inside some previous block
            for block in cur:
                assert any(set(block) <= set(pb) for pb in prev)
            prev = cur

    @pytest.mark.parametrize(
        "cfg",
        [
            h_m(1),
            s_m(2),
            g_m(2),
            line_configuration([0, 0, 0, 0]),
            cycle_configuration([0, 1, 0, 1]),
            star_configuration([2, 0, 1, 0]),
        ],
        ids=lambda c: f"n{c.n}s{c.span}",
    )
    def test_views_equal_refinement_fixpoint(self, cfg):
        assert views_stabilize_like_refinement(cfg)


class TestRadioVsWired:
    @pytest.fixture(scope="class")
    def census(self):
        return radio_vs_wired(enumerate_configurations(4, 1))

    def test_dominance(self, census):
        """Radio-feasible ⇒ wired-feasible (intro's 'most adverse' claim)."""
        assert census.dominance_holds()

    def test_wired_only_exists(self, census):
        """The inclusion is strict: topology alone can elect in the wired
        model where the radio model cannot."""
        examples = census.wired_only_examples()
        assert examples
        for cfg in examples:
            assert wired_feasible(cfg) and not is_feasible(cfg)

    def test_all_zero_tags_radio_infeasible_wired_can_win(self):
        """With equal tags radio nodes never hear anything (paper §1.1),
        but a degree asymmetry still elects in the wired model."""
        broom = Configuration(
            [(0, 1), (1, 2), (1, 3), (3, 4)], {i: 0 for i in range(5)}
        )
        assert not is_feasible(broom)
        assert wired_feasible(broom)

    def test_counts_partition_total(self, census):
        kinds = ("both", "wired-only", "radio-only", "neither")
        assert sum(census.count(k) for k in kinds) == census.total

    def test_random_sample_dominance(self):
        rows = []
        for seed in range(10):
            n = 7
            edges = random_connected_gnp_edges(n, 0.3, seed)
            tags = uniform_random(range(n), 2, seed + 31)
            rows.append(build(edges, tags, n=n))
        assert radio_vs_wired(rows).dominance_holds()

    def test_limit(self):
        census = radio_vs_wired(enumerate_configurations(3, 1), limit=5)
        assert census.total == 5

    def test_row_kind_labels(self):
        cfg = h_m(1)
        row = ContrastRow(config=cfg, radio=True, wired=True)
        assert row.kind == "both"
        assert ContrastRow(config=cfg, radio=False, wired=True).kind == "wired-only"
        assert ContrastRow(config=cfg, radio=True, wired=False).kind == "radio-only"
        assert ContrastRow(config=cfg, radio=False, wired=False).kind == "neither"

    def test_empty_census(self):
        census = ContrastCensus()
        assert census.total == 0
        assert census.dominance_holds()
