"""Tests for the channel-parameterized refinement and canonical protocol."""

import pytest

from repro.core.classifier import classify
from repro.core.configuration import Configuration, line_configuration
from repro.core.partition import partition_key
from repro.graphs.enumeration import enumerate_configurations
from repro.graphs.families import g_m, h_m, s_m
from repro.graphs.generators import (
    build,
    complete_configuration,
    random_connected_gnp_edges,
    star_configuration,
)
from repro.graphs.tags import uniform_random
from repro.variants import (
    BEEP,
    CD,
    CHANNELS,
    NO_CD,
    variant_classify,
    variant_elect,
    variant_is_feasible,
)

SAMPLES = [
    h_m(1),
    h_m(3),
    s_m(2),
    g_m(2),
    line_configuration([0, 1, 0]),
    star_configuration([1, 0, 0, 0]),
    complete_configuration([0, 1, 2]),
]


class TestCDEqualsClassifier:
    """With the paper's channel the refinement *is* the Classifier."""

    @pytest.mark.parametrize("cfg", SAMPLES, ids=lambda c: f"n{c.n}s{c.span}")
    def test_same_decision_leader_partitions(self, cfg):
        a = classify(cfg)
        b = variant_classify(cfg, CD)
        assert a.decision == b.decision
        assert a.decided_at == b.decided_at
        assert a.leader == b.leader
        assert a.partition_keys() == b.partition_keys()

    def test_exhaustive_small(self):
        for cfg in enumerate_configurations(3, 2):
            assert classify(cfg).feasible == variant_is_feasible(cfg, CD)


class TestMonotonicity:
    """Weaker channels produce coarser partitions, phase by phase."""

    @pytest.mark.parametrize("weak", [NO_CD, BEEP], ids=lambda c: c.name)
    def test_weak_partition_refines_into_cd(self, weak):
        for cfg in enumerate_configurations(4, 1):
            cd_trace = variant_classify(cfg, CD)
            weak_trace = variant_classify(cfg, weak)
            # For every common phase index, the weak partition must be
            # coarser than (or equal to) the CD partition.
            common = min(weak_trace.num_iterations, cd_trace.num_iterations)
            for j in range(1, common + 2):
                weak_blocks = {
                    frozenset(b)
                    for b in partition_key(weak_trace.classes_at(j))
                }
                cd_blocks = {
                    frozenset(b) for b in partition_key(cd_trace.classes_at(j))
                }
                for wb in weak_blocks:
                    assert any(cb <= wb for cb in cd_blocks)
                    # every weak block is a union of CD blocks
                    covered = set()
                    for cb in cd_blocks:
                        if cb <= wb:
                            covered |= cb
                    assert covered == wb

    @pytest.mark.parametrize("weak", [NO_CD, BEEP], ids=lambda c: c.name)
    def test_weak_feasible_implies_cd_feasible(self, weak):
        for cfg in enumerate_configurations(4, 1):
            if variant_is_feasible(cfg, weak):
                assert variant_is_feasible(cfg, CD)


class TestSeparations:
    def test_nocd_and_beep_incomparable_at_n4(self):
        from repro.variants.census import exhaustive_cross_model_census

        census = exhaustive_cross_model_census(4, 1)
        assert census.witnesses(NO_CD, BEEP, 1), "no-cd ⊄ beep expected"
        assert census.witnesses(BEEP, NO_CD, 1), "beep ⊄ no-cd expected"

    def test_star_witness_separates_cd_from_nocd(self):
        """A 4-node star whose centre hears a collision from its two
        tag-0 leaves: the collision is information that only exists with
        collision detection, and the beeping centre still hears a carrier
        — so this single configuration separates CD and BEEP from NO_CD."""
        cfg = Configuration(
            [(0, 3), (1, 3), (2, 3)], {0: 0, 1: 0, 2: 1, 3: 1}
        )
        assert variant_is_feasible(cfg, CD)
        assert variant_is_feasible(cfg, BEEP)
        assert not variant_is_feasible(cfg, NO_CD)

    def test_all_equal_tags_infeasible_everywhere(self):
        for ch in CHANNELS:
            for cfg in (
                complete_configuration([0, 0, 0]),
                line_configuration([0, 0]),
            ):
                assert not variant_is_feasible(cfg, ch)

    def test_single_node_feasible_everywhere(self):
        cfg = Configuration([], {0: 0})
        for ch in CHANNELS:
            assert variant_is_feasible(cfg, ch)


class TestVariantElection:
    """A refinement Yes must be realizable as a real distributed run."""

    @pytest.mark.parametrize("ch", CHANNELS, ids=lambda c: c.name)
    def test_elect_families(self, ch):
        for cfg in (h_m(1), h_m(2), h_m(4), line_configuration([0, 1, 0])):
            result = variant_elect(cfg, ch)  # check=True raises on mismatch
            trace = variant_classify(cfg, ch)
            assert result.elected == trace.feasible
            if trace.feasible:
                assert result.leader == trace.leader

    @pytest.mark.parametrize("ch", CHANNELS, ids=lambda c: c.name)
    def test_elect_exhaustive_n3(self, ch):
        for cfg in enumerate_configurations(3, 1):
            variant_elect(cfg, ch)  # internal check asserts prediction

    @pytest.mark.parametrize("ch", CHANNELS, ids=lambda c: c.name)
    @pytest.mark.parametrize("seed", range(3))
    def test_elect_random(self, ch, seed):
        n = 8
        edges = random_connected_gnp_edges(n, 0.35, seed)
        tags = uniform_random(range(n), 2, seed + 50)
        cfg = build(edges, tags, n=n)
        variant_elect(cfg, ch)

    def test_infeasible_run_elects_nobody(self):
        result = variant_elect(s_m(2), NO_CD)
        assert not result.elected
        assert result.leaders == []

    def test_cd_election_matches_core_election(self):
        from repro.core.election import elect_leader

        cfg = g_m(2)
        assert variant_elect(cfg, CD).leader == elect_leader(cfg).leader


class TestRefinementShape:
    def test_class_counts_nondecreasing(self):
        for ch in CHANNELS:
            for cfg in SAMPLES:
                chain = variant_classify(cfg, ch).class_count_chain()
                assert all(a <= b for a, b in zip(chain, chain[1:]))

    def test_trace_is_normalized(self):
        cfg = line_configuration([3, 4, 3])
        for ch in CHANNELS:
            trace = variant_classify(cfg, ch)
            assert trace.config.min_tag == 0
            assert trace.sigma == 1
