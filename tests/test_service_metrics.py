"""/metrics correctness: Prometheus text format and counter fidelity.

The exposition is pinned two ways: an *independent* parser written here
(so the library's own :func:`repro.service.parse_prometheus_text` is
not grading its own homework) checks the text format, and the
``repro_service_*`` gauges are compared bit-for-bit against
``ServiceStats.as_dict()`` after a scripted request sequence.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.service import (
    METRICS_CONTENT_TYPE,
    BatchClassifier,
    ServiceMetrics,
    make_server,
    parse_prometheus_text,
)
from repro.service.metrics import Histogram, render_gauge_group


def independent_parse(text):
    """A from-scratch Prometheus text parser: {series name: float}."""
    samples = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        assert name, f"sample line has no name: {line!r}"
        samples[name] = float(value)  # must parse as a float
    return samples


@pytest.fixture()
def served():
    """A live server plus helpers; fresh per test (counters start at 0)."""
    classifier = BatchClassifier(batch_window=0.001)
    server = make_server(port=0, classifier=classifier, quiet=True)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield server, f"http://{host}:{port}"
    server.shutdown()
    server.server_close()
    classifier.close()
    thread.join(timeout=10)


def get(base, path):
    with urllib.request.urlopen(base + path, timeout=30) as resp:
        return resp.status, resp.read().decode(), dict(resp.headers)


def post(base, payload=None, raw=None):
    data = raw if raw is not None else json.dumps(payload).encode()
    try:
        with urllib.request.urlopen(
            urllib.request.Request(base + "/classify", data=data), timeout=30
        ) as resp:
            return resp.status
    except urllib.error.HTTPError as exc:
        exc.read()
        return exc.code


def scripted_traffic(base):
    """A fixed request mix; returns the number of HTTP requests made."""
    assert post(base, {"line": [0, 1, 0]}) == 200  # cold decide
    assert post(base, {"line": [0, 1, 0]}) == 200  # warm repeat
    assert post(base, {"line": [0, 2, 1], "mode": "elect"}) == 200
    assert post(base, raw=b"{nope") == 400
    assert get(base, "/healthz")[0] == 200
    return 5


class TestExposition:
    def test_metrics_parses_as_prometheus_text(self, served):
        server, base = served
        scripted_traffic(base)
        status, text, headers = get(base, "/metrics")
        assert status == 200
        assert headers["Content-Type"] == METRICS_CONTENT_TYPE
        samples = independent_parse(text)
        assert samples  # something was exported
        # every series the contract names is present
        for name in (
            "repro_http_requests_total",
            "repro_http_rejected_saturated_total",
            "repro_http_rejected_connections_total",
            "repro_http_deadline_hits_total",
            "repro_http_request_latency_seconds_count",
            'repro_http_request_latency_seconds_bucket{le="+Inf"}',
            "repro_service_batch_size_count",
            "repro_service_submitted",
            "repro_engine_classified",
            "repro_cache_entries",
        ):
            assert name in samples, f"missing series {name}"
        # HELP/TYPE comments precede every sample family
        assert "# TYPE repro_http_requests_total counter" in text
        assert "# TYPE repro_http_request_latency_seconds histogram" in text

    def test_library_parser_agrees_with_independent_parser(self, served):
        server, base = served
        scripted_traffic(base)
        _, text, _ = get(base, "/metrics")
        assert parse_prometheus_text(text) == independent_parse(text)

    def test_counters_match_service_stats_bit_for_bit(self, served):
        server, base = served
        scripted_traffic(base)
        _, text, _ = get(base, "/metrics")
        samples = independent_parse(text)
        for key, value in server.classifier.stats.as_dict().items():
            assert samples[f"repro_service_{key}"] == value, key
        for key, value in server.classifier.stats.engine.as_dict().items():
            assert samples[f"repro_engine_{key}"] == value, key
        cache = server.classifier.cache
        for key, value in dict(
            cache.stats.as_dict(), entries=len(cache)
        ).items():
            assert samples[f"repro_cache_{key}"] == value, key

    def test_request_counters_and_histogram_are_consistent(self, served):
        server, base = served
        requests = scripted_traffic(base)
        _, text, _ = get(base, "/metrics")
        samples = independent_parse(text)
        # the scrape renders before counting itself, so the payload
        # covers exactly the scripted requests
        assert samples["repro_http_requests_total"] == requests
        # bucket counts are cumulative and sum to the request count
        assert (
            samples['repro_http_request_latency_seconds_bucket{le="+Inf"}']
            == samples["repro_http_request_latency_seconds_count"]
            == requests
        )
        # per-status counters partition the total
        by_status = [
            v for k, v in samples.items()
            if k.startswith("repro_http_responses_total{")
        ]
        assert sum(by_status) == requests
        assert samples['repro_http_responses_total{code="400"}'] == 1
        # batch-size histogram counts dispatcher batches
        assert (
            samples["repro_service_batch_size_count"]
            == server.classifier.stats.batches
        )
        assert (
            samples['repro_service_batch_size_bucket{le="+Inf"}']
            == samples["repro_service_batch_size_count"]
        )

    def test_scrapes_count_as_requests_on_the_next_scrape(self, served):
        server, base = served
        requests = scripted_traffic(base)
        get(base, "/metrics")
        _, text, _ = get(base, "/metrics")
        assert (
            independent_parse(text)["repro_http_requests_total"]
            == requests + 1
        )

    def test_bucket_series_are_monotone(self, served):
        server, base = served
        scripted_traffic(base)
        _, text, _ = get(base, "/metrics")
        for family in (
            "repro_http_request_latency_seconds",
            "repro_service_batch_size",
        ):
            counts = [
                float(line.rpartition(" ")[2])
                for line in text.splitlines()
                if line.startswith(f"{family}_bucket")
            ]
            assert counts == sorted(counts)
            assert counts, family


class TestUnits:
    def test_histogram_rejects_bad_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", "help", [])
        with pytest.raises(ValueError):
            Histogram("h", "help", [2.0, 1.0])

    def test_histogram_observe_and_render(self):
        h = Histogram("lat", "help", [0.1, 1.0])
        for value in (0.05, 0.5, 0.5, 5.0):
            h.observe(value)
        rendered = "\n".join(h.render())
        samples = independent_parse(rendered)
        assert samples['lat_bucket{le="0.1"}'] == 1
        assert samples['lat_bucket{le="1.0"}'] == 3  # cumulative
        assert samples['lat_bucket{le="+Inf"}'] == 4
        assert samples["lat_count"] == 4
        assert samples["lat_sum"] == pytest.approx(6.05)

    def test_gauge_group_is_verbatim(self):
        lines = render_gauge_group("p", {"a": 3, "rate": 0.25}, "help")
        samples = independent_parse("\n".join(lines))
        assert samples == {"p_a": 3.0, "p_rate": 0.25}

    def test_service_metrics_renders_without_meta(self):
        m = ServiceMetrics()
        m.observe_request(200, 0.01)
        m.observe_batch(4)
        samples = independent_parse(m.render())
        assert samples["repro_http_requests_total"] == 1
        assert samples["repro_service_batch_size_count"] == 1
        assert "repro_service_submitted" not in samples  # no meta given

    def test_parse_rejects_malformed_sample(self):
        with pytest.raises(ValueError):
            parse_prometheus_text("justonename\n")
