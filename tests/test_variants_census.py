"""Tests for cross-model feasibility censuses (repro.variants.census)."""

import pytest

from repro.core.classifier import is_feasible
from repro.graphs.enumeration import enumerate_configurations
from repro.graphs.families import h_m
from repro.variants.census import (
    CrossModelCensus,
    cross_model_census,
    cross_model_row,
    disagreement_examples,
    exhaustive_cross_model_census,
)
from repro.variants.channels import BEEP, CD, CHANNELS, NO_CD


@pytest.fixture(scope="module")
def census_n4():
    return exhaustive_cross_model_census(4, 1)


class TestRow:
    def test_row_has_all_channels(self):
        row = cross_model_row(h_m(1))
        assert set(row.feasible) == {c.name for c in CHANNELS}

    def test_pattern_order(self):
        row = cross_model_row(h_m(1))
        assert row.pattern == tuple(row.feasible[c.name] for c in CHANNELS)

    def test_cd_column_matches_classifier(self):
        for cfg in enumerate_configurations(3, 1):
            assert cross_model_row(cfg).feasible["cd"] == is_feasible(cfg)


class TestCensusAggregation:
    def test_counts_sum_consistently(self, census_n4):
        assert census_n4.total == len(census_n4.rows)
        for ch in CHANNELS:
            assert 0 <= census_n4.count(ch) <= census_n4.total

    def test_cd_dominates(self, census_n4):
        assert census_n4.count(CD) >= census_n4.count(NO_CD)
        assert census_n4.count(CD) >= census_n4.count(BEEP)
        assert census_n4.inclusion_holds(NO_CD, CD)
        assert census_n4.inclusion_holds(BEEP, CD)

    def test_nocd_beep_incomparable(self, census_n4):
        assert not census_n4.inclusion_holds(NO_CD, BEEP)
        assert not census_n4.inclusion_holds(BEEP, NO_CD)

    def test_pattern_histogram_totals(self, census_n4):
        hist = census_n4.pattern_histogram()
        assert sum(hist.values()) == census_n4.total
        # impossible patterns never occur: weak-feasible but CD-infeasible
        for pattern, count in hist.items():
            cd, nocd, beep = pattern
            if nocd or beep:
                assert cd, f"pattern {pattern} violates CD dominance"

    def test_as_table_shape(self, census_n4):
        table = census_n4.as_table()
        assert len(table) == len(CHANNELS)
        assert all(len(row) == 4 for row in table)

    def test_limit_truncates(self):
        configs = list(enumerate_configurations(3, 1))
        census = cross_model_census(configs, limit=4)
        assert census.total == 4

    def test_empty_census(self):
        census = CrossModelCensus()
        assert census.total == 0
        assert census.inclusion_holds(NO_CD, CD)  # vacuous


class TestWitnesses:
    def test_witnesses_verified(self, census_n4):
        for cfg in census_n4.witnesses(NO_CD, BEEP, limit=2):
            row = cross_model_row(cfg)
            assert row.feasible["no-cd"] and not row.feasible["beep"]
        for cfg in census_n4.witnesses(BEEP, NO_CD, limit=2):
            row = cross_model_row(cfg)
            assert row.feasible["beep"] and not row.feasible["no-cd"]

    def test_witness_limit_respected(self, census_n4):
        assert len(census_n4.witnesses(CD, NO_CD, limit=3)) <= 3

    def test_disagreement_examples_structure(self):
        examples = disagreement_examples(3, 1, limit=2)
        assert set(examples) == {
            "cd_not_nocd",
            "cd_not_beep",
            "nocd_not_beep",
            "beep_not_nocd",
        }
        for cfgs in examples.values():
            assert len(cfgs) <= 2
