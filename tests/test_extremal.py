"""Tests for extremal searches (repro.analysis.extremal)."""

import pytest

from repro.analysis.extremal import (
    IterationExtremum,
    ProbabilityPoint,
    SpanSearchResult,
    TagSearchResult,
    election_rounds_objective,
    feasibility_probability,
    hardest_tags,
    max_iterations,
    min_feasible_span,
)
from repro.core.classifier import classify, is_feasible
from repro.core.election import elect_leader
from repro.graphs.generators import (
    build,
    complete_edges,
    cycle_edges,
    path_edges,
    star_edges,
)


class TestMinFeasibleSpan:
    def test_path3_needs_span_one(self):
        result = min_feasible_span(path_edges(3), 3, max_span=2)
        assert result.span == 1
        assert result.exhaustive
        cfg = build(result.edges, result.witness, n=3)
        assert is_feasible(cfg) and cfg.span == 1

    def test_single_node_feasible_at_span_zero(self):
        result = min_feasible_span([], 1, max_span=0)
        assert result.span == 0

    def test_span_zero_infeasible_for_n_at_least_2(self):
        """All tags equal ⇒ no node ever hears anything (paper §1.1)."""
        for edges, n in [
            (path_edges(2), 2),
            (complete_edges(3), 3),
            (star_edges(4), 4),
        ]:
            result = min_feasible_span(edges, n, max_span=1)
            assert result.span is not None and result.span >= 1

    def test_witness_realizes_exact_span(self):
        for edges, n in [(cycle_edges(4), 4), (complete_edges(4), 4)]:
            result = min_feasible_span(edges, n, max_span=3)
            if result.span is not None:
                assert max(result.witness.values()) == result.span
                assert min(result.witness.values()) == 0

    def test_unreachable_budget_returns_none(self):
        # span 0 on a 2-node path is infeasible; max_span=0 finds nothing
        result = min_feasible_span(path_edges(2), 2, max_span=0)
        assert result.span is None and result.witness is None

    def test_randomized_regime_flagged(self):
        result = min_feasible_span(
            path_edges(8), 8, max_span=1, exhaustive_limit=4, samples=80
        )
        assert not result.exhaustive
        if result.span is not None:
            cfg = build(result.edges, result.witness, n=8)
            assert is_feasible(cfg)


class TestMaxIterations:
    def test_n4_result_shape(self):
        ext = max_iterations(4, 1)
        assert isinstance(ext, IterationExtremum)
        assert ext.ceiling == 2
        assert 1 <= ext.iterations <= ext.ceiling
        assert ext.witnesses
        for cfg in ext.witnesses:
            assert classify(cfg).decided_at == ext.iterations

    def test_tightness_at_most_one(self):
        ext = max_iterations(5, 1)
        assert 0 < ext.tightness <= 1.0

    def test_witness_limit(self):
        ext = max_iterations(4, 1, witness_limit=1)
        assert len(ext.witnesses) == 1


class TestFeasibilityProbability:
    def test_span_zero_is_zero_probability(self):
        pts = feasibility_probability(5, [0], samples=15, seed=3)
        assert pts[0].fraction == 0.0

    def test_probability_rises_with_span(self):
        pts = feasibility_probability(6, [0, 2, 4], samples=30, seed=1)
        fracs = [p.fraction for p in pts]
        assert fracs[0] <= fracs[1] <= fracs[2] or fracs[2] > 0.5

    def test_deterministic_for_fixed_seed(self):
        a = feasibility_probability(5, [1], samples=10, seed=9)
        b = feasibility_probability(5, [1], samples=10, seed=9)
        assert [(p.span, p.feasible) for p in a] == [
            (p.span, p.feasible) for p in b
        ]

    def test_point_accounting(self):
        (pt,) = feasibility_probability(4, [2], samples=12, seed=0)
        assert isinstance(pt, ProbabilityPoint)
        assert pt.samples == 12
        assert 0 <= pt.feasible <= 12
        assert pt.fraction == pt.feasible / 12

    def test_zero_samples_fraction(self):
        assert ProbabilityPoint(span=1, samples=0, feasible=0).fraction == 0.0


class TestHardestTags:
    def test_objective_matches_election(self):
        result = hardest_tags(
            path_edges(4), 4, 2, restarts=2, steps=15, seed=5
        )
        assert isinstance(result, TagSearchResult)
        assert result.objective == election_rounds_objective(result.config)
        if result.objective > 0:
            assert elect_leader(result.config).rounds == result.objective

    def test_trajectory_monotone(self):
        result = hardest_tags(path_edges(4), 4, 2, restarts=2, steps=15, seed=2)
        assert all(
            a <= b for a, b in zip(result.trajectory, result.trajectory[1:])
        )

    def test_deterministic(self):
        a = hardest_tags(star_edges(5), 5, 2, restarts=2, steps=10, seed=7)
        b = hardest_tags(star_edges(5), 5, 2, restarts=2, steps=10, seed=7)
        assert a.objective == b.objective
        assert a.config == b.config

    def test_beats_or_matches_uniform_baseline(self):
        """Hill climbing should do at least as well as its own starting
        points — sanity check that search pressure is upward."""
        from repro.graphs.tags import uniform_random

        edges, n, span = path_edges(5), 5, 2
        result = hardest_tags(edges, n, span, restarts=3, steps=25, seed=11)
        baseline = max(
            election_rounds_objective(
                build(edges, uniform_random(range(n), span, s), n=n)
            )
            for s in range(5)
        )
        assert result.objective >= min(baseline, 1)

    def test_infeasible_objective_zero(self):
        cfg = build(path_edges(2), {0: 0, 1: 0}, n=2)
        assert election_rounds_objective(cfg) == 0

    def test_evaluation_budget_counted(self):
        result = hardest_tags(path_edges(3), 3, 1, restarts=1, steps=10, seed=0)
        assert result.evaluations >= 1
