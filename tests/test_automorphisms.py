"""Unit tests for tag-preserving automorphism analysis."""

from repro.analysis.automorphisms import (
    automorphism_orbits,
    fixed_nodes,
    has_fixed_node,
    is_rigid,
    tag_preserving_automorphisms,
)
from repro.core.classifier import classify
from repro.core.configuration import Configuration, line_configuration
from repro.graphs.families import g_m, h_m, s_m


class TestEnumeration:
    def test_identity_always_present(self):
        cfg = line_configuration([0, 1, 2])
        autos = list(tag_preserving_automorphisms(cfg))
        assert {v: v for v in cfg.nodes} in autos

    def test_symmetric_pair_has_swap(self):
        cfg = Configuration([(0, 1)], {0: 0, 1: 0})
        autos = list(tag_preserving_automorphisms(cfg))
        assert len(autos) == 2
        assert {0: 1, 1: 0} in autos

    def test_tags_block_swap(self):
        cfg = Configuration([(0, 1)], {0: 0, 1: 1})
        autos = list(tag_preserving_automorphisms(cfg))
        assert len(autos) == 1

    def test_limit(self):
        cfg = Configuration(
            [(0, 1), (0, 2), (0, 3)], {0: 0, 1: 1, 2: 1, 3: 1}
        )  # star with 3 identical leaves: 6 automorphisms
        assert len(list(tag_preserving_automorphisms(cfg, limit=3))) == 3


class TestFixedNodes:
    def test_s_m_has_none(self):
        for m in (1, 3):
            assert fixed_nodes(s_m(m)) == []
            assert not has_fixed_node(s_m(m))

    def test_h_m_all_fixed(self):
        for m in (1, 3):
            assert fixed_nodes(h_m(m)) == [0, 1, 2, 3]
            assert is_rigid(h_m(m))

    def test_g_m_center_fixed(self):
        from repro.graphs.families import g_m_center

        fixed = fixed_nodes(g_m(2))
        assert fixed == [g_m_center(2)]

    def test_necessary_condition_on_families(self):
        # feasible => some fixed node (checked on known families)
        for cfg in (h_m(1), h_m(4), g_m(2), g_m(3), line_configuration([0, 1, 0])):
            assert classify(cfg).feasible
            assert has_fixed_node(cfg)


class TestOrbits:
    def test_orbits_of_s_m(self):
        assert automorphism_orbits(s_m(2)) == [[0, 3], [1, 2]]

    def test_orbits_refine_into_classifier_classes(self):
        # every classifier class is a union of automorphism orbits
        for cfg in (s_m(2), g_m(2), line_configuration([0, 1, 1, 0])):
            trace = classify(cfg)
            final = trace.final_classes()
            for orbit in automorphism_orbits(cfg.normalize()):
                assert len({final[v] for v in orbit}) == 1

    def test_rigid_graph_orbits_are_singletons(self):
        orbits = automorphism_orbits(h_m(1))
        assert orbits == [[0], [1], [2], [3]]
