"""Tests for parallel batch execution (repro.analysis.parallel)."""

import os

import pytest

import repro.analysis.parallel as parallel_mod
from repro.analysis.parallel import (
    _chunks,
    available_cpus,
    default_workers,
    parallel_cross_model,
    parallel_decisions,
    parallel_feasibility,
    parallel_map,
)
from repro.core.classifier import is_feasible
from repro.graphs.enumeration import enumerate_configurations
from repro.variants.census import cross_model_row


def square(x):  # module-level: picklable
    return x * x


class TestParallelMap:
    def test_order_preserved_serial(self):
        assert parallel_map(square, range(10), max_workers=1) == [
            x * x for x in range(10)
        ]

    def test_order_preserved_parallel(self):
        items = list(range(100))
        assert parallel_map(square, items, max_workers=2, chunksize=7) == [
            x * x for x in items
        ]

    def test_empty(self):
        assert parallel_map(square, [], max_workers=2) == []

    def test_small_input_short_circuits(self):
        # fewer items than a chunk: runs serially even with workers
        assert parallel_map(square, [3], max_workers=4, chunksize=16) == [9]

    def test_chunksize_validation(self):
        with pytest.raises(ValueError):
            parallel_map(square, [1], chunksize=0)

    def test_chunks_cover_everything(self):
        items = list(range(23))
        chunks = _chunks(items, 5)
        assert [x for c in chunks for x in c] == items
        assert all(len(c) <= 5 for c in chunks)

    def test_default_workers_positive(self):
        assert default_workers() >= 1


class TestDefaultWorkersAffinity:
    """Container-awareness of the worker-count default: prefer the
    affinity mask (the cgroup/CI-correct number), fall back to
    ``os.cpu_count()`` where the platform has no affinity support."""

    def test_prefers_sched_getaffinity(self, monkeypatch):
        monkeypatch.setattr(
            parallel_mod.os, "sched_getaffinity", lambda pid: {0, 3, 7}
        )
        monkeypatch.setattr(parallel_mod.os, "cpu_count", lambda: 64)
        assert available_cpus() == 3
        assert default_workers() == 2  # affinity minus the harness core

    def test_falls_back_without_affinity_support(self, monkeypatch):
        monkeypatch.delattr(
            parallel_mod.os, "sched_getaffinity", raising=False
        )
        monkeypatch.setattr(parallel_mod.os, "cpu_count", lambda: 6)
        assert available_cpus() == 6
        assert default_workers() == 5

    def test_falls_back_when_cpu_count_unknown(self, monkeypatch):
        monkeypatch.delattr(
            parallel_mod.os, "sched_getaffinity", raising=False
        )
        monkeypatch.setattr(parallel_mod.os, "cpu_count", lambda: None)
        assert available_cpus() == 2
        assert default_workers() == 1

    def test_single_affinity_cpu_keeps_one_worker(self, monkeypatch):
        monkeypatch.setattr(
            parallel_mod.os, "sched_getaffinity", lambda pid: {5}
        )
        assert default_workers() == 1

    def test_matches_real_platform(self):
        """On this platform the helper agrees with whichever source it
        actually selected — both branches covered above, this pins the
        live wiring."""
        expected = (
            len(os.sched_getaffinity(0))
            if hasattr(os, "sched_getaffinity")
            else (os.cpu_count() or 2)
        )
        assert available_cpus() == expected


class TestCensusWorkers:
    @pytest.fixture(scope="class")
    def configs(self):
        return list(enumerate_configurations(3, 1))

    def test_feasibility_matches_serial(self, configs):
        parallel = parallel_feasibility(configs, max_workers=2, chunksize=4)
        serial = [is_feasible(c) for c in configs]
        assert parallel == serial

    def test_decisions_structure(self, configs):
        rows = parallel_decisions(configs, max_workers=1)
        assert len(rows) == len(configs)
        for row, cfg in zip(rows, configs):
            assert row["n"] == cfg.n
            assert row["feasible"] == is_feasible(cfg)
            assert row["iterations"] >= 1

    def test_cross_model_matches_serial(self, configs):
        parallel = parallel_cross_model(
            configs[:8], max_workers=2, chunksize=2
        )
        serial = [cross_model_row(c).feasible for c in configs[:8]]
        assert parallel == serial

    def test_configuration_pickles_cleanly(self, configs):
        import pickle

        cfg = configs[-1]
        clone = pickle.loads(pickle.dumps(cfg))
        assert clone == cfg
        assert is_feasible(clone) == is_feasible(cfg)
