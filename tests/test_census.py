"""Unit tests for feasibility censuses."""

from repro.analysis.census import CensusRow, census, random_census
from repro.core.configuration import Configuration, line_configuration
from repro.graphs.families import h_m, s_m


class TestCensus:
    def test_counts(self):
        result = census([h_m(1), h_m(2), s_m(1)])
        assert result.total == 3
        assert result.feasible == 2

    def test_grouping_default_by_n_span(self):
        result = census([h_m(1), s_m(1)])
        assert (4, 2) in result.rows  # H_1 span 2
        assert (4, 1) in result.rows  # S_1 span 1

    def test_custom_grouping(self):
        result = census([h_m(1), h_m(2), s_m(2)], group_by=lambda c: c.n)
        assert set(result.rows) == {4}
        row = result.rows[4]
        assert row.total == 3 and row.feasible == 2

    def test_measure_rounds(self):
        result = census([h_m(1), s_m(1)], measure_rounds=True)
        rows = result.sorted_rows()
        feasible_rows = [r for r in rows if r.feasible]
        assert all(r.mean_rounds > 0 for r in feasible_rows)

    def test_table_shape(self):
        result = census([h_m(1), s_m(1)])
        table = result.as_table()
        assert len(table) == len(result.rows)
        assert len(table[0]) == len(result.TABLE_HEADERS)


class TestCensusRow:
    def test_fractions(self):
        row = CensusRow(group="g", total=4, feasible=1, iterations_sum=8, rounds_sum=20)
        assert row.feasible_fraction == 0.25
        assert row.mean_iterations == 2.0
        assert row.mean_rounds == 20.0

    def test_empty_row_safe(self):
        row = CensusRow(group="g")
        assert row.feasible_fraction == 0.0
        assert row.mean_iterations == 0.0
        assert row.mean_rounds == 0.0


class TestRandomCensus:
    def test_deterministic(self):
        a = random_census([5, 6], span=2, p=0.4, samples=5, seed=3)
        b = random_census([5, 6], span=2, p=0.4, samples=5, seed=3)
        assert a.total == b.total == 10  # 2 sizes x 5 samples
        assert [r.feasible for r in a.sorted_rows()] == [
            r.feasible for r in b.sorted_rows()
        ]

    def test_groups_by_n(self):
        result = random_census([4, 7], span=1, p=0.5, samples=3, seed=1)
        assert set(result.rows) == {4, 7}

    def test_span_zero_never_feasible_for_n_ge_2(self):
        # span 0 = simultaneous wakeup: infeasible for every n >= 2.
        result = random_census([4, 6], span=0, p=0.5, samples=6, seed=9)
        assert result.feasible == 0
