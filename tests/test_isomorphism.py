"""Tests for tag-preserving isomorphism (repro.analysis.isomorphism)."""

import pytest

from repro.analysis.isomorphism import (
    are_isomorphic,
    canonical_form,
    dedupe,
    orbit_of,
)
from repro.core.classifier import classify, is_feasible
from repro.core.configuration import Configuration
from repro.core.election import elect_leader
from repro.graphs.enumeration import enumerate_configurations
from repro.graphs.families import h_m
from repro.graphs.generators import (
    cycle_configuration,
    path_configuration,
    star_configuration,
)


def relabeled(cfg, shift=1):
    """The same configuration with node ids cyclically shifted."""
    nodes = list(cfg.nodes)
    mapping = {v: nodes[(i + shift) % len(nodes)] for i, v in enumerate(nodes)}
    return cfg.relabel(mapping)


class TestIsomorphismTest:
    def test_identity(self):
        cfg = h_m(2)
        assert are_isomorphic(cfg, cfg)

    def test_relabeling_is_isomorphic(self):
        for cfg in (h_m(1), path_configuration([0, 1, 2]), cycle_configuration([0, 1, 0, 1])):
            assert are_isomorphic(cfg, relabeled(cfg))

    def test_different_tags_not_isomorphic(self):
        a = path_configuration([0, 1, 0])
        b = path_configuration([1, 0, 0])
        assert not are_isomorphic(a, b)

    def test_different_shapes_not_isomorphic(self):
        a = path_configuration([0, 0, 0, 0])
        b = star_configuration([0, 0, 0, 0])
        assert not are_isomorphic(a, b)

    def test_mirror_symmetric_path(self):
        a = path_configuration([0, 1, 2])
        b = path_configuration([2, 1, 0])  # reversed: isomorphic via flip
        assert are_isomorphic(a, b)

    def test_subtle_negative(self):
        # same degree sequence and tag multiset, different attachment
        a = Configuration([(0, 1), (1, 2), (2, 3)], {0: 0, 1: 1, 2: 0, 3: 1})
        b = Configuration([(0, 1), (1, 2), (2, 3)], {0: 1, 1: 0, 2: 0, 3: 1})
        # a: tags along path 0,1,0,1 ; b: 1,0,0,1 (palindrome) — different
        assert not are_isomorphic(a, b)


class TestCanonicalForm:
    def test_equal_iff_isomorphic_exhaustive(self):
        configs = list(enumerate_configurations(4, 1))
        keys = [canonical_form(c) for c in configs]
        for i in range(0, len(configs), 7):  # sampled quadratic check
            for j in range(0, len(configs), 11):
                same_key = keys[i] == keys[j]
                assert same_key == are_isomorphic(configs[i], configs[j])

    def test_invariant_under_relabeling(self):
        for cfg in (h_m(1), cycle_configuration([0, 1, 0, 1])):
            assert canonical_form(cfg) == canonical_form(relabeled(cfg))

    def test_invariant_under_tag_shift(self):
        cfg = path_configuration([1, 2, 1])
        assert canonical_form(cfg) == canonical_form(cfg.normalize())


class TestDedupe:
    def test_dedupes_enumeration(self):
        configs = list(enumerate_configurations(4, 1))
        reps = dedupe(configs)
        assert 0 < len(reps) < len(configs)
        # representatives are pairwise non-isomorphic
        for i in range(len(reps)):
            for j in range(i + 1, len(reps)):
                assert not are_isomorphic(reps[i], reps[j])

    def test_feasibility_constant_on_classes(self):
        configs = list(enumerate_configurations(3, 2))
        keys = {}
        for cfg in configs:
            keys.setdefault(canonical_form(cfg), []).append(cfg)
        for group in keys.values():
            verdicts = {is_feasible(c) for c in group}
            assert len(verdicts) == 1

    def test_election_rounds_invariant(self):
        cfg = h_m(2)
        other = relabeled(cfg)
        assert elect_leader(cfg).rounds == elect_leader(other).rounds


class TestOrbits:
    def test_orbit_of_symmetric_endpoint(self):
        cfg = path_configuration([0, 1, 0])
        assert orbit_of(cfg, 0) == [0, 2]
        assert orbit_of(cfg, 1) == [1]

    def test_leader_is_fixed_by_automorphisms(self):
        """The classifier's leader must have a singleton orbit — a node
        moved by an automorphism cannot have a unique history."""
        for cfg in enumerate_configurations(4, 1):
            trace = classify(cfg)
            if trace.feasible:
                assert orbit_of(trace.config, trace.leader) == [trace.leader]
