"""Property tests for the simulator's model invariants."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from conftest import configurations

from repro.radio.model import COLLISION, SILENCE, Message
from repro.radio.protocol import AlwaysListenDRIP, ScheduleDRIP, anonymous_factory
from repro.radio.simulator import simulate

relaxed = settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@relaxed
@given(configurations(max_n=7, max_span=3))
def test_pure_listeners_wake_at_tags_and_hear_silence(cfg):
    ex = simulate(cfg, anonymous_factory(lambda: AlwaysListenDRIP(3)))
    for v in cfg.nodes:
        assert ex.wake_rounds[v] == cfg.tag(v)
        assert ex.histories[v].to_list() == [SILENCE] * 4
    assert ex.all_spontaneous()


@relaxed
@given(configurations(max_n=7, max_span=2), st.integers(1, 4))
def test_simultaneous_schedule_yields_symmetric_outcome(cfg, tx_round):
    # Every node transmits at the same local round; reception follows
    # purely from tag offsets and adjacency.
    ex = simulate(
        cfg,
        anonymous_factory(lambda: ScheduleDRIP({tx_round: "m"}, tx_round + 2)),
        max_rounds=2 * (cfg.span + tx_round + 5),
    )
    for v in cfg.nodes:
        h = ex.histories[v]
        # transmitters hear nothing in their own transmission round
        local_tx = tx_round
        if ex.wake_rounds[v] + local_tx <= ex.done_global(v):
            assert h[local_tx] is SILENCE
        # every entry is a legal value
        for entry in h:
            assert entry is SILENCE or entry is COLLISION or isinstance(entry, Message)


@relaxed
@given(configurations(max_n=6, max_span=3))
def test_forced_wakeups_only_from_single_transmitters(cfg):
    # all nodes beacon at local round 1: any forced wakeup must carry a
    # Message entry at H[0]; spontaneous ones silence or collision.
    ex = simulate(
        cfg,
        anonymous_factory(lambda: ScheduleDRIP({1: "b"}, 3)),
        record_trace=True,
    )
    from repro.radio.events import FORCED

    for v in cfg.nodes:
        h0 = ex.histories[v][0]
        if ex.wake_kinds[v] == FORCED:
            assert isinstance(h0, Message)
            assert ex.wake_rounds[v] <= cfg.tag(v)
        else:
            assert ex.wake_rounds[v] == cfg.tag(v)
            assert not isinstance(h0, Message)


@relaxed
@given(configurations(max_n=6, max_span=2))
def test_histories_cover_done_round(cfg):
    ex = simulate(cfg, anonymous_factory(lambda: AlwaysListenDRIP(2)))
    for v in cfg.nodes:
        assert len(ex.histories[v]) == ex.done_local[v] + 1


@relaxed
@given(configurations(max_n=6, max_span=2), st.integers(0, 2**31))
def test_simulation_deterministic(cfg, _salt):
    a = simulate(cfg, anonymous_factory(lambda: ScheduleDRIP({2: "x"}, 4)))
    b = simulate(cfg, anonymous_factory(lambda: ScheduleDRIP({2: "x"}, 4)))
    assert a.histories == b.histories
    assert a.wake_rounds == b.wake_rounds
