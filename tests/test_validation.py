"""Unit tests for the cross-validation harness."""

from conftest import random_config_batch

from repro.analysis.validation import all_ok, validate, validate_many
from repro.core.configuration import Configuration, line_configuration
from repro.graphs.families import g_m, h_m, s_m


class TestValidate:
    def test_known_feasible(self):
        report = validate(h_m(2))
        assert report.ok, report.failures
        assert report.feasible
        assert report.checks_run >= 6

    def test_known_infeasible(self):
        report = validate(s_m(2))
        assert report.ok, report.failures
        assert not report.feasible
        assert report.leader is None

    def test_families_all_ok(self):
        assert all_ok([h_m(1), h_m(3), s_m(1), s_m(3), g_m(2)])

    def test_random_batch_all_ok(self):
        reports = validate_many(random_config_batch(25, base_seed=500))
        bad = [r.describe() for r in reports if not r.ok]
        assert not bad, bad

    def test_rounds_recorded(self):
        report = validate(h_m(1))
        assert report.rounds > 0

    def test_automorphism_check_optional(self):
        r1 = validate(h_m(1), check_automorphisms=True)
        r2 = validate(h_m(1), check_automorphisms=False)
        assert r1.checks_run == r2.checks_run + 1
        assert r1.ok and r2.ok

    def test_describe_mentions_status(self):
        assert "OK" in validate(h_m(1)).describe()

    def test_edge_cases(self):
        assert validate(Configuration([], {0: 0})).ok  # single node
        assert validate(Configuration([(0, 1)], {0: 0, 1: 0})).ok  # sym pair
        assert validate(line_configuration([0] * 6)).ok  # all-zero path
        assert validate(line_configuration([0, 3, 0, 3, 0])).ok
