"""Unit tests for Configuration."""

import pytest

from repro.core.configuration import (
    Configuration,
    ConfigurationError,
    line_configuration,
)


class TestConstruction:
    def test_basic(self):
        cfg = Configuration([(0, 1), (1, 2)], {0: 0, 1: 1, 2: 2})
        assert cfg.n == 3
        assert cfg.num_edges == 2
        assert cfg.nodes == (0, 1, 2)
        assert cfg.neighbors(1) == (0, 2)
        assert cfg.tag(2) == 2

    def test_single_node(self):
        cfg = Configuration([], {7: 0})
        assert cfg.n == 1
        assert cfg.span == 0
        assert cfg.max_degree == 0

    def test_duplicate_edges_collapse(self):
        cfg = Configuration([(0, 1), (1, 0), (0, 1)], {0: 0, 1: 0})
        assert cfg.num_edges == 1

    def test_self_loop_rejected(self):
        with pytest.raises(ConfigurationError):
            Configuration([(0, 0)], {0: 0})

    def test_unknown_endpoint_rejected(self):
        with pytest.raises(ConfigurationError):
            Configuration([(0, 1)], {0: 0})

    def test_disconnected_rejected(self):
        with pytest.raises(ConfigurationError):
            Configuration([(0, 1)], {0: 0, 1: 0, 2: 0})

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            Configuration([], {})

    def test_negative_tag_rejected(self):
        with pytest.raises(ConfigurationError):
            Configuration([(0, 1)], {0: 0, 1: -1})

    def test_non_int_tag_rejected(self):
        with pytest.raises(ConfigurationError):
            Configuration([(0, 1)], {0: 0, 1: 1.5})
        with pytest.raises(ConfigurationError):
            Configuration([(0, 1)], {0: 0, 1: True})

    def test_bad_edge_shape_rejected(self):
        with pytest.raises(ConfigurationError):
            Configuration([(0, 1, 2)], {0: 0, 1: 0, 2: 0})


class TestDerived:
    def test_span(self):
        cfg = Configuration([(0, 1), (1, 2)], {0: 3, 1: 7, 2: 5})
        assert cfg.span == 4
        assert cfg.min_tag == 3
        assert cfg.max_tag == 7
        assert not cfg.is_normalized

    def test_max_degree(self):
        star = Configuration([(0, 1), (0, 2), (0, 3)], {i: 0 for i in range(4)})
        assert star.max_degree == 3
        assert star.degree(0) == 3
        assert star.degree(1) == 1

    def test_edges_sorted_unique(self):
        cfg = Configuration([(2, 1), (0, 1)], {0: 0, 1: 0, 2: 0})
        assert cfg.edges == [(0, 1), (1, 2)]


class TestTransformations:
    def test_normalize(self):
        cfg = Configuration([(0, 1)], {0: 5, 1: 7})
        norm = cfg.normalize()
        assert norm.tags == {0: 0, 1: 2}
        assert norm.span == cfg.span

    def test_normalize_identity_when_normalized(self):
        cfg = Configuration([(0, 1)], {0: 0, 1: 2})
        assert cfg.normalize() is cfg

    def test_shift_tags(self):
        cfg = Configuration([(0, 1)], {0: 0, 1: 1})
        shifted = cfg.shift_tags(3)
        assert shifted.tags == {0: 3, 1: 4}
        with pytest.raises(ConfigurationError):
            cfg.shift_tags(-1)

    def test_with_tags(self):
        cfg = Configuration([(0, 1)], {0: 0, 1: 1})
        new = cfg.with_tags({0: 4, 1: 4})
        assert new.tags == {0: 4, 1: 4}
        assert new.edges == cfg.edges
        with pytest.raises(ConfigurationError):
            cfg.with_tags({0: 0})

    def test_relabel(self):
        cfg = Configuration([(0, 1)], {0: 0, 1: 1})
        rel = cfg.relabel({0: "x", 1: "y"})
        assert rel.tag("x") == 0
        assert rel.neighbors("x") == ("y",)
        with pytest.raises(ConfigurationError):
            cfg.relabel({0: "x", 1: "x"})
        with pytest.raises(ConfigurationError):
            cfg.relabel({0: "x"})

    def test_canonical_relabel(self):
        cfg = Configuration([(10, 20)], {10: 0, 20: 1})
        canon = cfg.canonical_relabel()
        assert canon.nodes == (0, 1)
        assert canon.tag(1) == 1


class TestInterop:
    def test_networkx_roundtrip(self):
        cfg = Configuration([(0, 1), (1, 2)], {0: 0, 1: 2, 2: 1})
        g = cfg.to_networkx()
        back = Configuration.from_networkx(g)
        assert back == cfg

    def test_from_networkx_explicit_tags(self):
        import networkx as nx

        g = nx.path_graph(3)
        cfg = Configuration.from_networkx(g, {0: 0, 1: 1, 2: 0})
        assert cfg.tag(1) == 1

    def test_from_networkx_missing_tags(self):
        import networkx as nx

        with pytest.raises(ConfigurationError):
            Configuration.from_networkx(nx.path_graph(2))


class TestEquality:
    def test_equal_configs(self):
        a = Configuration([(0, 1)], {0: 0, 1: 1})
        b = Configuration([(1, 0)], {1: 1, 0: 0})
        assert a == b
        assert hash(a) == hash(b)

    def test_unequal_tags(self):
        a = Configuration([(0, 1)], {0: 0, 1: 1})
        b = Configuration([(0, 1)], {0: 1, 1: 0})
        assert a != b

    def test_unequal_edges(self):
        a = Configuration([(0, 1), (1, 2)], {0: 0, 1: 0, 2: 0})
        b = Configuration([(0, 1), (1, 2), (0, 2)], {0: 0, 1: 0, 2: 0})
        assert a != b

    def test_not_equal_to_other_types(self):
        assert Configuration([(0, 1)], {0: 0, 1: 0}) != "config"


class TestLineHelper:
    def test_line(self):
        cfg = line_configuration([0, 1, 2])
        assert cfg.edges == [(0, 1), (1, 2)]
        assert cfg.tag(2) == 2

    def test_line_single(self):
        assert line_configuration([5]).n == 1

    def test_line_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            line_configuration([])

    def test_describe_mentions_nodes(self):
        text = line_configuration([0, 1]).describe()
        assert "node 0" in text and "σ=1" in text
