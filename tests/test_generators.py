"""Unit tests for graph-shape generators."""

import pytest

from repro.core.configuration import ConfigurationError
from repro.graphs.generators import (
    binary_tree_edges,
    build,
    caterpillar_edges,
    complete_configuration,
    complete_edges,
    cycle_configuration,
    cycle_edges,
    grid_edges,
    path_configuration,
    path_edges,
    random_connected_gnp_edges,
    random_tree_edges,
    star_configuration,
    star_edges,
)


def _is_connected(edges, n):
    import networkx as nx

    g = nx.Graph()
    g.add_nodes_from(range(n))
    g.add_edges_from(edges)
    return nx.is_connected(g)


class TestShapes:
    def test_path(self):
        assert path_edges(4) == [(0, 1), (1, 2), (2, 3)]
        assert path_edges(1) == []

    def test_cycle(self):
        edges = cycle_edges(4)
        assert len(edges) == 4
        assert (3, 0) in [(min(e), max(e))[::-1] for e in edges] or (0, 3) in [
            (min(e), max(e)) for e in edges
        ]
        with pytest.raises(ValueError):
            cycle_edges(2)

    def test_star(self):
        edges = star_edges(5)
        assert all(0 in e for e in edges)
        assert len(edges) == 4

    def test_complete(self):
        assert len(complete_edges(5)) == 10

    def test_grid(self):
        edges = grid_edges(2, 3)
        assert len(edges) == 2 * 2 + 3 * 1  # horizontal + vertical
        assert _is_connected(edges, 6)
        with pytest.raises(ValueError):
            grid_edges(0, 3)

    def test_binary_tree(self):
        edges = binary_tree_edges(7)
        assert len(edges) == 6
        assert (0, 1) in edges and (0, 2) in edges

    def test_caterpillar(self):
        edges = caterpillar_edges(3, 2)
        n = 3 + 6
        assert len(edges) == 2 + 6
        assert _is_connected(edges, n)
        with pytest.raises(ValueError):
            caterpillar_edges(0, 1)


class TestRandomShapes:
    def test_random_tree_is_tree(self):
        for seed in range(5):
            n = 10
            edges = random_tree_edges(n, seed)
            assert len(edges) == n - 1
            assert _is_connected(edges, n)

    def test_random_tree_small(self):
        assert random_tree_edges(1, 0) == []
        assert random_tree_edges(2, 0) == [(0, 1)]

    def test_random_tree_deterministic(self):
        assert random_tree_edges(12, 99) == random_tree_edges(12, 99)
        assert random_tree_edges(12, 99) != random_tree_edges(12, 100)

    def test_gnp_connected(self):
        for seed in range(5):
            edges = random_connected_gnp_edges(12, 0.2, seed)
            assert _is_connected(edges, 12)

    def test_gnp_density_scales_with_p(self):
        sparse = random_connected_gnp_edges(20, 0.05, 7)
        dense = random_connected_gnp_edges(20, 0.8, 7)
        assert len(sparse) < len(dense)

    def test_gnp_p_validated(self):
        with pytest.raises(ValueError):
            random_connected_gnp_edges(5, 1.5, 0)

    def test_gnp_deterministic(self):
        a = random_connected_gnp_edges(15, 0.3, 5)
        b = random_connected_gnp_edges(15, 0.3, 5)
        assert a == b


class TestBuilders:
    def test_build_defaults_to_zero_tags(self):
        cfg = build(path_edges(3))
        assert cfg.tags == {0: 0, 1: 0, 2: 0}

    def test_build_with_tags(self):
        cfg = build(path_edges(2), {0: 1, 1: 0})
        assert cfg.tag(0) == 1

    def test_configuration_helpers(self):
        assert path_configuration([0, 1]).n == 2
        assert cycle_configuration([0, 1, 2]).num_edges == 3
        assert complete_configuration([0] * 4).max_degree == 3
        assert star_configuration([0, 1, 1]).degree(0) == 2

    def test_build_disconnected_fails(self):
        with pytest.raises(ConfigurationError):
            build([(0, 1)], n=3)
