"""Property tests for the sparse history container."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.radio.history import History, shifted_view_key
from repro.radio.model import COLLISION, SILENCE, Message

entries = st.one_of(
    st.just(SILENCE),
    st.just(COLLISION),
    st.builds(Message, st.sampled_from(["1", "a", "b"])),
)
entry_lists = st.lists(entries, max_size=40)


@given(entry_lists)
def test_roundtrip(items):
    h = History.from_entries(items)
    assert h.to_list() == items
    assert len(h) == len(items)


@given(entry_lists)
def test_indexing_matches_list(items):
    h = History.from_entries(items)
    for i in range(len(items)):
        assert h[i] == items[i]
        assert h[i - len(items)] == items[i]


@given(entry_lists, entry_lists)
def test_equality_iff_same_entries(a, b):
    ha, hb = History.from_entries(a), History.from_entries(b)
    assert (ha == hb) == (a == b)
    if a == b:
        assert ha.key() == hb.key()
        assert hash(ha) == hash(hb)
    else:
        assert ha.key() != hb.key()


@given(entry_lists)
def test_copy_is_equal_and_independent(items):
    h = History.from_entries(items)
    c = h.copy()
    assert c == h
    c.append(COLLISION)
    assert len(c) == len(h) + 1


@given(entry_lists, st.data())
def test_window_matches_slicing(items, data):
    if not items:
        return
    h = History.from_entries(items)
    lo = data.draw(st.integers(0, len(items) - 1))
    hi = data.draw(st.integers(lo, len(items) - 1))
    assert h.window(lo, hi) == items[lo : hi + 1]


@given(entry_lists, st.data())
def test_prefix_key_agrees_with_truncated_history(items, data):
    if not items:
        return
    h = History.from_entries(items)
    upto = data.draw(st.integers(0, len(items) - 1))
    truncated = History.from_entries(items[: upto + 1])
    assert h.prefix_key(upto) == truncated.key()


@given(entry_lists, st.data())
def test_shifted_view_matches_rebuilt_suffix(items, data):
    if not items:
        return
    h = History.from_entries(items)
    start = data.draw(st.integers(0, len(items) - 1))
    end = data.draw(st.integers(start, len(items) - 1))
    rebuilt = History.from_entries(items[start : end + 1])
    assert shifted_view_key(h, start, end) == rebuilt.key()


@given(entry_lists)
def test_first_message_round(items):
    h = History.from_entries(items)
    expected = next(
        (i for i, e in enumerate(items) if isinstance(e, Message)), None
    )
    assert h.first_message_round() == expected


@given(entry_lists, st.data())
def test_events_in_window_subset(items, data):
    h = History.from_entries(items)
    if not items:
        return
    lo = data.draw(st.integers(0, len(items) - 1))
    hi = data.draw(st.integers(lo, len(items) - 1))
    evs = h.events_in(lo, hi)
    assert all(lo <= i <= hi for i, _ in evs)
    assert all(items[i] == e for i, e in evs)
    assert [i for i, _ in evs] == sorted(i for i, _ in evs)
    # completeness: every non-silent entry in range appears
    expected = [(i, e) for i, e in enumerate(items) if lo <= i <= hi and e is not SILENCE]
    assert evs == expected
