"""Tests for the extended graph generators and tag strategies."""

import pytest

from repro.core.configuration import Configuration
from repro.graphs.generators import (
    barbell_edges,
    build,
    circulant_edges,
    complete_bipartite_edges,
    double_star_edges,
    hypercube_edges,
    lollipop_edges,
    random_regular_edges,
    spider_edges,
    torus_edges,
    wheel_edges,
)
from repro.graphs.tags import (
    alternating,
    bfs_layers,
    clustered,
    single_sleeper,
    staircase,
)


def as_config(edges, n=None):
    """Build with all-zero tags; Configuration validates connectivity."""
    return build(edges, n=n)


def degrees(cfg):
    return sorted(cfg.degree(v) for v in cfg.nodes)


class TestHypercube:
    @pytest.mark.parametrize("dim", [0, 1, 2, 3, 4])
    def test_size_and_regularity(self, dim):
        edges = hypercube_edges(dim)
        n = 1 << dim
        assert len(edges) == dim * n // 2
        if dim > 0:
            cfg = as_config(edges, n=n)
            assert degrees(cfg) == [dim] * n

    def test_negative_dim_rejected(self):
        with pytest.raises(ValueError):
            hypercube_edges(-1)

    def test_q2_is_a_4cycle(self):
        cfg = as_config(hypercube_edges(2))
        assert cfg.n == 4 and cfg.num_edges == 4
        assert degrees(cfg) == [2, 2, 2, 2]


class TestTorus:
    def test_3x3_is_4_regular(self):
        cfg = as_config(torus_edges(3, 3), n=9)
        assert degrees(cfg) == [4] * 9
        assert cfg.num_edges == 18

    def test_rejects_small_dims(self):
        with pytest.raises(ValueError):
            torus_edges(2, 3)
        with pytest.raises(ValueError):
            torus_edges(3, 2)

    def test_4x5(self):
        cfg = as_config(torus_edges(4, 5), n=20)
        assert degrees(cfg) == [4] * 20


class TestCompleteBipartite:
    def test_k23(self):
        cfg = as_config(complete_bipartite_edges(2, 3), n=5)
        assert cfg.num_edges == 6
        assert degrees(cfg) == [2, 2, 2, 3, 3]

    def test_star_special_case(self):
        cfg = as_config(complete_bipartite_edges(1, 4), n=5)
        assert degrees(cfg) == [1, 1, 1, 1, 4]

    def test_rejects_empty_part(self):
        with pytest.raises(ValueError):
            complete_bipartite_edges(0, 3)


class TestWheel:
    def test_w5(self):
        cfg = as_config(wheel_edges(5), n=5)
        assert cfg.degree(0) == 4  # hub
        assert degrees(cfg) == [3, 3, 3, 3, 4]

    def test_rejects_small(self):
        with pytest.raises(ValueError):
            wheel_edges(3)

    def test_w4_is_k4(self):
        cfg = as_config(wheel_edges(4), n=4)
        assert cfg.num_edges == 6  # K4


class TestCirculant:
    def test_cycle_as_circulant(self):
        from repro.graphs.generators import cycle_edges

        assert sorted(circulant_edges(6, [1])) == sorted(
            tuple(sorted(e)) for e in cycle_edges(6)
        )

    def test_two_offsets(self):
        cfg = as_config(circulant_edges(7, [1, 2]), n=7)
        assert degrees(cfg) == [4] * 7

    def test_rejects_zero_offset(self):
        with pytest.raises(ValueError):
            circulant_edges(5, [0])

    def test_offset_modulo(self):
        assert circulant_edges(5, [6]) == circulant_edges(5, [1])


class TestClusterShapes:
    def test_barbell(self):
        cfg = as_config(barbell_edges(3), n=6)
        assert cfg.n == 6
        assert cfg.num_edges == 3 + 3 + 1
        assert degrees(cfg) == [2, 2, 2, 2, 3, 3]

    def test_barbell_rejects_small(self):
        with pytest.raises(ValueError):
            barbell_edges(2)

    def test_lollipop(self):
        cfg = as_config(lollipop_edges(4, 3), n=7)
        assert cfg.n == 7
        assert cfg.degree(6) == 1  # tail end
        assert cfg.degree(3) == 4  # clique node holding the tail

    def test_lollipop_rejects_bad(self):
        with pytest.raises(ValueError):
            lollipop_edges(2, 1)
        with pytest.raises(ValueError):
            lollipop_edges(3, 0)

    def test_double_star(self):
        cfg = as_config(double_star_edges(2, 3), n=7)
        assert cfg.degree(0) == 3  # hub + 2 leaves
        assert cfg.degree(1) == 4  # hub + 3 leaves

    def test_spider(self):
        cfg = as_config(spider_edges(3, 2), n=7)
        assert cfg.degree(0) == 3
        assert degrees(cfg).count(1) == 3  # leg tips


class TestRandomRegular:
    @pytest.mark.parametrize("n,d", [(8, 3), (10, 4), (6, 2)])
    def test_regular_and_connected(self, n, d):
        edges = random_regular_edges(n, d, seed=1)
        cfg = as_config(edges, n=n)  # Configuration checks connectivity
        assert degrees(cfg) == [d] * n

    def test_deterministic(self):
        assert random_regular_edges(8, 3, seed=5) == random_regular_edges(
            8, 3, seed=5
        )

    def test_rejects_odd_product(self):
        with pytest.raises(ValueError):
            random_regular_edges(5, 3, seed=0)

    def test_rejects_degree_too_large(self):
        with pytest.raises(ValueError):
            random_regular_edges(4, 4, seed=0)


class TestTagStrategies:
    def test_staircase(self):
        tags = staircase(range(6), step=2, width=2)
        assert tags == {0: 0, 1: 0, 2: 2, 3: 2, 4: 4, 5: 4}

    def test_staircase_validation(self):
        with pytest.raises(ValueError):
            staircase(range(3), step=-1)
        with pytest.raises(ValueError):
            staircase(range(3), width=0)

    def test_alternating(self):
        tags = alternating(range(5), low=0, high=3)
        assert tags == {0: 0, 1: 3, 2: 0, 3: 3, 4: 0}

    def test_alternating_validation(self):
        with pytest.raises(ValueError):
            alternating(range(3), low=2, high=1)

    def test_bfs_layers(self):
        cfg = Configuration([(0, 1), (1, 2), (2, 3)], {i: 0 for i in range(4)})
        tags = bfs_layers(cfg, 0, step=2)
        assert tags == {0: 0, 1: 2, 2: 4, 3: 6}

    def test_bfs_layers_from_centre(self):
        cfg = Configuration([(0, 1), (1, 2)], {i: 0 for i in range(3)})
        assert bfs_layers(cfg, 1) == {0: 1, 1: 0, 2: 1}

    def test_single_sleeper(self):
        tags = single_sleeper(range(4), late=5)
        assert tags == {0: 0, 1: 0, 2: 0, 3: 5}

    def test_single_sleeper_custom_index(self):
        tags = single_sleeper(range(3), sleeper_index=0, late=2)
        assert tags == {0: 2, 1: 0, 2: 0}

    def test_clustered_deterministic_and_bounded(self):
        a = clustered(range(10), 3, 4, seed=2)
        b = clustered(range(10), 3, 4, seed=2)
        assert a == b
        assert all(0 <= t <= 4 for t in a.values())
        assert len(set(a.values())) <= 3

    def test_clustered_validation(self):
        with pytest.raises(ValueError):
            clustered(range(3), 0, 1, seed=0)
        with pytest.raises(ValueError):
            clustered(range(3), 2, -1, seed=0)

    def test_strategies_feed_configurations(self):
        """Every strategy's output builds a valid configuration."""
        edges = [(i, i + 1) for i in range(5)]
        for tags in (
            staircase(range(6)),
            alternating(range(6)),
            single_sleeper(range(6)),
            clustered(range(6), 2, 3, seed=1),
        ):
            cfg = build(edges, tags, n=6)
            assert cfg.n == 6
