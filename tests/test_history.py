"""Unit tests for sparse histories."""

import pytest

from repro.radio.history import History, shifted_view_key
from repro.radio.model import COLLISION, SILENCE, Message


def make(entries):
    return History.from_entries(entries)


class TestBasics:
    def test_empty(self):
        h = History()
        assert len(h) == 0
        assert list(h) == []

    def test_append_and_index(self):
        h = make([SILENCE, Message("1"), COLLISION])
        assert len(h) == 3
        assert h[0] is SILENCE
        assert h[1] == Message("1")
        assert h[2] is COLLISION

    def test_negative_index(self):
        h = make([SILENCE, Message("1")])
        assert h[-1] == Message("1")
        assert h[-2] is SILENCE

    def test_out_of_range(self):
        h = make([SILENCE])
        with pytest.raises(IndexError):
            h[1]
        with pytest.raises(IndexError):
            h[-2]

    def test_slicing_rejected(self):
        h = make([SILENCE, SILENCE])
        with pytest.raises(TypeError):
            h[0:1]

    def test_iteration_order(self):
        entries = [SILENCE, Message("a"), SILENCE, COLLISION]
        assert make(entries).to_list() == entries

    def test_silence_not_stored(self):
        h = make([SILENCE] * 1000)
        assert len(h._events) == 0
        assert len(h) == 1000

    def test_copy_independent(self):
        h = make([Message("1")])
        c = h.copy()
        c.append(COLLISION)
        assert len(h) == 1
        assert len(c) == 2
        assert h == make([Message("1")])


class TestWindows:
    def test_window_inclusive(self):
        h = make([SILENCE, Message("1"), COLLISION, SILENCE])
        assert h.window(1, 2) == [Message("1"), COLLISION]
        assert h.window(0, 3) == h.to_list()

    def test_window_bounds(self):
        h = make([SILENCE, SILENCE])
        with pytest.raises(IndexError):
            h.window(0, 2)
        with pytest.raises(IndexError):
            h.window(-1, 1)

    def test_events_in(self):
        h = make([SILENCE, Message("1"), SILENCE, COLLISION, Message("2")])
        assert h.events_in(0, 4) == [
            (1, Message("1")),
            (3, COLLISION),
            (4, Message("2")),
        ]
        assert h.events_in(2, 3) == [(3, COLLISION)]
        assert h.events_in(0, 0) == []

    def test_events_sorted(self):
        h = make([Message("b"), SILENCE, Message("a")])
        assert [i for i, _ in h.events()] == [0, 2]

    def test_first_message_round(self):
        h = make([SILENCE, COLLISION, Message("1"), Message("2")])
        assert h.first_message_round() == 2
        assert make([SILENCE, COLLISION]).first_message_round() is None
        assert History().first_message_round() is None


class TestEqualityAndKeys:
    def test_equality(self):
        a = make([SILENCE, Message("1")])
        b = make([SILENCE, Message("1")])
        assert a == b
        assert hash(a) == hash(b)

    def test_length_matters(self):
        assert make([SILENCE]) != make([SILENCE, SILENCE])

    def test_entry_matters(self):
        assert make([Message("1")]) != make([COLLISION])
        assert make([Message("1")]) != make([Message("2")])

    def test_not_equal_to_list(self):
        assert make([SILENCE]) != [SILENCE]

    def test_key_equality_matches_eq(self):
        a = make([SILENCE, COLLISION, SILENCE])
        b = make([SILENCE, COLLISION, SILENCE])
        c = make([SILENCE, SILENCE, COLLISION])
        assert a.key() == b.key()
        assert a.key() != c.key()

    def test_prefix_key(self):
        a = make([SILENCE, Message("1"), COLLISION])
        b = make([SILENCE, Message("1"), Message("9")])
        assert a.prefix_key(1) == b.prefix_key(1)
        assert a.prefix_key(2) != b.prefix_key(2)

    def test_prefix_key_bounds(self):
        with pytest.raises(IndexError):
            make([SILENCE]).prefix_key(1)


class TestRenderAndViews:
    def test_render(self):
        h = make([SILENCE, Message("1"), COLLISION])
        assert h.render() == ".<1>*"

    def test_shifted_view_key_rebases(self):
        h = make([Message("w"), SILENCE, Message("1"), COLLISION])
        inner = make([Message("1"), COLLISION])
        assert shifted_view_key(h, 2, 3) == inner.key()

    def test_shifted_view_key_empty_window(self):
        h = make([SILENCE, SILENCE])
        assert shifted_view_key(h, 1, 0) == (0, ())

    def test_shifted_view_key_bounds(self):
        h = make([SILENCE])
        with pytest.raises(IndexError):
            shifted_view_key(h, 0, 1)
