"""Unit tests for channel semantics (repro.variants.channels)."""

import pickle

import pytest

from repro.core.partition import ONE, STAR
from repro.radio.model import COLLISION, SILENCE, Message
from repro.variants.channels import (
    BEEP,
    BEEP_ENTRY,
    BEEP_MARK,
    CD,
    CHANNELS,
    NO_CD,
    channel_by_name,
)


class TestReception:
    def test_silence_for_zero_everywhere(self):
        for ch in CHANNELS:
            assert ch.entry(0, None) is SILENCE

    def test_cd_entries(self):
        assert CD.entry(1, "x") == Message("x")
        assert CD.entry(2, "x") is COLLISION
        assert CD.entry(5, "x") is COLLISION

    def test_nocd_collision_is_silence(self):
        assert NO_CD.entry(1, "x") == Message("x")
        assert NO_CD.entry(2, "x") is SILENCE
        assert NO_CD.entry(7, "x") is SILENCE

    def test_beep_is_content_free(self):
        assert BEEP.entry(1, "x") is BEEP_ENTRY
        assert BEEP.entry(3, "y") is BEEP_ENTRY

    def test_beep_entry_distinct_from_everything(self):
        assert BEEP_ENTRY is not SILENCE
        assert BEEP_ENTRY is not COLLISION
        assert BEEP_ENTRY != Message("beep")


class TestWakeups:
    def test_single_message_wakes_everywhere(self):
        for ch in CHANNELS:
            assert ch.wakes(1)

    def test_zero_never_wakes(self):
        for ch in CHANNELS:
            assert not ch.wakes(0)

    def test_collision_wakes_only_beeper(self):
        assert not CD.wakes(2)
        assert not NO_CD.wakes(2)
        assert BEEP.wakes(2)

    def test_wake_entries(self):
        assert CD.wake_entry(1, "m") == Message("m")
        assert NO_CD.wake_entry(1, "m") == Message("m")
        assert BEEP.wake_entry(1, "m") is BEEP_ENTRY

    def test_spontaneous_entry_records_noise_only_with_cd(self):
        assert CD.spontaneous_entry(2) is COLLISION
        assert NO_CD.spontaneous_entry(2) is SILENCE
        assert BEEP.spontaneous_entry(0) is SILENCE
        for ch in CHANNELS:
            assert ch.spontaneous_entry(0) is SILENCE


class TestMarks:
    def test_cd_marks(self):
        assert CD.triple_mark(0) is None
        assert CD.triple_mark(1) == ONE
        assert CD.triple_mark(2) == STAR
        assert CD.triple_mark(9) == STAR

    def test_nocd_marks(self):
        assert NO_CD.triple_mark(1) == ONE
        assert NO_CD.triple_mark(2) is None
        assert NO_CD.triple_mark(3) is None

    def test_beep_marks(self):
        assert BEEP.triple_mark(1) == BEEP_MARK
        assert BEEP.triple_mark(4) == BEEP_MARK
        assert BEEP.triple_mark(0) is None

    def test_mark_constants_disjoint(self):
        assert len({ONE, STAR, BEEP_MARK}) == 3

    def test_entry_mark_roundtrip(self):
        # Decoding an entry must invert encoding a count, per channel.
        for ch in CHANNELS:
            for count in range(4):
                entry = ch.entry(count, "1")
                mark = ch.triple_mark(count)
                if entry is SILENCE:
                    assert mark is None
                else:
                    assert ch.entry_mark(entry) == mark

    def test_entry_mark_rejects_garbage(self):
        with pytest.raises(TypeError):
            CD.entry_mark("not an entry")


class TestRegistry:
    def test_lookup_by_name(self):
        assert channel_by_name("cd") is CD
        assert channel_by_name("no-cd") is NO_CD
        assert channel_by_name("beep") is BEEP

    def test_lookup_unknown(self):
        with pytest.raises(ValueError, match="unknown channel"):
            channel_by_name("quantum")

    def test_channel_flags(self):
        assert CD.collision_detection and CD.content_bearing
        assert not NO_CD.collision_detection and NO_CD.content_bearing
        assert not BEEP.collision_detection and not BEEP.content_bearing

    def test_beep_entry_pickles_to_identity(self):
        assert pickle.loads(pickle.dumps(BEEP_ENTRY)) is BEEP_ENTRY
