"""Unit tests for dedicated leader election (Theorem 3.15 end to end)."""

import pytest

from repro.core.classifier import classify
from repro.core.configuration import Configuration, line_configuration
from repro.core.election import (
    ElectionError,
    ElectionResult,
    elect_leader,
    election_rounds,
)
from repro.graphs.families import g_m, g_m_center, h_m, s_m


class TestElectionOutcomes:
    def test_feasible_elects_classifier_leader(self):
        for cfg in (
            line_configuration([0, 1, 0]),
            line_configuration([0, 1, 2]),
            h_m(1),
            h_m(4),
            g_m(2),
        ):
            result = elect_leader(cfg)
            assert result.elected
            assert result.leader == result.trace.leader

    def test_infeasible_elects_nobody(self):
        for cfg in (
            Configuration([(0, 1)], {0: 0, 1: 0}),
            s_m(1),
            s_m(3),
            line_configuration([0, 0, 0, 0]),
        ):
            result = elect_leader(cfg)
            assert not result.elected
            assert result.leaders == []
            assert result.leader is None

    def test_g_m_center_wins(self):
        for m in (2, 3):
            assert elect_leader(g_m(m)).leader == g_m_center(m)

    def test_all_nodes_terminate_same_local_round(self):
        result = elect_leader(h_m(2))
        assert len(set(result.execution.done_local.values())) == 1

    def test_rounds_match_schedule(self):
        result = elect_leader(h_m(2))
        assert result.rounds == result.protocol.expected_done

    def test_trace_reuse(self):
        cfg = h_m(2)
        trace = classify(cfg)
        result = elect_leader(cfg, trace=trace)
        assert result.trace is trace

    def test_record_trace(self):
        result = elect_leader(h_m(1), record_trace=True)
        assert result.execution.trace is not None
        assert result.execution.transmission_rounds()


class TestRoundBound:
    def test_within_o_n2_sigma(self):
        for cfg in (h_m(1), h_m(6), g_m(2), g_m(3), line_configuration([0, 1, 2, 3])):
            result = elect_leader(cfg)
            assert result.within_bound(), result.describe()

    def test_bound_formula_positive(self):
        result = elect_leader(h_m(1))
        assert result.round_bound() > 0
        assert result.round_bound(3) > result.round_bound(1)

    def test_global_rounds_at_least_local(self):
        result = elect_leader(h_m(3))
        assert result.global_rounds >= result.rounds

    def test_election_rounds_helper(self):
        assert election_rounds(h_m(1)) == elect_leader(h_m(1)).rounds


class TestVerification:
    def test_describe(self):
        text = elect_leader(h_m(1)).describe()
        assert "leader=" in text and "done_v=" in text
        text2 = elect_leader(s_m(1)).describe()
        assert "no leader" in text2

    def test_check_can_be_disabled(self):
        # with check=False no exception machinery runs; result returned
        result = elect_leader(s_m(1), check=False)
        assert isinstance(result, ElectionResult)

    def test_tampered_outcome_raises(self):
        # simulate a verification failure by corrupting the trace leader
        cfg = h_m(1)
        trace = classify(cfg)
        wrong = [v for v in trace.config.nodes if v != trace.leader][0]
        trace.leader = wrong
        with pytest.raises(ElectionError):
            elect_leader(cfg, trace=trace)
