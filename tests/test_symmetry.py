"""Tests for executable symmetry arguments (repro.analysis.symmetry)."""

import pytest

from repro.analysis.symmetry import (
    forced_non_leaders,
    gm_pairs_match_automorphisms,
    gm_proof_pairs,
    symmetry_pairs,
    verify_pairwise_symmetry,
)
from repro.core.canonical import CanonicalProtocol
from repro.core.classifier import classify
from repro.core.configuration import Configuration
from repro.graphs.enumeration import (
    enumerate_configurations,
    enumerate_nonisomorphic_configurations,
)
from repro.graphs.families import g_m, h_m, s_m
from repro.graphs.generators import (
    cycle_configuration,
    path_configuration,
    star_configuration,
)
from repro.radio.protocol import AlwaysListenDRIP, ScheduleDRIP, anonymous_factory


class TestSymmetryPairs:
    def test_mirror_path(self):
        cfg = path_configuration([0, 1, 0])
        assert symmetry_pairs(cfg) == [(0, 2)]

    def test_rigid_configuration_has_none(self):
        assert symmetry_pairs(h_m(1)) == []
        assert symmetry_pairs(path_configuration([0, 1, 2])) == []

    def test_vertex_transitive_cycle(self):
        cfg = cycle_configuration([0, 0, 0, 0])
        # every pair of nodes is identified by some rotation/reflection
        assert len(symmetry_pairs(cfg)) == 6

    def test_sm_family(self):
        assert symmetry_pairs(s_m(3)) == [(0, 3), (1, 2)]

    def test_forced_non_leaders_blocks_feasibility(self):
        """If every node is in a symmetry pair, Classifier must say No
        (the necessary condition, exhaustively)."""
        for cfg in enumerate_configurations(4, 1):
            if len(forced_non_leaders(cfg)) == cfg.n:
                assert not classify(cfg).feasible

    def test_leader_never_in_a_pair(self):
        for cfg in enumerate_configurations(4, 1):
            trace = classify(cfg)
            if trace.feasible:
                assert trace.leader not in forced_non_leaders(trace.config)


class TestGmProofPairs:
    @pytest.mark.parametrize("m", [2, 3, 4])
    def test_match_generic_automorphisms(self, m):
        assert gm_pairs_match_automorphisms(m)

    def test_centre_is_fixed(self):
        from repro.graphs.families import g_m_center

        m = 3
        paired = {x for p in gm_proof_pairs(m) for x in p}
        assert g_m_center(m) not in paired

    def test_small_m_rejected(self):
        with pytest.raises(ValueError):
            gm_proof_pairs(1)


class TestVerification:
    def test_canonical_protocol_respects_symmetry(self):
        """Paired nodes get identical histories under the canonical DRIP
        — the theorem, executed."""
        for cfg in (s_m(2), g_m(2), cycle_configuration([0, 1, 0, 1])):
            trace = classify(cfg)
            protocol = CanonicalProtocol.from_trace(trace)
            network = trace.config
            pairs = symmetry_pairs(network)
            if not pairs:
                continue
            verdict = verify_pairwise_symmetry(
                network,
                protocol.factory,
                pairs,
                max_rounds=protocol.round_budget(network.span),
            )
            assert all(verdict.values()), verdict

    def test_adhoc_protocols_respect_symmetry(self):
        cfg = star_configuration([0, 0, 0, 0])
        pairs = symmetry_pairs(cfg)
        assert pairs  # the leaves are all symmetric
        for factory in (
            anonymous_factory(lambda: AlwaysListenDRIP(5)),
            anonymous_factory(lambda: ScheduleDRIP({2: "x"}, done_round=5)),
        ):
            verdict = verify_pairwise_symmetry(cfg, factory, pairs)
            assert all(verdict.values())

    def test_labeled_protocols_may_break_symmetry(self):
        """The theorem needs anonymity: a factory that uses node ids can
        separate paired nodes — confirming the check has teeth. On the
        4-path with equal tags, (0, 3) is a mirror pair; a labeled
        protocol in which only node 1 transmits reaches node 0 but not
        node 3."""
        cfg = path_configuration([0, 0, 0, 0])

        def labeled_factory(v):
            if v == 1:
                return ScheduleDRIP({1: "from-one"}, done_round=4)
            return AlwaysListenDRIP(4)

        verdict = verify_pairwise_symmetry(cfg, labeled_factory, [(0, 3)])
        assert verdict[(0, 3)] is False


class TestNonIsomorphicEnumeration:
    def test_counts(self):
        full = list(enumerate_configurations(4, 1))
        reps = list(enumerate_nonisomorphic_configurations(4, 1))
        assert len(full) == 90 and len(reps) == 44

    def test_representatives_pairwise_distinct(self):
        from repro.analysis.isomorphism import canonical_form

        reps = list(enumerate_nonisomorphic_configurations(3, 2))
        keys = [canonical_form(c) for c in reps]
        assert len(keys) == len(set(keys))

    def test_feasible_fraction_differs_from_labeled_count(self):
        """Dedup changes census statistics — the reason it exists."""
        from repro.core.classifier import is_feasible

        full = [is_feasible(c) for c in enumerate_configurations(4, 1)]
        reps = [
            is_feasible(c)
            for c in enumerate_nonisomorphic_configurations(4, 1)
        ]
        assert sum(full) / len(full) != pytest.approx(
            sum(reps) / len(reps), abs=1e-9
        )
