"""Unit tests for the canonical DRIP construction and executor."""

import pytest

from repro.core.canonical import (
    CanonicalDRIP,
    CanonicalMatchError,
    CanonicalProtocol,
    build_canonical_data,
    final_class_of,
    match_entry,
    observed_triples,
    replay_tblocks,
)
from repro.core.classifier import classify
from repro.core.configuration import Configuration, line_configuration
from repro.core.partition import ONE, STAR
from repro.core.trace import ClassifierTrace
from repro.graphs.families import g_m, h_m, s_m
from repro.radio.history import History
from repro.radio.model import COLLISION, LISTEN, SILENCE, TERMINATE, Message, Transmit
from repro.radio.simulator import simulate


def data_for(cfg):
    return build_canonical_data(classify(cfg))


class TestDataConstruction:
    def test_l1_is_single_null_entry(self):
        data = data_for(h_m(2))
        assert data.lists[0] == [(1, ())]

    def test_num_phases_equals_decided_at(self):
        for cfg in (h_m(1), s_m(2), g_m(2), line_configuration([0, 1, 0])):
            trace = classify(cfg)
            data = build_canonical_data(trace)
            assert data.num_phases == trace.decided_at

    def test_phase_ends_arithmetic(self):
        # r_j = r_{j-1} + numClasses_j * (2σ+1) + σ
        data = data_for(g_m(2))
        sigma = data.sigma
        for j in range(1, data.num_phases + 1):
            expected = (
                data.phase_ends[j - 1]
                + len(data.lists[j - 1]) * (2 * sigma + 1)
                + sigma
            )
            assert data.phase_ends[j] == expected

    def test_final_list_covers_final_partition(self):
        trace = classify(h_m(3))
        data = build_canonical_data(trace)
        assert len(data.final_list) == trace.num_classes_at(trace.decided_at + 1)

    def test_leader_class_matches_trace(self):
        trace = classify(h_m(2))
        data = build_canonical_data(trace)
        assert data.leader_class == trace.leader_class
        assert data.feasible

    def test_infeasible_has_no_leader_class(self):
        data = data_for(s_m(2))
        assert data.leader_class is None
        assert not data.feasible

    def test_done_round(self):
        data = data_for(h_m(1))
        assert data.done_round == data.phase_ends[-1] + 1

    def test_rejects_undecided_trace(self):
        trace = ClassifierTrace(
            config=None, sigma=0, initial_classes={}, initial_reps=(None,)
        )
        with pytest.raises(ValueError):
            build_canonical_data(trace)


class TestObservedTriples:
    def test_message_maps_to_one(self):
        # block width 2σ+1 = 3 (σ=1); event at round r_prev+2 of block 1
        h = History.from_entries([SILENCE, SILENCE, Message("1"), SILENCE])
        assert observed_triples(h, 0, 1, 1) == ((1, 2, ONE),)

    def test_collision_maps_to_star(self):
        h = History.from_entries([SILENCE, COLLISION, SILENCE, SILENCE])
        assert observed_triples(h, 0, 1, 1) == ((1, 1, STAR),)

    def test_block_decomposition(self):
        # σ=0 -> width 1; three blocks; events in blocks 1 and 3
        h = History.from_entries([SILENCE, Message("1"), SILENCE, COLLISION])
        assert observed_triples(h, 0, 3, 0) == ((1, 1, ONE), (3, 1, STAR))

    def test_window_excludes_outside_events(self):
        h = History.from_entries([Message("x"), SILENCE, SILENCE, Message("y")])
        # window rounds 1..2 only
        assert observed_triples(h, 0, 2, 0) == ()

    def test_sorted_by_hist_order(self):
        h = History.from_entries(
            [SILENCE, Message("1"), Message("1"), COLLISION, SILENCE]
        )
        triples = observed_triples(h, 0, 4, 0)
        assert list(triples) == sorted(triples)


class TestMatchEntry:
    def test_first_match_wins(self):
        entries = [(1, ()), (1, ((1, 1, ONE),)), (2, ())]
        assert match_entry(entries, 1, ()) == 1
        assert match_entry(entries, 1, ((1, 1, ONE),)) == 2
        assert match_entry(entries, 2, ()) == 3

    def test_no_match(self):
        assert match_entry([(1, ())], 2, ()) is None
        assert match_entry([(1, ())], 1, ((9, 9, ONE),)) is None


class TestReplayAndDecision:
    def test_replay_matches_simulated_classes(self):
        # every node's replayed tBlock chain equals its classifier classes
        for cfg in (h_m(2), g_m(2), line_configuration([0, 1, 0, 2])):
            trace = classify(cfg)
            protocol = CanonicalProtocol.from_trace(trace)
            ex = simulate(
                trace.config,
                protocol.factory,
                max_rounds=protocol.round_budget(trace.config.span),
            )
            for v in trace.config.nodes:
                chain = replay_tblocks(protocol.data, ex.histories[v])
                expected = [
                    trace.classes_at(j)[v]
                    for j in range(1, protocol.data.num_phases + 1)
                ]
                assert chain == expected, f"node {v} of {cfg!r}"

    def test_final_class_matches_partition(self):
        trace = classify(h_m(2))
        protocol = CanonicalProtocol.from_trace(trace)
        ex = simulate(
            trace.config,
            protocol.factory,
            max_rounds=protocol.round_budget(trace.config.span),
        )
        final = trace.final_classes()
        for v in trace.config.nodes:
            assert final_class_of(protocol.data, ex.histories[v]) == final[v]

    def test_replay_error_on_garbage_history(self):
        data = data_for(g_m(2))
        if data.num_phases < 2:
            pytest.skip("needs at least two phases")
        # a history full of collisions matches no legitimate entry
        h = History.from_entries([COLLISION] * (data.phase_ends[-1] + 2))
        with pytest.raises(CanonicalMatchError):
            replay_tblocks(data, h)

    def test_decision_zero_for_infeasible(self):
        trace = classify(s_m(1))
        protocol = CanonicalProtocol.from_trace(trace)
        ex = simulate(
            trace.config,
            protocol.factory,
            max_rounds=protocol.round_budget(trace.config.span),
        )
        assert all(
            protocol.decision(ex.histories[v]) == 0 for v in trace.config.nodes
        )


class TestCanonicalDRIPUnit:
    def test_terminates_after_schedule(self):
        data = data_for(Configuration([], {0: 0}))
        drip = CanonicalDRIP(data)
        h = History.from_entries([SILENCE] * (data.done_round))
        assert drip.decide(h) is TERMINATE

    def test_transmits_once_per_phase(self):
        # run the protocol; each node's transmission count per phase == 1
        trace = classify(h_m(2))
        protocol = CanonicalProtocol.from_trace(trace)
        ex = simulate(
            trace.config,
            protocol.factory,
            max_rounds=protocol.round_budget(trace.config.span),
            record_trace=True,
        )
        data = protocol.data
        # count transmissions of each node per phase from the trace
        counts = {v: [0] * (data.num_phases + 1) for v in trace.config.nodes}
        for rec in ex.trace:
            for v in rec.transmitters:
                local = rec.global_round - ex.wake_rounds[v]
                phase = protocol.phase_of_round(local)
                assert phase is not None
                counts[v][phase] += 1
        for v, per_phase in counts.items():
            assert per_phase[1:] == [1] * data.num_phases, f"node {v}"

    def test_transmission_offset_is_sigma_plus_one(self):
        # every transmission happens at local position σ+1 of some block
        trace = classify(g_m(2))
        protocol = CanonicalProtocol.from_trace(trace)
        data = protocol.data
        ex = simulate(
            trace.config,
            protocol.factory,
            max_rounds=protocol.round_budget(trace.config.span),
            record_trace=True,
        )
        width = data.block_width
        for rec in ex.trace:
            for v in rec.transmitters:
                local = rec.global_round - ex.wake_rounds[v]
                phase = protocol.phase_of_round(local)
                offset = local - data.phase_ends[phase - 1]
                pos = (offset - 1) % width + 1
                assert pos == data.sigma + 1

    def test_phase_of_round(self):
        protocol = CanonicalProtocol.from_trace(classify(h_m(1)))
        ends = protocol.data.phase_ends
        assert protocol.phase_of_round(0) is None
        assert protocol.phase_of_round(1) == 1
        assert protocol.phase_of_round(ends[-1]) == protocol.data.num_phases
        assert protocol.phase_of_round(ends[-1] + 1) is None

    def test_algorithm_bundle(self):
        algo = CanonicalProtocol.from_trace(classify(h_m(1))).algorithm()
        assert algo.name == "canonical"
        assert callable(algo.factory) and callable(algo.decision)
