"""Release gate: every public item carries a docstring.

The deliverable promises doc comments on every public item; this test
makes the promise enforceable. Public = importable from a ``repro``
module, name not starting with ``_``, defined inside this package.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGE_PREFIX = "repro"


def all_modules():
    out = []
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        out.append(info.name)
    return sorted(out)


MODULES = all_modules()


@pytest.mark.parametrize("name", MODULES)
def test_module_has_docstring(name):
    mod = importlib.import_module(name)
    assert inspect.getdoc(mod), f"module {name} lacks a docstring"


def public_items():
    items = []
    for name in MODULES:
        mod = importlib.import_module(name)
        for attr, obj in vars(mod).items():
            if attr.startswith("_"):
                continue
            if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                continue
            if getattr(obj, "__module__", None) != name:
                continue  # re-exports are documented at their source
            items.append((name, attr, obj))
    return items


def test_public_classes_and_functions_documented():
    missing = [
        f"{mod}.{attr}"
        for mod, attr, obj in public_items()
        if not inspect.getdoc(obj)
    ]
    assert not missing, f"undocumented public items: {missing}"


def test_engine_package_is_covered():
    """The census engine must be walked by this gate: its modules appear
    in the collected module list (a silent pkgutil skip would exempt the
    whole package from the docstring requirement)."""
    engine_modules = {m for m in MODULES if m.startswith("repro.engine")}
    assert engine_modules >= {
        "repro.engine",
        "repro.engine.cache",
        "repro.engine.keys",
        "repro.engine.pipeline",
        "repro.engine.queue",
        "repro.engine.scheduler",
        "repro.engine.workloads",
    }


def test_engine_public_api_documented():
    """Every name exported from ``repro.engine`` has a docstring (the
    subsystem is the library's scaling seam; its API is documentation-
    critical)."""
    import repro.engine as engine

    missing = []
    for name in engine.__all__:
        obj = getattr(engine, name)
        if (inspect.isclass(obj) or inspect.isfunction(obj)) and not inspect.getdoc(
            obj
        ):
            missing.append(name)
    assert not missing, f"undocumented repro.engine exports: {missing}"


def test_canon_package_is_covered():
    """The canonical-labeling subsystem must be walked by this gate: its
    modules appear in the collected module list (a silent pkgutil skip
    would exempt the whole package from the docstring requirement)."""
    canon_modules = {m for m in MODULES if m.startswith("repro.canon")}
    assert canon_modules >= {
        "repro.canon",
        "repro.canon.canonize",
        "repro.canon.invariants",
        "repro.canon.refine",
    }


def test_canon_public_api_documented():
    """Every name exported from ``repro.canon`` has a docstring (the
    canonizer backs the engine's cache keys and the service's request
    coalescing; its API is documentation-critical — docs/canon.md
    builds on these docstrings)."""
    import repro.canon as canon

    missing = []
    for name in canon.__all__:
        obj = getattr(canon, name)
        if (inspect.isclass(obj) or inspect.isfunction(obj)) and not inspect.getdoc(
            obj
        ):
            missing.append(name)
    assert not missing, f"undocumented repro.canon exports: {missing}"


def test_backends_package_is_covered():
    """The simulation-backend subsystem must be walked by this gate: its
    modules appear in the collected module list (a silent pkgutil skip
    would exempt the whole package from the docstring requirement)."""
    backend_modules = {m for m in MODULES if m.startswith("repro.radio.backends")}
    assert backend_modules >= {
        "repro.radio.backends",
        "repro.radio.backends.base",
        "repro.radio.backends.fast",
        "repro.radio.backends.reference",
    }


def test_backends_public_api_documented():
    """Every name exported from ``repro.radio.backends`` has a docstring
    (the backend architecture is the substrate every experiment runs on;
    its API is documentation-critical — docs/simulation.md builds on
    these docstrings)."""
    import repro.radio.backends as backends

    missing = []
    for name in backends.__all__:
        obj = getattr(backends, name)
        if (inspect.isclass(obj) or inspect.isfunction(obj)) and not inspect.getdoc(
            obj
        ):
            missing.append(name)
    assert not missing, f"undocumented repro.radio.backends exports: {missing}"


def test_compiled_core_is_covered():
    """The compiled classifier core (and the benchmark-artifact helper
    it is gated by) must be walked by this gate: a silent pkgutil skip
    would exempt the hottest module in the repo from the docstring
    requirement."""
    assert "repro.core.compiled" in MODULES
    assert "repro.reporting.bench" in MODULES


def test_compiled_core_public_api_documented():
    """Every public item of ``repro.core.compiled`` has a docstring (the
    module is the classifier's default implementation; docs/performance.md
    builds on these docstrings)."""
    import repro.core.compiled as compiled

    missing = []
    for name in (
        "IndexedConfiguration",
        "LabelInterner",
        "compile_configuration",
        "compiled_classify",
    ):
        obj = getattr(compiled, name)
        if not inspect.getdoc(obj):
            missing.append(name)
    assert not missing, f"undocumented repro.core.compiled items: {missing}"


def test_batch_kernel_is_covered():
    """The batch kernel must be walked by this gate: a silent pkgutil
    skip would exempt the population-scale classification path from the
    docstring requirement."""
    assert "repro.core.batch" in MODULES
    assert "repro.testing" in MODULES


def test_batch_kernel_public_api_documented():
    """Every public item of ``repro.core.batch`` has a docstring (the
    module is the default classifier for every batched caller;
    docs/performance.md builds on these docstrings)."""
    import repro.core.batch as batch

    missing = []
    for name in (
        "BatchOutcome",
        "ConfigurationBatch",
        "batch_census_records",
        "batch_classify",
        "batch_outcomes",
        "resolve_batch_algorithm",
    ):
        obj = getattr(batch, name)
        if not inspect.getdoc(obj):
            missing.append(name)
    assert not missing, f"undocumented repro.core.batch items: {missing}"


def test_service_package_is_covered():
    """The service layer must be walked by this gate: its modules appear
    in the collected module list (a silent pkgutil skip would exempt the
    whole package from the docstring requirement)."""
    service_modules = {m for m in MODULES if m.startswith("repro.service")}
    assert service_modules >= {
        "repro.service",
        "repro.service.batcher",
        "repro.service.metrics",
        "repro.service.schema",
        "repro.service.server",
    }


def test_service_public_api_documented():
    """Every name exported from ``repro.service`` has a docstring (the
    serving layer is the public face of the system; its API is
    documentation-critical — docs/api.md and docs/service.md build on
    these docstrings)."""
    import repro.service as service

    missing = []
    for name in service.__all__:
        obj = getattr(service, name)
        if (inspect.isclass(obj) or inspect.isfunction(obj)) and not inspect.getdoc(
            obj
        ):
            missing.append(name)
    assert not missing, f"undocumented repro.service exports: {missing}"


def test_obs_package_is_covered():
    """The observability layer must be walked by this gate: its modules
    appear in the collected module list (a silent pkgutil skip would
    exempt the whole package from the docstring requirement)."""
    obs_modules = {m for m in MODULES if m.startswith("repro.obs")}
    assert obs_modules >= {
        "repro.obs",
        "repro.obs.events",
        "repro.obs.registry",
        "repro.obs.runtime",
        "repro.obs.summary",
        "repro.obs.tracing",
    }


def test_obs_public_api_documented():
    """Every name exported from ``repro.obs`` has a docstring (the
    tracing/telemetry surface is instrumented into every subsystem;
    docs/observability.md builds on these docstrings)."""
    import repro.obs as obs

    missing = []
    for name in obs.__all__:
        obj = getattr(obs, name)
        if (inspect.isclass(obj) or inspect.isfunction(obj)) and not inspect.getdoc(
            obj
        ):
            missing.append(name)
    assert not missing, f"undocumented repro.obs exports: {missing}"


def test_adversary_package_is_covered():
    """The adversary zoo must be walked by this gate: its modules appear
    in the collected module list (a silent pkgutil skip would exempt the
    whole package from the docstring requirement)."""
    adversary_modules = {m for m in MODULES if m.startswith("repro.adversary")}
    assert adversary_modules >= {
        "repro.adversary",
        "repro.adversary.specs",
        "repro.adversary.strategies",
    }


def test_adversary_public_api_documented():
    """Every name exported from ``repro.adversary`` has a docstring (the
    strategy zoo is the robustness subsystem's extension point;
    docs/robustness.md builds on these docstrings)."""
    import repro.adversary as adversary

    missing = []
    for name in adversary.__all__:
        obj = getattr(adversary, name)
        if (inspect.isclass(obj) or inspect.isfunction(obj)) and not inspect.getdoc(
            obj
        ):
            missing.append(name)
    assert not missing, f"undocumented repro.adversary exports: {missing}"


def test_campaigns_package_is_covered():
    """The campaign driver must be walked by this gate: its modules
    appear in the collected module list (a silent pkgutil skip would
    exempt the whole package from the docstring requirement)."""
    campaign_modules = {m for m in MODULES if m.startswith("repro.campaigns")}
    assert campaign_modules >= {
        "repro.campaigns",
        "repro.campaigns.bundle",
        "repro.campaigns.runner",
        "repro.campaigns.spec",
    }


def test_campaigns_public_api_documented():
    """Every name exported from ``repro.campaigns`` has a docstring (the
    campaign surface is how robustness results are produced and
    replayed; docs/robustness.md builds on these docstrings)."""
    import repro.campaigns as campaigns

    missing = []
    for name in campaigns.__all__:
        obj = getattr(campaigns, name)
        if (inspect.isclass(obj) or inspect.isfunction(obj)) and not inspect.getdoc(
            obj
        ):
            missing.append(name)
    assert not missing, f"undocumented repro.campaigns exports: {missing}"


def test_public_methods_documented():
    missing = []
    for mod, attr, obj in public_items():
        if not inspect.isclass(obj):
            continue
        for mname, meth in vars(obj).items():
            if mname.startswith("_") or not callable(meth):
                continue
            if isinstance(meth, (staticmethod, classmethod)):
                meth = meth.__func__
            if not inspect.getdoc(meth):
                missing.append(f"{mod}.{attr}.{mname}")
    assert not missing, f"undocumented public methods: {missing}"
