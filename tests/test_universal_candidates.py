"""Unit tests for the Section 4 adversary machinery."""

import pytest

from repro.baselines.universal_candidates import (
    candidate_portfolio,
    canonical_for,
    compare_executions,
    defeat,
    eager_beacon,
    first_tag0_transmission,
    quiet_prober,
)
from repro.core.election import elect_leader
from repro.graphs.families import h_m, s_m
from repro.radio.simulator import simulate


class TestFirstTransmission:
    def test_quiet_prober_transmits_after_quiet(self):
        # tag-0 nodes wake at 0, act from round 1, probe at local q+1
        t = first_tag0_transmission(quiet_prober(3), probe_m=16)
        assert t == 4

    def test_eager_beacon_transmits_immediately(self):
        assert first_tag0_transmission(eager_beacon(), probe_m=16) == 1

    def test_canonical_candidates_transmit(self):
        t = first_tag0_transmission(canonical_for(h_m(1)), probe_m=32)
        assert t is not None and t >= 1


class TestDefeat:
    def test_every_portfolio_candidate_defeated(self):
        # Proposition 4.4, experimentally: the adversary kills them all.
        for cand in candidate_portfolio():
            report = defeat(cand, probe_m=48)
            assert report.defeated, report.describe()

    def test_symmetry_witnesses(self):
        report = defeat(quiet_prober(2), probe_m=32)
        assert report.bc_histories_equal
        assert report.ad_histories_equal

    def test_killer_is_feasible_yet_candidate_fails(self):
        # the killer configuration H_{t+1} *is* feasible (its dedicated
        # algorithm elects a leader) — the failure is the candidate's.
        report = defeat(eager_beacon(), probe_m=32)
        dedicated = elect_leader(report.killer)
        assert dedicated.elected
        assert report.defeated

    def test_describe(self):
        text = defeat(eager_beacon(), probe_m=16).describe()
        assert "DEFEATED" in text


class TestCompareExecutions:
    def test_h_vs_s_indistinguishable(self):
        # Proposition 4.5: pick any algorithm; its tag-0 nodes first
        # transmit at t; H_{t+1} and S_{t+1} produce identical histories.
        for cand in (quiet_prober(2), eager_beacon(), canonical_for(h_m(1))):
            t = first_tag0_transmission(cand, probe_m=48)
            if t is None:
                continue
            result = compare_executions(h_m(t + 1), s_m(t + 1), cand)
            assert all(result.values()), (cand.name, result)

    def test_distinguishable_when_m_small(self):
        # sanity: for m smaller than the first transmission the configs
        # CAN differ (node d wakes spontaneously in S_m vs forced in H_m
        # only when transmissions reach it before its tag) — with the
        # dedicated algorithm of H_1, histories on H_1 vs S_1 differ.
        algo = canonical_for(h_m(1))
        try:
            result = compare_executions(h_m(1), s_m(1), algo)
        except Exception:
            return  # a crash is also a distinguishing outcome
        assert not all(result.values())

    def test_node_set_mismatch_rejected(self):
        from repro.graphs.families import g_m

        with pytest.raises(ValueError):
            compare_executions(h_m(1), g_m(2), quiet_prober(1))


class TestPortfolio:
    def test_portfolio_nonempty_and_named(self):
        portfolio = candidate_portfolio()
        assert len(portfolio) >= 5
        assert all(c.name for c in portfolio)
