"""Tests for the wired anonymous message-passing substrate (repro.wired)."""

import pytest

from repro.analysis.views import color_refinement, wired_feasible
from repro.core.configuration import Configuration, line_configuration
from repro.graphs.enumeration import enumerate_configurations
from repro.graphs.families import g_m, h_m, s_m
from repro.graphs.generators import (
    build,
    complete_configuration,
    cycle_configuration,
    path_configuration,
    random_connected_gnp_edges,
    star_configuration,
)
from repro.graphs.tags import uniform_random
from repro.wired import (
    ViewExchangeProtocol,
    WiredSimulator,
    wired_elect,
    wired_election_agrees_with_views,
    wired_simulate,
)
from repro.wired.protocols import ViewInterner, ViewState
from repro.wired.simulator import (
    WiredNodeProtocol,
    WiredProtocolViolation,
    WiredTimeout,
)


class EchoProtocol(WiredNodeProtocol):
    """Sends a constant, records what it hears, stops after ``rounds``."""

    def __init__(self, degree, payload, rounds=1):
        self.degree = degree
        self.payload = payload
        self.rounds = rounds
        self.heard = []
        self._r = 0

    def send(self, round_index):
        return [self.payload] * self.degree

    def receive(self, round_index, inbox):
        self.heard.append(list(inbox))
        self._r += 1

    def done(self):
        return self._r >= self.rounds

    def output(self):
        return self.heard


class TestSimulator:
    def test_reliable_simultaneous_delivery(self):
        cfg = path_configuration([0, 0, 0])
        execution = wired_simulate(
            cfg, lambda v, d: EchoProtocol(d, f"from-{v}")
        )
        # centre (node 1) hears both endpoints, port-ordered
        assert execution.outputs[1] == [["from-0", "from-2"]]
        assert execution.outputs[0] == [["from-1"]]

    def test_port_order_is_sorted_neighbours(self):
        cfg = Configuration([(0, 5), (0, 3), (0, 9)], {0: 0, 3: 0, 5: 0, 9: 0})
        execution = wired_simulate(
            cfg, lambda v, d: EchoProtocol(d, v)
        )
        # hub's inbox order follows sorted neighbour ids: 3, 5, 9
        assert execution.outputs[0] == [[3, 5, 9]]

    def test_message_count_accounting(self):
        cfg = cycle_configuration([0, 0, 0, 0])
        execution = wired_simulate(cfg, lambda v, d: EchoProtocol(d, 1, rounds=3))
        assert execution.total_messages() == 4 * 2 * 3  # n · deg · rounds
        assert execution.rounds_elapsed == 3

    def test_wrong_message_count_rejected(self):
        class Bad(EchoProtocol):
            def send(self, r):
                return [1]  # wrong width on any node with degree != 1

        cfg = path_configuration([0, 0, 0])
        with pytest.raises(WiredProtocolViolation):
            wired_simulate(cfg, lambda v, d: Bad(d, 1))

    def test_timeout(self):
        class Forever(EchoProtocol):
            def done(self):
                return False

        cfg = path_configuration([0, 0])
        with pytest.raises(WiredTimeout):
            wired_simulate(cfg, lambda v, d: Forever(d, 1), max_rounds=5)

    def test_empty_network_rejected(self):
        class NoNodes:
            nodes = ()

            def neighbors(self, v):
                return ()

        with pytest.raises(ValueError):
            WiredSimulator(NoNodes(), lambda v, d: EchoProtocol(d, 1))


class TestViewExchange:
    def test_interner_is_structural(self):
        interner = ViewInterner()
        a = interner.intern((0, 2), ())
        b = interner.intern((0, 2), ())
        c = interner.intern((1, 2), ())
        assert a == b != c
        assert len(interner) == 2

    def test_depth_zero_equals_root_partition(self):
        cfg = path_configuration([0, 0, 0])
        result = wired_elect(cfg, horizon=0)
        # endpoints share (tag 0, deg 1); centre is (tag 0, deg 2)
        assert result.view_partition() == [[0, 2], [1]]

    def test_symmetric_nodes_share_final_views(self):
        cfg = path_configuration([0, 1, 0])
        result = wired_elect(cfg)
        assert result.view_ids[0] == result.view_ids[2]
        assert result.view_ids[0] != result.view_ids[1]

    def test_negative_horizon_rejected(self):
        interner = ViewInterner()
        with pytest.raises(ValueError):
            ViewExchangeProtocol((0, 1), 1, -1, interner)

    def test_output_shape(self):
        cfg = path_configuration([0, 0])
        result = wired_elect(cfg, horizon=2)
        for out in result.execution.outputs.values():
            assert isinstance(out, ViewState)
            assert out.horizon == 2


class TestElection:
    def test_exhaustive_agreement_with_refinement(self):
        for cfg in enumerate_configurations(4, 1):
            assert wired_election_agrees_with_views(cfg)

    @pytest.mark.parametrize("seed", range(5))
    def test_random_agreement(self, seed):
        n = 9
        edges = random_connected_gnp_edges(n, 0.3, seed)
        tags = uniform_random(range(n), 2, seed + 77)
        cfg = build(edges, tags, n=n)
        assert wired_election_agrees_with_views(cfg)

    def test_all_zero_broom_elects_distributedly(self):
        """Radio-infeasible (equal tags) but wired-electable: the degree
        asymmetry suffices, fully distributed."""
        broom = Configuration(
            [(0, 1), (1, 2), (1, 3), (3, 4)], {i: 0 for i in range(5)}
        )
        result = wired_elect(broom)
        assert result.elected
        assert wired_feasible(broom)

    def test_vertex_transitive_equal_tags_fails(self):
        cfg = cycle_configuration([0, 0, 0, 0])
        result = wired_elect(cfg)
        assert not result.elected
        assert result.leaders == []

    def test_paper_families(self):
        # Radio-feasible families are wired-electable too (dominance).
        for cfg in (h_m(2), g_m(2), line_configuration([0, 1, 0])):
            assert wired_elect(cfg).elected
        # S_m is radio-infeasible but its tag asymmetry still gives the
        # wired model a unique view? S_m = a,b,c,d tags m,0,0,m: mirror
        # symmetry maps a<->d, b<->c, so no unique view — infeasible in
        # both models.
        assert not wired_elect(s_m(2)).elected

    def test_leader_choice_deterministic(self):
        cfg = g_m(2)
        a = wired_elect(cfg)
        b = wired_elect(cfg)
        assert a.leader == b.leader
        assert a.view_ids == b.view_ids

    def test_rounds_equal_horizon(self):
        cfg = complete_configuration([0, 1, 2])
        result = wired_elect(cfg)
        assert result.rounds == result.horizon == cfg.n

    def test_star_centre_unique_at_equal_tags(self):
        cfg = star_configuration([0, 0, 0, 0])
        result = wired_elect(cfg)
        assert result.elected
        assert result.leader == 0  # the hub's degree makes it unique
