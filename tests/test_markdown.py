"""Tests for markdown reporting (repro.reporting.markdown)."""

import pytest

from repro.reporting.markdown import (
    MarkdownDoc,
    md_check,
    md_checklist,
    md_kv,
    md_section,
    md_table,
)


class TestTable:
    def test_basic_shape(self):
        text = md_table([(1, "a"), (2, "b")], headers=("x", "name"))
        lines = text.splitlines()
        assert lines[0] == "| x | name |"
        assert lines[1] == "| --- | --- |"
        assert lines[2] == "| 1 | a |"
        assert len(lines) == 4

    def test_floats_compact(self):
        text = md_table([(0.123456789,)], headers=("v",))
        assert "0.1235" in text

    def test_pipe_escaped(self):
        text = md_table([("a|b",)], headers=("v",))
        assert "a\\|b" in text

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError, match="width"):
            md_table([(1, 2, 3)], headers=("a", "b"))

    def test_empty_rows_ok(self):
        text = md_table([], headers=("a",))
        assert text.count("\n") == 1


class TestBlocks:
    def test_section_level(self):
        assert md_section("T", "body").startswith("## T")
        assert md_section("T", level=3).startswith("### T")
        with pytest.raises(ValueError):
            md_section("T", level=0)

    def test_section_skips_empty_blocks(self):
        assert md_section("T", "", "x") == "## T\n\nx"

    def test_kv(self):
        out = md_kv([("n", 4), ("sigma", 1)])
        assert "- **n**: 4" in out and "- **sigma**: 1" in out

    def test_check_marks(self):
        assert md_check("ok", True).startswith("- ✅")
        assert md_check("bad", False).startswith("- ❌")

    def test_checklist(self):
        out = md_checklist([("a", True), ("b", False)])
        assert out.count("\n") == 1


class TestDoc:
    def test_render_roundtrip(self, tmp_path):
        doc = MarkdownDoc("Title", preamble="intro")
        doc.section("S1", "content", level=2)
        doc.add("tail")
        text = doc.render()
        assert text.startswith("# Title\n\nintro")
        assert "## S1" in text and text.endswith("tail\n")
        path = tmp_path / "doc.md"
        doc.write(path)
        assert path.read_text(encoding="utf-8") == text

    def test_chaining(self):
        doc = MarkdownDoc("T").section("A").section("B")
        assert isinstance(doc, MarkdownDoc)
        assert "## A" in doc.render() and "## B" in doc.render()
