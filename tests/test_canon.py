"""Tests for the refinement-based canonical labeling (repro.canon).

The contract under test, in order of load-bearing-ness:

1. **Oracle agreement** — ``canonize``'s form is bit-for-bit the
   brute-force minimum on exhaustive small-n enumerations (the E21
   benchmark extends this sweep to n <= 7).
2. **Invariance** — the form (and the certificate) is unchanged by
   random node relabelings and uniform tag shifts (property-tested).
3. **Completeness of the automorphism story** — discovered generators
   are genuine tag-preserving automorphisms and generate the full
   group; orbits/fixed nodes/rigidity derived from them match the
   VF2-enumeration ground truth.
4. **Dedupe equivalence** — collapsing by canonical keys equals
   pairwise ``are_isomorphic`` dedupe.
"""

import pytest

from repro.analysis.automorphisms import (
    automorphism_generators,
    automorphism_orbits,
    fixed_nodes,
    is_rigid,
    tag_preserving_automorphisms,
)
from repro.analysis.isomorphism import (
    are_isomorphic,
    canonical_form,
    dedupe,
    find_isomorphism,
)
from repro.canon import (
    canonize,
    certificate,
    certificate_key,
    equitable_partition,
    may_be_isomorphic,
)
from repro.core.configuration import Configuration, line_configuration
from repro.graphs.enumeration import enumerate_configurations
from repro.graphs.families import g_m, h_m, s_m
from repro.graphs.generators import cycle_configuration, star_configuration
from repro.testing import SMALL_SWEEP_GRID, random_relabel

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    from repro.testing import configurations

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is an install extra
    HAVE_HYPOTHESIS = False


# ----------------------------------------------------------------------
# 1. oracle agreement
# ----------------------------------------------------------------------
class TestOracleAgreement:
    @pytest.mark.parametrize("n,max_tag", SMALL_SWEEP_GRID)
    def test_exhaustive_agreement(self, n, max_tag):
        """Bit-for-bit equality with the brute-force oracle on every
        enumerated configuration (shape representatives x all tag
        vectors) — the shared :data:`repro.testing.SMALL_SWEEP_GRID`."""
        for cfg in enumerate_configurations(n, max_tag):
            assert canonical_form(cfg, strategy="refinement") == canonical_form(
                cfg, strategy="bruteforce"
            )

    def test_agreement_on_paper_families(self):
        for cfg in (g_m(2), h_m(3), s_m(2), line_configuration([0, 2, 1, 0])):
            assert canonical_form(cfg) == canonical_form(cfg, strategy="bruteforce")

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            canonical_form(line_configuration([0, 1]), strategy="magic")

    def test_form_shape(self):
        n, tagvec, edges = canonical_form(line_configuration([1, 2, 1]))
        assert n == 3
        assert tagvec == (0, 0, 1)  # normalized tags, profile-sorted slots
        assert all(0 <= u < v < n for u, v in edges)


# ----------------------------------------------------------------------
# 2. invariance
# ----------------------------------------------------------------------
class TestInvariance:
    def test_invariant_under_random_relabelings(self):
        for i, cfg in enumerate(
            [h_m(2), g_m(2), cycle_configuration([0, 1, 0, 1]), star_configuration([0, 0, 1, 0])]
        ):
            reference = canonical_form(cfg)
            cert = certificate(cfg)
            for seed in range(5):
                iso = random_relabel(cfg, 31 * i + seed)
                assert canonical_form(iso) == reference
                assert certificate(iso) == cert

    def test_invariant_under_tag_shift(self):
        cfg = line_configuration([1, 3, 2, 1])
        shifted = cfg.shift_tags(4)
        assert canonical_form(cfg) == canonical_form(shifted)
        assert certificate(cfg) == certificate(shifted)
        assert certificate_key(cfg) == certificate_key(shifted)

    if HAVE_HYPOTHESIS:

        @settings(max_examples=60, deadline=None)
        @given(configurations(max_n=8, max_span=3), st.integers(0, 2**16), st.integers(0, 5))
        def test_property_relabel_and_shift_invariance(self, cfg, seed, delta):
            """canonical_form is constant on the isomorphism-and-shift
            class of any random configuration."""
            iso = random_relabel(cfg, seed).shift_tags(delta)
            assert canonical_form(iso) == canonical_form(cfg)
            assert are_isomorphic(cfg, random_relabel(cfg, seed))

        @settings(max_examples=40, deadline=None)
        @given(configurations(max_n=7, max_span=2))
        def test_property_agreement_with_bruteforce(self, cfg):
            assert canonical_form(cfg, strategy="refinement") == canonical_form(
                cfg, strategy="bruteforce"
            )


# ----------------------------------------------------------------------
# 3. automorphisms from the search
# ----------------------------------------------------------------------
def close_group(cfg, generators):
    """Materialize the group generated by ``generators`` (small n only)."""
    nodes = tuple(cfg.nodes)
    ident = {v: v for v in nodes}
    seen = {tuple(nodes)}
    frontier = [ident]
    while frontier:
        phi = frontier.pop()
        for g in generators:
            comp = {v: g[phi[v]] for v in nodes}
            key = tuple(comp[v] for v in nodes)
            if key not in seen:
                seen.add(key)
                frontier.append(comp)
    return seen


class TestAutomorphisms:
    def test_generators_are_automorphisms(self):
        for cfg in (g_m(2), s_m(2), cycle_configuration([0, 0, 0, 0])):
            for g in automorphism_generators(cfg):
                for v in cfg.nodes:
                    assert cfg.tag(g[v]) == cfg.tag(v)
                for u, v in cfg.edges:
                    assert g[v] in cfg.neighbors(g[u])

    def test_generators_generate_the_full_group(self):
        """Group order from the discovered generators equals the VF2
        enumeration count — the completeness the orbit consumers rely
        on — across an exhaustive small sweep."""
        for cfg in enumerate_configurations(4, 1):
            vf2 = sum(1 for _ in tag_preserving_automorphisms(cfg))
            gens = automorphism_generators(cfg)
            assert len(close_group(cfg, gens)) == vf2

    def test_orbits_match_vf2_ground_truth(self):
        for cfg in enumerate_configurations(4, 1):
            parent = {v: v for v in cfg.nodes}

            def find(v):
                while parent[v] != v:
                    parent[v] = parent[parent[v]]
                    v = parent[v]
                return v

            for phi in tag_preserving_automorphisms(cfg):
                for u, w in phi.items():
                    ru, rw = find(u), find(w)
                    if ru != rw:
                        parent[ru] = rw
            expected = {}
            for v in cfg.nodes:
                expected.setdefault(find(v), []).append(v)
            assert automorphism_orbits(cfg) == sorted(
                sorted(o) for o in expected.values()
            )

    def test_fixed_nodes_and_rigidity(self):
        assert fixed_nodes(s_m(2)) == []
        assert fixed_nodes(h_m(2)) == [0, 1, 2, 3]
        assert is_rigid(h_m(2))
        assert not is_rigid(s_m(2))
        assert fixed_nodes(g_m(2)) == [4]  # only the centre b_{m+1}

    def test_orbits_refine_equitable_partition(self):
        """Every automorphism orbit sits inside one 1-WL cell (1-WL
        colors are automorphism-invariant)."""
        for cfg in (g_m(2), s_m(3), cycle_configuration([0, 1, 0, 1])):
            cells = [set(c) for c in equitable_partition(cfg)]
            for orbit in automorphism_orbits(cfg):
                assert any(set(orbit) <= cell for cell in cells)


# ----------------------------------------------------------------------
# 4. certificates, prefilter, dedupe
# ----------------------------------------------------------------------
class TestCertificateAndDedupe:
    def test_certificate_separates_wl_distinguishable(self):
        a = line_configuration([0, 1, 0, 2])
        b = line_configuration([2, 1, 0, 0])  # same profile multiset
        assert not may_be_isomorphic(a, b)
        assert certificate_key(a) != certificate_key(b)

    def test_certificate_refines_one_round_signature(self):
        """The 1-WL certificate is a strict refinement of the legacy
        one-round ``_signature``: equal certificates imply equal
        signatures on an exhaustive sweep, and the converse fails —
        two uniform-tag tadpole graphs with identical degree sequences
        (hence identical one-round signatures) are separated only by
        iterated refinement."""
        from repro.analysis.isomorphism import _signature

        configs = list(enumerate_configurations(4, 1))
        for i, a in enumerate(configs):
            for b in configs[i + 1:]:
                if certificate(a) == certificate(b):
                    assert _signature(a) == _signature(b)
        tags = {i: 0 for i in range(6)}
        triangle_tail = Configuration(
            [(0, 1), (0, 2), (1, 2), (0, 3), (3, 4), (4, 5)], tags
        )
        square_tail = Configuration(
            [(0, 1), (1, 2), (2, 3), (0, 3), (0, 4), (4, 5)], tags
        )
        assert _signature(triangle_tail) == _signature(square_tail)
        assert certificate(triangle_tail) != certificate(square_tail)

    def test_prefilter_never_rejects_isomorphs(self):
        for cfg in enumerate_configurations(4, 1):
            assert may_be_isomorphic(cfg, random_relabel(cfg, 11))

    def test_are_isomorphic_matches_canonical_equality_exhaustively(self):
        configs = list(enumerate_configurations(4, 1))
        keys = [canonical_form(c) for c in configs]
        for i in range(0, len(configs), 5):
            for j in range(0, len(configs), 9):
                assert are_isomorphic(configs[i], configs[j]) == (
                    keys[i] == keys[j]
                )

    def test_find_isomorphism_returns_witness(self):
        cfg = g_m(2)
        iso = random_relabel(cfg, 5)
        phi = find_isomorphism(cfg, iso)
        assert phi is not None
        for v in cfg.nodes:
            assert iso.tag(phi[v]) == cfg.tag(v)
        for u, v in cfg.edges:
            assert phi[v] in iso.neighbors(phi[u])
        assert find_isomorphism(cfg, s_m(2)) is None

    def test_dedupe_matches_pairwise_isomorphism_dedupe(self):
        configs = [
            random_relabel(cfg, seed)
            for cfg in enumerate_configurations(4, 1)
            for seed in (0, 1)
        ]
        by_keys = dedupe(configs)
        pairwise = []
        for cfg in configs:
            if not any(are_isomorphic(cfg, rep) for rep in pairwise):
                pairwise.append(cfg)
        assert len(by_keys) == len(pairwise)
        assert [canonical_form(c) for c in by_keys] == [
            canonical_form(c) for c in pairwise
        ]

    def test_dedupe_strategies_agree(self):
        configs = list(enumerate_configurations(3, 2))
        assert dedupe(configs) == dedupe(configs, strategy="bruteforce")


# ----------------------------------------------------------------------
# the ceiling is gone
# ----------------------------------------------------------------------
class TestBeyondTheOldCeiling:
    def test_large_n_isomorphs_collapse(self):
        """n = 14 — untouchable for the brute force on uniform-ish tags
        — canonizes, collapses relabelings, and finds the symmetry."""
        cfg = g_m(3).shift_tags(1)  # n = 13, un-normalized on purpose
        iso = random_relabel(cfg, 9)
        assert canonical_form(cfg) == canonical_form(iso)
        lab = canonize(cfg)
        assert lab.n == 13
        assert not lab.is_rigid  # the mirror symmetry survives at scale

    def test_memo_is_transparent(self):
        cfg = line_configuration([0, 1, 2, 0, 1])
        assert canonize(cfg).form == canonize(cfg, use_memo=False).form
