"""Property tests for the end-to-end election pipeline (Theorem 3.15 and
Lemma 3.9 on random configurations)."""

from hypothesis import HealthCheck, given, settings

from conftest import configurations

from repro.core.classifier import classify
from repro.core.election import elect_leader
from repro.core.partition import partition_key

relaxed = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@relaxed
@given(configurations(max_n=7, max_span=3))
def test_election_matches_feasibility(cfg):
    result = elect_leader(cfg)  # check=True re-verifies internally
    trace = result.trace
    if trace.feasible:
        assert result.elected
        assert result.leader == trace.leader
    else:
        assert result.leaders == []


@relaxed
@given(configurations(max_n=7, max_span=3))
def test_round_bound(cfg):
    result = elect_leader(cfg)
    assert result.within_bound()
    # exact schedule: done_v == r_P + 1
    assert result.rounds == result.protocol.expected_done


@relaxed
@given(configurations(max_n=6, max_span=2))
def test_lemma_3_9_history_partition_equivalence(cfg):
    result = elect_leader(cfg)
    trace = result.trace
    ends = result.protocol.data.phase_ends
    for j in range(1, trace.num_iterations + 2):
        if j - 1 >= len(ends):
            break
        sim = tuple(tuple(g) for g in result.execution.prefix_partition(ends[j - 1]))
        cls = partition_key(trace.classes_at(j))
        assert sim == cls, f"phase boundary j={j}"


@relaxed
@given(configurations(max_n=6, max_span=2))
def test_all_wakeups_spontaneous(cfg):
    # Lemma 3.6: the canonical DRIP is patient.
    result = elect_leader(cfg)
    assert result.execution.all_spontaneous()
    trace = result.trace
    for v in trace.config.nodes:
        assert result.execution.wake_rounds[v] == trace.config.tag(v)


@relaxed
@given(configurations(max_n=6, max_span=2))
def test_unique_history_iff_feasible(cfg):
    result = elect_leader(cfg)
    unique = result.execution.unique_history_nodes()
    assert bool(unique) == result.trace.feasible
    if result.trace.feasible:
        assert result.leader in unique
