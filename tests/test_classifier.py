"""Unit tests for the faithful Classifier (Algorithms 1–4)."""

import math

import pytest

from repro.core.classifier import chosen_leader, classifier_ops, classify, is_feasible
from repro.core.configuration import Configuration, line_configuration
from repro.core.trace import NO, YES
from repro.graphs.families import g_m, h_m, s_m


class TestKnownDecisions:
    def test_single_node_feasible(self):
        trace = classify(Configuration([], {0: 0}))
        assert trace.decision == YES
        assert trace.leader == 0

    def test_symmetric_pair_infeasible(self):
        assert not is_feasible(Configuration([(0, 1)], {0: 0, 1: 0}))

    def test_asymmetric_pair_feasible(self):
        trace = classify(Configuration([(0, 1)], {0: 0, 1: 1}))
        assert trace.feasible

    def test_all_same_tags_infeasible_beyond_one_node(self):
        # Section 1.1: if all nodes wake together no message is ever heard.
        for n in (2, 3, 5):
            cfg = line_configuration([0] * n)
            assert not is_feasible(cfg), f"path of {n} zero-tag nodes"

    def test_middle_node_isolated_on_0_1_0(self):
        trace = classify(line_configuration([0, 1, 0]))
        assert trace.feasible
        assert trace.leader == 1

    def test_h_m_feasible_all_nodes_singletons(self):
        # Lemma 4.2: every node lands in its own class after iteration 1.
        for m in (1, 2, 5, 10):
            trace = classify(h_m(m))
            assert trace.feasible
            assert trace.decided_at == 1
            assert trace.num_classes_at(2) == 4

    def test_s_m_infeasible(self):
        # Proposition 4.5: mirror-symmetric, two 2-element classes.
        for m in (1, 2, 5, 10):
            trace = classify(s_m(m))
            assert trace.decision == NO
            final = trace.final_classes()
            from repro.core.partition import class_members

            sizes = sorted(len(v) for v in class_members(final).values())
            assert sizes == [2, 2]

    def test_g_m_feasible_center_leader(self):
        # Proposition 4.1: G_m feasible, centre b_{m+1} isolated.
        from repro.graphs.families import g_m_center

        for m in (2, 3, 4):
            trace = classify(g_m(m))
            assert trace.feasible
            assert trace.leader == g_m_center(m)

    def test_g_m_needs_about_m_iterations(self):
        # the refinement peels one layer per iteration from the ends
        for m in (2, 3, 4, 5):
            trace = classify(g_m(m))
            assert trace.decided_at >= m

    def test_cycle_with_rotational_symmetry_infeasible(self):
        cfg = Configuration(
            [(0, 1), (1, 2), (2, 3), (3, 0)], {0: 0, 1: 1, 2: 0, 3: 1}
        )
        assert not is_feasible(cfg)

    def test_tag_shift_invariance(self):
        cfg = line_configuration([0, 1, 0, 2])
        shifted = cfg.shift_tags(5)
        assert classify(cfg).decision == classify(shifted).decision
        assert classify(cfg).leader == classify(shifted).leader


class TestTraceStructure:
    def test_iteration_bound(self):
        # Lemma 3.4: at most ceil(n/2) iterations.
        for cfg in (h_m(3), s_m(3), g_m(3), line_configuration([0, 1, 2, 0, 1])):
            trace = classify(cfg)
            assert trace.num_iterations <= math.ceil(cfg.n / 2)

    def test_class_counts_strictly_increase_until_decision(self):
        # Corollary 3.3 + the exit conditions.
        trace = classify(g_m(3))
        chain = trace.class_count_chain()
        for a, b in zip(chain, chain[1:-1]):
            assert a < b or trace.decision == NO

    def test_no_decision_means_stable_final_counts(self):
        trace = classify(s_m(2))
        chain = trace.class_count_chain()
        assert chain[-1] == chain[-2]

    def test_initial_partition_is_one_class(self):
        trace = classify(h_m(1))
        assert set(trace.initial_classes.values()) == {1}
        assert trace.num_classes_at(1) == 1

    def test_classes_at_bounds(self):
        trace = classify(h_m(1))
        with pytest.raises(IndexError):
            trace.classes_at(0)
        with pytest.raises(IndexError):
            trace.classes_at(trace.num_iterations + 2)
        with pytest.raises(IndexError):
            trace.labels_at(1)

    def test_reps_belong_to_their_class(self):
        trace = classify(g_m(2))
        for j in range(1, trace.num_iterations + 2):
            classes = trace.classes_at(j)
            reps = trace.reps_at(j)
            for k in range(1, trace.num_classes_at(j) + 1):
                assert classes[reps[k]] == k

    def test_observation_3_2_separation_is_permanent(self):
        # once two nodes are in different classes, they never rejoin.
        trace = classify(g_m(3))
        n_iters = trace.num_iterations
        nodes = trace.config.nodes
        for j in range(1, n_iters + 1):
            before = trace.classes_at(j)
            after = trace.classes_at(j + 1)
            for v in nodes:
                for w in nodes:
                    if before[v] != before[w]:
                        assert after[v] != after[w]

    def test_normalization_applied(self):
        trace = classify(line_configuration([3, 4]))
        assert trace.config.min_tag == 0
        assert trace.sigma == 1

    def test_leader_none_when_infeasible(self):
        trace = classify(s_m(1))
        assert trace.leader is None
        assert trace.leader_class is None
        assert chosen_leader(s_m(1)) is None

    def test_describe_renders(self):
        text = classify(h_m(1)).describe()
        assert "Yes" in text and "partition_1" in text


class TestOpCounting:
    def test_ops_positive_and_scaling(self):
        small = classifier_ops(line_configuration([0, 1, 0, 1]))
        big = classifier_ops(line_configuration([0, 1, 0, 1] * 4))
        assert 0 < small < big

    def test_ops_zero_when_unmetered(self):
        assert classify(h_m(1)).total_ops == 0
