"""Unit tests for tag strategies."""

import pytest

from repro.graphs.tags import (
    all_tag_vectors,
    all_zero,
    blocks,
    distinct_tags,
    mirrored_line_tags,
    one_early_riser,
    uniform_random,
)


class TestStrategies:
    def test_all_zero(self):
        assert all_zero([2, 0, 1]) == {0: 0, 1: 0, 2: 0}

    def test_distinct(self):
        assert distinct_tags([5, 3, 9]) == {3: 0, 5: 1, 9: 2}

    def test_uniform_random_in_range_and_deterministic(self):
        t1 = uniform_random(range(20), 3, seed=42)
        t2 = uniform_random(range(20), 3, seed=42)
        assert t1 == t2
        assert all(0 <= v <= 3 for v in t1.values())
        assert uniform_random(range(20), 3, seed=43) != t1

    def test_uniform_random_validates_span(self):
        with pytest.raises(ValueError):
            uniform_random([0], -1, 0)

    def test_one_early_riser(self):
        tags = one_early_riser([0, 1, 2], late=2)
        assert tags == {0: 0, 1: 2, 2: 2}
        with pytest.raises(ValueError):
            one_early_riser([0, 1], late=0)

    def test_blocks(self):
        tags = blocks([0, 1, 2, 3, 4], [2, 3])
        assert tags == {0: 0, 1: 0, 2: 1, 3: 1, 4: 1}
        with pytest.raises(ValueError):
            blocks([0, 1], [3])

    def test_mirrored_line(self):
        assert mirrored_line_tags([0, 1], [9]) == [0, 1, 9, 1, 0]
        assert mirrored_line_tags([], [5]) == [5]


class TestAllTagVectors:
    def test_counts(self):
        # vectors in {0,1}^2 with min 0: 00, 01, 10 -> 3
        assert len(list(all_tag_vectors(2, 1))) == 3
        # {0..2}^2 minus those without a 0: 9 - 4 = 5
        assert len(list(all_tag_vectors(2, 2))) == 5

    def test_all_have_min_zero(self):
        for vec in all_tag_vectors(3, 2):
            assert min(vec) == 0

    def test_n_one(self):
        assert list(all_tag_vectors(1, 3)) == [(0,)]

    def test_validation(self):
        with pytest.raises(ValueError):
            list(all_tag_vectors(0, 1))
        with pytest.raises(ValueError):
            list(all_tag_vectors(1, -1))

    def test_no_duplicates(self):
        vecs = list(all_tag_vectors(3, 1))
        assert len(vecs) == len(set(vecs))
