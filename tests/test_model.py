"""Unit tests for the radio model primitives."""

import pickle

import pytest

from repro.radio.model import (
    COLLISION,
    LISTEN,
    SILENCE,
    TERMINATE,
    Message,
    Transmit,
    entry_symbol,
    is_transmit,
)


class TestSentinels:
    def test_sentinels_are_distinct(self):
        values = {id(SILENCE), id(COLLISION), id(LISTEN), id(TERMINATE)}
        assert len(values) == 4

    def test_repr(self):
        assert repr(SILENCE) == "SILENCE"
        assert repr(COLLISION) == "COLLISION"
        assert repr(LISTEN) == "LISTEN"
        assert repr(TERMINATE) == "TERMINATE"

    def test_pickle_preserves_identity(self):
        for s in (SILENCE, COLLISION, LISTEN, TERMINATE):
            assert pickle.loads(pickle.dumps(s)) is s

    def test_sentinel_not_equal_to_message(self):
        assert SILENCE != Message("1")
        assert COLLISION != Message("1")


class TestMessage:
    def test_equality_by_payload(self):
        assert Message("1") == Message("1")
        assert Message("1") != Message("2")
        assert Message(1) != Message("1")

    def test_hash_consistent_with_eq(self):
        assert hash(Message("x")) == hash(Message("x"))
        assert len({Message("a"), Message("a"), Message("b")}) == 2

    def test_not_equal_to_other_types(self):
        assert Message("1") != "1"
        assert (Message("1") == object()) is False

    def test_repr_contains_payload(self):
        assert "abc" in repr(Message("abc"))


class TestTransmit:
    def test_default_message_is_one(self):
        assert Transmit().message == "1"

    def test_equality(self):
        assert Transmit("m") == Transmit("m")
        assert Transmit("m") != Transmit("n")

    def test_is_transmit(self):
        assert is_transmit(Transmit("x"))
        assert not is_transmit(LISTEN)
        assert not is_transmit(TERMINATE)

    def test_hashable(self):
        assert len({Transmit("a"), Transmit("a")}) == 1


class TestEntrySymbol:
    def test_symbols(self):
        assert entry_symbol(SILENCE) == "."
        assert entry_symbol(COLLISION) == "*"
        assert entry_symbol(Message("7")) == "<7>"

    def test_rejects_non_entries(self):
        with pytest.raises(TypeError):
            entry_symbol("not an entry")
