"""Integration: the paper's headline claims, executed end to end.

Each test corresponds to a numbered result of the paper; together they
are the "does the reproduction reproduce" suite (experiments E3–E7 in
miniature — the benchmarks run the full sweeps).
"""

import math

from repro.baselines.universal_candidates import (
    candidate_portfolio,
    compare_executions,
    defeat,
    first_tag0_transmission,
)
from repro.core.classifier import classify
from repro.core.election import elect_leader
from repro.graphs.families import g_m, g_m_center, g_m_size, h_m, s_m


class TestTheorem315:
    """Feasible => dedicated O(n²σ) election via the canonical DRIP."""

    def test_election_on_families(self):
        for cfg in (h_m(1), h_m(5), g_m(2), g_m(3)):
            result = elect_leader(cfg)
            assert result.elected
            assert result.within_bound()

    def test_election_time_explicit_budget(self):
        # done_v = sum over phases of numClasses_j (2σ+1) + σ, plus 1;
        # with phases <= ceil(n/2) and numClasses <= n (Lemma 3.10).
        for cfg in (h_m(3), g_m(2)):
            r = elect_leader(cfg)
            n, sigma = cfg.n, cfg.span
            lemma_3_10 = math.ceil(n / 2) * (n * (2 * sigma + 1) + sigma) + 1
            assert r.rounds <= lemma_3_10


class TestProposition41:
    """G_m (span 1) needs Ω(n) rounds; the proof's m-1 round floor."""

    def test_election_rounds_grow_linearly_in_m(self):
        rounds = {m: elect_leader(g_m(m)).rounds for m in (2, 4, 6)}
        # Ω(n): canonical election takes >= m-1 rounds (symmetry radius)
        for m, r in rounds.items():
            assert r >= m - 1
        # and grows with m
        assert rounds[2] < rounds[4] < rounds[6]

    def test_classifier_needs_m_iterations(self):
        # the partition refines outward one layer per iteration
        for m in (2, 3, 5):
            assert classify(g_m(m)).decided_at >= m

    def test_center_is_unique_leader(self):
        for m in (2, 4):
            assert elect_leader(g_m(m)).leader == g_m_center(m)

    def test_span_is_one_but_n_grows(self):
        for m in (2, 5):
            cfg = g_m(m)
            assert cfg.span == 1
            assert cfg.n == g_m_size(m)


class TestLemma42Proposition43:
    """H_m is feasible; election needs >= m rounds (Ω(σ), n fixed at 4)."""

    def test_feasibility_and_round_floor(self):
        for m in (1, 2, 4, 8, 16):
            result = elect_leader(h_m(m))
            assert result.elected
            assert result.rounds >= m, f"H_{m}: {result.rounds} < {m}"

    def test_rounds_grow_with_sigma_at_fixed_n(self):
        rounds = [elect_leader(h_m(m)).rounds for m in (1, 4, 16)]
        assert rounds[0] < rounds[1] < rounds[2]


class TestProposition44:
    """No universal algorithm for 4-node feasible configurations."""

    def test_adversary_defeats_every_candidate(self):
        for cand in candidate_portfolio():
            report = defeat(cand, probe_m=48)
            assert report.defeated, report.describe()

    def test_defeat_mechanism_matches_proof(self):
        # the killer's symmetry witnesses hold whenever it doesn't crash
        for cand in candidate_portfolio():
            report = defeat(cand, probe_m=48)
            if not report.crashed:
                assert report.bc_histories_equal
                assert report.ad_histories_equal


class TestProposition45:
    """No distributed feasibility decision: H_{t+1} ~ S_{t+1}."""

    def test_feasibility_statuses_differ(self):
        for m in (1, 3, 7):
            assert classify(h_m(m)).feasible
            assert not classify(s_m(m)).feasible

    def test_indistinguishability(self):
        for cand in candidate_portfolio():
            t = first_tag0_transmission(cand, probe_m=48)
            if t is None:
                continue
            per_node = compare_executions(h_m(t + 1), s_m(t + 1), cand)
            assert all(per_node.values()), (cand.name, per_node)


class TestLemma34Corollary33:
    """Classifier terminates within ⌈n/2⌉ iterations; counts monotone."""

    def test_iteration_cap(self):
        for cfg in (g_m(4), h_m(3), s_m(3)):
            trace = classify(cfg)
            assert trace.num_iterations <= math.ceil(cfg.n / 2)

    def test_class_count_monotone(self):
        for cfg in (g_m(3), s_m(2)):
            chain = classify(cfg).class_count_chain()
            assert all(a <= b for a, b in zip(chain, chain[1:]))
            assert chain[0] == 1
            assert chain[-1] <= cfg.n
