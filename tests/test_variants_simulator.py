"""Tests for the channel-parameterized simulator (repro.variants.simulator)."""

import pytest

from repro.core.configuration import Configuration, line_configuration
from repro.radio.history import History
from repro.radio.model import (
    COLLISION,
    LISTEN,
    SILENCE,
    TERMINATE,
    Message,
    Transmit,
)
from repro.radio.protocol import AlwaysListenDRIP, ScheduleDRIP, anonymous_factory
from repro.radio.simulator import simulate
from repro.variants.channels import BEEP, BEEP_ENTRY, CD, NO_CD
from repro.variants.simulator import variant_simulate


def beacon_factory(round_=1, horizon=3):
    """Everyone transmits once at local round ``round_``."""
    return anonymous_factory(
        lambda: ScheduleDRIP({round_: "1"}, done_round=horizon)
    )


class TestCDReferenceEquivalence:
    """channel=CD must reproduce the reference simulator exactly."""

    def test_beacon_on_path(self):
        cfg = line_configuration([0, 1, 0])
        ref = simulate(cfg, beacon_factory())
        var = variant_simulate(cfg, beacon_factory(), channel=CD)
        assert ref.histories == var.histories
        assert ref.wake_rounds == var.wake_rounds
        assert ref.wake_kinds == var.wake_kinds
        assert ref.done_local == var.done_local

    def test_canonical_execution_on_family(self):
        from repro.core.canonical import CanonicalProtocol
        from repro.core.classifier import classify
        from repro.graphs.families import g_m

        trace = classify(g_m(2))
        protocol = CanonicalProtocol.from_trace(trace)
        network = trace.config
        budget = protocol.round_budget(network.span)
        ref = simulate(network, protocol.factory, max_rounds=budget)
        var = variant_simulate(
            network, protocol.factory, channel=CD, max_rounds=budget
        )
        assert ref.histories == var.histories


class TestNoCDSemantics:
    def test_collision_heard_as_silence(self):
        # Star centre 0 with two leaves transmitting together at local
        # round 1; all tags 0 so both leaves collide at the centre.
        cfg = Configuration([(0, 1), (0, 2)], {0: 0, 1: 0, 2: 0})

        def factory(v):
            if v == 0:
                return AlwaysListenDRIP(3)
            return ScheduleDRIP({1: "x"}, done_round=3)

        ref = simulate(cfg, factory)
        var = variant_simulate(cfg, factory, channel=NO_CD)
        assert ref.histories[0][1] is COLLISION
        assert var.histories[0][1] is SILENCE

    def test_single_transmission_still_received(self):
        cfg = line_configuration([0, 0])

        def factory(v):
            if v == 0:
                return ScheduleDRIP({1: "hello"}, done_round=3)
            return AlwaysListenDRIP(3)

        var = variant_simulate(cfg, factory, channel=NO_CD)
        assert var.histories[1][1] == Message("hello")

    def test_collision_does_not_wake(self):
        # Node 3 (tag 9) adjacent to both transmitters: under CD noise
        # does not wake it either, but here even the entry is silence.
        cfg = Configuration(
            [(0, 3), (1, 3), (0, 1)], {0: 0, 1: 0, 3: 9}
        )
        factory = beacon_factory(round_=1, horizon=3)
        var = variant_simulate(cfg, factory, channel=NO_CD)
        assert var.wake_rounds[3] == 9  # spontaneous, at its tag
        assert var.wake_kinds[3] == "spontaneous"


class TestBeepSemantics:
    def test_beep_replaces_message(self):
        cfg = line_configuration([0, 0])

        def factory(v):
            if v == 0:
                return ScheduleDRIP({1: "payload"}, done_round=3)
            return AlwaysListenDRIP(3)

        var = variant_simulate(cfg, factory, channel=BEEP)
        assert var.histories[1][1] is BEEP_ENTRY

    def test_collision_is_one_beep(self):
        cfg = Configuration([(0, 1), (0, 2)], {0: 0, 1: 0, 2: 0})

        def factory(v):
            if v == 0:
                return AlwaysListenDRIP(3)
            return ScheduleDRIP({1: "x"}, done_round=3)

        var = variant_simulate(cfg, factory, channel=BEEP)
        assert var.histories[0][1] is BEEP_ENTRY

    def test_beep_wakes_sleeping_node_even_on_collision(self):
        cfg = Configuration([(0, 2), (1, 2)], {0: 0, 1: 0, 2: 9})
        factory = beacon_factory(round_=1, horizon=3)
        var = variant_simulate(cfg, factory, channel=BEEP)
        assert var.wake_rounds[2] == 1  # forced by the (colliding) beeps
        assert var.wake_kinds[2] == "forced"
        assert var.histories[2][0] is BEEP_ENTRY

    def test_transmitter_hears_nothing(self):
        cfg = line_configuration([0, 0])
        factory = beacon_factory(round_=1, horizon=3)
        var = variant_simulate(cfg, factory, channel=BEEP)
        # both transmit simultaneously; each hears nothing
        assert var.histories[0][1] is SILENCE
        assert var.histories[1][1] is SILENCE


class TestErrors:
    def test_negative_tag_rejected(self):
        class FakeNet:
            nodes = (0,)

            def neighbors(self, v):
                return ()

            def tag(self, v):
                return -1

        with pytest.raises(ValueError, match="negative"):
            variant_simulate(FakeNet(), lambda v: AlwaysListenDRIP(1))

    def test_timeout(self):
        from repro.radio.simulator import SimulationTimeout

        cfg = line_configuration([0, 0])
        with pytest.raises(SimulationTimeout):
            variant_simulate(
                cfg,
                anonymous_factory(lambda: AlwaysListenDRIP(10_000)),
                max_rounds=10,
            )

    def test_protocol_violation(self):
        from repro.radio.simulator import ProtocolViolation

        class BadDRIP:
            def decide(self, history):
                return "transmit please"

        cfg = line_configuration([0, 0])
        with pytest.raises(ProtocolViolation):
            variant_simulate(cfg, lambda v: BadDRIP())
