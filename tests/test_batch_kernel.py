"""The batch kernel's contract: bit-for-bit serial equality, per instance.

``repro.core.batch`` packs whole populations into flat numpy arrays and
refines every instance in lockstep; its promise is that no caller can
tell — each instance's :class:`~repro.core.trace.ClassifierTrace` equals
the serial classifiers' exactly (enforced here through the shared
differential harness), errors surface per instance exactly as serial
classification raises them, and every wired entry point (dispatcher,
engine, census, service) produces identical results under
``algorithm="batch"``/``"auto"`` and under the numpy-less fallback.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from conftest import (
    SMALL_SWEEP_GRID,
    assert_trace_equal,
    configurations,
    diverse_configurations,
    random_config_batch,
    random_relabel,
    sweep_configurations,
)

import repro.core.batch as batch_mod
from repro.core.batch import (
    BatchOutcome,
    ConfigurationBatch,
    batch_census_records,
    batch_classify,
    batch_outcomes,
    resolve_batch_algorithm,
)
from repro.core.classifier import (
    ClassifierInvariantError,
    classify,
    reference_classify,
)
from repro.core.compiled import compiled_classify
from repro.core.configuration import (
    Configuration,
    ConfigurationError,
    line_configuration,
)
from repro.graphs.families import g_m, s_m

pytestmark = pytest.mark.skipif(
    not batch_mod.HAVE_NUMPY, reason="numpy not installed"
)

relaxed = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# ----------------------------------------------------------------------
# per-instance agreement on random mixed batches
# ----------------------------------------------------------------------
@relaxed
@given(st.lists(configurations(max_n=8, max_span=3), max_size=12))
def test_batch_agrees_per_instance_on_mixed_batches(cfgs):
    """Every instance of a random mixed-size batch classifies exactly as
    the serial implementations classify it alone."""
    traces = batch_classify(cfgs)
    assert len(traces) == len(cfgs)
    for i, (cfg, trace) in enumerate(zip(cfgs, traces)):
        assert_trace_equal(trace, reference_classify(cfg), context=f"instance {i}")
        assert_trace_equal(trace, compiled_classify(cfg), context=f"instance {i}")


@relaxed
@given(st.lists(diverse_configurations(max_n=7, max_span=3), max_size=8))
def test_batch_agrees_on_diverse_batches(cfgs):
    """Shifted tags and string node names pack and classify transparently,
    even mixed with plain instances in one batch."""
    for i, trace in enumerate(batch_classify(cfgs)):
        assert_trace_equal(trace, reference_classify(cfgs[i]), context=f"instance {i}")


def test_exhaustive_small_n_sweep_in_one_giant_batch():
    """Every configuration of the shared small-n grid, packed into ONE
    mixed batch: each instance's trace is bit-for-bit the reference's."""
    cfgs = list(sweep_configurations(SMALL_SWEEP_GRID))
    assert len(cfgs) > 100  # the sweep must actually sweep
    for cfg, trace in zip(cfgs, batch_classify(cfgs)):
        assert_trace_equal(trace, reference_classify(cfg), context=repr(cfg))


# ----------------------------------------------------------------------
# ragged edge cases
# ----------------------------------------------------------------------
def test_empty_batch():
    assert batch_classify([]) == []
    assert batch_outcomes([]) == []
    assert batch_census_records([]) == []


def test_batch_of_one():
    cfg = line_configuration([0, 1, 0])
    (trace,) = batch_classify([cfg])
    assert_trace_equal(trace, reference_classify(cfg))


def test_all_duplicate_isomorph_batch():
    """A batch of one configuration's relabelings: every slot gets its
    own instance's answer (leaders under the instance's own names), not
    a shared canonical one."""
    base = g_m(2)
    cfgs = [base] + [random_relabel(base, seed) for seed in range(5)] + [base]
    for cfg, trace in zip(cfgs, batch_classify(cfgs)):
        assert_trace_equal(trace, reference_classify(cfg))


def test_divergent_convergence_counts_retire_correctly():
    """Instances deciding at wildly different iterations (1 vs ~m) in one
    batch: early finishers retire without disturbing the stragglers."""
    cfgs = [
        line_configuration([0]),       # YES at iteration 1
        g_m(8),                        # takes 8 iterations
        s_m(2),                        # infeasible, NO at iteration 2
        line_configuration([0, 1]),    # YES at iteration 1
        g_m(5),                        # takes 5 iterations
    ]
    traces = batch_classify(cfgs)
    assert [t.num_iterations for t in traces] == [1, 8, 2, 1, 5]
    for cfg, trace in zip(cfgs, traces):
        assert_trace_equal(trace, reference_classify(cfg))


# ----------------------------------------------------------------------
# error-path parity and isolation
# ----------------------------------------------------------------------
class _ExplodingConfig(Configuration):
    """Valid at construction; detonates at classification time."""

    def normalize(self):
        raise ConfigurationError("exploding instance")


def test_one_bad_instance_raises_exactly_what_serial_raises():
    bad = _ExplodingConfig([(0, 1)], {0: 0, 1: 1})
    with pytest.raises(ConfigurationError) as batch_err:
        batch_outcomes([line_configuration([0, 1]), bad])
    with pytest.raises(ConfigurationError) as serial_err:
        classify(bad, algorithm="compiled")
    assert str(batch_err.value) == str(serial_err.value)
    assert type(batch_err.value) is type(serial_err.value)


def test_bad_instance_does_not_poison_the_others():
    good = [line_configuration([0, 1, 0]), g_m(2), s_m(2)]
    bad = _ExplodingConfig([(0, 1)], {0: 0, 1: 1})
    outcomes = batch_outcomes(
        [good[0], bad, good[1], good[2]], traces=True, errors="return"
    )
    assert isinstance(outcomes[1], BatchOutcome)
    assert isinstance(outcomes[1].error, ConfigurationError)
    assert outcomes[1].trace is None
    healthy = [outcomes[0], outcomes[2], outcomes[3]]
    for cfg, out in zip(good, healthy):
        assert out.error is None
        assert_trace_equal(out.trace, reference_classify(cfg))


def test_kernel_invariant_errors_are_per_instance(monkeypatch):
    """Starved of iterations, the kernel reports the failure on each
    instance — same type and Lemma 3.4 message as serial — rather than
    one batch-level crash."""

    class ZeroCeil:
        @staticmethod
        def ceil(x):
            return 0

    monkeypatch.setattr(batch_mod, "math", ZeroCeil)
    cfgs = [line_configuration([0, 1, 0]), line_configuration([0, 1])]
    outcomes = batch_outcomes(cfgs, errors="return")
    for out in outcomes:
        assert isinstance(out.error, ClassifierInvariantError)
        assert "Lemma 3.4" in str(out.error)
    with pytest.raises(ClassifierInvariantError, match="Lemma 3.4"):
        batch_outcomes(cfgs)  # errors="raise" re-raises the first


def test_errors_knob_validated():
    with pytest.raises(ValueError, match="errors must be"):
        batch_outcomes([], errors="ignore")


# ----------------------------------------------------------------------
# dispatcher and fallback
# ----------------------------------------------------------------------
def test_classify_dispatches_to_batch():
    cfg = line_configuration([0, 2, 1]).shift_tags(3)
    assert_trace_equal(
        classify(cfg, algorithm="batch"), reference_classify(cfg)
    )


def test_batch_algorithm_refuses_op_metering():
    cfg = line_configuration([0, 1])
    with pytest.raises(ValueError, match="does not meter"):
        classify(cfg, algorithm="batch", count_ops=True)


def test_resolve_batch_algorithm():
    assert resolve_batch_algorithm("auto") == "batch"
    assert resolve_batch_algorithm("batch") == "batch"
    for name in ("compiled", "fast", "reference"):
        assert resolve_batch_algorithm(name) == name
    with pytest.raises(ValueError, match="unknown classifier algorithm"):
        resolve_batch_algorithm("quantum")


def test_auto_falls_back_to_compiled_without_numpy(monkeypatch):
    monkeypatch.setattr(batch_mod, "HAVE_NUMPY", False)
    assert resolve_batch_algorithm("auto") == "compiled"
    with pytest.raises(RuntimeError, match="requires numpy"):
        resolve_batch_algorithm("batch")
    with pytest.raises(RuntimeError, match="requires numpy"):
        batch_outcomes([line_configuration([0, 1])])


# ----------------------------------------------------------------------
# wired callers: engine, census, service
# ----------------------------------------------------------------------
def _freeze(result):
    return {
        k: (r.total, r.feasible, r.iterations_sum, r.rounds_sum)
        for k, r in result.rows.items()
    }


def test_census_records_match_engine_records():
    from repro.engine.pipeline import census_record

    cfgs = random_config_batch(40, base_seed=77)
    for measure_rounds in (False, True):
        batch = batch_census_records(cfgs, measure_rounds=measure_rounds)
        serial = [
            census_record(c, measure_rounds=measure_rounds) for c in cfgs
        ]
        assert batch == serial


def test_engine_batch_records_auto_equals_compiled(monkeypatch):
    from repro.engine.cache import ResultCache
    from repro.engine.pipeline import batch_records

    cfgs = random_config_batch(30, base_seed=55)
    vectorized = batch_records(cfgs, ResultCache(), algorithm="auto")
    serial = batch_records(cfgs, ResultCache(), algorithm="compiled")
    assert vectorized == serial
    # the numpy-less branch of "auto" must agree too
    monkeypatch.setattr(batch_mod, "HAVE_NUMPY", False)
    fallback = batch_records(cfgs, ResultCache(), algorithm="auto")
    assert fallback == serial


def test_analysis_census_auto_equals_serial(monkeypatch):
    from repro.analysis.census import census

    cfgs = random_config_batch(50, base_seed=33)
    auto = _freeze(census(cfgs, measure_rounds=True, batch_size=16))
    serial = _freeze(census(cfgs, measure_rounds=True, algorithm="reference"))
    assert auto == serial
    monkeypatch.setattr(batch_mod, "HAVE_NUMPY", False)
    fallback = _freeze(census(cfgs, measure_rounds=True))
    assert fallback == serial


def test_service_auto_routes_through_batch_kernel():
    from repro.service.batcher import BatchClassifier

    cfgs = random_config_batch(20, base_seed=11)
    service = BatchClassifier(algorithm="auto", batch_window=0.0)
    try:
        tickets = service.submit_many(cfgs)
        got = [t.result(timeout=30) for t in tickets]
    finally:
        service.close()
    serial = BatchClassifier(algorithm="compiled", batch_window=0.0)
    try:
        expected = [
            t.result(timeout=30) for t in serial.submit_many(cfgs)
        ]
    finally:
        serial.close()
    assert got == expected


# ----------------------------------------------------------------------
# the packed representation itself
# ----------------------------------------------------------------------
def test_configuration_batch_packing():
    a = Configuration([("x", "y")], {"x": 2, "y": 3})  # normalizes to 0, 1
    b = line_configuration([0, 1, 0])
    batch = ConfigurationBatch.from_configurations([a, b])
    assert batch.num_instances == 2
    assert batch.num_nodes == 5
    assert batch.node_offsets.tolist() == [0, 2, 5]
    assert batch.instance_of_node.tolist() == [0, 0, 1, 1, 1]
    assert batch.tags.tolist() == [0, 1, 0, 1, 0]  # a was normalized
    assert batch.sigma.tolist() == [1, 1]
    assert batch.adj_offsets.tolist() == [0, 1, 2, 3, 5, 6]
    # CSR targets are *global* node indices: b's node 0 is global node 2
    assert batch.adj_targets.tolist() == [1, 0, 3, 2, 4, 3]
    assert batch.edge_source.tolist() == [0, 1, 2, 3, 3, 4]
    # the per-instance configs are the normalized originals
    assert batch.configs[0] == a.normalize()
    assert batch.configs[1] == b
