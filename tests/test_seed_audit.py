"""Seed audit: every stochastic entry point is locally seeded.

Two properties per entry point: (1) the same seed yields the identical
result on repeated calls — no hidden state leaks between runs; (2) the
*global* ``random`` module RNG is never consumed or reseeded — every
entry point must thread its seed through a local ``random.Random``.
"""

import random

import pytest

from repro.adversary import (
    ReactiveJammer,
    random_budget_jammer,
    random_crash_sleep,
)
from repro.analysis.extremal import (
    feasibility_probability,
    hardest_tags,
    min_feasible_span,
)
from repro.campaigns import CampaignSpec, derive_trial, run_campaign
from repro.engine import RandomGnpWorkload, sharded_census
from repro.engine.workloads import make_random_config, seeded_config
from repro.graphs.generators import (
    random_connected_gnp_edges,
    random_tree_edges,
)
from repro.graphs.tags import uniform_random


@pytest.fixture
def global_rng_untouched():
    """Fail the test if it consumes or reseeds the global ``random``."""
    random.seed(987654321)
    marker = random.getstate()
    yield
    assert random.getstate() == marker, (
        "the entry point consumed the global random module RNG; thread "
        "an explicit random.Random(seed) through instead"
    )


class TestGenerators:
    def test_tree_edges_reproducible(self, global_rng_untouched):
        assert random_tree_edges(9, 4) == random_tree_edges(9, 4)

    def test_gnp_edges_reproducible(self, global_rng_untouched):
        a = random_connected_gnp_edges(10, 0.3, 7)
        assert a == random_connected_gnp_edges(10, 0.3, 7)
        assert a != random_connected_gnp_edges(10, 0.3, 8)

    def test_uniform_tags_reproducible(self, global_rng_untouched):
        a = uniform_random(range(8), 3, 5)
        assert a == uniform_random(range(8), 3, 5)

    def test_seeded_config_reproducible(self, global_rng_untouched):
        assert seeded_config(3, 6, 2) == seeded_config(3, 6, 2)

    def test_make_random_config_reproducible(self, global_rng_untouched):
        assert make_random_config(11) == make_random_config(11)


class TestAnalysis:
    def test_feasibility_probability_reproducible(self, global_rng_untouched):
        a = feasibility_probability(5, [0, 1, 2], samples=6, seed=2)
        b = feasibility_probability(5, [0, 1, 2], samples=6, seed=2)
        assert [(pt.span, pt.feasible) for pt in a] == [
            (pt.span, pt.feasible) for pt in b
        ]

    def test_hardest_tags_reproducible(self, global_rng_untouched):
        edges = [(0, 1), (1, 2), (2, 3), (3, 0)]
        a = hardest_tags(edges, 4, 2, restarts=2, steps=10, seed=9)
        b = hardest_tags(edges, 4, 2, restarts=2, steps=10, seed=9)
        assert a.config == b.config
        assert a.objective == b.objective
        assert a.trajectory == b.trajectory

    def test_min_feasible_span_deterministic(self, global_rng_untouched):
        edges = [(i, i + 1) for i in range(6)]  # n=7: randomized regime
        a = min_feasible_span(edges, 7, max_span=2, samples=40, seed=4)
        b = min_feasible_span(edges, 7, max_span=2, samples=40, seed=4)
        assert (a.span, a.witness, a.exhaustive) == (
            b.span,
            b.witness,
            b.exhaustive,
        )


class TestCensusAndCampaigns:
    def test_random_census_reproducible(self, global_rng_untouched):
        wl = RandomGnpWorkload([5, 6], span=2, p=0.3, samples=5, seed=13)
        a = sharded_census(wl)
        b = sharded_census(
            RandomGnpWorkload([5, 6], span=2, p=0.3, samples=5, seed=13)
        )
        assert a.result.rows == b.result.rows

    def test_campaign_trials_reproducible(self, global_rng_untouched):
        spec = CampaignSpec(
            name="audit",
            seed=5,
            trials=10,
            n_values=(4, 5),
            strategies=(
                {"strategy": "random_budget", "weight": 1.0, "budget": 2},
                {"strategy": "reactive", "weight": 1.0},
            ),
        )
        assert run_campaign(spec).results == run_campaign(spec).results
        for i in range(10):
            assert derive_trial(spec, i) == derive_trial(spec, i)


class TestAdversaries:
    def test_zoo_strategies_reproducible(self, global_rng_untouched):
        assert (
            random_budget_jammer(3, 2, 30).to_spec()
            == random_budget_jammer(3, 2, 30).to_spec()
        )
        assert (
            random_crash_sleep(3, [0, 1, 2], count=2, horizon=20).to_spec()
            == random_crash_sleep(3, [0, 1, 2], count=2, horizon=20).to_spec()
        )
        j = ReactiveJammer(3, probability=0.5, budget=2)
        j.observe(0, 2)
        j.reset()
