"""Unit tests for exhaustive small-configuration enumeration."""

import pytest

from repro.graphs.enumeration import (
    all_labeled_connected_graphs,
    connected_graphs,
    count_configurations,
    enumerate_configurations,
)


class TestConnectedGraphs:
    def test_known_counts(self):
        # numbers of connected graphs up to isomorphism: 1, 1, 2, 6, 21
        assert len(connected_graphs(1)) == 1
        assert len(connected_graphs(2)) == 1
        assert len(connected_graphs(3)) == 2
        assert len(connected_graphs(4)) == 6
        assert len(connected_graphs(5)) == 21

    def test_all_connected(self):
        import networkx as nx

        for edges in connected_graphs(4):
            g = nx.Graph()
            g.add_nodes_from(range(4))
            g.add_edges_from(edges)
            assert nx.is_connected(g)

    def test_bounds(self):
        with pytest.raises(ValueError):
            connected_graphs(0)
        with pytest.raises(ValueError):
            connected_graphs(8)


class TestLabeledGraphs:
    def test_known_counts(self):
        # labeled connected graphs: 1, 1, 4, 38 for n = 1..4
        assert len(all_labeled_connected_graphs(1)) == 1
        assert len(all_labeled_connected_graphs(2)) == 1
        assert len(all_labeled_connected_graphs(3)) == 4
        assert len(all_labeled_connected_graphs(4)) == 38

    def test_bounds(self):
        with pytest.raises(ValueError):
            all_labeled_connected_graphs(6)


class TestEnumerateConfigurations:
    def test_count_formula(self):
        # shapes(3) = 2; tag vectors in {0,1}^3 with min 0 = 7
        assert count_configurations(3, 1) == 2 * 7

    def test_all_valid(self):
        for cfg in enumerate_configurations(3, 1):
            assert cfg.n == 3
            assert cfg.min_tag == 0
            assert cfg.span <= 1

    def test_labeled_mode_larger(self):
        plain = count_configurations(3, 1)
        labeled = count_configurations(3, 1, labeled=True)
        assert labeled >= plain

    def test_single_node(self):
        cfgs = list(enumerate_configurations(1, 2))
        assert len(cfgs) == 1
        assert cfgs[0].n == 1
