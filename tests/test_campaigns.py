"""Tests for Monte Carlo robustness campaigns (repro.campaigns)."""

import json

import pytest

from repro.campaigns import (
    CampaignSpec,
    campaign_queue_worker,
    collect_campaign_queue,
    config_from_spec,
    config_spec,
    create_campaign_queue,
    derive_trial,
    distributed_campaign,
    execute_trial,
    read_bundle,
    replay_trial,
    run_campaign,
    run_trial,
    serial_trial_loop,
    write_bundle,
)
from repro.engine import QueueError, RandomGnpWorkload, create_census_queue
from repro.graphs.families import h_m

MIXED = (
    {"strategy": "none", "weight": 1.0},
    {"strategy": "random_budget", "weight": 1.0, "budget": 2},
    {"strategy": "phase_targeting", "weight": 1.0, "phase": 1, "hits": 1},
    {"strategy": "reactive", "weight": 1.0, "probability": 0.5, "budget": 1},
    {"strategy": "crash_sleep", "weight": 1.0, "count": 1},
)


def small_spec(**overrides):
    base = dict(
        name="t",
        seed=20260808,
        trials=24,
        n_values=(4, 5),
        span=2,
        strategies=MIXED,
    )
    base.update(overrides)
    return CampaignSpec(**base)


class TestSpec:
    def test_roundtrip(self):
        spec = small_spec()
        assert CampaignSpec.from_dict(spec.as_dict()) == spec
        assert (
            CampaignSpec.from_dict(json.loads(json.dumps(spec.as_dict())))
            == spec
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            small_spec(trials=0)
        with pytest.raises(ValueError):
            small_spec(n_values=())
        with pytest.raises(ValueError):
            small_spec(strategies=({"strategy": "martian", "weight": 1},))
        with pytest.raises(ValueError):
            small_spec(strategies=({"strategy": "none", "weight": 0},))

    def test_derive_trial_is_deterministic(self):
        spec = small_spec()
        for i in (0, 7, 23):
            a = derive_trial(spec, i)
            b = derive_trial(spec, i)
            assert a.seed == b.seed == spec.trial_seed(i)
            assert a.config == b.config
            assert a.strategy == b.strategy
        with pytest.raises(IndexError):
            derive_trial(spec, 24)

    def test_mix_draw_covers_all_strategies(self):
        spec = small_spec(trials=100)
        drawn = {
            derive_trial(spec, i).strategy["strategy"] for i in range(100)
        }
        assert drawn == {s["strategy"] for s in MIXED}


class TestConfigSpec:
    def test_roundtrip(self):
        cfg = h_m(3).normalize()
        assert config_from_spec(config_spec(cfg)) == cfg
        assert (
            config_from_spec(json.loads(json.dumps(config_spec(cfg)))) == cfg
        )

    def test_rejects_unstable_labels(self):
        cfg = h_m(2).relabel({v: (v,) for v in h_m(2).nodes})
        with pytest.raises(TypeError):
            config_spec(cfg)


class TestRunners:
    def test_run_campaign_equals_serial_loop(self):
        spec = small_spec()
        assert run_campaign(spec).results == serial_trial_loop(spec)

    def test_distributed_equals_in_process(self, tmp_path):
        spec = small_spec()
        run = distributed_campaign(
            spec, str(tmp_path / "q.sqlite"), num_workers=2
        )
        assert run.results == run_campaign(spec).results
        assert run.metrics == run_campaign(spec).metrics

    def test_trial_fault_isolation(self):
        """A pathological trial degrades to a recorded failure record,
        never an exception out of run_trial."""
        spec = small_spec(trials=60, strategies=MIXED)
        results = run_campaign(spec).results
        assert len(results) == 60
        assert all("outcome" in r and "digest" in r for r in results)

    def test_timeout_outcome_is_recorded(self):
        """A starved round budget lands in the 'timeout' bucket with a
        digest built from the deterministic diagnostics."""
        cfg = h_m(2)
        record = execute_trial(cfg, None, max_rounds=1, backend="reference")
        assert record["outcome"] == "timeout"
        assert record["digest"]
        assert record["leaders"] == []

    def test_metrics_shape(self):
        run = run_campaign(small_spec())
        metrics = run.metrics
        assert set(metrics) >= {
            "outcomes",
            "survival_rate",
            "boundary",
            "witnesses",
        }
        assert sum(metrics["outcomes"].values()) == 24
        for row in metrics["boundary"]:
            assert row["survived"] <= row["feasible"] <= row["trials"]
        assert run.describe()


class TestBundles:
    def test_write_read_replay(self, tmp_path):
        spec = small_spec()
        run = run_campaign(spec)
        manifest_path = run.write_bundle(str(tmp_path / "bundle"))
        manifest = read_bundle(manifest_path)
        assert manifest["campaign"] == spec.as_dict()
        assert manifest["trials"] == spec.trials
        for record in manifest["results"]:
            report = replay_trial(manifest, record["index"])
            assert report.match, report.describe()

    def test_replay_detects_tampering(self, tmp_path):
        spec = small_spec(trials=4)
        run = run_campaign(spec)
        results = [dict(r) for r in run.results]
        results[0]["digest"] = "0" * 64
        write_bundle(str(tmp_path / "b"), spec, results)
        manifest = read_bundle(str(tmp_path / "b"))
        assert not replay_trial(manifest, 0).match
        assert replay_trial(manifest, 1).match

    def test_unknown_index_and_format(self, tmp_path):
        spec = small_spec(trials=2)
        run = run_campaign(spec)
        path = run.write_bundle(str(tmp_path / "b"))
        manifest = read_bundle(path)
        with pytest.raises(KeyError):
            replay_trial(manifest, 99)
        broken = dict(manifest)
        broken["format"] = 99
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(broken, fh)
        with pytest.raises(ValueError):
            read_bundle(path)


class TestQueue:
    def test_worker_rejects_foreign_queue(self, tmp_path):
        path = str(tmp_path / "census.sqlite")
        queue = create_census_queue(
            path,
            RandomGnpWorkload([4], span=2, p=0.3, samples=4, seed=1),
            num_shards=2,
        )
        queue.close()
        with pytest.raises(QueueError):
            campaign_queue_worker(path, wait=False)

    def test_create_is_idempotent_and_resumable(self, tmp_path):
        spec = small_spec()
        path = str(tmp_path / "q.sqlite")
        queue = create_campaign_queue(path, spec, num_shards=4)
        queue.close()
        # worker drains one shard, then a fresh coordinator resumes
        campaign_queue_worker(path, wait=False, max_shards=1)
        queue = create_campaign_queue(path, spec, num_shards=4)
        assert queue.counts()["done"] == 1
        queue.close()
        campaign_queue_worker(path, wait=False)
        run = collect_campaign_queue(path, wait=False)
        assert run.results == run_campaign(spec).results
