"""Batch classifier correctness: coalescing, determinism, backpressure.

The load-bearing property is the service's equality contract: whatever
the batch composition, cache warmth, arrival order, or concurrency, a
ticket's report is bit-for-bit what serial ``decide``/``elect`` produce
(:func:`repro.service.schema.serial_report`).
"""

import json
import threading
import time

import pytest

from repro.core.configuration import Configuration, ConfigurationError
from repro.engine import ResultCache, census_record
from repro.service import (
    BatchClassifier,
    ServiceClosedError,
    ServiceSaturatedError,
    ServiceUnresponsiveError,
    serial_report,
)

from conftest import random_config_batch


def relabel(cfg: Configuration, perm) -> Configuration:
    """Apply a node permutation (dict old -> new) to a configuration."""
    return Configuration(
        [(perm[u], perm[v]) for u, v in cfg.edges],
        {perm[v]: cfg.tag(v) for v in cfg.nodes},
    )


@pytest.fixture()
def svc():
    classifier = BatchClassifier(batch_window=0.001)
    yield classifier
    classifier.close()


class TestEquality:
    def test_reports_equal_serial_decide(self, svc):
        for cfg in random_config_batch(12, base_seed=41, n_hi=7):
            assert svc.submit(cfg).report() == serial_report(cfg, "decide")

    def test_reports_equal_serial_elect(self, svc):
        for cfg in random_config_batch(8, base_seed=42, n_hi=6):
            ticket = svc.submit(cfg, mode="elect")
            assert ticket.report() == serial_report(cfg, "elect")

    def test_warm_equals_cold(self, svc):
        """The same request answered cold, then warm, yields the same
        bytes — cache warmth is invisible in responses."""
        cfg = Configuration([(0, 1), (1, 2), (2, 3)], {0: 0, 1: 1, 2: 0, 3: 2})
        cold = svc.submit(cfg, mode="elect").report()
        warm = svc.submit(cfg, mode="elect").report()
        assert json.dumps(cold, sort_keys=True) == json.dumps(warm, sort_keys=True)
        assert svc.stats.fast_hits >= 1

    def test_decide_report_never_leaks_rounds(self, svc):
        """A cache warmed by an elect request still yields a rounds-free
        decide report — responses depend only on (config, mode)."""
        cfg = Configuration([(0, 1), (1, 2)], {0: 0, 1: 1, 2: 0})
        svc.submit(cfg, mode="elect").result()
        report = svc.submit(cfg, mode="decide").report()
        assert report == serial_report(cfg, "decide")
        assert "rounds" not in report


class TestCoalescing:
    def test_isomorphic_duplicates_classified_once(self, svc):
        cfg = Configuration([(0, 1), (1, 2), (1, 3)], {0: 0, 1: 1, 2: 0, 3: 2})
        iso = relabel(cfg, {0: 3, 1: 2, 2: 1, 3: 0})
        shifted = cfg.shift_tags(4)
        records = svc.classify_many([cfg, iso, shifted, cfg])
        assert len({json.dumps(r, sort_keys=True) for r in records}) == 1
        assert svc.stats.engine.classified == 1
        assert len(svc.cache) == 1

    def test_tickets_share_key_for_isomorphs(self, svc):
        cfg = Configuration([(0, 1), (1, 2)], {0: 0, 1: 1, 2: 0})
        iso = relabel(cfg, {0: 2, 1: 1, 2: 0})
        assert svc.submit(cfg).key == svc.submit(iso).key

    def test_concurrent_submitters_coalesce(self):
        """Threads hammering the same configuration produce exactly one
        classification; everyone gets the identical record."""
        cfg = Configuration([(0, 1), (1, 2), (2, 3)], {0: 0, 1: 2, 2: 0, 3: 1})
        reference = serial_report(cfg, "decide")
        results = []
        with BatchClassifier(batch_window=0.01) as svc:
            def worker():
                results.append(svc.submit(cfg).report())

            threads = [threading.Thread(target=worker) for _ in range(16)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert svc.stats.engine.classified == 1
        assert results == [reference] * 16


class TestBatchingAndBackpressure:
    def test_submit_all_then_gather_batches(self):
        """submit/gather over unique configs forms multi-item batches
        (the dispatcher drains the queue, not one item at a time)."""
        configs = random_config_batch(24, base_seed=50, n_hi=6)
        with BatchClassifier(batch_window=0.05, max_batch=64) as svc:
            tickets = [svc.submit(c) for c in configs]
            records = svc.gather(tickets)
            assert svc.stats.largest_batch > 1
        expected = [census_record(c.normalize()) for c in configs]
        assert records == expected

    def test_max_batch_bounds_batch_size(self):
        configs = random_config_batch(12, base_seed=51, n_hi=5)
        with BatchClassifier(max_batch=4, batch_window=0.05) as svc:
            svc.gather([svc.submit(c) for c in configs])
            assert svc.stats.largest_batch <= 4
            assert svc.stats.batches >= 3

    def test_bounded_queue_exerts_backpressure_without_loss(self):
        """With a 2-slot queue, hundreds of submits block-and-drain
        rather than erroring or dropping; every ticket still resolves
        to the right record."""
        configs = random_config_batch(60, base_seed=52, n_hi=5)
        with BatchClassifier(max_pending=2, max_batch=2, batch_window=0) as svc:
            tickets = [svc.submit(c) for c in configs]
            records = svc.gather(tickets)
        assert records == [census_record(c.normalize()) for c in configs]

    def test_zero_window_dispatches_immediately(self):
        cfg = Configuration([(0, 1)], {0: 0, 1: 1})
        with BatchClassifier(batch_window=0) as svc:
            assert svc.submit(cfg).result(timeout=5)["feasible"] is True

    def test_close_during_backpressured_submit_many_resolves_everything(self):
        """Regression: with a 1-slot queue, close() racing a large
        submit_many must not let the shutdown sentinel overtake the
        producer's pending puts — the producer finishes, every ticket
        resolves, and nothing deadlocks."""
        configs = random_config_batch(40, base_seed=54, n_hi=5)
        for _ in range(5):  # the race is timing-dependent; hammer it
            svc = BatchClassifier(max_pending=1, max_batch=2, batch_window=0)
            result = {}

            def producer():
                result["tickets"] = svc.submit_many(configs)

            thread = threading.Thread(target=producer)
            thread.start()
            time.sleep(0.005)  # let the producer suspend on the full queue
            svc.close()
            thread.join(timeout=20)
            assert not thread.is_alive(), "submit_many deadlocked against close()"
            records = [t.result(timeout=20) for t in result["tickets"]]
            assert records == [census_record(c.normalize()) for c in configs]

    def test_cross_mode_duplicate_in_one_batch_classifies_once(self):
        """An elect and a decide request for the same key in one batch
        cost one classification: the elect sub-batch runs first and its
        rounds-bearing record satisfies the decide lookup."""
        cfg = Configuration([(0, 1), (1, 2)], {0: 0, 1: 1, 2: 0})
        # a generous straggler window keeps both submits in one batch
        with BatchClassifier(batch_window=0.3) as svc:
            decide_t = svc.submit(cfg, mode="decide")
            elect_t = svc.submit(cfg, mode="elect")
            assert elect_t.report() == serial_report(cfg, "elect")
            assert decide_t.report() == serial_report(cfg, "decide")
            assert svc.stats.engine.classified == 1


class TestLifecycleAndErrors:
    def test_close_resolves_pending_then_rejects(self):
        configs = random_config_batch(6, base_seed=53, n_hi=5)
        svc = BatchClassifier(batch_window=0.05)
        tickets = [svc.submit(c) for c in configs]
        svc.close()
        for t, c in zip(tickets, configs):
            assert t.result(timeout=5) == census_record(c.normalize())
        with pytest.raises(ServiceClosedError):
            svc.submit(configs[0])
        svc.close()  # idempotent

    def test_bad_mode_rejected(self, svc):
        with pytest.raises(ValueError):
            svc.submit(Configuration([(0, 1)], {0: 0, 1: 1}), mode="vote")

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            BatchClassifier(max_batch=0)
        with pytest.raises(ValueError):
            BatchClassifier(max_pending=0)
        with pytest.raises(ValueError):
            BatchClassifier(batch_window=-1)

    def test_shared_cache_with_census_pipeline(self, tmp_path):
        """A JSONL cache written by the census pipeline pre-warms the
        service: a served request for a census-seen configuration
        classifies nothing."""
        from repro.engine import RandomGnpWorkload, sharded_census

        path = str(tmp_path / "shared.jsonl")
        workload = RandomGnpWorkload([6], span=2, p=0.3, samples=5, seed=9)
        sharded_census(workload, cache=ResultCache(path))

        with BatchClassifier(ResultCache(path)) as svc:
            record = svc.submit(next(iter(workload))).result(timeout=5)
            assert svc.stats.engine.classified == 0
            assert svc.stats.fast_hits == 1
        assert record == census_record(next(iter(workload)).normalize())

    def test_invalid_configuration_fails_at_submit(self, svc):
        """Malformed configurations never reach the queue — the
        Configuration constructor raises in the caller's thread."""
        with pytest.raises(ConfigurationError):
            svc.submit(Configuration([(0, 1), (2, 3)], {0: 0, 1: 1, 2: 0, 3: 1}))


class TestTimeoutDiagnostics:
    """Regression: pre-PR-6, submit/gather had no timeout path — a dead
    or wedged event loop blocked callers forever with no diagnosis."""

    def test_gather_timeout_is_diagnostic_not_opaque(self):
        """gather(timeout=) on a stalled dispatcher raises
        ServiceUnresponsiveError naming the ticket and the dispatcher
        state, instead of a bare TimeoutError (or blocking forever)."""
        cfg = Configuration([(0, 1)], {0: 0, 1: 1})
        svc = BatchClassifier(batch_window=30)  # dispatcher sits in its window
        try:
            ticket = svc.submit(cfg)
            started = time.monotonic()
            with pytest.raises(ServiceUnresponsiveError) as excinfo:
                svc.gather([ticket], timeout=0.2)
            assert time.monotonic() - started < 5
            message = str(excinfo.value)
            assert ticket.key in message and "alive=True" in message
        finally:
            svc.close()  # the sentinel cuts the window short; must not hang

    def test_submit_timeout_on_wedged_loop(self):
        """submit(timeout=) while the event loop is blocked raises a
        diagnostic error promptly instead of waiting out the wedge."""
        svc = BatchClassifier(batch_window=0.001)
        try:
            release = threading.Event()
            svc._loop.call_soon_threadsafe(release.wait, 2)  # wedge the loop
            cfg = Configuration([(0, 1)], {0: 0, 1: 1})
            started = time.monotonic()
            with pytest.raises(ServiceUnresponsiveError) as excinfo:
                svc.submit(cfg, timeout=0.2)
            assert time.monotonic() - started < 1.5
            assert "wedged" in str(excinfo.value)
            release.set()
        finally:
            svc.close()

    def test_dead_event_loop_is_diagnosed_immediately(self):
        """The pre-fix hang: an externally stopped event loop made
        submit block forever. Now a dead dispatcher thread is diagnosed
        at submit time — with or without a timeout."""
        svc = BatchClassifier(batch_window=0.001)
        svc._loop.call_soon_threadsafe(svc._loop.stop)
        svc._thread.join(timeout=5)
        assert not svc._thread.is_alive()
        cfg = Configuration([(0, 1)], {0: 0, 1: 1})
        started = time.monotonic()
        with pytest.raises(ServiceUnresponsiveError):
            svc.submit(cfg)  # no timeout — must still not hang
        with pytest.raises(ServiceUnresponsiveError):
            svc.submit_many([cfg], timeout=1)
        assert time.monotonic() - started < 5
        svc.close(timeout=1)  # close must not hang on the dead loop either

    def test_admission_control_is_atomic(self):
        """schedule_admit refuses an oversized cold batch without
        enqueuing anything, and the refusal is accounted."""
        configs = random_config_batch(9, base_seed=55, n_hi=5)
        with BatchClassifier(max_pending=2, batch_window=0.2) as svc:
            handle = svc.schedule_admit(configs)
            with pytest.raises(ServiceSaturatedError) as excinfo:
                handle.result(timeout=10)
            assert excinfo.value.needed >= excinfo.value.capacity
            assert svc.stats.rejected == len(configs)
            assert svc.stats.submitted == 0  # no partial admission
            # the queue is untouched: a normal submit classifies fine
            record = svc.submit(configs[0]).result(timeout=10)
            assert record == census_record(configs[0].normalize())

    def test_cancelled_tickets_free_their_slots(self):
        """A queued ticket cancelled before its batch fires is dropped
        by the dispatcher, not classified."""
        configs = random_config_batch(3, base_seed=56, n_hi=5)
        with BatchClassifier(batch_window=0.3) as svc:
            tickets = svc.submit_many(configs)
            assert tickets[0].cancel()
            records = svc.gather(tickets[1:], timeout=10)
            assert records == [
                census_record(c.normalize()) for c in configs[1:]
            ]
            assert svc.stats.cancelled >= 1
            assert svc.stats.engine.classified == len(configs) - 1
