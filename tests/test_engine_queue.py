"""Work-queue and scheduler correctness: lease lifecycle, retry caps,
yield-priority ranking, and distributed-census equality.

The load-bearing properties: (1) a shard can be owned by at most one
live lease, so no shard is double-classified; (2) a dead worker's lease
expires and the shard is retried, so a SIGKILL loses at most one
in-flight shard; (3) the merged distributed result is bit-for-bit equal
to the serial census regardless of worker count, scheduling order, or
mid-run failures.
"""

import os
import threading

import pytest

from repro.analysis.census import group_by_n
from repro.engine import (
    EnumerationWorkload,
    QueueError,
    RandomGnpWorkload,
    SequenceWorkload,
    ShardCandidate,
    WorkQueue,
    census_queue_worker,
    collect_census_queue,
    create_census_queue,
    expected_yield,
    observed_miss_rate,
    rank,
    sharded_census,
    workload_from_spec,
)
from repro.engine.scheduler import MIN_MISS_RATE

from conftest import random_config_batch


SHARDS = [(0, 0, 4, 10.0), (1, 4, 8, 20.0), (2, 8, 10, 5.0)]
META = {"queue": "test", "fingerprint": "abc"}


def make_queue(tmp_path, *, lease_ttl=30.0, max_attempts=3, shards=None):
    path = str(tmp_path / "queue.sqlite")
    return WorkQueue.create(
        path,
        shards if shards is not None else SHARDS,
        dict(META),
        lease_ttl=lease_ttl,
        max_attempts=max_attempts,
        now=1000.0,
    )


# ----------------------------------------------------------------------
# lease lifecycle
# ----------------------------------------------------------------------
def test_lease_marks_shard_leased_and_cost_orders(tmp_path):
    q = make_queue(tmp_path)
    lease = q.lease("w1", now=1000.0)
    # cold queue: the highest-cost shard (index 1, cost 20) leases first
    assert lease.index == 1
    assert lease.attempt == 1
    counts = q.counts()
    assert counts["leased"] == 1 and counts["pending"] == 2


def test_heartbeat_extends_and_expiry_reclaims(tmp_path):
    q = make_queue(tmp_path, lease_ttl=10.0)
    lease = q.lease("w1", now=1000.0)
    assert lease.expires == pytest.approx(1010.0)
    # a heartbeat pushes the deadline; the lease survives past the
    # original expiry
    assert q.heartbeat(lease, now=1009.0)
    other = q.lease("w2", now=1012.0)
    assert other is None or other.index != lease.index
    # without further heartbeats the lease expires and the next lease
    # call reclaims and re-leases the shard to the new owner
    retry = q.lease("w2", now=1030.0)
    assert retry.index == lease.index
    assert retry.owner == "w2"
    assert retry.attempt == 2
    assert q.counts()["reclaimed"] >= 1
    # the original owner lost the lease: heartbeat and commit both fail
    assert not q.heartbeat(lease, now=1031.0)
    assert not q.commit(lease, [], now=1031.0)


def test_stale_commit_rejected_retry_commit_wins(tmp_path):
    q = make_queue(tmp_path, lease_ttl=5.0)
    stale = q.lease("w1", now=1000.0)
    retry = q.lease("w2", now=1010.0)  # reclaim + re-lease
    assert retry.index == stale.index
    assert not q.commit(stale, [{"marker": "stale"}], now=1011.0)
    assert q.commit(retry, [{"marker": "retry"}], now=1012.0)
    results = {idx: rows for idx, rows, _ in q.results()}
    assert results[retry.index] == [{"marker": "retry"}]
    # committing an already-done shard is a no-op (idempotent merge)
    assert not q.commit(retry, [{"marker": "again"}], now=1013.0)
    results = {idx: rows for idx, rows, _ in q.results()}
    assert results[retry.index] == [{"marker": "retry"}]


def test_double_lease_exclusion_under_racing_workers(tmp_path):
    """Two workers hammering the same queue never co-own a shard."""
    q = make_queue(tmp_path, shards=[(i, i, i + 1, 1.0) for i in range(20)])
    path = q.path
    q.close()
    grabbed = {"w1": [], "w2": []}
    barrier = threading.Barrier(2)

    def drain(owner):
        mine = WorkQueue(path)
        barrier.wait()
        while True:
            lease = mine.lease(owner)
            if lease is None:
                break
            grabbed[owner].append(lease.index)
            mine.commit(lease, [])
        mine.close()

    threads = [
        threading.Thread(target=drain, args=(o,)) for o in ("w1", "w2")
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    all_indices = grabbed["w1"] + grabbed["w2"]
    assert len(all_indices) == len(set(all_indices)) == 20
    with WorkQueue(path) as check:
        assert check.finished()
        assert check.counts()["done"] == 20


def test_retry_cap_marks_poison_shard_failed_without_stalling(tmp_path):
    q = make_queue(tmp_path, max_attempts=2)
    first = q.lease("w", now=1000.0)
    assert q.fail(first, "boom", now=1001.0)
    assert q.counts()["failed"] == 0  # attempt 1 < cap: back to pending
    second = q.lease("w", now=1002.0)
    while second.index != first.index:  # drain until the retry comes up
        q.commit(second, [])
        second = q.lease("w", now=1002.0)
    assert second.attempt == 2
    assert q.fail(second, "boom", now=1003.0)
    counts = q.counts()
    assert counts["failed"] == 1  # attempt 2 == cap: poison, permanent
    # the poison shard does not stall the rest of the run
    while (lease := q.lease("w", now=1004.0)) is not None:
        q.commit(lease, [])
    assert q.finished()
    assert [idx for idx, _ in q.failures()] == [first.index]
    errors = dict(q.failures())
    assert "boom" in errors[first.index]


def test_requeue_resets_leased_and_optionally_failed(tmp_path):
    q = make_queue(tmp_path, max_attempts=1)
    lease = q.lease("w", now=1000.0)
    failed = q.lease("w", now=1000.0)
    q.fail(failed, "poison", now=1001.0)
    assert q.requeue() == 1  # only the live lease
    assert q.counts()["failed"] == 1
    assert q.requeue(include_failed=True) == 1
    counts = q.counts()
    assert counts["failed"] == 0 and counts["pending"] == 3
    # requeued shards carry a fresh attempt budget
    again = q.lease("w", now=1002.0)
    assert again.attempt == 1


# ----------------------------------------------------------------------
# durability / restart
# ----------------------------------------------------------------------
def test_coordinator_restart_resumes_half_finished_queue(tmp_path):
    path = str(tmp_path / "resume.sqlite")
    q = WorkQueue.create(path, SHARDS, dict(META), now=1000.0)
    done = q.lease("w", now=1000.0)
    q.commit(done, [{"x": 1}], now=1001.0)
    q.close()
    # same meta: create() resumes the existing queue without re-enqueue
    q2 = WorkQueue.create(path, SHARDS, dict(META), now=2000.0)
    counts = q2.counts()
    assert counts["done"] == 1 and counts["pending"] == 2
    assert {idx for idx, _, _ in q2.results()} == {done.index}
    q2.close()
    # different meta: refuse to silently mix two runs in one file
    with pytest.raises(QueueError, match="different run"):
        WorkQueue.create(path, SHARDS, {**META, "fingerprint": "other"})


def test_open_missing_or_foreign_file_raises(tmp_path):
    with pytest.raises(QueueError, match="create one first"):
        WorkQueue(str(tmp_path / "absent.sqlite"))


# ----------------------------------------------------------------------
# scheduler policy
# ----------------------------------------------------------------------
def test_rank_orders_by_expected_yield_cold():
    candidates = [
        ShardCandidate(index=0, cost=1.0, enqueued_at=0.0),
        ShardCandidate(index=1, cost=100.0, enqueued_at=0.0),
        ShardCandidate(index=2, cost=10.0, enqueued_at=0.0),
    ]
    order = [c.index for c in rank(candidates, now=0.0, miss_rate=1.0)]
    assert order == [1, 2, 0]


def test_rank_ties_break_on_index():
    candidates = [
        ShardCandidate(index=i, cost=5.0, enqueued_at=0.0) for i in (3, 1, 2)
    ]
    order = [c.index for c in rank(candidates, now=0.0)]
    assert order == [1, 2, 3]


def test_aging_starved_shard_eventually_outranks():
    """After the aging horizon, a starved cheap shard beats a fresh
    expensive one — starvation-freedom."""
    starved = ShardCandidate(index=0, cost=1.0, enqueued_at=0.0)
    fresh = ShardCandidate(index=1, cost=1000.0, enqueued_at=400.0)
    order = [
        c.index
        for c in rank([starved, fresh], now=401.0, aging_horizon=300.0)
    ]
    assert order == [0, 1]


def test_warm_queue_converges_to_oldest_first():
    """As the miss rate falls, age dominates cost: warm ≈ FIFO."""
    old_cheap = ShardCandidate(index=0, cost=1.0, enqueued_at=0.0)
    new_costly = ShardCandidate(index=1, cost=50.0, enqueued_at=100.0)
    warm = [
        c.index
        for c in rank(
            [old_cheap, new_costly],
            now=200.0,
            miss_rate=MIN_MISS_RATE,
            aging_horizon=300.0,
        )
    ]
    assert warm == [0, 1]
    cold = [
        c.index
        for c in rank(
            [old_cheap, new_costly],
            now=200.0,
            miss_rate=1.0,
            aging_horizon=300.0,
        )
    ]
    assert cold == [1, 0]


def test_rank_rejects_bad_horizon_and_empty_pool():
    assert rank([], now=0.0) == []
    with pytest.raises(ValueError):
        rank([ShardCandidate(0, 1.0, 0.0)], now=0.0, aging_horizon=0.0)


def test_expected_yield_floor_and_observed_miss_rate():
    assert expected_yield(100.0, 0.0) == pytest.approx(100.0 * MIN_MISS_RATE)
    assert observed_miss_rate([]) is None
    assert observed_miss_rate([{"classified": 0, "cache_hits": 0}]) is None
    assert observed_miss_rate(
        [
            {"classified": 3, "cache_hits": 1, "deduped": 0},
            {"classified": 1, "cache_hits": 2, "deduped": 1},
        ]
    ) == pytest.approx(4 / 8)
    # malformed stats entries are skipped, not fatal
    assert observed_miss_rate(
        [{"classified": "x"}, {"classified": 2, "cache_hits": 2}]
    ) == pytest.approx(0.5)


# ----------------------------------------------------------------------
# workload specs (worker-side reconstruction)
# ----------------------------------------------------------------------
def test_workload_spec_roundtrip_gnp_and_enum():
    gnp = RandomGnpWorkload([5, 6], span=2, p=0.3, samples=4, seed=7)
    again = workload_from_spec(gnp.to_spec())
    assert [c.edges for c in again.generate(0, len(gnp))] == [
        c.edges for c in gnp.generate(0, len(gnp))
    ]
    enum = EnumerationWorkload(4, max_tag=1)
    again = workload_from_spec(enum.to_spec())
    assert len(again) == len(enum)
    assert again.estimate_cost(0, 3) == enum.estimate_cost(0, 3)


def test_workload_spec_roundtrip_sequence():
    seq = SequenceWorkload(random_config_batch(3, base_seed=11))
    again = workload_from_spec(seq.to_spec())
    assert [(c.edges, dict(c.tags)) for c in again.generate(0, 3)] == [
        (c.edges, dict(c.tags)) for c in seq.generate(0, 3)
    ]


def test_workload_from_spec_unknown_kind():
    with pytest.raises(KeyError, match="gnp"):
        workload_from_spec({"kind": "nope"})


def test_gnp_estimate_cost_tracks_n_cubed():
    wl = RandomGnpWorkload([4, 8], span=2, p=0.3, samples=2, seed=1)
    # items 0-1 are n=4, items 2-3 are n=8: cost ratio is (8/4)^3
    assert wl.estimate_cost(2, 4) == pytest.approx(8 * wl.estimate_cost(0, 2))


# ----------------------------------------------------------------------
# distributed census end-to-end (in-process worker)
# ----------------------------------------------------------------------
def test_census_queue_worker_matches_serial(tmp_path):
    wl = RandomGnpWorkload([5, 6], span=2, p=0.3, samples=6, seed=3)
    serial = sharded_census(wl, group_by=group_by_n)
    path = str(tmp_path / "census.sqlite")
    q = create_census_queue(path, wl, num_shards=5, group_by=group_by_n)
    q.close()
    stats = census_queue_worker(path, wait=False)
    assert stats.shards_total == 5
    run = collect_census_queue(path, wait=False)
    assert run.result.rows == serial.result.rows
    assert run.stats.total_configs == serial.stats.total_configs
    assert run.stats.classified == serial.stats.classified


def test_collect_strict_raises_on_failed_shards(tmp_path):
    q = make_queue(tmp_path, max_attempts=1)
    lease = q.lease("w", now=1000.0)
    q.fail(lease, "poison", now=1001.0)
    while (nxt := q.lease("w", now=1002.0)) is not None:
        q.commit(nxt, [])
    with pytest.raises(QueueError, match="poison"):
        collect_census_queue(q, wait=False, strict=True)
    run = collect_census_queue(q, wait=False, strict=False)
    assert run.stats.shards_total == 3
    q.close()


def test_collect_timeout(tmp_path):
    q = make_queue(tmp_path)
    with pytest.raises(QueueError, match="not finished"):
        collect_census_queue(q, wait=True, poll=0.01, timeout=0.05)
    q.close()


# ----------------------------------------------------------------------
# observability parity
# ----------------------------------------------------------------------
def test_queue_gauges_prometheus_parity(tmp_path):
    """The queue's registry gauges render to Prometheus text bit-for-bit
    consistent with ``obs.snapshot()`` and with the queue's own
    ``counts()`` — one source of truth, three views."""
    from repro import obs
    from repro.service.metrics import parse_prometheus_text

    q = make_queue(tmp_path)
    lease = q.lease("w", now=1000.0)
    q.commit(lease, [{"g": 1}], now=1001.0)
    q.lease("w", now=1002.0)  # leave one shard leased
    counts = q.counts()
    snap = obs.snapshot()
    parsed = parse_prometheus_text(obs.registry.render_prometheus())
    for state in ("pending", "leased", "done", "failed"):
        assert (
            parsed[f"repro_obs_queue_{state}"]
            == snap["gauges"][f"queue.{state}"]
            == counts[state]
        )
    # lease traffic counters flow through the same registry
    assert parsed["repro_obs_queue_leases_total"] == snap["counters"][
        "queue.leases"
    ]
    q.close()


def test_queue_events_emitted_when_tracing(tmp_path):
    from repro import obs

    obs.enable()
    try:
        q = make_queue(tmp_path, lease_ttl=5.0)
        q.lease("w1", now=1000.0)
        q.lease("w2", now=2000.0)  # reclaims the expired lease first
        events = [e for e in obs.STATE.tracer.events if e.get("kind") == "event"]
        names = [e["name"] for e in events]
        assert "shard.leased" in names
        assert "shard.reclaimed" in names
        q.close()
    finally:
        obs.disable()


def test_create_census_queue_is_idempotent(tmp_path):
    wl = RandomGnpWorkload([5], span=2, p=0.3, samples=4, seed=1)
    path = str(tmp_path / "c.sqlite")
    q = create_census_queue(path, wl, num_shards=2)
    lease = q.lease("w")
    q.commit(lease, [])
    q.close()
    # identical run resumes; the committed shard stays committed
    q2 = create_census_queue(path, wl, num_shards=2)
    assert q2.counts()["done"] == 1
    q2.close()
    # a different workload at the same path is refused
    other = RandomGnpWorkload([6], span=2, p=0.3, samples=4, seed=1)
    with pytest.raises(QueueError, match="different run"):
        create_census_queue(path, other, num_shards=2)
