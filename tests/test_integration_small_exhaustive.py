"""Integration: exhaustive cross-validation on small configurations (E1).

Every connected graph shape on up to 4 nodes (all 5-node shapes with
span 1), crossed with every normalized tag vector, is pushed through the
full validation stack: faithful vs fast classifier, distributed canonical
execution, Lemma 3.9 per-phase equivalence, simulation ground truth,
automorphism necessary condition, and the final election outcome.
"""

import pytest

from repro.analysis.validation import validate
from repro.graphs.enumeration import enumerate_configurations


@pytest.mark.parametrize("n,max_tag", [(1, 2), (2, 2), (3, 2), (4, 1)])
def test_exhaustive_small_configurations(n, max_tag):
    failures = []
    count = 0
    for cfg in enumerate_configurations(n, max_tag):
        count += 1
        report = validate(cfg)
        if not report.ok:
            failures.append(report.describe())
    assert count > 0
    assert not failures, f"{len(failures)} failures:\n" + "\n".join(failures[:5])


def test_exhaustive_five_node_span_one():
    failures = 0
    total = 0
    for cfg in enumerate_configurations(5, 1):
        total += 1
        report = validate(cfg, check_automorphisms=False)
        failures += not report.ok
    assert total == 21 * 31  # 21 shapes x (2^5 - 1) normalized vectors
    assert failures == 0


def test_labeled_three_node_configurations():
    # labeled mode catches labeling-dependent asymmetries
    for cfg in enumerate_configurations(3, 2, labeled=True):
        report = validate(cfg)
        assert report.ok, report.describe()
