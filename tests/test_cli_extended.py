"""Tests for the extended CLI subcommands (program/variants/wired/minspan)."""

import json

import pytest

from repro.cli import main


class TestProgramCommand:
    def test_export_to_stdout(self, capsys):
        assert main(["program", "--family", "hm:1"]) == 0
        out = capsys.readouterr().out
        blob = json.loads(out)
        assert blob["format"] == "repro-canonical-drip"
        assert blob["feasible"] is True

    def test_export_and_run_roundtrip(self, tmp_path, capsys):
        path = str(tmp_path / "prog.json")
        assert main(["program", "--family", "hm:2", "--out", path]) == 0
        capsys.readouterr()
        assert main(["program", "--run", path, "--family", "hm:2"]) == 0
        out = capsys.readouterr().out
        assert "leaders" in out and "[0]" in out

    def test_infeasible_program_runs_with_no_leader(self, tmp_path, capsys):
        path = str(tmp_path / "sm.json")
        assert main(["program", "--family", "sm:2", "--out", path]) == 0
        capsys.readouterr()
        assert main(["program", "--run", path, "--family", "sm:2"]) == 0
        out = capsys.readouterr().out
        assert "leaders" in out and "-" in out

    def test_needs_a_configuration(self):
        with pytest.raises(SystemExit):
            main(["program"])


class TestVariantsCommand:
    def test_exhaustive(self, capsys):
        assert main(["variants", "--exhaustive", "3,1"]) == 0
        out = capsys.readouterr().out
        assert "cd" in out and "no-cd" in out and "beep" in out
        assert "no-cd ⊆ cd: holds" in out

    def test_random(self, capsys):
        assert main(
            ["variants", "--n", "6", "--samples", "5", "--seed", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "random configs" in out


class TestWiredCommand:
    def test_dominance_reported(self, capsys):
        assert main(["wired", "--exhaustive", "3,1"]) == 0
        out = capsys.readouterr().out
        assert "dominance" in out and "holds" in out
        assert "radio-only" in out


class TestMinspanCommand:
    def test_star(self, capsys):
        assert main(["minspan", "--shape", "star", "--n", "4"]) == 0
        out = capsys.readouterr().out
        assert "span" in out and "witness" in out

    def test_unknown_shape(self):
        with pytest.raises(SystemExit):
            main(["minspan", "--shape", "moebius", "--n", "4"])


class TestTimelineCommand:
    def test_renders_grid(self, capsys):
        assert main(["timeline", "--family", "hm:1"]) == 0
        out = capsys.readouterr().out
        assert "leaders: [0]" in out
        assert "T" in out and "z" in out
        assert "transmission density" in out

    def test_window_args(self, capsys):
        assert main(["timeline", "--family", "hm:1", "--start", "1", "--end", "4"]) == 0
        out = capsys.readouterr().out
        assert "|" in out


class TestQuotientCommand:
    def test_infeasible_skeleton(self, capsys):
        assert main(["quotient", "--family", "sm:2"]) == 0
        out = capsys.readouterr().out
        assert "INFEASIBLE" in out and "C1" in out

    def test_feasible_quotient(self, capsys):
        assert main(["quotient", "--line", "0,1,0"]) == 0
        out = capsys.readouterr().out
        assert "feasible" in out and "size 1" in out
