"""The observability layer: spans, schema, registry, census events.

Covers the :mod:`repro.obs` contracts the rest of the repo leans on:
span nesting and exception capture, the closed JSONL event schema
(including a hypothesis round-trip — arbitrary span trees survive
write → parse → summarize), the disabled-mode no-op identity, registry
group parity with the legacy ``as_dict`` surfaces, and the census
progress events (``shard.resumed`` on checkpoint replay, not
``shard.started``).
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import obs
from repro.engine.cache import ResultCache
from repro.engine.pipeline import sharded_census
from repro.obs.events import (
    EventSchemaError,
    read_events,
    validate_event,
    validate_events,
)
from repro.obs.tracing import NOOP_SPAN, Tracer
from repro.obs.summary import summarize_events, summarize_file

from conftest import random_config_batch


@pytest.fixture(autouse=True)
def clean_obs_state():
    """Every test starts and ends with tracing off and a bare registry."""
    obs.disable()
    obs.registry.reset()
    yield
    obs.disable()
    obs.registry.reset()


# ----------------------------------------------------------------------
# spans: nesting, counters, exception capture
# ----------------------------------------------------------------------
def test_span_nesting_builds_a_tree():
    tracer = obs.enable()
    with obs.span("outer", kind="test") as outer:
        with obs.span("inner") as inner:
            inner.add("items", 3)
            inner.add("items", 2)
        with obs.span("sibling"):
            pass
    obs.disable()
    assert [r.name for r in tracer.roots] == ["outer"]
    assert [c.name for c in outer.children] == ["inner", "sibling"]
    assert inner.parent_id == outer.span_id
    assert inner.counters == {"items": 5}
    assert outer.status == inner.status == "ok"
    assert outer.duration >= inner.duration >= 0.0


def test_span_exception_capture_and_propagation():
    tracer = obs.enable()
    with pytest.raises(ValueError, match="boom"):
        with obs.span("outer"):
            with obs.span("failing"):
                raise ValueError("boom")
    obs.disable()
    outer, = tracer.roots
    failing, = outer.children
    assert failing.status == "error"
    assert failing.error == "ValueError: boom"
    # the exception propagated *through* the outer span too
    assert outer.status == "error"
    ends = [e for e in tracer.events if e["kind"] == "span.end"]
    assert [e["status"] for e in ends] == ["error", "error"]
    assert ends[0]["error"] == "ValueError: boom"


def test_events_attach_to_the_enclosing_span():
    tracer = obs.enable()
    obs.event("orphan")
    with obs.span("work") as sp:
        obs.event("progress", step=1)
    obs.disable()
    orphan, progress = (e for e in tracer.events if e["kind"] == "event")
    assert orphan["span"] is None
    assert progress["span"] == sp.span_id
    assert progress["attrs"] == {"step": 1}


def test_rich_attrs_are_stringified_to_scalars(tmp_path):
    path = tmp_path / "t.jsonl"
    obs.enable(trace_path=str(path))
    with obs.span("work", payload=[1, 2], who={"a": 1}, ok=True):
        pass
    obs.disable()
    start = next(
        e for e in read_events(str(path)) if e["kind"] == "span.start"
    )
    assert start["attrs"] == {"payload": "[1, 2]", "who": "{'a': 1}", "ok": True}


# ----------------------------------------------------------------------
# disabled mode: the no-op identity
# ----------------------------------------------------------------------
def test_disabled_span_is_the_shared_noop():
    assert not obs.STATE.enabled
    sp = obs.span("anything", attr=1)
    assert sp is NOOP_SPAN
    with sp as inner:
        inner.add("ignored", 99)
    assert sp.duration is None and sp.span_id is None and sp.status is None
    obs.event("ignored", x=1)  # no tracer: must be a silent no-op
    assert obs.current_span_id() is None


def test_disabled_noop_span_propagates_exceptions():
    with pytest.raises(RuntimeError):
        with obs.span("anything"):
            raise RuntimeError("must not be swallowed")


# ----------------------------------------------------------------------
# schema: validation is closed; hypothesis round-trip
# ----------------------------------------------------------------------
def test_validate_event_rejects_unknown_fields():
    ok = {"run": "r", "seq": 0, "ts": 0.0, "kind": "event",
          "name": "x", "span": None}
    assert validate_event(dict(ok)) == ok
    with pytest.raises(EventSchemaError, match="unknown field"):
        validate_event({**ok, "extra": 1})
    with pytest.raises(EventSchemaError, match="unknown event kind"):
        validate_event({**ok, "kind": "mystery"})
    with pytest.raises(EventSchemaError, match="missing field"):
        validate_event({"run": "r", "seq": 0, "ts": 0.0, "kind": "event",
                        "name": "x"})
    with pytest.raises(EventSchemaError, match="JSON scalars"):
        validate_event({**ok, "attrs": {"bad": [1, 2]}})


_names = st.sampled_from(
    ["census.run", "census.shard", "engine.batch", "op", "a.b.c"]
)
_scalars = st.one_of(
    st.integers(-1000, 1000),
    st.booleans(),
    st.none(),
    st.text(max_size=8),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
)
_attrs = st.dictionaries(st.text(min_size=1, max_size=6), _scalars, max_size=3)
_span_trees = st.recursive(
    st.fixed_dictionaries(
        {"name": _names, "attrs": _attrs, "children": st.just(())}
    ),
    lambda children: st.fixed_dictionaries(
        {
            "name": _names,
            "attrs": _attrs,
            "children": st.lists(children, max_size=3).map(tuple),
        }
    ),
    max_leaves=12,
)


def _execute(tracer, node):
    """Replay one generated tree through real spans; returns span count."""
    count = 1
    with tracer.span(node["name"], **node["attrs"]) as sp:
        sp.add("visits")
        for child in node["children"]:
            count += _execute(tracer, child)
    return count


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[
        HealthCheck.too_slow, HealthCheck.function_scoped_fixture,
    ],
)
@given(forest=st.lists(_span_trees, min_size=1, max_size=3))
def test_arbitrary_span_trees_round_trip_through_the_log(tmp_path, forest):
    """Write → parse (validated) → summarize preserves the whole forest."""
    path = tmp_path / "roundtrip.jsonl"
    path.unlink(missing_ok=True)
    tracer = Tracer(path=str(path))
    expected = sum(_execute(tracer, tree) for tree in forest)
    tracer.event("done", trees=len(forest))
    tracer.close()

    events = read_events(str(path), validate=True)  # every line validates
    assert validate_events(events) == len(events)
    assert [e["seq"] for e in events] == list(range(len(events)))

    summary = summarize_events(events)
    assert summary.run_id == tracer.run_id
    assert summary.schema == 1
    assert summary.span_total == expected == tracer.span_count
    assert summary.event_total == 1
    assert len(summary.roots) == len(forest)
    assert [r.name for r in summary.roots] == [t["name"] for t in forest]
    # every span closed: durations known, hotspot counts add up
    assert all(n.duration is not None for n in summary.spans.values())
    assert sum(r["count"] for r in summary.hotspots) == expected
    assert summary.total_duration is not None
    summary.render()  # must not raise on any generated shape


def test_summarizer_tolerates_unclosed_spans(tmp_path):
    path = tmp_path / "crash.jsonl"
    tracer = Tracer(path=str(path))
    span = tracer.span("never.closed")
    span.__enter__()  # crash before exit: no span.end, no run.end
    tracer._fh.close()
    tracer._fh = None
    summary = summarize_file(str(path))
    assert summary.span_total == 1
    assert summary.spans[span.span_id].duration is None
    assert "?" in summary.render()


# ----------------------------------------------------------------------
# registry: groups mirror the legacy as_dict surfaces
# ----------------------------------------------------------------------
def test_registry_groups_equal_legacy_stats_dicts(tmp_path):
    cfgs = random_config_batch(24, base_seed=7)
    cache = ResultCache()
    run = sharded_census(cfgs, num_shards=3, cache=cache)
    obs.registry.register_group("engine", run.stats.as_dict)
    obs.registry.register_group("cache", cache.stats.as_dict)
    snap = obs.snapshot()
    assert snap["groups"]["engine"] == run.stats.as_dict()
    assert snap["groups"]["cache"] == cache.stats.as_dict()
    # groups are live providers, not frozen copies
    cache.stats.hits += 1
    assert obs.snapshot()["groups"]["cache"] == cache.stats.as_dict()
    text = obs.render_prometheus()
    assert "repro_engine_classified" in text
    assert "repro_cache_hits" in text


def test_registry_counters_gauges_and_heartbeats():
    obs.registry.inc("x.calls")
    obs.registry.inc("x.calls", 4)
    obs.registry.set_gauge("x.depth", 2.5)
    obs.registry.heartbeat("loop")
    snap = obs.snapshot()
    assert snap["counters"] == {"x.calls": 5}
    assert snap["gauges"] == {"x.depth": 2.5}
    assert snap["heartbeats"]["loop"] >= 0.0
    text = obs.render_prometheus()
    assert "repro_obs_x_calls_total 5" in text
    assert 'repro_obs_heartbeat_age_seconds{name="loop"}' in text


# ----------------------------------------------------------------------
# census progress events: resume says resumed, not started
# ----------------------------------------------------------------------
def test_census_resume_emits_shard_resumed(tmp_path):
    cfgs = random_config_batch(18, base_seed=11)
    ckpt = tmp_path / "ckpt"

    tracer = obs.enable(trace_path=str(tmp_path / "first.jsonl"))
    first = sharded_census(
        cfgs, num_shards=3, cache=ResultCache(), checkpoint_dir=str(ckpt)
    )
    obs.disable()
    names = [e["name"] for e in tracer.events if e["kind"] == "event"]
    assert names.count("shard.started") == 3
    assert names.count("shard.finished") == 3
    assert "shard.resumed" not in names

    tracer = obs.enable(trace_path=str(tmp_path / "second.jsonl"))
    second = sharded_census(
        cfgs, num_shards=3, cache=ResultCache(), checkpoint_dir=str(ckpt)
    )
    obs.disable()
    names = [e["name"] for e in tracer.events if e["kind"] == "event"]
    assert names.count("shard.resumed") == 3
    assert "shard.started" not in names and "shard.finished" not in names
    assert second.result.rows == first.result.rows
    assert second.stats.shards_resumed == 3


def test_traced_census_summary_has_shard_rows(tmp_path):
    path = tmp_path / "census.jsonl"
    obs.enable(trace_path=str(path))
    sharded_census(
        random_config_batch(16, base_seed=3), num_shards=4,
        cache=ResultCache(),
    )
    obs.disable()
    summary = summarize_file(str(path))
    assert len(summary.shard_rows) == 4
    for row in summary.shard_rows:
        assert row["status"] == "finished"
        assert row["wall"] >= 0.0
        assert 0.0 <= row["hit_rate"] <= 1.0
    rendered = summary.render()
    assert "census shards" in rendered and "hit rate" in rendered
    # hot-path counters landed in the process registry
    counters = obs.snapshot()["counters"]
    assert counters["census.runs"] == 1
    assert counters["engine.batches"] == 4
    assert counters["engine.items"] == 16


def test_trace_events_survive_json_reload(tmp_path):
    """The on-disk lines equal the in-memory event list, byte-for-value."""
    path = tmp_path / "t.jsonl"
    tracer = obs.enable(trace_path=str(path))
    with obs.span("a", n=1):
        obs.event("tick")
    obs.disable()
    on_disk = [json.loads(line) for line in path.read_text().splitlines()]
    assert on_disk == tracer.events
