"""Tests for port-aware views (repro.wired.ports)."""

import pytest

from repro.core.configuration import Configuration
from repro.graphs.enumeration import enumerate_configurations
from repro.graphs.families import g_m, h_m
from repro.graphs.generators import (
    cycle_configuration,
    path_configuration,
    star_configuration,
)
from repro.wired.ports import (
    PortAwareViewProtocol,
    port_aware_partition,
    port_aware_view_ids,
    port_awareness_refines,
)
from repro.wired.protocols import ViewInterner


class TestProtocol:
    def test_negative_horizon_rejected(self):
        with pytest.raises(ValueError):
            PortAwareViewProtocol((0, 1), 1, -1, ViewInterner())

    def test_depth_zero_partition_by_root(self):
        cfg = path_configuration([0, 0, 0])
        assert port_aware_partition(cfg, horizon=0) == [[0, 2], [1]]

    def test_deterministic(self):
        cfg = g_m(2)
        assert port_aware_view_ids(cfg) == port_aware_view_ids(cfg)


class TestRefinement:
    def test_refines_on_all_small_configs(self):
        for cfg in enumerate_configurations(4, 1):
            assert port_awareness_refines(cfg)

    @pytest.mark.parametrize(
        "cfg",
        [h_m(2), g_m(2), star_configuration([0, 0, 1, 0]),
         cycle_configuration([0, 1, 0, 1])],
        ids=lambda c: f"n{c.n}s{c.span}",
    )
    def test_refines_on_families(self, cfg):
        assert port_awareness_refines(cfg)

    def test_port_numbering_leaks_order_information(self):
        """The sorted-id numbering is NOT automorphism-respecting: the
        path's mirror symmetry sends the centre's port 0 to its port 1,
        so the two endpoints receive different back-ports and their
        port-aware views split. This is exactly the adversarial-numbering
        caveat the module documents — under the true model's worst-case
        numbering the endpoints would stay symmetric, so port-aware
        distinguishing power here is an upper bound, not feasibility."""
        cfg = path_configuration([0, 1, 0])
        partition = port_aware_partition(cfg)
        assert [0, 2] not in partition  # split by the numbering
        assert [[0], [1], [2]] == partition

    def test_port_awareness_strictly_refines_often(self):
        """Under sorted-id numbering, port-aware views strictly refine the
        oblivious ones on a majority of small configurations (the
        numbering acts as an artificial tiebreaker)."""
        from repro.wired import wired_elect

        strict = 0
        total = 0
        for cfg in enumerate_configurations(4, 1):
            total += 1
            oblivious = wired_elect(cfg).view_partition()
            aware = port_aware_partition(cfg)
            if len(aware) > len(oblivious):
                strict += 1
        assert strict > total // 2
