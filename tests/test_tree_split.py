"""Unit tests for the labeled single-hop tree-splitting baseline."""

import pytest

from repro.baselines.tree_split import (
    TreeSplitDRIP,
    tree_split_algorithm,
    tree_split_slot_bound,
)
from repro.graphs.generators import complete_configuration
from repro.radio.simulator import simulate


def run(n):
    algo = tree_split_algorithm(n)
    cfg = complete_configuration([0] * n)
    ex = simulate(cfg, algo.factory, max_rounds=200)
    return ex, ex.decide_leaders(algo.decision)


class TestElection:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 8, 13, 16, 31, 64])
    def test_unique_leader(self, n):
        ex, leaders = run(n)
        assert len(leaders) == 1, f"n={n}: leaders={leaders}"

    @pytest.mark.parametrize("n", [2, 4, 8, 16, 32, 64])
    def test_slots_within_log_bound(self, n):
        ex, _ = run(n)
        assert ex.max_done_local() <= tree_split_slot_bound(n)

    def test_slots_grow_logarithmically(self):
        slots = {n: run(n)[0].max_done_local() for n in (4, 64)}
        # 16x more nodes should cost only ~ +2 splits (4 slots), not 16x
        assert slots[64] <= slots[4] + 10
        assert slots[64] < 4 * slots[4]

    def test_all_terminate_same_round(self):
        ex, _ = run(8)
        assert len(set(ex.done_local.values())) == 1

    def test_leader_is_smallest_id_in_left_most_nonempty_path(self):
        # the algorithm always recurses left on collision, so the winner
        # is deterministic; for a full range it is node 0 when the left
        # half keeps containing >= 2 ids until a singleton interval.
        _, leaders = run(8)
        assert leaders == [0]


class TestValidation:
    def test_rejects_bad_ids(self):
        with pytest.raises(ValueError):
            TreeSplitDRIP(5, 4)
        with pytest.raises(ValueError):
            TreeSplitDRIP(-1, 4)

    def test_rejects_small_n(self):
        with pytest.raises(ValueError):
            TreeSplitDRIP(0, 1)
        with pytest.raises(ValueError):
            tree_split_algorithm(0)

    def test_slot_bound_monotone(self):
        bounds = [tree_split_slot_bound(n) for n in (1, 2, 4, 8, 16)]
        assert bounds == sorted(bounds)

    def test_name(self):
        assert "tree-split" in tree_split_algorithm(4).name
