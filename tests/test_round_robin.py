"""Tests for the labeled round-robin baseline (no collision detection)."""

import pytest

from repro.baselines.round_robin import (
    RoundRobinDRIP,
    heard_labels,
    round_robin_algorithm,
    round_robin_slots,
)
from repro.graphs.generators import build, complete_edges
from repro.radio.history import History
from repro.radio.model import LISTEN, TERMINATE, Transmit
from repro.radio.simulator import simulate
from repro.variants.channels import NO_CD
from repro.variants.simulator import variant_simulate


def run(n, channel=None):
    cfg = build(complete_edges(n), n=n) if n > 1 else build([], n=1)
    algo = round_robin_algorithm(n)
    if channel is None:
        execution = simulate(cfg, algo.factory)
    else:
        execution = variant_simulate(cfg, algo.factory, channel=channel)
    return execution, algo


class TestDRIPSchedule:
    def test_transmits_exactly_in_own_slot(self):
        from repro.radio.model import SILENCE

        drip = RoundRobinDRIP(2, 5)
        h = History()
        actions = []
        for _ in range(6):
            actions.append(drip.decide(h))  # deciding local round len(h)
            h.append(SILENCE)
        # Slot for label 2 is local round 3 (= label + 1).
        assert actions[3] == Transmit(2)
        assert actions.count(LISTEN) == 5
        assert drip.decide(h) is TERMINATE

    def test_label_validation(self):
        with pytest.raises(ValueError):
            RoundRobinDRIP(5, 5)
        with pytest.raises(ValueError):
            RoundRobinDRIP(-1, 5)

    def test_id_space_validation(self):
        with pytest.raises(ValueError):
            round_robin_algorithm(0)


class TestElection:
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 8, 16])
    def test_elects_node_zero(self, n):
        execution, algo = run(n)
        leaders = execution.decide_leaders(algo.decision)
        assert leaders == [0]

    @pytest.mark.parametrize("n", [2, 4, 9])
    def test_works_without_collision_detection(self, n):
        """The whole point: one transmitter per slot, so the no-CD channel
        carries exactly the same information."""
        cd_exec, algo = run(n)
        nocd_exec, _ = run(n, channel=NO_CD)
        assert cd_exec.histories == nocd_exec.histories
        assert nocd_exec.decide_leaders(algo.decision) == [0]

    @pytest.mark.parametrize("n", [2, 5, 10])
    def test_slot_count(self, n):
        execution, _ = run(n)
        assert execution.max_done_local() == round_robin_slots(n)

    def test_every_node_hears_all_other_labels(self, n=6):
        execution, _ = run(n)
        for v in range(n):
            expected = sorted(set(range(n)) - {v})
            assert heard_labels(execution.histories[v]) == expected

    def test_linear_growth_vs_tree_split(self):
        """Round robin is Θ(n); tree-split with collision detection is
        Θ(log n) — the related-work contrast in one assertion."""
        from repro.baselines.tree_split import tree_split_algorithm

        n = 32
        rr_exec, _ = run(n)
        cfg = build(complete_edges(n), n=n)
        ts = tree_split_algorithm(n)
        ts_exec = simulate(cfg, ts.factory)
        assert rr_exec.max_done_local() > 2 * ts_exec.max_done_local()
