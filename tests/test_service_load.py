"""Fault injection for the async HTTP front end.

Every test here abuses the server the way real traffic does — slow
clients, vanished clients, floods past the queue bound, shutdown under
load — and asserts the PR-6 hardening contract: deadlines fire (408 on
slow reads, 503 with freed batcher slots on slow classifications),
saturation is an explicit 429 with a parseable ``Retry-After``, and a
graceful drain never drops an in-flight response.
"""

import contextlib
import json
import socket
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.core.configuration import Configuration, line_configuration
from repro.service import BatchClassifier, make_server, serial_report


@contextlib.contextmanager
def running_server(*, classifier_kw=None, **server_kw):
    """A served BatchClassifier on an ephemeral port, torn down fully."""
    classifier = BatchClassifier(**{"batch_window": 0.001, **(classifier_kw or {})})
    server = make_server(port=0, classifier=classifier, quiet=True, **server_kw)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        classifier.close()
        thread.join(timeout=10)
        assert not thread.is_alive(), "serve loop failed to drain"


def post(server, payload, timeout=30):
    """POST /classify; returns (status, parsed body, headers)."""
    host, port = server.server_address[:2]
    request = urllib.request.Request(
        f"http://{host}:{port}/classify",
        data=json.dumps(payload).encode("utf-8"),
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read()), dict(resp.headers)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), dict(exc.headers)


def raw_connection(server, timeout=30):
    """A plain TCP connection to the server."""
    sock = socket.create_connection(server.server_address[:2], timeout=timeout)
    sock.settimeout(timeout)
    return sock


def read_response_head(sock):
    """First line + headers of one HTTP response off a raw socket."""
    data = b""
    while b"\r\n\r\n" not in data:
        chunk = sock.recv(4096)
        if not chunk:
            break
        data += chunk
    head, _, _ = data.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return lines[0] if lines else "", headers


def cold_batch(count, n=5):
    """``count`` pairwise non-isomorphic requests (all cache misses)."""
    return [
        {"edges": [[i, i + 1] for i in range(n - 1)],
         "tags": {str(i): (seed + i * i) % (n + seed + 2) for i in range(n)}}
        for seed in range(count)
    ]


class TestDeadlines:
    def test_slow_loris_head_gets_408(self):
        """A client that trickles a partial request head is cut off at
        the deadline with 408, and the server keeps serving."""
        with running_server(request_timeout=0.4) as server:
            sock = raw_connection(server, timeout=10)
            sock.sendall(b"POST /classify HTTP/1.1\r\n")  # ...and stall
            started = time.monotonic()
            status_line, _ = read_response_head(sock)
            elapsed = time.monotonic() - started
            sock.close()
            assert "408" in status_line
            assert elapsed < 5
            assert server.metrics.deadline_hits >= 1
            status, body, _ = post(server, {"line": [0, 1, 0]})
            assert status == 200 and body["ok"]

    def test_slow_loris_body_gets_408_without_touching_batcher(self):
        """A complete head whose declared body never arrives times out
        with 408 — nothing was submitted, so no batcher slot leaks."""
        with running_server(request_timeout=0.4) as server:
            sock = raw_connection(server, timeout=10)
            sock.sendall(
                b"POST /classify HTTP/1.1\r\n"
                b"Content-Length: 1000\r\n\r\n"
                b'{"line": [0, '  # 14 of the promised 1000 bytes
            )
            status_line, headers = read_response_head(sock)
            sock.close()
            assert "408" in status_line
            assert headers.get("connection") == "close"
            assert server.classifier.stats.submitted == 0

    def test_deadline_during_classification_frees_batcher_slot(self):
        """A request that blows its deadline mid-classification gets 503
        and its queued ticket is cancelled: the dispatcher drops (never
        classifies) the abandoned item, so the slot is freed rather than
        leaked and the service stays responsive."""
        cold = {"edges": [[0, 1], [1, 2], [2, 3]],
                "tags": {"0": 3, "1": 1, "2": 4, "3": 1}}
        classifier_kw = {"batch_window": 1.0}  # cold answers take ~1s
        with running_server(
            classifier_kw=classifier_kw, request_timeout=0.3
        ) as server:
            svc = server.classifier
            started = time.monotonic()
            status, body, _ = post(server, cold)
            assert status == 503
            assert "deadline" in body["error"]
            assert time.monotonic() - started < 2
            assert server.metrics.deadline_hits >= 1
            # let the dispatcher's straggler window expire and observe
            # the cancelled item being dropped, not classified
            deadline = time.monotonic() + 5
            while svc.stats.cancelled == 0 and time.monotonic() < deadline:
                time.sleep(0.05)
            assert svc.stats.cancelled >= 1
            assert svc.stats.engine.classified == 0
            # the service is not wedged: a warm request (primed via the
            # library path, which has no HTTP deadline) answers fast
            cfg = line_configuration([0, 1, 0])
            svc.submit(cfg).result(timeout=10)
            status, body, _ = post(server, {"line": [0, 1, 0]})
            assert status == 200
            assert body["report"] == serial_report(cfg)


class TestDisconnects:
    def test_disconnect_mid_body_is_cleaned_up(self):
        """A client that dies halfway through its body leaves nothing
        behind: the connection is reaped and later requests work."""
        with running_server(request_timeout=5) as server:
            sock = raw_connection(server)
            sock.sendall(
                b"POST /classify HTTP/1.1\r\n"
                b"Content-Length: 500\r\n\r\n"
                b'{"line": '
            )
            sock.close()  # vanish mid-body
            deadline = time.monotonic() + 5
            while server.connection_count > 0 and time.monotonic() < deadline:
                time.sleep(0.02)
            assert server.connection_count == 0
            status, body, _ = post(server, {"line": [0, 1, 0]})
            assert status == 200 and body["ok"]

    def test_disconnect_during_classification_cancels_cleanly(self):
        """A client that vanishes while its request is being classified
        must not wedge the connection handler or the dispatcher."""
        classifier_kw = {"batch_window": 0.4}
        with running_server(classifier_kw=classifier_kw) as server:
            payload = json.dumps(
                {"edges": [[0, 1], [1, 2]], "tags": {"0": 2, "1": 0, "2": 5}}
            ).encode()
            sock = raw_connection(server)
            sock.sendall(
                b"POST /classify HTTP/1.1\r\n"
                + f"Content-Length: {len(payload)}\r\n\r\n".encode()
                + payload
            )
            sock.close()  # gone before the batch window closes
            deadline = time.monotonic() + 5
            while server.connection_count > 0 and time.monotonic() < deadline:
                time.sleep(0.02)
            assert server.connection_count == 0
            status, body, _ = post(server, {"line": [0, 1, 0]}, timeout=10)
            assert status == 200 and body["ok"]


class TestSaturation:
    def test_oversized_cold_batch_gets_429_with_retry_after(self):
        """A batch holding more cold misses than the queue can ever take
        is refused outright: 429, a parseable Retry-After header, and an
        explanatory body — with no partial state left behind."""
        classifier_kw = {"max_pending": 2}
        with running_server(classifier_kw=classifier_kw) as server:
            status, body, headers = post(server, {"requests": cold_batch(8)})
            assert status == 429
            assert not body["ok"] and "saturated" in body["error"]
            retry_after = int(headers["Retry-After"])
            assert retry_after >= 1
            assert body["retry_after"] == retry_after
            assert server.classifier.stats.rejected >= 8
            assert server.metrics.rejected_saturated >= 1
            # zero hung connections, zero leaked slots: the very next
            # request classifies normally
            status, body, _ = post(server, {"line": [0, 1, 0]})
            assert status == 200
            assert body["report"] == serial_report(line_configuration([0, 1, 0]))

    def test_metrics_scrape_survives_saturation(self):
        """/metrics keeps answering while admission control is busy
        refusing work (observability must not share the fate of the
        saturated data path)."""
        classifier_kw = {"max_pending": 1}
        with running_server(classifier_kw=classifier_kw) as server:
            post(server, {"requests": cold_batch(6)})
            host, port = server.server_address[:2]
            with urllib.request.urlopen(
                f"http://{host}:{port}/metrics", timeout=10
            ) as resp:
                text = resp.read().decode()
            assert "repro_http_rejected_saturated_total 1" in text


class TestConnectionLimit:
    def test_excess_connections_get_503(self):
        with running_server(max_connections=1, request_timeout=5) as server:
            parked = raw_connection(server)  # occupies the only slot
            time.sleep(0.1)  # let the accept loop register it
            # a raw one-shot GET: the request is fully sent before the
            # server's reject-and-close, so the 503 is always readable
            probe = raw_connection(server, timeout=10)
            probe.sendall(b"GET /healthz HTTP/1.1\r\n\r\n")
            status_line, _ = read_response_head(probe)
            probe.close()
            assert "503" in status_line
            assert server.metrics.rejected_connections >= 1
            parked.close()
            deadline = time.monotonic() + 5
            while server.connection_count > 0 and time.monotonic() < deadline:
                time.sleep(0.02)
            status, body, _ = post(server, {"line": [0, 1, 0]}, timeout=10)
            assert status == 200 and body["ok"]


class TestGracefulDrain:
    def test_shutdown_drains_in_flight_requests(self):
        """shutdown() called mid-request: the in-flight response still
        arrives, bit-for-bit correct, while new connections are refused."""
        cfg = Configuration([(0, 1), (1, 2)], {0: 1, 1: 0, 2: 2})
        payload = {**{"edges": [[0, 1], [1, 2]],
                      "tags": {"0": 1, "1": 0, "2": 2}}, "mode": "elect"}
        classifier_kw = {"batch_window": 0.6}  # hold the request in flight
        classifier = BatchClassifier(**classifier_kw)
        server = make_server(
            port=0, classifier=classifier, quiet=True, drain_timeout=10
        )
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        outcome = {}

        def client():
            outcome["response"] = post(server, payload, timeout=30)

        try:
            requester = threading.Thread(target=client)
            requester.start()
            time.sleep(0.2)  # the request is queued, awaiting its batch
            server.shutdown()  # blocks until the drain completes
            requester.join(timeout=10)
            assert not requester.is_alive(), "in-flight response was dropped"
            status, body, _ = outcome["response"]
            assert status == 200
            assert body["report"] == serial_report(cfg, "elect")
            # the listener is gone: connecting now fails fast
            with pytest.raises(OSError):
                socket.create_connection(server.server_address[:2], timeout=2)
        finally:
            server.shutdown()
            server.server_close()
            classifier.close()
            thread.join(timeout=10)

    def test_idle_keep_alive_connections_are_cut(self):
        """Drain must not wait out idle keep-alive connections — only
        busy ones get the grace period."""
        with running_server(request_timeout=60, drain_timeout=30) as server:
            idle = raw_connection(server)
            time.sleep(0.1)
            assert server.connection_count >= 1
            started = time.monotonic()
            server.shutdown()  # must not take anywhere near 30s
            assert time.monotonic() - started < 5
            idle.close()
