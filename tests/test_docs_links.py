"""Internal links and anchors in the docs resolve.

Checks every markdown link in ``README.md`` and ``docs/**/*.md``:
relative paths must exist in the repository, and fragment links
(``file.md#section`` or ``#section``) must name a real heading in the
target file, using GitHub's heading-slug rules. External links
(http/https/mailto) are out of scope — CI must not depend on the
network.
"""

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent
DOC_FILES = sorted([ROOT / "README.md", *(ROOT / "docs").rglob("*.md")])

#: inline markdown links: [text](target) — images share the syntax.
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_FENCE = re.compile(r"^```.*?^```[ \t]*$", re.MULTILINE | re.DOTALL)
_HEADING = re.compile(r"^#{1,6}[ \t]+(.+?)[ \t]*$", re.MULTILINE)


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: strip markup, lowercase, drop punctuation,
    spaces to hyphens."""
    text = re.sub(r"[`*_]", "", heading)
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # linked headings
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text, flags=re.UNICODE)
    return text.replace(" ", "-")


def heading_slugs(path: Path):
    """All anchor slugs of a markdown file (with GitHub's -1, -2
    deduplication for repeated headings)."""
    text = _FENCE.sub("", path.read_text(encoding="utf-8"))
    slugs = set()
    counts = {}
    for match in _HEADING.finditer(text):
        slug = github_slug(match.group(1))
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        slugs.add(slug if n == 0 else f"{slug}-{n}")
    return slugs


def doc_links():
    """Yield (source, target, fragment) for every internal link."""
    out = []
    for path in DOC_FILES:
        text = _FENCE.sub("", path.read_text(encoding="utf-8"))
        for match in _LINK.finditer(text):
            target = match.group(1)
            if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, mailto:, ...
                continue
            target, _, fragment = target.partition("#")
            out.append((path.relative_to(ROOT).as_posix(), target, fragment))
    return out


LINKS = doc_links()


def test_docs_have_internal_links():
    """Extraction sanity: the docs set is cross-linked; if the regex
    rots to zero matches every per-link test silently vanishes."""
    assert len(LINKS) >= 10
    sources = {src for src, _, _ in LINKS}
    assert "README.md" in sources


@pytest.mark.parametrize(
    "source,target,fragment",
    LINKS,
    ids=[f"{s}->{t or '#'}{('#' + f) if f else ''}" for s, t, f in LINKS],
)
def test_internal_link_resolves(source, target, fragment):
    source_path = ROOT / source
    resolved = (
        source_path if not target else (source_path.parent / target).resolve()
    )
    assert resolved.exists(), f"{source}: broken link target {target!r}"
    if fragment:
        assert resolved.suffix == ".md", (
            f"{source}: anchor on non-markdown target {target!r}"
        )
        slugs = heading_slugs(resolved)
        assert fragment in slugs, (
            f"{source}: anchor #{fragment} not in {target or source}; "
            f"available: {sorted(slugs)}"
        )


def test_readme_docs_index_covers_docs_dir():
    """Every markdown file under docs/ is reachable from the README's
    Docs index — new docs must join the navigable set."""
    readme = (ROOT / "README.md").read_text(encoding="utf-8")
    for path in (ROOT / "docs").rglob("*.md"):
        rel = path.relative_to(ROOT).as_posix()
        assert rel in readme, f"{rel} is not linked from README.md"
