"""Unit tests for the paper's configuration families (Section 4)."""

import pytest

from repro.core.classifier import classify, is_feasible
from repro.graphs.families import (
    FOUR_NODE_NAMES,
    g_m,
    g_m_center,
    g_m_names,
    g_m_size,
    h_m,
    s_m,
)


class TestGm:
    def test_structure(self):
        cfg = g_m(2)
        assert cfg.n == g_m_size(2) == 9
        assert cfg.num_edges == 8  # a path
        assert cfg.max_degree == 2
        assert cfg.span == 1

    def test_tags_pattern(self):
        cfg = g_m(3)
        tags = [cfg.tag(i) for i in range(cfg.n)]
        assert tags == [0] * 3 + [1] * 7 + [0] * 3

    def test_center_has_tag_one(self):
        for m in (2, 3, 5):
            assert g_m(m).tag(g_m_center(m)) == 1

    def test_names(self):
        names = g_m_names(2)
        assert names[0] == "a1"
        assert names[2] == "b1"
        assert names[g_m_center(2)] == "b3"  # b_{m+1}
        assert names[8] == "c1"
        assert len(names) == 9

    def test_mirror_symmetric_tags(self):
        cfg = g_m(3)
        n = cfg.n
        for i in range(n):
            assert cfg.tag(i) == cfg.tag(n - 1 - i)

    def test_feasible(self):
        for m in (2, 3, 4):
            assert is_feasible(g_m(m))

    def test_m_lower_bound_enforced(self):
        with pytest.raises(ValueError):
            g_m(1)


class TestHm:
    def test_structure(self):
        cfg = h_m(3)
        assert cfg.n == 4
        assert [cfg.tag(i) for i in range(4)] == [3, 0, 0, 4]
        assert cfg.span == 4  # m + 1

    def test_feasible_for_all_m(self):
        # Lemma 4.2 first part.
        for m in range(1, 12):
            assert is_feasible(h_m(m)), f"H_{m}"

    def test_all_four_singletons_after_one_iteration(self):
        for m in (1, 4, 9):
            trace = classify(h_m(m))
            assert trace.decided_at == 1
            assert trace.num_classes_at(2) == 4

    def test_names_cover_nodes(self):
        assert set(FOUR_NODE_NAMES) == {0, 1, 2, 3}

    def test_m_lower_bound(self):
        with pytest.raises(ValueError):
            h_m(0)


class TestSm:
    def test_structure(self):
        cfg = s_m(3)
        assert [cfg.tag(i) for i in range(4)] == [3, 0, 0, 3]
        assert cfg.span == 3

    def test_infeasible_for_all_m(self):
        # Proposition 4.5 core fact.
        for m in range(1, 12):
            assert not is_feasible(s_m(m)), f"S_{m}"

    def test_differs_from_h_m_only_at_d(self):
        hm, sm = h_m(5), s_m(5)
        assert hm.edges == sm.edges
        diffs = [v for v in hm.nodes if hm.tag(v) != sm.tag(v)]
        assert diffs == [3]  # node d

    def test_m_lower_bound(self):
        with pytest.raises(ValueError):
            s_m(0)
