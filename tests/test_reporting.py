"""Unit tests for the reporting helpers."""

import pytest

from repro.reporting.series import ascii_chart, series_table, slope_annotation
from repro.reporting.tables import format_table, kv_block


class TestFormatTable:
    def test_basic(self):
        out = format_table(("a", "b"), [(1, 2), (30, 40)])
        lines = out.splitlines()
        assert lines[0].startswith("+")
        assert "| 30" in out and "| 40" in out

    def test_title(self):
        out = format_table(("x",), [(1,)], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_column_count_validated(self):
        with pytest.raises(ValueError):
            format_table(("a", "b"), [(1,)])

    def test_alignment_numeric_right(self):
        out = format_table(("n", "name"), [(1, "aa"), (100, "b")])
        row = [l for l in out.splitlines() if "aa" in l][0]
        assert row.startswith("|   1")  # right-aligned number

    def test_explicit_aligns(self):
        out = format_table(("n",), [("x",)], aligns=["r"])
        assert "| x |" in out

    def test_float_formatting(self):
        out = format_table(("v",), [(3.14159265,)])
        assert "3.142" in out

    def test_empty_rows(self):
        out = format_table(("a",), [])
        assert "| a |" in out


class TestKvBlock:
    def test_alignment(self):
        out = kv_block("T", [("k", 1), ("longer", "v")])
        lines = out.splitlines()
        assert lines[0] == "T"
        assert lines[1].index(":") == lines[2].index(":")


class TestAsciiChart:
    def test_renders_points(self):
        out = ascii_chart([1, 2, 3], [1, 4, 9], title="squares")
        assert "squares" in out
        assert out.count("*") == 3

    def test_empty(self):
        assert "empty" in ascii_chart([], [], title="t")

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            ascii_chart([1], [1, 2])

    def test_flat_series(self):
        out = ascii_chart([1, 2], [5, 5])
        assert "*" in out


class TestSeries:
    def test_series_table(self):
        out = series_table([1, 2], [10, 20], headers=("x", "y"))
        assert "| 10 |" in out

    def test_slope_annotation(self):
        text = slope_annotation([2, 4, 8], [4, 16, 64])
        assert "2.00" in text

    def test_slope_na(self):
        assert "n/a" in slope_annotation([1], [1])
