"""Fault-model edge cases: budgets, timeouts, relabelings, fallbacks."""

import pytest

from repro.adversary import ReactiveJammer, random_budget_jammer
from repro.core.canonical import CanonicalProtocol
from repro.core.classifier import classify
from repro.graphs.families import g_m, h_m
from repro.radio.backends import BackendUnsupported, SimulationTimeout
from repro.radio.faults import jam_pairs, jam_rounds, jammed_simulate
from repro.testing import assert_execution_equal, random_relabel


def canonical_setup(cfg):
    trace = classify(cfg)
    protocol = CanonicalProtocol.from_trace(trace)
    network = trace.config
    budget = protocol.round_budget(network.span)
    return trace, protocol, network, budget


class TestJamsBeyondBudget:
    """Jam rounds past ``max_rounds`` (or past termination) are inert:
    they must neither extend the execution nor change any entry."""

    @pytest.mark.parametrize("backend", ["reference", "fast"])
    def test_far_future_jams_are_noops(self, backend):
        trace, protocol, network, budget = canonical_setup(h_m(2))
        clean = jammed_simulate(
            network, protocol.factory, max_rounds=budget, backend=backend
        )
        jammed = jammed_simulate(
            network,
            protocol.factory,
            jammer=jam_rounds([budget + 5, budget + 100, 10**6]),
            max_rounds=budget,
            backend=backend,
        )
        assert_execution_equal(jammed, clean, context=backend)
        assert jammed.rounds_elapsed == clean.rounds_elapsed

    def test_backends_agree_on_far_future_jams(self):
        trace, protocol, network, budget = canonical_setup(g_m(2))
        jammer = jam_rounds([budget + 1, budget + 7])
        ref = jammed_simulate(
            network,
            protocol.factory,
            jammer=jammer,
            max_rounds=budget,
            backend="reference",
        )
        fast = jammed_simulate(
            network,
            protocol.factory,
            jammer=jammer,
            max_rounds=budget,
            backend="fast",
        )
        assert_execution_equal(fast, ref, context="far-future jams")


class TestTimeoutDiagnostics:
    """Jamming combined with a starved budget raises the same
    diagnostic ``SimulationTimeout`` on both backends."""

    @pytest.mark.parametrize("max_rounds", [1, 3])
    def test_diagnostics_identical_across_backends(self, max_rounds):
        trace, protocol, network, budget = canonical_setup(h_m(2))
        jammer = random_budget_jammer(3, 2, max_rounds + 1)
        diags = {}
        for backend in ("reference", "fast"):
            with pytest.raises(SimulationTimeout) as excinfo:
                jammed_simulate(
                    network,
                    protocol.factory,
                    jammer=jammer,
                    max_rounds=max_rounds,
                    backend=backend,
                )
            exc = excinfo.value
            diags[backend] = (
                exc.round_reached,
                exc.awake,
                exc.asleep,
                exc.terminated,
                str(exc),
            )
        assert diags["reference"] == diags["fast"]
        assert diags["reference"][0] is not None

    def test_adaptive_timeout_has_diagnostics(self):
        trace, protocol, network, budget = canonical_setup(h_m(2))
        with pytest.raises(SimulationTimeout) as excinfo:
            jammed_simulate(
                network,
                protocol.factory,
                jammer=ReactiveJammer(1, probability=1.0, budget=3),
                max_rounds=2,
                backend="reference",
            )
        assert excinfo.value.round_reached is not None


class TestRelabelDeterminism:
    """Node-agnostic adversaries commute with relabeling: simulating a
    shuffled copy of the network under the same jammer yields the
    relabeled execution."""

    @pytest.mark.parametrize("seed", [3, 11])
    def test_random_budget_commutes_with_relabel(self, seed):
        trace, protocol, network, budget = canonical_setup(g_m(2))
        jammer = random_budget_jammer(5, 2, budget)
        base = jammed_simulate(
            network, protocol.factory, jammer=jammer, max_rounds=budget
        )
        shuffled = random_relabel(network, seed)
        other = jammed_simulate(
            shuffled, protocol.factory, jammer=jammer, max_rounds=budget
        )
        assert base.rounds_elapsed == other.rounds_elapsed
        # per-tag multisets of histories must agree: round-jamming
        # cannot tell nodes apart, so only tags matter
        def by_tag(execution, cfg):
            out = {}
            for v, h in execution.histories.items():
                out.setdefault(cfg.tag(v), []).append(h.render())
            return {t: sorted(hs) for t, hs in out.items()}

        assert by_tag(base, network) == by_tag(other, shuffled)

    def test_reactive_jammer_ignores_labels(self):
        trace, protocol, network, budget = canonical_setup(h_m(2))
        shuffled = random_relabel(network, 7)
        base = jammed_simulate(
            network,
            protocol.factory,
            jammer=ReactiveJammer(4, probability=1.0, budget=1),
            max_rounds=budget,
            backend="reference",
        )
        other = jammed_simulate(
            shuffled,
            protocol.factory,
            jammer=ReactiveJammer(4, probability=1.0, budget=1),
            max_rounds=budget,
            backend="reference",
        )
        assert base.rounds_elapsed == other.rounds_elapsed
        assert sorted(h.render() for h in base.histories.values()) == sorted(
            h.render() for h in other.histories.values()
        )


class TestOpaqueFallback:
    """An opaque jam schedule (plain callable, no ``event_rounds``) is
    rejected by the fast backend and silently falls back to the
    reference loop under ``backend='auto'`` — with results identical to
    the equivalent explicit schedule on either backend."""

    def test_fast_rejects_opaque(self):
        trace, protocol, network, budget = canonical_setup(h_m(2))
        with pytest.raises(BackendUnsupported):
            jammed_simulate(
                network,
                protocol.factory,
                jammer=lambda r, v: r == 2,
                max_rounds=budget,
                backend="fast",
            )

    def test_auto_falls_back_and_matches_explicit(self):
        trace, protocol, network, budget = canonical_setup(g_m(2))
        victim = next(iter(network.nodes))
        explicit = jam_pairs([(2, victim), (4, victim)])

        def opaque(r, v):
            return v == victim and r in (2, 4)

        auto = jammed_simulate(
            network,
            protocol.factory,
            jammer=opaque,
            max_rounds=budget,
            backend="auto",
        )
        assert auto.backend_stats.backend == "reference"
        for backend in ("reference", "fast"):
            assert_execution_equal(
                jammed_simulate(
                    network,
                    protocol.factory,
                    jammer=explicit,
                    max_rounds=budget,
                    backend=backend,
                ),
                auto,
                context=f"opaque vs explicit on {backend}",
            )
