"""Unit tests for the radio simulator: wakeup semantics, collision rules,
termination and trace recording."""

import pytest

from repro.core.configuration import Configuration, line_configuration
from repro.radio.events import FORCED, SPONTANEOUS
from repro.radio.history import History
from repro.radio.model import COLLISION, LISTEN, SILENCE, TERMINATE, Message, Transmit
from repro.radio.protocol import AlwaysListenDRIP, DRIP, ScheduleDRIP, anonymous_factory
from repro.radio.simulator import (
    ProtocolViolation,
    RadioSimulator,
    SimulationTimeout,
    simulate,
)


def listen_factory(horizon):
    return anonymous_factory(lambda: AlwaysListenDRIP(horizon))


def schedule_factory(schedules, done):
    """Per-node fixed schedules: {node: {local_round: msg}}."""

    def factory(v):
        return ScheduleDRIP(schedules.get(v, {}), done)

    return factory


class TestWakeup:
    def test_spontaneous_wakeup_at_tag(self):
        cfg = line_configuration([0, 2])
        ex = simulate(cfg, listen_factory(3))
        assert ex.wake_rounds == {0: 0, 1: 2}
        assert ex.wake_kinds == {0: SPONTANEOUS, 1: SPONTANEOUS}

    def test_spontaneous_entry_is_silence(self):
        cfg = line_configuration([0, 1])
        ex = simulate(cfg, listen_factory(2))
        assert ex.histories[0][0] is SILENCE
        assert ex.histories[1][0] is SILENCE

    def test_forced_wakeup_by_message(self):
        # node 0 (tag 0) transmits in its local round 1 = global round 1;
        # node 1 (tag 5) is woken early.
        cfg = line_configuration([0, 5])
        ex = simulate(cfg, schedule_factory({0: {1: "hi"}}, 3))
        assert ex.wake_rounds[1] == 1
        assert ex.wake_kinds[1] == FORCED
        assert ex.histories[1][0] == Message("hi")

    def test_collision_does_not_wake_sleeper(self):
        # nodes 0 and 2 both transmit at global round 1; middle node 1 has
        # tag 5 and is adjacent to both -> noise, stays asleep until 5.
        cfg = line_configuration([0, 5, 0])
        ex = simulate(cfg, schedule_factory({0: {1: "x"}, 2: {1: "x"}}, 7))
        assert ex.wake_rounds[1] == 5
        assert ex.wake_kinds[1] == SPONTANEOUS

    def test_spontaneous_wakeup_with_collision_records_noise(self):
        # both neighbours transmit exactly at the middle node's tag round.
        cfg = line_configuration([0, 1, 0])
        ex = simulate(cfg, schedule_factory({0: {1: "x"}, 2: {1: "x"}}, 3))
        assert ex.wake_rounds[1] == 1
        assert ex.wake_kinds[1] == SPONTANEOUS
        assert ex.histories[1][0] is COLLISION

    def test_forced_wakeup_wins_at_tag_round(self):
        # a single message arriving exactly at the tag round is a forced
        # wakeup per Section 2.1 (r <= t_v with a message received).
        cfg = line_configuration([0, 1])
        ex = simulate(cfg, schedule_factory({0: {1: "m"}}, 3))
        assert ex.wake_kinds[1] == FORCED
        assert ex.histories[1][0] == Message("m")


class TestReception:
    def test_single_transmitter_heard(self):
        cfg = line_configuration([0, 0])
        ex = simulate(cfg, schedule_factory({0: {2: "ping"}}, 4))
        assert ex.histories[1][2] == Message("ping")

    def test_transmitter_hears_nothing(self):
        cfg = line_configuration([0, 0])
        ex = simulate(cfg, schedule_factory({0: {2: "ping"}, 1: {2: "pong"}}, 4))
        # both transmit simultaneously: each hears (∅)
        assert ex.histories[0][2] is SILENCE
        assert ex.histories[1][2] is SILENCE

    def test_collision_at_listener(self):
        # star: leaves 1 and 2 transmit together; centre 0 hears noise.
        cfg = Configuration([(0, 1), (0, 2)], {0: 0, 1: 0, 2: 0})
        ex = simulate(cfg, schedule_factory({1: {2: "a"}, 2: {2: "b"}}, 4))
        assert ex.histories[0][2] is COLLISION

    def test_simultaneous_tx_between_neighbours_not_heard(self):
        # Paper: if v transmits it hears nothing, even if w transmits too.
        cfg = Configuration([(0, 1), (0, 2)], {0: 0, 1: 0, 2: 0})
        ex = simulate(cfg, schedule_factory({0: {2: "c"}, 1: {2: "l"}}, 4))
        # 0 transmitted: silence. 2 listens and hears... both 0's and 1's?
        # 2 is adjacent only to 0 -> exactly one transmitting neighbour.
        assert ex.histories[0][2] is SILENCE
        assert ex.histories[2][2] == Message("c")

    def test_non_neighbours_do_not_interfere(self):
        cfg = line_configuration([0, 0, 0, 0])  # path 0-1-2-3
        ex = simulate(cfg, schedule_factory({0: {2: "x"}, 3: {2: "y"}}, 4))
        assert ex.histories[1][2] == Message("x")
        assert ex.histories[2][2] == Message("y")


class TestTermination:
    def test_done_local_is_terminate_round(self):
        cfg = line_configuration([0])
        ex = simulate(cfg, listen_factory(4))
        assert ex.done_local == {0: 4}
        # history covers H[0..done]
        assert len(ex.histories[0]) == 5

    def test_done_global_accounts_for_tag(self):
        cfg = line_configuration([0, 3])
        ex = simulate(cfg, listen_factory(2))
        assert ex.done_global(0) == 2
        assert ex.done_global(1) == 5

    def test_terminate_round_entry_recorded(self):
        # Node terminates in the round a neighbour transmits; the entry is
        # still recorded (f takes H[0..done_v]).
        cfg = line_configuration([0, 0])

        class TalkAtTwo(DRIP):
            def decide(self, history):
                if len(history) == 2:
                    return Transmit("late")
                return LISTEN if len(history) < 4 else TERMINATE

        class QuitAtTwo(DRIP):
            def decide(self, history):
                return TERMINATE if len(history) >= 2 else LISTEN

        def factory(v):
            return TalkAtTwo() if v == 0 else QuitAtTwo()

        ex = simulate(cfg, factory)
        assert ex.done_local[1] == 2
        assert ex.histories[1][2] == Message("late")

    def test_timeout(self):
        class Forever(DRIP):
            def decide(self, history):
                return LISTEN

        cfg = line_configuration([0])
        with pytest.raises(SimulationTimeout):
            simulate(cfg, anonymous_factory(Forever), max_rounds=50)

    def test_invalid_action_rejected(self):
        class Bad(DRIP):
            def decide(self, history):
                return "transmit please"

        cfg = line_configuration([0])
        with pytest.raises(ProtocolViolation):
            simulate(cfg, anonymous_factory(Bad))


class TestTrace:
    def test_trace_records_transmissions(self):
        cfg = line_configuration([0, 0])
        ex = simulate(cfg, schedule_factory({0: {1: "m"}}, 3), record_trace=True)
        tx_rounds = ex.transmission_rounds()
        assert tx_rounds == [1]
        rec = ex.trace[1]
        assert rec.transmitters == {0: "m"}

    def test_trace_records_wakeups(self):
        cfg = line_configuration([0, 2])
        ex = simulate(cfg, listen_factory(2), record_trace=True)
        assert (0, SPONTANEOUS) in ex.trace[0].wakeups
        assert (1, SPONTANEOUS) in ex.trace[2].wakeups

    def test_no_trace_by_default(self):
        cfg = line_configuration([0])
        ex = simulate(cfg, listen_factory(2))
        assert ex.trace is None
        with pytest.raises(ValueError):
            ex.transmission_rounds()

    def test_quiet_round_flag(self):
        cfg = line_configuration([0, 0])
        ex = simulate(cfg, schedule_factory({0: {2: "m"}}, 4), record_trace=True)
        assert not ex.trace[0].quiet  # wakeups
        assert ex.trace[1].quiet
        assert not ex.trace[2].quiet  # transmission


class TestResultQueries:
    def test_history_partition_groups_equal_histories(self):
        cfg = line_configuration([0, 1, 0])
        ex = simulate(cfg, listen_factory(3))
        # all silent histories; end nodes have degree 1, middle degree 2 —
        # but with no transmissions, histories are identical everywhere.
        assert ex.history_partition() == [[0, 1, 2]]
        assert ex.unique_history_nodes() == []

    def test_unique_history_detection(self):
        cfg = line_configuration([0, 0])
        ex = simulate(cfg, schedule_factory({0: {1: "m"}}, 3))
        assert set(ex.unique_history_nodes()) == {0, 1}

    def test_all_spontaneous(self):
        cfg = line_configuration([0, 5])
        ex = simulate(cfg, schedule_factory({0: {1: "m"}}, 3))
        assert not ex.all_spontaneous()
        ex2 = simulate(cfg, listen_factory(2))
        assert ex2.all_spontaneous()

    def test_negative_tag_rejected(self):
        # negative tags are rejected at configuration level already; the
        # simulator double-checks via its own guard:
        class FakeNet:
            nodes = (0,)

            def neighbors(self, v):
                return ()

            def tag(self, v):
                return -1

        with pytest.raises(ValueError):
            RadioSimulator(FakeNet(), listen_factory(1))

    def test_empty_network_rejected(self):
        class Empty:
            nodes = ()

            def neighbors(self, v):
                return ()

            def tag(self, v):
                return 0

        with pytest.raises(ValueError):
            RadioSimulator(Empty(), listen_factory(1))
