"""Unit tests for sweep measurement and growth-rate fitting."""

import math

import pytest

from repro.analysis.rounds import (
    SweepPoint,
    SweepResult,
    is_linear,
    is_superlinear,
    ratio_trend,
    sweep,
)


class TestSweep:
    def test_basic_sweep(self):
        result = sweep("sq", [1, 2, 4, 8], lambda x: x * x, bound=lambda x: 2 * x * x)
        assert len(result.points) == 4
        assert result.all_within_bounds()
        assert result.violations() == []

    def test_violations_detected(self):
        result = sweep("bad", [1, 2], lambda x: 10 * x, bound=lambda x: x)
        assert not result.all_within_bounds()
        assert len(result.violations()) == 2

    def test_no_bound_is_nan_and_within(self):
        result = sweep("free", [1, 2], lambda x: x)
        assert result.all_within_bounds()
        assert math.isnan(result.points[0].bound)

    def test_table_shape(self):
        result = sweep("t", [1, 2], lambda x: x, bound=lambda x: x + 1)
        table = result.as_table()
        assert len(table) == 2
        assert len(table[0]) == len(result.TABLE_HEADERS)


class TestGrowthExponent:
    def test_linear(self):
        result = sweep("lin", [2, 4, 8, 16, 32], lambda x: 3 * x)
        assert abs(result.growth_exponent() - 1.0) < 1e-9
        assert is_linear(result)
        assert is_superlinear(result)

    def test_quadratic(self):
        result = sweep("quad", [2, 4, 8, 16], lambda x: x * x)
        assert abs(result.growth_exponent() - 2.0) < 1e-9
        assert not is_linear(result)

    def test_constant(self):
        result = sweep("const", [2, 4, 8], lambda x: 7)
        assert abs(result.growth_exponent()) < 1e-9
        assert not is_superlinear(result)

    def test_needs_two_points(self):
        result = SweepResult("one", [SweepPoint(x=1, value=1)])
        with pytest.raises(ValueError):
            result.growth_exponent()

    def test_zero_points_filtered(self):
        result = SweepResult(
            "z",
            [
                SweepPoint(x=0, value=0),
                SweepPoint(x=2, value=4),
                SweepPoint(x=4, value=16),
            ],
        )
        assert abs(result.growth_exponent() - 2.0) < 1e-9


class TestRatioTrend:
    def test_ratios(self):
        result = sweep("r", [1, 2], lambda x: x, bound=lambda x: 2 * x)
        assert ratio_trend(result) == [0.5, 0.5]

    def test_nan_for_missing_bound(self):
        result = sweep("r", [1], lambda x: x)
        assert math.isnan(ratio_trend(result)[0])
