"""Every fenced ``python`` block in the docs executes successfully.

Documentation is part of the public surface; an example that raises is
a release blocker no matter what the unit tests say. This test walks
``README.md`` and ``docs/*.md``, extracts every fenced code block
tagged ``python``, and executes it:

* blocks written in doctest style (``>>>``) run under :mod:`doctest`
  with output comparison;
* plain blocks run under ``exec`` in a fresh namespace.

Both run with the current directory pointed at a temp dir, so examples
may freely write files (``census.jsonl``, checkpoints, ...). Blocks
tagged ``python no-run`` are skipped (none currently; the escape hatch
exists for examples that would need external services).
"""

import doctest
import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent
DOC_FILES = sorted([ROOT / "README.md", *(ROOT / "docs").glob("*.md")])

_FENCE = re.compile(
    r"^```python[ \t]*(?P<info>[^\n]*)\n(?P<code>.*?)^```[ \t]*$",
    re.MULTILINE | re.DOTALL,
)


def python_blocks():
    """Yield (doc-relative-path, line-number, info-string, code)."""
    out = []
    for path in DOC_FILES:
        text = path.read_text(encoding="utf-8")
        for match in _FENCE.finditer(text):
            line = text[: match.start()].count("\n") + 1
            out.append(
                (
                    path.relative_to(ROOT).as_posix(),
                    line,
                    match.group("info").strip(),
                    match.group("code"),
                )
            )
    return out


BLOCKS = python_blocks()


def test_docs_contain_python_examples():
    """The extraction itself is load-bearing: if the fence regex rots,
    every per-block test would silently vanish. Pin the corpus shape."""
    files_with_blocks = {path for path, _, _, _ in BLOCKS}
    assert "README.md" in files_with_blocks
    assert "docs/api.md" in files_with_blocks
    assert "docs/service.md" in files_with_blocks
    assert len(BLOCKS) >= 8


@pytest.mark.parametrize(
    "path,line,info,code",
    BLOCKS,
    ids=[f"{p}:L{ln}" for p, ln, _, _ in BLOCKS],
)
def test_python_block_executes(path, line, info, code, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)  # examples may write files
    if "no-run" in info.split():
        pytest.skip(f"{path}:{line} tagged no-run")
    if ">>>" in code:
        parser = doctest.DocTestParser()
        test = parser.get_doctest(code, {}, f"{path}:L{line}", path, line)
        runner = doctest.DocTestRunner(verbose=False)
        runner.run(test)
        assert runner.failures == 0, (
            f"doctest block at {path}:L{line} failed "
            f"({runner.failures}/{runner.tries} examples)"
        )
    else:
        namespace = {"__name__": f"docexample_{line}"}
        try:
            exec(compile(code, f"{path}:L{line}", "exec"), namespace)
        except Exception as exc:  # pragma: no cover - failure reporting
            pytest.fail(f"example at {path}:L{line} raised {exc!r}")
