"""The hash-based classifier must be bit-identical to the faithful one."""

import pytest

from conftest import random_config_batch

from repro.core.classifier import classify
from repro.core.configuration import Configuration, line_configuration
from repro.core.fast_classifier import fast_classify, traces_equal
from repro.graphs.families import g_m, h_m, s_m


class TestEquivalenceOnFamilies:
    @pytest.mark.parametrize("m", [1, 2, 3, 7])
    def test_h_m(self, m):
        assert traces_equal(classify(h_m(m)), fast_classify(h_m(m)))

    @pytest.mark.parametrize("m", [1, 2, 3, 7])
    def test_s_m(self, m):
        assert traces_equal(classify(s_m(m)), fast_classify(s_m(m)))

    @pytest.mark.parametrize("m", [2, 3, 4])
    def test_g_m(self, m):
        assert traces_equal(classify(g_m(m)), fast_classify(g_m(m)))

    def test_single_node(self):
        cfg = Configuration([], {0: 0})
        assert traces_equal(classify(cfg), fast_classify(cfg))


class TestEquivalenceOnRandomBatch:
    def test_batch_of_random_configs(self):
        for cfg in random_config_batch(60, base_seed=777):
            a, b = classify(cfg), fast_classify(cfg)
            assert traces_equal(a, b), f"divergence on {cfg!r}"

    def test_exact_class_numbering_preserved(self):
        # not just the same partition: the same class numbers & reps
        for cfg in random_config_batch(20, base_seed=31):
            a, b = classify(cfg), fast_classify(cfg)
            for j in range(1, a.num_iterations + 2):
                assert a.classes_at(j) == b.classes_at(j)
                assert a.reps_at(j) == b.reps_at(j)


class TestTracesEqualHelper:
    def test_detects_decision_difference(self):
        a = classify(h_m(1))
        b = classify(h_m(1))
        b.decision = "No"
        assert not traces_equal(a, b)

    def test_detects_iteration_difference(self):
        a = classify(g_m(2))
        b = classify(g_m(2))
        b.iterations[0].num_classes_after += 1
        assert not traces_equal(a, b)

    def test_detects_truncation(self):
        a = classify(g_m(2))
        b = classify(g_m(2))
        b.iterations.pop()
        assert not traces_equal(a, b)

    def test_equal_to_itself(self):
        a = classify(line_configuration([0, 1, 2]))
        assert traces_equal(a, a)
