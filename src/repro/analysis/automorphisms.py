"""Tag-preserving automorphisms: an independent feasibility check.

An automorphism of the underlying graph that also preserves wakeup tags
maps executions of any DRIP to executions, entry by entry — so nodes in
the same orbit have *identical histories under every protocol*. Hence:

    feasible  ⇒  some node is fixed by every tag-preserving automorphism.

(The converse does not hold in general — partition refinement can get
stuck without a global symmetry — so this is a *necessary* condition. The
test-suite uses it as ground truth for the "No" direction and as a
cross-check of the classifier's "Yes" answers.)

Orbit structure (:func:`automorphism_orbits`, :func:`fixed_nodes`,
:func:`is_rigid`) is computed from the *generators* the canonical
labeling search discovers as a byproduct (:mod:`repro.canon`): the
generating set is provably complete, so a union-find closure over it
yields the exact orbit partition without enumerating the group — whose
order can be exponential. Full enumeration
(:func:`tag_preserving_automorphisms`, backed by networkx's VF2) remains
available for callers that need every automorphism explicitly.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Set

from ..core.configuration import Configuration


def tag_preserving_automorphisms(
    config: Configuration, *, limit: int = None
) -> Iterator[Dict[object, object]]:
    """Yield tag-preserving automorphisms as node->node dicts.

    Backed by networkx's VF2 matcher with a tag-equality node match.
    ``limit`` truncates the (potentially exponential) enumeration.
    """
    import networkx as nx
    from networkx.algorithms.isomorphism import GraphMatcher, categorical_node_match

    g = config.to_networkx()
    matcher = GraphMatcher(g, g, node_match=categorical_node_match("tag", None))
    count = 0
    for mapping in matcher.isomorphisms_iter():
        yield dict(mapping)
        count += 1
        if limit is not None and count >= limit:
            return


def automorphism_generators(config: Configuration) -> List[Dict[object, object]]:
    """Generators of the tag-preserving automorphism group.

    A (typically tiny) generating set discovered by the canonical
    labeling search — an empty list means the configuration is rigid.
    Memoized with the canonization itself.
    """
    from ..canon import automorphism_generators as canon_generators

    return [dict(g) for g in canon_generators(config)]


def fixed_nodes(config: Configuration, *, limit: int = None) -> List[object]:
    """Nodes fixed by *every* tag-preserving automorphism (sorted).

    A node is fixed by the whole group iff its orbit is a singleton, so
    the exact answer falls out of the generator-derived orbit partition.
    ``limit`` preserves the legacy truncated-enumeration mode (an
    over-approximation from the first ``limit`` automorphisms only).
    """
    if limit is not None:
        fixed: Set[object] = set(config.nodes)
        for phi in tag_preserving_automorphisms(config, limit=limit):
            fixed = {v for v in fixed if phi[v] == v}
            if not fixed:
                break
        return sorted(fixed)
    return sorted(
        orbit[0] for orbit in automorphism_orbits(config) if len(orbit) == 1
    )


def automorphism_orbits(config: Configuration) -> List[List[object]]:
    """Orbits of the tag-preserving automorphism group (sorted blocks).

    Nodes in the same orbit necessarily share histories under every DRIP,
    so the orbit partition refines *into* the classifier's final partition
    ... conversely every classifier class is a union of orbits.

    Computed as the union-find closure of the canonizer's generator set:
    ``u`` and ``v`` share an orbit iff some product of generators maps
    one to the other, and the discovered set generates the full group.
    """
    parent: Dict[object, object] = {v: v for v in config.nodes}

    def find(v):
        while parent[v] != v:
            parent[v] = parent[parent[v]]
            v = parent[v]
        return v

    def union(u, v):
        ru, rv = find(u), find(v)
        if ru != rv:
            parent[ru] = rv

    for phi in automorphism_generators(config):
        for v, w in phi.items():
            union(v, w)
    groups: Dict[object, List[object]] = {}
    for v in config.nodes:
        groups.setdefault(find(v), []).append(v)
    return sorted(sorted(g) for g in groups.values())


def has_fixed_node(config: Configuration) -> bool:
    """The necessary condition for feasibility."""
    return bool(fixed_nodes(config))


def is_rigid(config: Configuration) -> bool:
    """True iff the identity is the only tag-preserving automorphism.

    Equivalent to every orbit being a singleton (if no generator moves
    anything, the generated group is trivial), so this reads the
    canonizer's generator set instead of running a VF2 enumeration.
    """
    from ..canon import canonize

    return canonize(config).is_rigid
