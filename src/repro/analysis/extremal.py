"""Extremal analyses: span thresholds, hardest tags, iteration maxima.

The paper leaves quantitative structure implicit: *how much* wakeup-time
asymmetry does a given graph need before leader election becomes feasible,
which configurations make the Classifier work hardest relative to its
⌈n/2⌉-iteration ceiling (Lemma 3.4), and which tag assignments maximize
the dedicated election time within its O(n²σ) budget (Lemma 3.10)?
This module answers those questions by search:

* :func:`min_feasible_span` — the least span σ for which *some* tag
  assignment on a given graph is feasible (exhaustive over tag vectors
  for small n, seeded random search otherwise). A graph with a node fixed
  by every automorphism may already be feasible at σ = 0 is impossible —
  at σ = 0 all tags are equal and no node ever hears anything (paper
  Section 1.1) — so the answer is always ≥ 1 for n ≥ 2.
* :func:`max_iterations` — the configuration(s) maximizing
  ``decided_at`` over an exhaustive enumeration, vs the ⌈n/2⌉ bound.
* :func:`feasibility_probability` — Monte-Carlo estimate of the
  probability that a random configuration is feasible, as a function of
  span (the threshold curve the E15 experiment plots).
* :func:`hardest_tags` — seeded hill-climbing over tag assignments of a
  fixed graph and span, maximizing the dedicated election round count.
* :func:`campaign_witnesses` — campaign-driven extremal search: picks
  the extremal trials (slowest elections, heaviest effective jamming,
  derailments, failures) out of a :mod:`repro.campaigns` result set,
  deduplicated by canonical form so isomorphic repeats of one witness
  don't crowd out genuinely different ones.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from itertools import product
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.classifier import classify
from ..core.configuration import Configuration
from ..core.election import elect_leader
from ..graphs.enumeration import enumerate_configurations
from ..graphs.generators import build, random_connected_gnp_edges
from ..graphs.tags import uniform_random

Edge = Tuple[int, int]


# ----------------------------------------------------------------------
# minimal feasible span
# ----------------------------------------------------------------------
@dataclass
class SpanSearchResult:
    """Outcome of a minimal-span search on one graph."""

    edges: List[Edge]
    n: int
    #: least feasible span found, or None if none within the budget.
    span: Optional[int]
    #: a witness tag assignment achieving it.
    witness: Optional[Dict[int, int]]
    exhaustive: bool  #: True when the search provably covered all tags


def _tag_vectors(n: int, max_tag: int):
    """All normalized tag vectors (containing at least one 0)."""
    for tags in product(range(max_tag + 1), repeat=n):
        if min(tags) == 0:
            yield tags


def min_feasible_span(
    edges: Sequence[Edge],
    n: int,
    *,
    max_span: int = 4,
    exhaustive_limit: int = 6,
    samples: int = 400,
    seed: int = 0,
) -> SpanSearchResult:
    """Least span for which some tag assignment on the graph is feasible.

    Spans are tried in increasing order; for each span the search is
    exhaustive when ``(span+1)^n`` stays small (``n <= exhaustive_limit``
    heuristic) and randomized otherwise (so a None answer is only a bound
    in the randomized regime).
    """
    edges = [tuple(e) for e in edges]
    rng = random.Random(seed)
    exhaustive = n <= exhaustive_limit
    for span in range(0, max_span + 1):
        if exhaustive:
            for tags in _tag_vectors(n, span):
                if max(tags) != span:
                    continue  # realize exactly this span
                cfg = build(edges, dict(enumerate(tags)), n=n)
                if classify(cfg).feasible:
                    return SpanSearchResult(
                        edges=edges,
                        n=n,
                        span=span,
                        witness=dict(enumerate(tags)),
                        exhaustive=True,
                    )
        else:
            for _ in range(samples):
                tags = [rng.randint(0, span) for _ in range(n)]
                lo = min(tags)
                tags = [t - lo for t in tags]
                if max(tags) != span:
                    continue
                cfg = build(edges, dict(enumerate(tags)), n=n)
                if classify(cfg).feasible:
                    return SpanSearchResult(
                        edges=edges,
                        n=n,
                        span=span,
                        witness=dict(enumerate(tags)),
                        exhaustive=False,
                    )
    return SpanSearchResult(
        edges=edges, n=n, span=None, witness=None, exhaustive=exhaustive
    )


# ----------------------------------------------------------------------
# hardest instances for the classifier
# ----------------------------------------------------------------------
@dataclass
class IterationExtremum:
    """Max ``decided_at`` over an enumerated population."""

    n: int
    max_tag: int
    iterations: int  #: the maximum observed
    ceiling: int  #: the Lemma 3.4 bound ⌈n/2⌉
    witnesses: List[Configuration] = field(default_factory=list)

    @property
    def tightness(self) -> float:
        """Observed / bound — 1.0 means the bound is attained."""
        return self.iterations / self.ceiling if self.ceiling else 0.0


def max_iterations(
    n: int, max_tag: int, *, witness_limit: int = 3
) -> IterationExtremum:
    """Scan all configurations with ``n`` nodes, tags ``0..max_tag``."""
    best = 0
    witnesses: List[Configuration] = []
    for cfg in enumerate_configurations(n, max_tag):
        d = classify(cfg).decided_at
        if d > best:
            best = d
            witnesses = [cfg]
        elif d == best and len(witnesses) < witness_limit:
            witnesses.append(cfg)
    return IterationExtremum(
        n=n,
        max_tag=max_tag,
        iterations=best,
        ceiling=(n + 1) // 2,
        witnesses=witnesses[:witness_limit],
    )


# ----------------------------------------------------------------------
# feasibility probability curves
# ----------------------------------------------------------------------
@dataclass
class ProbabilityPoint:
    span: int
    samples: int
    feasible: int

    @property
    def fraction(self) -> float:
        return self.feasible / self.samples if self.samples else 0.0


def _feasible_record(cfg: Configuration) -> Dict[str, bool]:
    """Engine-cache evaluator: the bare feasibility verdict."""
    return {"feasible": classify(cfg).feasible}


def feasibility_probability(
    n: int,
    spans: Sequence[int],
    *,
    samples: int = 100,
    p: float = 0.3,
    seed: int = 0,
    cache=None,
) -> List[ProbabilityPoint]:
    """P(feasible) for random connected G(n, p) with uniform tags per span.

    The curve rises with span: more possible wakeup times means fewer
    accidental symmetries. Span 0 forces all tags equal, where only the
    single-node configuration is feasible — the paper's opening
    observation — so the first point is (essentially) zero.

    Classification goes through a canonical-form result cache
    (:mod:`repro.engine`): isomorphic samples are classified once, and a
    caller-supplied ``cache`` (optionally disk-backed) makes repeated
    curves near-free. Feasibility is isomorphism-invariant, so the curve
    is identical with or without caching.
    """
    from ..engine import ResultCache, cached_evaluate

    if cache is None:
        cache = ResultCache()
    points = []
    for si, span in enumerate(spans):
        hits = 0
        for k in range(samples):
            s = seed + 7919 * si + k
            edges = random_connected_gnp_edges(n, p, s)
            tags = uniform_random(range(n), span, s + 1)
            cfg = build(edges, tags, n=n)
            if cached_evaluate(cfg, cache, _feasible_record)["feasible"]:
                hits += 1
        points.append(ProbabilityPoint(span=span, samples=samples, feasible=hits))
    return points


# ----------------------------------------------------------------------
# adversarial tag search
# ----------------------------------------------------------------------
@dataclass
class TagSearchResult:
    """Outcome of hill-climbing for the hardest tag assignment."""

    config: Configuration  #: the best (hardest) configuration found
    objective: int  #: its objective value (election rounds by default)
    evaluations: int  #: number of objective evaluations spent
    trajectory: List[int] = field(default_factory=list)  #: best-so-far curve


def election_rounds_objective(cfg: Configuration) -> int:
    """Default objective: dedicated election time; 0 when infeasible."""
    trace = classify(cfg)
    if not trace.feasible:
        return 0
    return elect_leader(cfg, trace=trace).rounds


def hardest_tags(
    edges: Sequence[Edge],
    n: int,
    span: int,
    *,
    objective: Callable[[Configuration], int] = election_rounds_objective,
    restarts: int = 4,
    steps: int = 60,
    seed: int = 0,
) -> TagSearchResult:
    """Seeded hill-climbing over tag assignments with span ≤ ``span``.

    Moves change one node's tag; each restart starts from a fresh random
    assignment. Deterministic for a fixed seed. Returns the best
    configuration (ties broken by first discovery).
    """
    edges = [tuple(e) for e in edges]
    rng = random.Random(seed)
    evaluations = 0
    best_cfg: Optional[Configuration] = None
    best_val = -1
    trajectory: List[int] = []

    def evaluate(tags: List[int]) -> Tuple[int, Configuration]:
        nonlocal evaluations
        lo = min(tags)
        cfg = build(edges, {i: t - lo for i, t in enumerate(tags)}, n=n)
        evaluations += 1
        return objective(cfg), cfg

    for _ in range(max(1, restarts)):
        tags = [rng.randint(0, span) for _ in range(n)]
        val, cfg = evaluate(tags)
        for _ in range(steps):
            i = rng.randrange(n)
            new_tag = rng.randint(0, span)
            if new_tag == tags[i]:
                continue
            cand = list(tags)
            cand[i] = new_tag
            cand_val, cand_cfg = evaluate(cand)
            if cand_val > val:
                tags, val, cfg = cand, cand_val, cand_cfg
            if val > best_val:
                best_val, best_cfg = val, cfg
            trajectory.append(best_val)
        if val > best_val:
            best_val, best_cfg = val, cfg
        trajectory.append(best_val)

    assert best_cfg is not None
    return TagSearchResult(
        config=best_cfg,
        objective=best_val,
        evaluations=evaluations,
        trajectory=trajectory,
    )


# ----------------------------------------------------------------------
# campaign-driven extremal witnesses
# ----------------------------------------------------------------------
def _witness_key(record: Dict) -> Optional[str]:
    """Canonical-form dedupe key of a campaign trial record.

    Two trials whose configurations are tag-preserving isomorphic carry
    the same key; records without a rebuildable configuration spec map
    to None (kept, but never deduped against each other).
    """
    spec = record.get("config")
    if not spec:
        return None
    from ..engine.keys import default_keyer

    cfg = Configuration(
        edges=[tuple(e) for e in spec["edges"]],
        tags={v: t for v, t in spec["tags"]},
    )
    return default_keyer(cfg.normalize())


def _top_indices(
    records: List[Dict],
    value: Callable[[Dict], Optional[int]],
    limit: int,
) -> List[int]:
    """Indices of the ``limit`` largest-value records, canonically deduped.

    Candidates are ranked by ``value`` (records where it is None are
    skipped) descending, ties broken by trial index; at most one record
    per canonical configuration class survives.
    """
    ranked = sorted(
        (r for r in records if value(r) is not None),
        key=lambda r: (-value(r), r["index"]),
    )
    picked: List[int] = []
    seen_keys = set()
    for r in ranked:
        key = _witness_key(r)
        if key is not None:
            if key in seen_keys:
                continue
            seen_keys.add(key)
        picked.append(r["index"])
        if len(picked) >= limit:
            break
    return picked


def campaign_witnesses(results: List[Dict], *, limit: int = 3) -> Dict:
    """Extremal witness trials of a campaign, deduped by canonical form.

    ``results`` are :func:`repro.campaigns.run_trial` records. Returns a
    dict of witness categories, each a list of at most ``limit`` trial
    indices (replayable via ``repro-radio campaign replay``):

    * ``"max_rounds"`` — completed elections with the most global
      rounds (the by-rounds extremum);
    * ``"max_jams"`` — trials with the most *effective* jams (jams that
      changed a history entry — the by-ops adversary extremum);
    * ``"derailed"`` — feasible elections the adversary broke, hardest
      (fewest effective jams) first: the derail-boundary witnesses;
    * ``"failed"`` — timeout / match-error / crashed trials.

    Within each category at most one witness per canonical
    configuration class is kept, so isomorphic duplicates of one
    scenario don't mask distinct extremal scenarios.
    """
    completed = [r for r in results if r.get("rounds_elapsed") is not None]
    derailed = [r for r in results if r.get("outcome") == "derailed"]
    failed = [
        r
        for r in results
        if r.get("outcome") in ("timeout", "match_error", "error")
    ]
    return {
        "max_rounds": _top_indices(
            completed, lambda r: r.get("rounds_elapsed"), limit
        ),
        "max_jams": _top_indices(completed, lambda r: r.get("jams"), limit),
        "derailed": _top_indices(
            derailed, lambda r: -int(r.get("jams") or 0), limit
        ),
        "failed": _top_indices(failed, lambda r: r["index"], limit),
    }
