"""Cross-validation harness: every layer checked against every other.

For one configuration, :func:`validate` runs

1. the faithful classifier and the hash-based classifier (must produce
   identical traces),
2. the canonical DRIP as a distributed execution on the simulator,
3. the Lemma 3.9 equivalence — for every phase boundary ``r_{j-1}``, the
   partition of nodes by history prefix ``H[0..r_{j-1}]`` must equal the
   classifier partition ``vCLASS,j``,
4. the simulation-based feasibility ground truth — feasible iff some node
   ends with a unique history (Lemmas 3.11/3.16),
5. the automorphism necessary condition — a classifier "Yes" on a
   configuration with no globally fixed node would be a soundness bug,
6. the election outcome (unique leader iff feasible; leader identity;
   O(n²σ) bound).

Experiment E1 sweeps this over every small configuration; the property
tests sample it over random ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..core.classifier import classify
from ..core.configuration import Configuration
from ..core.election import elect_leader
from ..core.fast_classifier import fast_classify, traces_equal
from ..core.partition import partition_key
from .automorphisms import has_fixed_node


@dataclass
class ValidationReport:
    """Outcome of cross-validating one configuration."""

    config: Configuration
    feasible: bool
    leader: object
    rounds: int
    checks_run: int = 0
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def describe(self) -> str:
        """Multi-line human-readable report."""
        status = "OK" if self.ok else "FAILED: " + "; ".join(self.failures)
        return (
            f"validate(n={self.config.n}, σ={self.config.span}): "
            f"feasible={self.feasible} leader={self.leader} "
            f"rounds={self.rounds} [{self.checks_run} checks] {status}"
        )


def validate(config: Configuration, *, check_automorphisms: bool = True) -> ValidationReport:
    """Run the full cross-validation stack on one configuration."""
    trace = classify(config)
    report = ValidationReport(
        config=trace.config,
        feasible=trace.feasible,
        leader=trace.leader,
        rounds=0,
    )

    def check(condition: bool, message: str) -> None:
        report.checks_run += 1
        if not condition:
            report.failures.append(message)

    # 1. faithful vs hash-based classifier -----------------------------
    fast = fast_classify(config)
    check(traces_equal(trace, fast), "fast_classify trace differs from classify")

    # 2 + 6. distributed execution of the canonical protocol ------------
    election = elect_leader(config, trace=trace, check=False)
    report.rounds = election.rounds
    execution = election.execution

    check(
        execution.all_spontaneous(),
        "forced wakeup in canonical execution (Lemma 3.6 violated)",
    )
    dones = set(execution.done_local.values())
    check(len(dones) == 1, f"unsynchronized termination rounds {sorted(dones)}")
    check(
        election.rounds <= election.round_bound(),
        f"rounds {election.rounds} exceed O(n²σ) budget {election.round_bound()}",
    )

    # 3. Lemma 3.9: class partition == history-prefix partition ----------
    ends = election.protocol.data.phase_ends
    for j in range(1, trace.num_iterations + 2):
        if j - 1 >= len(ends):
            break
        upto = ends[j - 1]
        sim_partition = tuple(
            tuple(g) for g in execution.prefix_partition(upto)
        )
        cls_partition = partition_key(trace.classes_at(j))
        check(
            sim_partition == cls_partition,
            f"Lemma 3.9 violated at phase boundary r_{j - 1}={upto}: "
            f"history partition {sim_partition} != class partition "
            f"{cls_partition}",
        )

    # 4. simulation ground truth -----------------------------------------
    unique = execution.unique_history_nodes()
    check(
        bool(unique) == trace.feasible,
        f"simulation ground truth ({'unique' if unique else 'no unique'} "
        f"history) contradicts classifier decision {trace.decision}",
    )

    # 5. automorphism necessary condition --------------------------------
    if check_automorphisms and trace.feasible:
        check(
            has_fixed_node(trace.config),
            "classifier said Yes but no node is fixed by all "
            "tag-preserving automorphisms",
        )

    # 6. election outcome -------------------------------------------------
    if trace.feasible:
        check(
            election.elected and election.leader == trace.leader,
            f"election produced leaders {election.leaders!r}, classifier "
            f"isolated {trace.leader!r}",
        )
    else:
        check(
            not election.leaders,
            f"infeasible configuration elected {election.leaders!r}",
        )

    return report


def validate_many(configs, **kwargs) -> List[ValidationReport]:
    """Validate an iterable of configurations; return all reports."""
    return [validate(c, **kwargs) for c in configs]


def all_ok(configs, **kwargs) -> bool:
    """True iff every configuration passes validation."""
    return all(r.ok for r in validate_many(configs, **kwargs))
