"""Feasibility censuses over configuration populations.

Answers questions like "what fraction of random G(n,p) configurations with
span σ are feasible?" — the library's analogue of a results table for a
theory paper, and the workload of experiments E1, E11, E14 and E15.

:func:`census` is the one-pass in-memory implementation: everything is
classified and aggregated in a single sweep. With ``algorithm="auto"``
(the default) and numpy importable it streams chunks through the
vectorized batch kernel (:mod:`repro.core.batch`); an explicit serial
``algorithm`` — or a missing numpy — falls back to one classification
per configuration. Both paths aggregate identical numbers.
Production-scale sweeps go through :mod:`repro.engine` instead —
canonical-form caching, sharding, resume — and :func:`random_census`
routes there by default; the engine is contractually bit-for-bit equal
to :func:`census` on the same workload (see
``tests/test_engine_pipeline.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..core.classifier import classify
from ..core.configuration import Configuration
from ..core.election import elect_leader


@dataclass
class CensusRow:
    """Aggregate statistics for one census group."""

    group: object
    total: int = 0
    feasible: int = 0
    iterations_sum: int = 0
    rounds_sum: int = 0  #: election rounds over feasible members only

    @property
    def feasible_fraction(self) -> float:
        return self.feasible / self.total if self.total else 0.0

    @property
    def mean_iterations(self) -> float:
        return self.iterations_sum / self.total if self.total else 0.0

    @property
    def mean_rounds(self) -> float:
        return self.rounds_sum / self.feasible if self.feasible else 0.0


@dataclass
class CensusResult:
    rows: Dict[object, CensusRow] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return sum(r.total for r in self.rows.values())

    @property
    def feasible(self) -> int:
        return sum(r.feasible for r in self.rows.values())

    def sorted_rows(self) -> List[CensusRow]:
        """Rows in ascending key order."""
        return [self.rows[k] for k in sorted(self.rows)]

    def as_table(self) -> List[Tuple]:
        """Rows for :mod:`repro.reporting.tables`."""
        return [
            (
                row.group,
                row.total,
                row.feasible,
                f"{row.feasible_fraction:.3f}",
                f"{row.mean_iterations:.2f}",
                f"{row.mean_rounds:.1f}" if row.feasible else "-",
            )
            for row in self.sorted_rows()
        ]

    TABLE_HEADERS = ("group", "configs", "feasible", "fraction", "iters", "rounds")


def group_by_n(config: Configuration) -> int:
    """Census grouping key: configuration size.

    Module-level (not a lambda) so the engine's checkpoint fingerprint —
    which identifies groupings by definition site — matches between the
    CLI and :func:`random_census` for the same census.
    """
    return config.n


def census(
    configs: Iterable[Configuration],
    *,
    group_by: Callable[[Configuration], object] = None,
    measure_rounds: bool = False,
    algorithm: str = "auto",
    batch_size: int = 256,
) -> CensusResult:
    """Classify every configuration; aggregate by ``group_by(config)``.

    With ``measure_rounds`` the dedicated election algorithm is also run
    on every feasible configuration and its ``done_v`` accumulated.
    ``algorithm`` selects the classifier implementation (see
    :func:`repro.core.classifier.classify`); results are identical for
    every choice. ``"auto"`` resolves through
    :func:`repro.core.batch.resolve_batch_algorithm`: when numpy is
    importable the sweep streams through the vectorized batch kernel in
    chunks of ``batch_size`` configurations, otherwise (or for an
    explicit serial choice) it classifies one configuration at a time.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    if group_by is None:
        group_by = lambda c: (c.n, c.span)  # noqa: E731
    from ..core.batch import resolve_batch_algorithm

    if resolve_batch_algorithm(algorithm) == "batch":
        return _batched_census(configs, group_by, measure_rounds, batch_size)
    result = CensusResult()
    for config in configs:
        trace = classify(config, algorithm=algorithm)
        key = group_by(trace.config)
        row = result.rows.setdefault(key, CensusRow(group=key))
        row.total += 1
        row.iterations_sum += trace.num_iterations
        if trace.feasible:
            row.feasible += 1
            if measure_rounds:
                row.rounds_sum += elect_leader(trace.config, trace=trace).rounds
    return result


def _batched_census(
    configs: Iterable[Configuration],
    group_by: Callable[[Configuration], object],
    measure_rounds: bool,
    batch_size: int,
) -> CensusResult:
    """The vectorized :func:`census` path: chunked lockstep sweeps.

    Traces are materialized only under ``measure_rounds`` (the election
    replay needs them); a plain feasibility census stays on the kernel's
    verdict-only fast path. Aggregates are identical to the serial loop
    because the kernel is bit-for-bit equal to the serial classifiers.
    """
    from ..core.batch import batch_outcomes

    result = CensusResult()
    chunk: List[Configuration] = []

    def flush() -> None:
        for out in batch_outcomes(chunk, traces=measure_rounds):
            key = group_by(out.config)
            row = result.rows.setdefault(key, CensusRow(group=key))
            row.total += 1
            row.iterations_sum += out.iterations
            if out.feasible:
                row.feasible += 1
                if measure_rounds:
                    row.rounds_sum += elect_leader(out.config, trace=out.trace).rounds
        chunk.clear()

    for config in configs:
        chunk.append(config)
        if len(chunk) >= batch_size:
            flush()
    if chunk:
        flush()
    return result


def random_census_workload(
    n_values: Iterable[int], span: int, p: float, samples: int, seed: int
):
    """The random-census workload, as every census entry point builds it.

    Shared by :func:`random_census_run` and the CLI's distributed-queue
    roles, so a coordinator's queue and a direct engine run enumerate
    the identical population.
    """
    from ..engine import RandomGnpWorkload

    return RandomGnpWorkload(list(n_values), span, p, samples, seed)


def random_census_run(
    n_values: Iterable[int],
    span: int,
    p: float,
    samples: int,
    seed: int,
    *,
    measure_rounds: bool = False,
    num_shards: int = 1,
    cache=None,
    max_workers: Optional[int] = 1,
    checkpoint_dir: Optional[str] = None,
    algorithm: str = "auto",
    queue: Optional[str] = None,
    queue_workers: int = 1,
    lease_ttl: Optional[float] = None,
):
    """Engine run of the random census, returning the full ``CensusRun``.

    The single construction site for the random-census workload and its
    engine invocation: :func:`random_census` (which keeps the
    ``CensusResult``-returning signature) and the CLI (which also wants
    the run/cache accounting for its footer) both delegate here, so
    their checkpoints stay interchangeable by construction. With
    ``queue`` set, the run goes through the distributed work-queue path
    (``queue_workers`` worker processes; see ``docs/distributed.md``)
    and produces the identical result.
    """
    from ..engine import sharded_census

    workload = random_census_workload(n_values, span, p, samples, seed)
    extra = {}
    if queue is not None:
        extra["queue"] = queue
        extra["queue_workers"] = queue_workers
        if lease_ttl is not None:
            extra["lease_ttl"] = lease_ttl
    return sharded_census(
        workload,
        group_by=group_by_n,
        measure_rounds=measure_rounds,
        num_shards=num_shards,
        cache=cache,
        max_workers=max_workers,
        checkpoint_dir=checkpoint_dir,
        algorithm=algorithm,
        **extra,
    )


def random_census(
    n_values: Iterable[int],
    span: int,
    p: float,
    samples: int,
    seed: int,
    *,
    measure_rounds: bool = False,
    use_engine: bool = True,
    num_shards: int = 1,
    cache=None,
    max_workers: Optional[int] = 1,
    checkpoint_dir: Optional[str] = None,
    algorithm: str = "auto",
) -> CensusResult:
    """Census over seeded random connected G(n,p) configurations with
    uniform random tags in ``0..span``; grouped by n.

    By default the run goes through the :mod:`repro.engine` pipeline
    (canonical-form caching; optionally sharded, parallel, and
    checkpointed via the keyword arguments), which returns results
    identical to the serial path. ``use_engine=False`` forces the
    one-pass reference implementation — useful only for equality tests.
    """
    n_values = list(n_values)
    if use_engine:
        return random_census_run(
            n_values,
            span,
            p,
            samples,
            seed,
            measure_rounds=measure_rounds,
            num_shards=num_shards,
            cache=cache,
            max_workers=max_workers,
            checkpoint_dir=checkpoint_dir,
            algorithm=algorithm,
        ).result

    from ..graphs.generators import build, random_connected_gnp_edges
    from ..graphs.tags import uniform_random

    def configs():
        for n in n_values:
            for s in range(samples):
                base = seed + 7919 * s + 104729 * n
                edges = random_connected_gnp_edges(n, p, base)
                tags = uniform_random(range(n), span, base + 1)
                yield build(edges, tags, n=n)

    return census(
        configs(),
        group_by=group_by_n,
        measure_rounds=measure_rounds,
        algorithm=algorithm,
    )
