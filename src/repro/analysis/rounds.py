"""Round-complexity measurement and growth-rate estimation.

Used by the scaling experiments (E2, E3, E4, E7): measure a quantity over
a parameter sweep, then estimate the polynomial growth exponent from a
log-log least-squares fit (numpy), and compare measurements against the
paper's explicit bounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

import numpy as np


@dataclass
class SweepPoint:
    x: float  #: swept parameter (n, m, σ, ...)
    value: float  #: measured quantity (rounds, ops, ...)
    bound: float = float("nan")  #: the paper's bound at this x, if any

    @property
    def within_bound(self) -> bool:
        return not (self.value > self.bound)  # NaN-tolerant


@dataclass
class SweepResult:
    name: str
    points: List[SweepPoint]

    @property
    def xs(self) -> np.ndarray:
        return np.array([p.x for p in self.points], dtype=float)

    @property
    def values(self) -> np.ndarray:
        return np.array([p.value for p in self.points], dtype=float)

    def growth_exponent(self, tail: int = 0) -> float:
        """Least-squares slope of log(value) against log(x).

        For a quantity Θ(x^k) over a geometric sweep this converges to k;
        experiments assert a band around the paper's exponent. For
        quantities of the form a·x^k + b the additive constant biases the
        slope at small x; pass ``tail=j`` to fit only the j largest-x
        points and recover the asymptotic exponent.
        """
        xs, vs = self.xs, self.values
        mask = (xs > 0) & (vs > 0)
        if mask.sum() < 2:
            raise ValueError("need at least two positive points for a fit")
        lx, lv = np.log(xs[mask]), np.log(vs[mask])
        if tail and tail >= 2:
            order = np.argsort(lx)
            lx, lv = lx[order][-tail:], lv[order][-tail:]
        slope, _intercept = np.polyfit(lx, lv, 1)
        return float(slope)

    def all_within_bounds(self) -> bool:
        """True iff no point exceeds its bound."""
        return all(p.within_bound for p in self.points)

    def violations(self) -> List[SweepPoint]:
        """Points exceeding their bound."""
        return [p for p in self.points if not p.within_bound]

    def as_table(self) -> List[Tuple]:
        """Rows for :func:`repro.reporting.tables.format_table`."""
        return [
            (
                f"{p.x:g}",
                f"{p.value:g}",
                "-" if np.isnan(p.bound) else f"{p.bound:g}",
                "yes" if p.within_bound else "NO",
            )
            for p in self.points
        ]

    TABLE_HEADERS = ("x", "measured", "bound", "within")


def sweep(
    name: str,
    xs: Sequence[float],
    measure: Callable[[float], float],
    bound: Callable[[float], float] = None,
) -> SweepResult:
    """Evaluate ``measure`` (and optionally ``bound``) over ``xs``."""
    points = [
        SweepPoint(
            x=float(x),
            value=float(measure(x)),
            bound=float(bound(x)) if bound is not None else float("nan"),
        )
        for x in xs
    ]
    return SweepResult(name=name, points=points)


def ratio_trend(result: SweepResult) -> List[float]:
    """value/bound ratios — should stay ≤ 1 and roughly flat for a tight
    bound, or shrink for a loose one."""
    out = []
    for p in result.points:
        if np.isnan(p.bound) or p.bound == 0:
            out.append(float("nan"))
        else:
            out.append(p.value / p.bound)
    return out


def is_superlinear(result: SweepResult, margin: float = 0.15) -> bool:
    """Growth exponent at least ~1 (within ``margin``)."""
    return result.growth_exponent() >= 1.0 - margin


def is_linear(result: SweepResult, margin: float = 0.25) -> bool:
    """Growth exponent within ``margin`` of 1."""
    return abs(result.growth_exponent() - 1.0) <= margin
