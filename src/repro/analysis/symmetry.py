"""Executable symmetry arguments (the engine behind Section 4's proofs).

Every negative result in the paper runs on one move: if a configuration
has a tag-preserving automorphism pairing node ``u`` with node ``v``,
then *any* deterministic anonymous protocol gives ``u`` and ``v``
identical histories forever — so neither can be the unique leader. The
proofs of Propositions 4.1/4.4/4.5 instantiate this move on the
families ``G_m``/``H_m``/``S_m``. This module makes the move itself a
checkable library function:

* :func:`symmetry_pairs` — the node pairs identified by some nontrivial
  tag-preserving automorphism (the provably indistinguishable pairs);
* :func:`verify_pairwise_symmetry` — run an arbitrary protocol and check
  the paired histories really are identical (they must be — a failure
  would falsify the model implementation, and the property tests use it
  as exactly that kind of tripwire);
* :func:`gm_proof_pairs` — Proposition 4.1's pairing on ``G_m``
  (``a_i ↔ c_i`` and ``b_i ↔ b_{2m+2−i}``), checked against the generic
  automorphism computation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.configuration import Configuration
from ..radio.protocol import ProgramFactory
from ..radio.simulator import simulate
from .automorphisms import tag_preserving_automorphisms


def symmetry_pairs(
    config: Configuration, *, limit: Optional[int] = None
) -> List[Tuple[object, object]]:
    """Unordered pairs ``{u, v}`` with ``u ≠ v`` mapped to each other by
    some tag-preserving automorphism (sorted, deduplicated).

    ``u`` is mapped to ``v`` by *some* automorphism exactly when the two
    share an automorphism orbit, so the exact answer is every
    within-orbit pair of the generator-derived orbit partition
    (:func:`repro.analysis.automorphisms.automorphism_orbits`) — no
    group enumeration. Passing ``limit`` preserves the legacy truncated
    VF2 enumeration (an under-approximation from the first ``limit``
    automorphisms).
    """
    if limit is not None:
        pairs = set()
        for auto in tag_preserving_automorphisms(config, limit=limit):
            for u, v in auto.items():
                if u != v:
                    pairs.add((min(u, v), max(u, v)))
        return sorted(pairs)
    from .automorphisms import automorphism_orbits

    pairs = set()
    for orbit in automorphism_orbits(config):
        for i, u in enumerate(orbit):
            for v in orbit[i + 1:]:
                pairs.add((u, v))
    return sorted(pairs)


def verify_pairwise_symmetry(
    config: Configuration,
    factory: ProgramFactory,
    pairs: List[Tuple[object, object]],
    *,
    max_rounds: int = 100_000,
) -> Dict[Tuple[object, object], bool]:
    """Run the protocol; per pair, report whether the terminal histories
    coincide. All-True is the theorem; anything else is a bug report
    about the simulator or the protocol's anonymity."""
    execution = simulate(config, factory, max_rounds=max_rounds)
    return {
        (u, v): execution.histories[u] == execution.histories[v]
        for (u, v) in pairs
    }


def forced_non_leaders(config: Configuration) -> List[object]:
    """Nodes that can never be the unique leader of ``config``: members
    of some symmetry pair. Feasibility requires at least one node outside
    this set (the necessary condition the census cross-validates)."""
    out = set()
    for u, v in symmetry_pairs(config):
        out.add(u)
        out.add(v)
    return sorted(out)


def gm_proof_pairs(m: int) -> List[Tuple[int, int]]:
    """Proposition 4.1's pairing on ``G_m`` under this repo's node
    numbering (``a_1..a_m`` = 0..m−1, ``b_1..b_{2m+1}`` = m..3m,
    ``c_m..c_1`` = 3m+1..4m): the mirror swaps ``a_i ↔ c_i`` and
    ``b_i ↔ b_{2m+2−i}``; only the centre ``b_{m+1}`` is fixed."""
    if m < 2:
        raise ValueError("G_m is defined for m >= 2")
    n = 4 * m + 1
    pairs = []
    for i in range(n // 2):
        pairs.append((i, n - 1 - i))
    return pairs


def gm_pairs_match_automorphisms(m: int) -> bool:
    """Cross-check: the hand-derived Proposition 4.1 pairs are exactly
    the symmetry pairs the generic automorphism computation finds."""
    from ..graphs.families import g_m

    return symmetry_pairs(g_m(m)) == sorted(gm_proof_pairs(m))
