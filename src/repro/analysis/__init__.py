"""Analysis toolkit: automorphism checks, cross-validation, censuses and
round-complexity measurement."""

from .automorphisms import (
    automorphism_generators,
    automorphism_orbits,
    fixed_nodes,
    has_fixed_node,
    is_rigid,
    tag_preserving_automorphisms,
)
from .census import CensusResult, CensusRow, census, random_census
from .rounds import (
    SweepPoint,
    SweepResult,
    is_linear,
    is_superlinear,
    ratio_trend,
    sweep,
)
from .validation import ValidationReport, all_ok, validate, validate_many

from .extremal import (
    IterationExtremum,
    SpanSearchResult,
    TagSearchResult,
    feasibility_probability,
    hardest_tags,
    max_iterations,
    min_feasible_span,
)
from .isomorphism import (
    are_isomorphic,
    canonical_form,
    dedupe,
    find_isomorphism,
    orbit_of,
)
from .parallel import (
    parallel_cross_model,
    parallel_decisions,
    parallel_feasibility,
    parallel_map,
)
from .views import (
    ContrastCensus,
    ContrastRow,
    RefinementResult,
    color_refinement,
    radio_vs_wired,
    view_key,
    view_partition,
    wired_feasible,
)

from .quotient import (
    QuotientClass,
    QuotientGraph,
    classifier_quotient,
    equitability_violations,
    infeasibility_certificate,
    quotient_graph,
    radio_stable,
)

from .symmetry import (
    forced_non_leaders,
    gm_proof_pairs,
    symmetry_pairs,
    verify_pairwise_symmetry,
)

__all__ = [
    "CensusResult",
    "CensusRow",
    "ContrastCensus",
    "ContrastRow",
    "IterationExtremum",
    "QuotientClass",
    "QuotientGraph",
    "RefinementResult",
    "SpanSearchResult",
    "SweepPoint",
    "SweepResult",
    "TagSearchResult",
    "ValidationReport",
    "all_ok",
    "are_isomorphic",
    "automorphism_generators",
    "automorphism_orbits",
    "canonical_form",
    "census",
    "classifier_quotient",
    "color_refinement",
    "dedupe",
    "equitability_violations",
    "feasibility_probability",
    "find_isomorphism",
    "fixed_nodes",
    "forced_non_leaders",
    "gm_proof_pairs",
    "hardest_tags",
    "has_fixed_node",
    "infeasibility_certificate",
    "is_linear",
    "is_rigid",
    "is_superlinear",
    "max_iterations",
    "min_feasible_span",
    "orbit_of",
    "parallel_cross_model",
    "parallel_decisions",
    "parallel_feasibility",
    "parallel_map",
    "quotient_graph",
    "radio_stable",
    "radio_vs_wired",
    "random_census",
    "ratio_trend",
    "sweep",
    "symmetry_pairs",
    "tag_preserving_automorphisms",
    "validate",
    "validate_many",
    "verify_pairwise_symmetry",
    "view_key",
    "view_partition",
    "wired_feasible",
]
