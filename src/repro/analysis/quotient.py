"""Quotient structure of a partition: the symmetry skeleton.

When ``Classifier`` answers **No**, its final partition is a fixpoint:
every class looks the same to every class, forever. The *quotient graph*
of that partition — one vertex per class, annotated with class sizes,
tags and inter-class edge multiplicities — is the skeleton of the
configuration's unbreakable symmetry, and is the most compact certificate
of infeasibility the refinement produces. This module builds quotients
for classifier partitions (and for any partition, e.g. the wired
refinement's), checks the fixpoint property structurally, and renders the
skeleton for humans.

Two distinct stability notions coexist here, and the difference *is* the
difference between the paper's model and the wired model:

* **equitable** (:meth:`QuotientGraph.is_equitable`) — every ordered
  class pair has uniform inter-class degree. This is the fixpoint
  condition of wired color refinement
  (:func:`repro.analysis.views.color_refinement`), where every neighbour
  is always heard.
* **radio-stable** (:func:`radio_stable`) — the paper's Partitioner would
  not split any class: per class pair *and tag offset*, capped-at-2
  transmitter counts are uniform, with same-class-same-tag neighbours
  excluded (they transmit exactly when the listener does and are never
  heard). A classifier No-partition is radio-stable but need **not** be
  equitable: the all-equal-tags star is one class — the hub's extra
  degree is invisible because everyone transmits simultaneously.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.classifier import classify
from ..core.configuration import Configuration
from ..core.partition import class_members
from ..core.trace import ClassifierTrace


@dataclass
class QuotientClass:
    """One class of the quotient."""

    index: int
    members: List[object]
    #: common wakeup tag when all members share one, else None.
    tag: Optional[int]

    @property
    def size(self) -> int:
        return len(self.members)


@dataclass
class QuotientGraph:
    """The quotient of a configuration by a node partition."""

    config: Configuration
    classes: List[QuotientClass]
    #: (class_a, class_b) -> per-A-member count of B-neighbours, when that
    #: count is the same for every member of A; else None (irregular).
    degrees: Dict[Tuple[int, int], Optional[int]] = field(default_factory=dict)

    @property
    def num_classes(self) -> int:
        return len(self.classes)

    def is_equitable(self) -> bool:
        """True iff every inter-class degree is uniform (an equitable
        partition — the fixpoint condition of degree-based refinement)."""
        return all(v is not None for v in self.degrees.values())

    def singleton_classes(self) -> List[int]:
        """Indices of size-1 classes (potential leaders)."""
        return [c.index for c in self.classes if c.size == 1]

    def render(self) -> str:
        """Human-readable skeleton."""
        lines = [
            f"quotient: {self.num_classes} classes over n={self.config.n}"
            + ("" if self.is_equitable() else " (NOT equitable)")
        ]
        for c in self.classes:
            tag = "mixed" if c.tag is None else c.tag
            lines.append(
                f"  C{c.index}: size {c.size}, tag {tag}, members {c.members}"
            )
        for (a, b), d in sorted(self.degrees.items()):
            if d:
                lines.append(f"  C{a} -> C{b}: {d} edge(s) per member")
        return "\n".join(lines)


def quotient_graph(
    config: Configuration, partition: Dict[object, int]
) -> QuotientGraph:
    """Build the quotient of ``config`` by ``partition`` (node -> class)."""
    members = class_members(partition)
    classes = []
    for k in sorted(members):
        tags = {config.tag(v) for v in members[k]}
        classes.append(
            QuotientClass(
                index=k,
                members=members[k],
                tag=tags.pop() if len(tags) == 1 else None,
            )
        )
    degrees: Dict[Tuple[int, int], Optional[int]] = {}
    for a in sorted(members):
        for b in sorted(members):
            counts = {
                sum(1 for w in config.neighbors(v) if partition[w] == b)
                for v in members[a]
            }
            degrees[(a, b)] = counts.pop() if len(counts) == 1 else None
    # drop zero-degree pairs for compactness (uniformly zero is regular)
    degrees = {
        ab: d for ab, d in degrees.items() if d is None or d > 0 or ab[0] == ab[1]
    }
    return QuotientGraph(config=config, classes=classes, degrees=degrees)


def classifier_quotient(
    config: Configuration, *, trace: Optional[ClassifierTrace] = None
) -> QuotientGraph:
    """Quotient by the classifier's final partition."""
    if trace is None:
        trace = classify(config)
    return quotient_graph(trace.config, trace.final_classes())


def infeasibility_certificate(config: Configuration) -> Optional[QuotientGraph]:
    """For an infeasible configuration, its stable quotient (all class
    sizes ≥ 2 and tags uniform per class); None when feasible.

    The quotient is the compact 'why not': a fixpoint partition with no
    singleton class means no node can ever acquire a unique history.
    """
    trace = classify(config)
    if trace.feasible:
        return None
    q = classifier_quotient(config, trace=trace)
    assert not q.singleton_classes()
    return q


def equitability_violations(
    config: Configuration, partition: Dict[object, int]
) -> List[Tuple[int, int]]:
    """Class pairs whose inter-class degrees are non-uniform — empty for
    an equitable partition (e.g. a wired color-refinement fixpoint)."""
    q = quotient_graph(config, partition)
    return sorted(ab for ab, d in q.degrees.items() if d is None)


def radio_stable(config: Configuration, partition: Dict[object, int]) -> bool:
    """The paper's fixpoint condition: one more ``Partitioner`` pass with
    this partition as the class assignment would split nothing.

    Checked by recomputing the Algorithm 3 labels under ``partition`` and
    verifying label equality within every class — capped multiplicities,
    tag offsets and the same-class-same-tag exclusion included.
    """
    from ..core.partition import compute_label

    members = class_members(partition)
    for nodes in members.values():
        labels = {compute_label(config, v, partition) for v in nodes}
        if len(labels) > 1:
            return False
    return True
