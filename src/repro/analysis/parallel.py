"""Parallel batch execution for censuses and sweeps.

Feasibility censuses are embarrassingly parallel: every configuration is
classified independently. This module provides process-pool wrappers with
deterministic output ordering, so batch classification can use all cores
without changing any result. The census pipeline in
:mod:`repro.engine.pipeline` layers on :func:`parallel_map` — it fans
cache *misses* out over the pool while the canonical-form cache absorbs
duplicates — and is the entry point the big censuses (E1, E11, E14, E15)
use; the wrappers below remain the direct, cache-free path (E19).

Design notes (per the HPC guides this repository follows):

* work items are chunked to amortize pickling overhead — the per-item
  cost of classifying a small configuration is microseconds, so a naive
  one-task-per-item pool would be slower than serial;
* everything needed by a worker crosses the process boundary as an
  argument (no globals), and all functions submitted are module-level —
  the requirements ``pickle`` imposes;
* results are returned in input order regardless of completion order, so
  parallel and serial runs are bit-for-bit interchangeable;
* ``max_workers=0`` or ``1`` short-circuits to the serial path (used by
  tests and by callers running inside an already-parallel harness).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Dict, Iterable, List, Optional, Sequence, TypeVar

from ..core.classifier import classify
from ..core.configuration import Configuration

T = TypeVar("T")
R = TypeVar("R")


def available_cpus() -> int:
    """CPUs this process may actually run on.

    Prefers ``os.sched_getaffinity(0)`` — which reflects cgroup/affinity
    limits, the number that matters inside containers and CI runners
    where ``os.cpu_count()`` reports the whole host — and falls back to
    ``os.cpu_count()`` on platforms without affinity support (macOS,
    Windows) or when the call fails.
    """
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            return len(getaffinity(0))
        except OSError:  # pragma: no cover - platform-specific failure
            pass
    return os.cpu_count() or 2


def default_workers() -> int:
    """Worker count: all *available* cores but one (leave the harness a
    core). Container-aware via :func:`available_cpus`."""
    return max(1, available_cpus() - 1)


def _chunks(items: Sequence[T], size: int) -> List[List[T]]:
    return [list(items[i : i + size]) for i in range(0, len(items), size)]


def _apply_chunk(fn: Callable[[T], R], chunk: List[T]) -> List[R]:
    return [fn(x) for x in chunk]


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    *,
    max_workers: Optional[int] = None,
    chunksize: int = 16,
) -> List[R]:
    """Order-preserving parallel map over picklable items.

    ``fn`` must be a module-level function (pickling requirement). With
    ``max_workers`` ≤ 1 the map runs serially in-process — identical
    results, no pool overhead.
    """
    items = list(items)
    if chunksize < 1:
        raise ValueError("chunksize must be >= 1")
    workers = default_workers() if max_workers is None else max_workers
    if workers <= 1 or len(items) <= chunksize:
        return [fn(x) for x in items]
    chunks = _chunks(items, chunksize)
    out: List[R] = []
    with ProcessPoolExecutor(max_workers=workers) as pool:
        for result in pool.map(_apply_chunk, [fn] * len(chunks), chunks):
            out.extend(result)
    return out


# ----------------------------------------------------------------------
# census workers (module-level for picklability)
# ----------------------------------------------------------------------
def _feasibility_worker(cfg: Configuration) -> bool:
    return classify(cfg).feasible


def _decision_worker(cfg: Configuration) -> Dict[str, object]:
    trace = classify(cfg)
    return {
        "feasible": trace.feasible,
        "iterations": trace.decided_at,
        "leader": trace.leader,
        "n": trace.config.n,
        "span": trace.sigma,
    }


def _cross_model_worker(cfg: Configuration) -> Dict[str, bool]:
    from ..variants.census import cross_model_row

    return cross_model_row(cfg).feasible


def parallel_feasibility(
    configs: Iterable[Configuration],
    *,
    max_workers: Optional[int] = None,
    chunksize: int = 16,
) -> List[bool]:
    """Classifier verdicts for a batch, in input order."""
    return parallel_map(
        _feasibility_worker, configs, max_workers=max_workers, chunksize=chunksize
    )


def parallel_decisions(
    configs: Iterable[Configuration],
    *,
    max_workers: Optional[int] = None,
    chunksize: int = 16,
) -> List[Dict[str, object]]:
    """Per-configuration decision summaries (feasible / iterations /
    leader / n / span), in input order."""
    return parallel_map(
        _decision_worker, configs, max_workers=max_workers, chunksize=chunksize
    )


def parallel_cross_model(
    configs: Iterable[Configuration],
    *,
    max_workers: Optional[int] = None,
    chunksize: int = 8,
) -> List[Dict[str, bool]]:
    """Channel-by-channel verdicts (E11's inner loop), in input order."""
    return parallel_map(
        _cross_model_worker, configs, max_workers=max_workers, chunksize=chunksize
    )
