"""Wired-model contrast: views and color refinement.

The paper's introduction argues that anonymous *radio* networks are the
most adverse scenario for symmetry breaking: in anonymous *wired*
message-passing networks, delivery is reliable and simultaneous, so nodes
can relay neighbourhoods of growing radius and elect a leader from
topological asymmetry alone (Yamashita–Kameda [40, 41]; Boldi et al.
[5]) — no wakeup-time differences needed.

This module makes that contrast executable:

* :func:`color_refinement` — iterated anonymous-broadcast refinement
  (1-WL) with initial colors ``(tag, degree)``: each round every node
  reliably learns the multiset of its neighbours' colors. Its fixpoint
  partition is exactly the view-equivalence partition of the tagged
  graph (validated against explicit view trees in the tests).
* :func:`view_key` — the depth-``d`` view of a node as a canonical
  nested structure, the textbook object the refinement summarizes.
* :func:`wired_feasible` — leader election feasibility in the wired
  anonymous model: some node's view is unique, i.e. the fixpoint
  partition has a singleton class.
* :func:`radio_vs_wired` — contrast census. The theory predicts strict
  one-way dominance:

  - **radio-feasible ⇒ wired-feasible**: the radio label of Algorithm 3
    is a function of the node's tag and the multiset of (class, tag)
    pairs of its neighbours, all of which color refinement carries, so
    the wired partition refines the radio partition phase by phase;
  - **not conversely**: with all tags equal, radio nodes can never hear
    anything (the paper's introduction), while the wired model still
    elects on any graph with a degree/structure asymmetry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..core.classifier import classify
from ..core.configuration import Configuration
from ..core.partition import partition_key


@dataclass
class RefinementResult:
    """Outcome of running color refinement to its fixpoint."""

    config: Configuration
    #: node -> class index (dense, 0-based) per round, round 0 = initial.
    rounds: List[Dict[object, int]] = field(default_factory=list)

    @property
    def num_rounds(self) -> int:
        """Rounds until the partition stabilized (fixpoint excluded)."""
        return len(self.rounds) - 1

    @property
    def stable(self) -> Dict[object, int]:
        """The fixpoint partition."""
        return self.rounds[-1]

    def partition_at(self, r: int) -> Tuple[Tuple[object, ...], ...]:
        """Canonical partition after round ``r``."""
        return partition_key(self.rounds[r])

    def stable_partition(self) -> Tuple[Tuple[object, ...], ...]:
        """Canonical form of the fixpoint partition."""
        return partition_key(self.stable)

    def singleton_nodes(self) -> List[object]:
        """Nodes alone in their fixpoint class (wired-electable leaders)."""
        counts: Dict[int, int] = {}
        for c in self.stable.values():
            counts[c] = counts.get(c, 0) + 1
        return sorted(v for v, c in self.stable.items() if counts[c] == 1)

    def class_count_chain(self) -> List[int]:
        """Class counts per round (non-decreasing)."""
        return [len(set(r.values())) for r in self.rounds]


def color_refinement(
    config: Configuration,
    *,
    use_tags: bool = True,
    use_degrees: bool = True,
) -> RefinementResult:
    """Run anonymous-broadcast (1-WL) refinement to its fixpoint.

    Initial colors are ``(tag, degree)`` by default; either ingredient can
    be switched off to model weaker initial knowledge. Each round maps
    every node to ``(own color, sorted multiset of neighbour colors)`` and
    renumbers densely. Stabilizes within ``n`` rounds.
    """
    nodes = config.nodes

    def dense(raw: Dict[object, object]) -> Dict[object, int]:
        order: Dict[object, int] = {}
        out = {}
        for v in nodes:
            key = raw[v]
            if key not in order:
                order[key] = len(order)
            out[v] = order[key]
        return out

    initial = {
        v: (
            config.tag(v) if use_tags else 0,
            config.degree(v) if use_degrees else 0,
        )
        for v in nodes
    }
    colors = dense(initial)
    result = RefinementResult(config=config, rounds=[colors])

    while True:
        raw = {
            v: (colors[v], tuple(sorted(colors[w] for w in config.neighbors(v))))
            for v in nodes
        }
        new_colors = dense(raw)
        if partition_key(new_colors) == partition_key(colors):
            break
        colors = new_colors
        result.rounds.append(colors)
    return result


def wired_feasible(config: Configuration) -> bool:
    """Leader election feasibility in the wired anonymous model: some
    node's view is unique (fixpoint partition has a singleton class)."""
    return bool(color_refinement(config).singleton_nodes())


# ----------------------------------------------------------------------
# explicit views
# ----------------------------------------------------------------------
def view_key(config: Configuration, v: object, depth: int) -> Tuple:
    """Canonical form of the depth-``depth`` view of ``v``.

    The view is the rooted tree of all walks of length ``<= depth``
    starting at ``v`` in the anonymous broadcast model: the root carries
    ``(tag, degree)`` and each child is the view of a neighbour one level
    shallower; children are sorted, so equal trees compare equal.
    (Exponential in ``depth`` — intended for small validation instances;
    :func:`color_refinement` is the scalable equivalent.)
    """
    if depth < 0:
        raise ValueError("depth must be >= 0")

    def build(u: object, d: int) -> Tuple:
        root = (config.tag(u), config.degree(u))
        if d == 0:
            return (root, ())
        children = tuple(
            sorted(build(w, d - 1) for w in config.neighbors(u))
        )
        return (root, children)

    return build(v, depth)


def view_partition(
    config: Configuration, depth: int
) -> Tuple[Tuple[object, ...], ...]:
    """Partition of nodes by equality of their depth-``depth`` views."""
    groups: Dict[Tuple, List[object]] = {}
    for v in config.nodes:
        groups.setdefault(view_key(config, v, depth), []).append(v)
    return tuple(tuple(sorted(g)) for g in sorted(groups.values()))


def views_stabilize_like_refinement(config: Configuration) -> bool:
    """Cross-check: the view partition at the refinement's stabilization
    depth equals the refinement fixpoint (the classic equivalence)."""
    result = color_refinement(config)
    depth = result.num_rounds
    return view_partition(config, depth) == result.stable_partition()


# ----------------------------------------------------------------------
# radio vs wired contrast
# ----------------------------------------------------------------------
@dataclass
class ContrastRow:
    config: Configuration
    radio: bool  #: Classifier verdict (Theorem 3.17)
    wired: bool  #: unique-view verdict

    @property
    def kind(self) -> str:
        if self.radio and self.wired:
            return "both"
        if self.wired:
            return "wired-only"
        if self.radio:
            return "radio-only"  # must never occur (dominance)
        return "neither"


@dataclass
class ContrastCensus:
    rows: List[ContrastRow] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.rows)

    def count(self, kind: str) -> int:
        """Number of rows of the given contrast kind."""
        return sum(1 for r in self.rows if r.kind == kind)

    def dominance_holds(self) -> bool:
        """radio-feasible ⊆ wired-feasible (no 'radio-only' rows)."""
        return self.count("radio-only") == 0

    def wired_only_examples(self, limit: int = 5) -> List[Configuration]:
        """Witnesses feasible in the wired model only."""
        return [r.config for r in self.rows if r.kind == "wired-only"][:limit]

    def as_table(self) -> List[Tuple]:
        """Rows for :func:`repro.reporting.tables.format_table`."""
        return [
            (kind, self.count(kind), self.total)
            for kind in ("both", "wired-only", "radio-only", "neither")
        ]

    TABLE_HEADERS = ("kind", "count", "total")


def radio_vs_wired(
    configs: Iterable[Configuration], *, limit: Optional[int] = None
) -> ContrastCensus:
    """Classify each configuration under both models."""
    census = ContrastCensus()
    for i, cfg in enumerate(configs):
        if limit is not None and i >= limit:
            break
        census.rows.append(
            ContrastRow(
                config=cfg,
                radio=classify(cfg).feasible,
                wired=wired_feasible(cfg),
            )
        )
    return census
