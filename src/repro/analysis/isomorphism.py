"""Tag-preserving configuration isomorphism and canonical forms.

Two configurations are *equivalent* when a graph isomorphism maps one to
the other preserving wakeup tags — equivalent configurations are
operationally identical (every anonymous protocol behaves the same up to
renaming), so censuses that enumerate labeled graphs overcount. This
module provides:

* :func:`are_isomorphic` — tag-preserving isomorphism test (backtracking
  with degree/tag pruning; fine for census-scale n);
* :func:`canonical_form` — a canonical representative key, equal for two
  configurations iff they are isomorphic (computed by brute-force minimum
  over tag/degree-compatible relabelings, with refinement pruning); it
  also backs the census engine's cache keys (:mod:`repro.engine.keys`);
* :func:`dedupe` — collapse an iterable of configurations to isomorphism
  class representatives;
* invariance checks used by the property tests: feasibility, the leader's
  orbit, and election round counts are isomorphism-invariant.
"""

from __future__ import annotations

from itertools import permutations
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..core.configuration import Configuration


def _signature(cfg: Configuration) -> Tuple:
    """Cheap isomorphism invariant: sorted (tag, degree, neighbour tag
    multiset) per node, plus size and edge count."""
    per_node = sorted(
        (
            cfg.tag(v),
            cfg.degree(v),
            tuple(sorted(cfg.tag(w) for w in cfg.neighbors(v))),
        )
        for v in cfg.nodes
    )
    return (cfg.n, cfg.num_edges, tuple(per_node))


def are_isomorphic(a: Configuration, b: Configuration) -> bool:
    """Tag-preserving isomorphism test."""
    if _signature(a) != _signature(b):
        return False
    return _find_mapping(a, b) is not None


def _find_mapping(
    a: Configuration, b: Configuration
) -> Optional[Dict[object, object]]:
    """Backtracking search for a tag-preserving isomorphism a → b."""
    a_nodes = sorted(a.nodes, key=lambda v: (-a.degree(v), a.tag(v)))
    b_by_profile: Dict[Tuple, List[object]] = {}
    for w in b.nodes:
        b_by_profile.setdefault((b.tag(w), b.degree(w)), []).append(w)

    mapping: Dict[object, object] = {}
    used: set = set()

    def candidates(v) -> List[object]:
        return b_by_profile.get((a.tag(v), a.degree(v)), [])

    def consistent(v, w) -> bool:
        for u in a.neighbors(v):
            if u in mapping:
                if mapping[u] not in b.neighbors(w):
                    return False
        # non-neighbours must stay non-neighbours (simple graphs: implied
        # by edge counts once all nodes are mapped, but pruning here
        # keeps the search shallow)
        for u, x in mapping.items():
            if (u in a.neighbors(v)) != (x in b.neighbors(w)):
                return False
        return True

    def extend(i: int) -> bool:
        if i == len(a_nodes):
            return True
        v = a_nodes[i]
        for w in candidates(v):
            if w in used or not consistent(v, w):
                continue
            mapping[v] = w
            used.add(w)
            if extend(i + 1):
                return True
            del mapping[v]
            used.discard(w)
        return False

    return dict(mapping) if extend(0) else None


def canonical_form(cfg: Configuration) -> Tuple:
    """Canonical key: equal for two configurations iff isomorphic.

    Computed as the lexicographic minimum, over all tag/degree-profile
    compatible relabelings to ``0..n−1``, of ``(tag vector, edge set)``.
    Exponential in the worst case but heavily pruned by profiles;
    intended for census-scale configurations (n ≲ 8).
    """
    cfg = cfg.normalize()
    nodes = list(cfg.nodes)
    n = len(nodes)
    # group nodes by (tag, degree); only permutations respecting groups
    # can yield the minimum, since the key starts with the sorted profile
    profile = {v: (cfg.tag(v), cfg.degree(v)) for v in nodes}
    groups: Dict[Tuple, List[object]] = {}
    for v in nodes:
        groups.setdefault(profile[v], []).append(v)
    ordered_profiles = sorted(groups)
    slots: List[Tuple] = []
    for p in ordered_profiles:
        slots.extend([p] * len(groups[p]))

    best: Optional[Tuple] = None

    def assignments() -> Iterator[Dict[object, int]]:
        # positions for each profile group are contiguous in slot order
        starts = {}
        idx = 0
        for p in ordered_profiles:
            starts[p] = idx
            idx += len(groups[p])
        group_lists = [groups[p] for p in ordered_profiles]

        def rec(gi: int, current: Dict[object, int]) -> Iterator[Dict[object, int]]:
            if gi == len(group_lists):
                yield dict(current)
                return
            members = group_lists[gi]
            base = starts[ordered_profiles[gi]]
            for perm in permutations(range(len(members))):
                for v, off in zip(members, perm):
                    current[v] = base + off
                yield from rec(gi + 1, current)
            for v in members:
                current.pop(v, None)

        yield from rec(0, {})

    tagvec = tuple(p[0] for p in slots)
    for mapping in assignments():
        edges = tuple(
            sorted(
                (min(mapping[u], mapping[v]), max(mapping[u], mapping[v]))
                for u, v in cfg.edges
            )
        )
        key = (n, tagvec, edges)
        if best is None or key < best:
            best = key
    assert best is not None
    return best


def dedupe(configs: Iterable[Configuration]) -> List[Configuration]:
    """Representatives of each isomorphism class, in first-seen order."""
    seen = set()
    out: List[Configuration] = []
    for cfg in configs:
        key = canonical_form(cfg)
        if key not in seen:
            seen.add(key)
            out.append(cfg)
    return out


def orbit_of(cfg: Configuration, v: object) -> List[object]:
    """The set of nodes some tag-preserving automorphism maps ``v`` to."""
    from .automorphisms import tag_preserving_automorphisms

    out = {v}
    for auto in tag_preserving_automorphisms(cfg):
        out.add(auto[v])
    return sorted(out)
