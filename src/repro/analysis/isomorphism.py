"""Tag-preserving configuration isomorphism and canonical forms.

Two configurations are *equivalent* when a graph isomorphism maps one to
the other preserving wakeup tags — equivalent configurations are
operationally identical (every anonymous protocol behaves the same up to
renaming), so censuses that enumerate labeled graphs overcount. This
module provides:

* :func:`are_isomorphic` — tag-preserving isomorphism test: a
  refinement-certificate prefilter (:mod:`repro.canon.invariants`)
  answers most negatives in near-linear time, canonical-form equality
  decides the rest exactly;
* :func:`canonical_form` — a canonical representative key, equal for two
  configurations iff they are isomorphic. The default
  ``strategy="refinement"`` delegates to :mod:`repro.canon` (color
  refinement + individualization search); ``strategy="bruteforce"``
  keeps the original minimum-over-relabelings enumeration as an oracle.
  Both return the identical ``(n, tag vector, edge set)`` tuple — the
  E21 benchmark gates the agreement — and the tuple backs the census
  engine's cache keys (:mod:`repro.engine.keys`);
* :func:`dedupe` — collapse an iterable of configurations to isomorphism
  class representatives;
* invariance checks used by the property tests: feasibility, the leader's
  orbit, and election round counts are isomorphism-invariant.
"""

from __future__ import annotations

from itertools import permutations
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..core.configuration import Configuration

#: The two canonical-form strategies: the refinement-based canonizer
#: (:mod:`repro.canon`, the default) and the original brute-force
#: enumeration kept as a correctness oracle.
STRATEGIES = ("refinement", "bruteforce")


def _signature(cfg: Configuration) -> Tuple:
    """Cheap isomorphism invariant: sorted (tag, degree, neighbour tag
    multiset) per node, plus size and edge count.

    Strictly weaker than the 1-WL certificate; kept for the degenerate
    one-round view it documents and for the property tests that pin the
    certificate as a refinement of it.
    """
    per_node = sorted(
        (
            cfg.tag(v),
            cfg.degree(v),
            tuple(sorted(cfg.tag(w) for w in cfg.neighbors(v))),
        )
        for v in cfg.nodes
    )
    return (cfg.n, cfg.num_edges, tuple(per_node))


def are_isomorphic(a: Configuration, b: Configuration) -> bool:
    """Tag-preserving isomorphism test.

    The refinement certificate proves most non-isomorphic pairs apart
    without any search; pairs it cannot separate are decided exactly by
    canonical-form equality (memoized, so repeated tests against the
    same configurations stay cheap).
    """
    from ..canon import may_be_isomorphic

    if not may_be_isomorphic(a, b):
        return False
    return canonical_form(a) == canonical_form(b)


def find_isomorphism(
    a: Configuration, b: Configuration
) -> Optional[Dict[object, object]]:
    """A tag-preserving isomorphism ``a → b`` as a node map, or ``None``.

    Composed from the two canonical labelings (``a``'s canonical slot
    of a node equals ``b``'s canonical slot of its image), so callers
    who need the witness mapping — not just the boolean — reuse the
    memoized canonization instead of a fresh backtracking search.
    """
    from ..canon import canonize

    if not are_isomorphic(a, b):
        return None
    la, lb = canonize(a), canonize(b)
    slot_to_b = {slot: v for v, slot in lb.mapping.items()}
    return {v: slot_to_b[slot] for v, slot in la.mapping.items()}


def canonical_form(cfg: Configuration, *, strategy: str = "refinement") -> Tuple:
    """Canonical key: equal for two configurations iff isomorphic.

    The key is the lexicographic minimum, over all relabelings to
    ``0..n−1`` compatible with the sorted ``(tag, degree)`` profile
    layout, of ``(n, tag vector, edge set)`` for the normalized
    configuration.

    ``strategy`` selects how the minimum is found:

    * ``"refinement"`` (default) — :mod:`repro.canon`'s
      individualization–refinement search with bound and
      automorphism-orbit pruning; near-linear on the workloads the
      engine serves, memoized across calls.
    * ``"bruteforce"`` — the original profile-pruned enumeration of
      every compatible relabeling; worst-case exponential in the
      largest profile class. Kept as the oracle the E21 benchmark and
      the property tests compare against (n ≲ 10 territory).

    Both strategies return the identical tuple.
    """
    if strategy == "refinement":
        from ..canon import canonical_form as refined_form

        return refined_form(cfg)
    if strategy != "bruteforce":
        raise ValueError(
            f"unknown strategy {strategy!r} (choose {' or '.join(STRATEGIES)})"
        )
    return _bruteforce_canonical_form(cfg)


def _bruteforce_canonical_form(cfg: Configuration) -> Tuple:
    """The original oracle: minimum over every profile-compatible
    relabeling (exponential in the largest profile class)."""
    cfg = cfg.normalize()
    nodes = list(cfg.nodes)
    n = len(nodes)
    # group nodes by (tag, degree); only permutations respecting groups
    # can yield the minimum, since the key starts with the sorted profile
    profile = {v: (cfg.tag(v), cfg.degree(v)) for v in nodes}
    groups: Dict[Tuple, List[object]] = {}
    for v in nodes:
        groups.setdefault(profile[v], []).append(v)
    ordered_profiles = sorted(groups)
    slots: List[Tuple] = []
    for p in ordered_profiles:
        slots.extend([p] * len(groups[p]))

    best: Optional[Tuple] = None

    def assignments() -> Iterator[Dict[object, int]]:
        # positions for each profile group are contiguous in slot order
        starts = {}
        idx = 0
        for p in ordered_profiles:
            starts[p] = idx
            idx += len(groups[p])
        group_lists = [groups[p] for p in ordered_profiles]

        def rec(gi: int, current: Dict[object, int]) -> Iterator[Dict[object, int]]:
            if gi == len(group_lists):
                yield dict(current)
                return
            members = group_lists[gi]
            base = starts[ordered_profiles[gi]]
            for perm in permutations(range(len(members))):
                for v, off in zip(members, perm):
                    current[v] = base + off
                yield from rec(gi + 1, current)
            for v in members:
                current.pop(v, None)

        yield from rec(0, {})

    tagvec = tuple(p[0] for p in slots)
    for mapping in assignments():
        edges = tuple(
            sorted(
                (min(mapping[u], mapping[v]), max(mapping[u], mapping[v]))
                for u, v in cfg.edges
            )
        )
        key = (n, tagvec, edges)
        if best is None or key < best:
            best = key
    assert best is not None
    return best


def dedupe(
    configs: Iterable[Configuration], *, strategy: str = "refinement"
) -> List[Configuration]:
    """Representatives of each isomorphism class, in first-seen order.

    ``strategy`` is forwarded to :func:`canonical_form`; both settings
    produce identical representative lists (the keys are equal tuples),
    differing only in how fast the keys are computed.
    """
    seen = set()
    out: List[Configuration] = []
    for cfg in configs:
        key = canonical_form(cfg, strategy=strategy)
        if key not in seen:
            seen.add(key)
            out.append(cfg)
    return out


def orbit_of(cfg: Configuration, v: object) -> List[object]:
    """The set of nodes some tag-preserving automorphism maps ``v`` to.

    Read off the orbit partition derived from the canonizer's
    automorphism generators — no group enumeration.
    """
    from .automorphisms import automorphism_orbits

    for orbit in automorphism_orbits(cfg):
        if v in orbit:
            return orbit
    raise KeyError(f"{v!r} is not a node of the configuration")
