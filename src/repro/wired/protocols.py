"""Anonymous view-exchange protocols for the wired model.

The classic construction (Yamashita–Kameda [40, 41]): a node's depth-0
view is its local input ``(tag, degree)``; after round ``k`` it knows its
depth-``k`` view, assembled from the depth-``(k−1)`` views its neighbours
sent that round. Views here are *port-oblivious* (received subviews are
sorted, not indexed by port), which matches the centralized
:func:`repro.analysis.views.view_key` exactly — the cross-validation the
test suite and E14/E17 benchmarks rely on.

Views grow exponentially with depth if materialized naively, so the
protocol exchanges *hashes by structure*: each view is interned into an
integer id via a shared canonical table (deterministic, collision-free by
construction — it is structural interning, not hashing). Interning keeps
messages O(degree) integers and the whole execution polynomial while
preserving view equality exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .simulator import WiredNodeProtocol


class ViewInterner:
    """Structural interning of view trees.

    ``intern(root, children_ids)`` maps each distinct (root, sorted child
    ids) pair to a unique integer. Two nodes' depth-k views are equal iff
    their interned ids are equal — exact, no collisions. The table is
    shared by all nodes of one execution; that sharing is a simulation
    device (in a real deployment nodes exchange the trees themselves),
    and it does not leak identities because ids are functions of view
    *structure* only.
    """

    def __init__(self) -> None:
        self._table: Dict[Tuple, int] = {}

    def intern(self, root: Tuple, children_ids: Tuple[int, ...]) -> int:
        """Unique id of the view (root, sorted child ids)."""
        key = (root, children_ids)
        got = self._table.get(key)
        if got is None:
            got = len(self._table)
            self._table[key] = got
        return got

    def __len__(self) -> int:
        return len(self._table)


@dataclass
class ViewState:
    """Final knowledge of one node after the exchange."""

    view_id: int  #: interned id of the node's depth-``horizon`` view
    horizon: int


class ViewExchangeProtocol(WiredNodeProtocol):
    """One node's view-exchange execution.

    Runs for ``horizon`` rounds: in round ``k`` it sends its current
    (depth-``k``) view id on every port and folds the received ids into
    its depth-``k+1`` view. Output is the final view id.
    """

    __slots__ = ("root", "degree", "horizon", "interner", "_view", "_round")

    def __init__(
        self,
        root: Tuple,
        degree: int,
        horizon: int,
        interner: ViewInterner,
    ) -> None:
        if horizon < 0:
            raise ValueError("horizon must be >= 0")
        self.root = root
        self.degree = degree
        self.horizon = horizon
        self.interner = interner
        self._view = interner.intern(root, ())
        self._round = 0

    def send(self, round_index: int) -> List[object]:
        return [self._view] * self.degree

    def receive(self, round_index: int, inbox: List[object]) -> None:
        children = tuple(sorted(inbox))
        self._view = self.interner.intern(self.root, children)
        self._round += 1

    def done(self) -> bool:
        return self._round >= self.horizon

    def output(self) -> ViewState:
        return ViewState(view_id=self._view, horizon=self._round)


#: Re-export of the abstract base for library users.
WiredProtocol = WiredNodeProtocol
