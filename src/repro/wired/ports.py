"""Port-aware views: the full Yamashita–Kameda construction.

The view-exchange protocol in :mod:`repro.wired.protocols` is
*port-oblivious*: received subviews are sorted, discarding which port
they arrived on. The original Yamashita–Kameda views are *port-aware* —
each child subview is indexed by the local port it arrived on and stamped
with the sender's outgoing port (the "back port"). Port-aware views can
only refine port-oblivious ones, sometimes strictly (two neighbours that
look identical as a multiset can be distinguished by consistent port
labeling).

Caveat recorded honestly: distinguishing power under port-aware views
depends on the *port numbering*, which the model treats as arbitrary
(adversarial). This module uses the simulator's deterministic numbering
(port ``p`` → ``p``-th smallest neighbour id), so results here are
statements about that specific numbering; feasibility claims robust to
adversarial numbering would need a quantification over numberings, which
is out of scope for the contrast experiments.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..core.configuration import Configuration
from .protocols import ViewInterner
from .simulator import WiredNodeProtocol, wired_simulate


class PortAwareViewProtocol(WiredNodeProtocol):
    """View exchange carrying (view id, sending port) on every edge.

    Round ``k``: send ``(current_view, p)`` on each port ``p``; fold the
    inbox into the depth-``k+1`` view as the port-ordered tuple of
    ``(arrival_port, back_port, child_view)`` entries.
    """

    __slots__ = ("root", "degree", "horizon", "interner", "_view", "_round")

    def __init__(
        self,
        root: Tuple,
        degree: int,
        horizon: int,
        interner: ViewInterner,
    ) -> None:
        if horizon < 0:
            raise ValueError("horizon must be >= 0")
        self.root = root
        self.degree = degree
        self.horizon = horizon
        self.interner = interner
        self._view = interner.intern(root, ())
        self._round = 0

    def send(self, round_index: int) -> List[object]:
        return [(self._view, p) for p in range(self.degree)]

    def receive(self, round_index: int, inbox: List[object]) -> None:
        children = tuple(
            (p, back_port, child)
            for p, (child, back_port) in enumerate(inbox)
        )
        self._view = self.interner.intern(self.root, children)
        self._round += 1

    def done(self) -> bool:
        return self._round >= self.horizon

    def output(self) -> int:
        return self._view


def port_aware_view_ids(
    config: Configuration, *, horizon: int = None
) -> Dict[object, int]:
    """Final port-aware view id of every node after ``horizon`` rounds
    (default n) under the simulator's deterministic port numbering."""
    if horizon is None:
        horizon = config.n
    interner = ViewInterner()

    def factory(node_id: object, degree: int) -> PortAwareViewProtocol:
        root = (config.tag(node_id), degree)
        return PortAwareViewProtocol(root, degree, horizon, interner)

    execution = wired_simulate(config, factory)
    return dict(execution.outputs)


def port_aware_partition(
    config: Configuration, *, horizon: int = None
) -> List[List[object]]:
    """Nodes grouped by equality of their port-aware views."""
    ids = port_aware_view_ids(config, horizon=horizon)
    groups: Dict[int, List[object]] = {}
    for v in sorted(ids):
        groups.setdefault(ids[v], []).append(v)
    return sorted(groups.values())


def port_awareness_refines(config: Configuration) -> bool:
    """True iff the port-aware partition refines the port-oblivious one
    (every port-aware block is inside some oblivious block) — the theory
    says this always holds; the tests assert it."""
    from .election import wired_elect

    oblivious = wired_elect(config).view_partition()
    aware = port_aware_partition(config)
    for block in aware:
        if not any(set(block) <= set(ob) for ob in oblivious):
            return False
    return True
