"""Leader election in wired anonymous networks by unique view.

Mirrors the paper's notion of a *dedicated* algorithm: the communication
protocol (view exchange) is generic, and the decision applied to a node's
final knowledge is allowed to be configuration-specific — exactly as the
paper's ``f_G`` is hard-coded per configuration. Election succeeds iff
some node's stabilized view is unique (the Yamashita–Kameda criterion in
its port-oblivious form), which equals the fixpoint of
:func:`repro.analysis.views.color_refinement` — the tests and the E17
benchmark assert that the distributed run and the centralized refinement
agree configuration for configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..analysis.views import color_refinement
from ..core.configuration import Configuration
from .protocols import ViewExchangeProtocol, ViewInterner, ViewState
from .simulator import WiredExecution, wired_simulate


@dataclass
class WiredElectionResult:
    """Outcome of a distributed wired election."""

    config: Configuration
    execution: WiredExecution
    #: node -> final interned view id (depth = horizon).
    view_ids: Dict[object, int]
    horizon: int
    leaders: List[object]

    @property
    def elected(self) -> bool:
        return len(self.leaders) == 1

    @property
    def leader(self) -> Optional[object]:
        return self.leaders[0] if self.elected else None

    @property
    def rounds(self) -> int:
        return self.execution.rounds_elapsed

    def view_partition(self) -> List[List[object]]:
        """Nodes grouped by equality of their final views."""
        groups: Dict[int, List[object]] = {}
        for v in sorted(self.view_ids):
            groups.setdefault(self.view_ids[v], []).append(v)
        return sorted(groups.values())


def wired_elect(
    config: Configuration, *, horizon: Optional[int] = None
) -> WiredElectionResult:
    """Run the distributed view exchange and elect by unique view.

    ``horizon`` defaults to ``n``, which always suffices for the view
    partition to stabilize (color refinement stabilizes within ``n``
    rounds and view equality at depth ``d`` coincides with refinement
    round ``d``). The leader is the node with the smallest interned view
    id among the unique ones — a deterministic, identity-free choice
    (interned ids are functions of view structure and of the exchange's
    deterministic schedule only).
    """
    if horizon is None:
        horizon = config.n
    interner = ViewInterner()

    def factory(node_id: object, degree: int) -> ViewExchangeProtocol:
        root = (config.tag(node_id), degree)
        return ViewExchangeProtocol(root, degree, horizon, interner)

    execution = wired_simulate(config, factory)
    view_ids = {
        v: out.view_id
        for v, out in execution.outputs.items()
        if isinstance(out, ViewState)
    }
    counts: Dict[int, int] = {}
    for vid in view_ids.values():
        counts[vid] = counts.get(vid, 0) + 1
    unique_ids = sorted(vid for vid, k in counts.items() if k == 1)
    if unique_ids:
        chosen = unique_ids[0]
        leaders = [v for v, vid in view_ids.items() if vid == chosen]
    else:
        leaders = []
    return WiredElectionResult(
        config=config,
        execution=execution,
        view_ids=view_ids,
        horizon=horizon,
        leaders=leaders,
    )


def wired_election_agrees_with_views(config: Configuration) -> bool:
    """Cross-check: the distributed election succeeds iff the centralized
    color refinement finds a singleton class, and the view partitions
    coincide."""
    result = wired_elect(config)
    refinement = color_refinement(config)
    central = [list(block) for block in refinement.stable_partition()]
    if sorted(result.view_partition()) != sorted(central):
        return False
    return result.elected == bool(refinement.singleton_nodes())
