"""Wired anonymous message-passing networks — the intro's counterpoint.

The paper's introduction (Section 1.1) contrasts anonymous *radio*
networks with anonymous *wired* networks: with reliable, simultaneous
delivery and distinct port numbers, nodes "can relay their neighbourhoods
of increasing radii, learning in this way asymmetries of the network
topology" — so leader election can succeed from structure alone, with no
wakeup-time symmetry breaking. This package makes that counterpoint a
real executable system rather than a citation:

* :mod:`repro.wired.simulator` — a synchronous reliable message-passing
  simulator: every round, every node sends one message per incident port
  and receives exactly the messages its neighbours sent (no collisions,
  no loss — the polar opposite of the radio channel);
* :mod:`repro.wired.protocols` — the classic anonymous view-exchange
  protocol (Yamashita–Kameda line of work [40, 41]): each node assembles
  its depth-``k`` view after ``k`` rounds by exchanging views of depth
  ``k−1``, then decides;
* :mod:`repro.wired.election` — leader election by unique view: after
  ``n`` rounds the view partition has stabilized; a node declares itself
  leader iff its view is the minimum among the unique ones. Feasibility
  equals the unique-view criterion computed centrally by
  :func:`repro.analysis.views.wired_feasible` (cross-validated in tests
  and benchmarks).
"""

from .simulator import WiredSimulator, WiredExecution, wired_simulate
from .protocols import ViewExchangeProtocol, WiredProtocol
from .ports import (
    PortAwareViewProtocol,
    port_aware_partition,
    port_aware_view_ids,
    port_awareness_refines,
)
from .election import (
    WiredElectionResult,
    wired_elect,
    wired_election_agrees_with_views,
)

__all__ = [
    "PortAwareViewProtocol",
    "ViewExchangeProtocol",
    "WiredElectionResult",
    "WiredExecution",
    "WiredProtocol",
    "WiredSimulator",
    "port_aware_partition",
    "port_aware_view_ids",
    "port_awareness_refines",
    "wired_elect",
    "wired_election_agrees_with_views",
    "wired_simulate",
]
