"""Synchronous reliable message-passing simulator with port numbers.

The wired anonymous model (Angluin [1]; Yamashita–Kameda [40, 41]): nodes
are anonymous but each node privately numbers its incident edges with
ports ``0 .. deg−1``. In every synchronous round, every node hands the
simulator one outgoing message per port; delivery is reliable and
simultaneous, and each received message is stamped with the local port it
arrived on. There is no channel contention of any kind — this substrate
is the polar opposite of the radio model and exists precisely to measure
what the radio channel *costs*.

Port numbering is fixed from the configuration's sorted adjacency (port
``p`` of ``v`` leads to its ``p``-th smallest neighbour). Protocols never
see neighbour identities — only port numbers — so anonymity is preserved.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..radio.backends.base import SimulationTimeout, budget_exceeded

#: Hard cap on simulated rounds, as in the radio simulator.
DEFAULT_MAX_ROUNDS = 100_000


class WiredProtocolViolation(RuntimeError):
    """A protocol returned malformed messages or decisions."""


class WiredTimeout(SimulationTimeout):
    """The execution exceeded its round budget.

    Subclasses the radio substrate's
    :class:`~repro.radio.backends.base.SimulationTimeout` so the two
    models share the diagnostic round-budget machinery (round reached,
    active/terminated counts)."""


class WiredNodeProtocol(ABC):
    """Per-node wired protocol instance.

    The simulator drives each node through rounds: ``send`` produces this
    round's per-port messages, then ``receive`` delivers the per-port
    inbox. ``done`` signals termination; once every node is done the
    execution ends. ``output`` is the node's final decision value.
    """

    @abstractmethod
    def send(self, round_index: int) -> List[object]:
        """Messages for ports ``0 .. deg−1`` (length must equal degree)."""

    @abstractmethod
    def receive(self, round_index: int, inbox: List[object]) -> None:
        """Deliver the round's messages; ``inbox[p]`` came in on port p."""

    @abstractmethod
    def done(self) -> bool:
        """True once the node has terminated."""

    def output(self) -> object:
        """Final decision value (protocol-specific)."""
        return None


@dataclass
class WiredExecution:
    """Outcome of a wired simulation."""

    #: node -> final output value.
    outputs: Dict[object, object]
    rounds_elapsed: int
    #: node -> number of messages the node sent in total.
    messages_sent: Dict[object, int] = field(default_factory=dict)

    @property
    def nodes(self) -> List[object]:
        return sorted(self.outputs)

    def total_messages(self) -> int:
        """Messages sent across the whole execution."""
        return sum(self.messages_sent.values())


class WiredSimulator:
    """Synchronous reliable execution of one protocol on one graph.

    ``network`` needs ``nodes`` and ``neighbors(v)`` (the wired model has
    no wakeup mechanics; all nodes start together). ``factory(node_id,
    degree)`` builds the per-node protocol; *anonymous* protocols must use
    the id only to look up the node's own local inputs (its wakeup tag,
    used as an initial color) — mirroring the radio simulator's factory
    convention — and never embed the identity in protocol state.
    """

    def __init__(
        self,
        network,
        factory,
        *,
        max_rounds: int = DEFAULT_MAX_ROUNDS,
    ) -> None:
        self._nodes = sorted(network.nodes)
        if not self._nodes:
            raise ValueError("network has no nodes")
        # port p of v leads to its p-th smallest neighbour
        self._ports: Dict[object, Tuple[object, ...]] = {
            v: tuple(sorted(network.neighbors(v))) for v in self._nodes
        }
        # reverse port lookup: (v, w) -> port of w at v
        self._port_of: Dict[Tuple[object, object], int] = {}
        for v, nbrs in self._ports.items():
            for p, w in enumerate(nbrs):
                self._port_of[(v, w)] = p
        self._programs: Dict[object, WiredNodeProtocol] = {
            v: factory(v, len(self._ports[v])) for v in self._nodes
        }
        self._max_rounds = max_rounds

    def run(self) -> WiredExecution:
        """Drive all nodes round by round until everyone is done."""
        nodes = self._nodes
        ports = self._ports
        programs = self._programs
        sent_count = {v: 0 for v in nodes}

        r = 0
        while not all(programs[v].done() for v in nodes):
            if r >= self._max_rounds:
                done = sum(1 for v in nodes if programs[v].done())
                raise budget_exceeded(
                    self._max_rounds,
                    r,
                    awake=len(nodes) - done,
                    asleep=0,  # the wired model has no wakeup mechanics
                    terminated=done,
                    timeout_cls=WiredTimeout,
                )
            outgoing: Dict[object, List[object]] = {}
            for v in nodes:
                if programs[v].done():
                    outgoing[v] = [None] * len(ports[v])
                    continue
                msgs = programs[v].send(r)
                if not isinstance(msgs, list) or len(msgs) != len(ports[v]):
                    raise WiredProtocolViolation(
                        f"node {v!r} returned {len(msgs) if isinstance(msgs, list) else type(msgs).__name__} "
                        f"messages for {len(ports[v])} ports in round {r}"
                    )
                outgoing[v] = msgs
                sent_count[v] += sum(1 for m in msgs if m is not None)
            for v in nodes:
                if programs[v].done():
                    continue
                inbox: List[object] = []
                for p, w in enumerate(ports[v]):
                    # message w sent on its port towards v
                    inbox.append(outgoing[w][self._port_of[(w, v)]])
                programs[v].receive(r, inbox)
            r += 1

        return WiredExecution(
            outputs={v: programs[v].output() for v in nodes},
            rounds_elapsed=r,
            messages_sent=sent_count,
        )


def wired_simulate(network, factory, *, max_rounds: int = DEFAULT_MAX_ROUNDS):
    """One-shot convenience wrapper around :class:`WiredSimulator`."""
    return WiredSimulator(network, factory, max_rounds=max_rounds).run()
