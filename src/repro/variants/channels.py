"""Channel semantics: what a listener hears as a function of how many
neighbours transmit.

A :class:`Channel` pins down three things the paper's Section 1.1 fixes
for the collision-detection model:

* the **history entry** a listening node records when ``k`` neighbours
  transmit (``entry``);
* whether ``k`` simultaneous transmissions **wake** a sleeping node
  (``wakes``) and what entry the wakeup round records (``wake_entry``);
* the **label mark** a round with ``k`` transmitters contributes to the
  canonical-refinement label (``triple_mark``), and conversely the mark an
  observed history entry corresponds to (``entry_mark``) — the two sides
  of Lemma 3.8's encoding, generalized per channel.

All channels agree that a transmitter hears nothing (its entry is ``(∅)``)
and that zero transmitting neighbours means silence.
"""

from __future__ import annotations

from typing import Optional

from ..radio.model import COLLISION, SILENCE, HistoryEntry, Message, _Sentinel
from ..core.partition import ONE, STAR

#: Label mark for "at least one neighbour transmitted" in the beeping
#: model (no finer distinction exists there). Distinct from ONE/STAR so
#: that labels from different channels never accidentally compare equal.
BEEP_MARK = 3


class _BeepSentinel(_Sentinel):
    __slots__ = ()

    def __reduce__(self):
        return (_lookup_beep, ())


def _lookup_beep() -> "_BeepSentinel":
    return BEEP_ENTRY


#: History entry recorded when a beeping-model listener hears a carrier.
BEEP_ENTRY = _BeepSentinel("BEEP")


class Channel:
    """One reception model. Instances are stateless and shared."""

    __slots__ = ("name", "collision_detection", "content_bearing")

    def __init__(
        self, name: str, *, collision_detection: bool, content_bearing: bool
    ) -> None:
        self.name = name
        self.collision_detection = collision_detection
        self.content_bearing = content_bearing

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Channel({self.name!r})"

    # ------------------------------------------------------------------
    # reception
    # ------------------------------------------------------------------
    def entry(self, count: int, payload: object) -> HistoryEntry:
        """History entry of a *listening, awake* node with ``count``
        transmitting neighbours (``payload`` = the message when unique)."""
        if count == 0:
            return SILENCE
        if self is BEEP:
            return BEEP_ENTRY
        if count == 1:
            return Message(payload)
        return COLLISION if self.collision_detection else SILENCE

    def wakes(self, count: int) -> bool:
        """Does a round with ``count`` transmitting neighbours wake a
        sleeping node?

        The paper's model (Section 2.1): a node wakes iff it *receives a
        message*; noise does not wake it. Without collision detection a
        collision is silence, so it cannot wake anyone either. In the
        beeping model the carrier itself is the signal, so any beep wakes.
        """
        if count == 0:
            return False
        if self is BEEP:
            return True
        return count == 1

    def wake_entry(self, count: int, payload: object) -> HistoryEntry:
        """``H[0]`` of a node woken *forced* by a round with ``count``
        transmitters (only called when :meth:`wakes` is True)."""
        if self is BEEP:
            return BEEP_ENTRY
        return Message(payload)

    def spontaneous_entry(self, count: int) -> HistoryEntry:
        """``H[0]`` of a spontaneously waking node that was not woken
        forced (count may still be positive if the round was inaudible)."""
        if count >= 2 and self.collision_detection:
            return COLLISION
        return SILENCE

    # ------------------------------------------------------------------
    # label encoding (canonical refinement, Lemma 3.8 analogue)
    # ------------------------------------------------------------------
    def triple_mark(self, count: int) -> Optional[int]:
        """Mark contributed to a label by a round in which ``count``
        neighbours transmit; None when the round is indistinguishable
        from silence and contributes nothing."""
        if count <= 0:
            return None
        if self is BEEP:
            return BEEP_MARK
        if count == 1:
            return ONE
        return STAR if self.collision_detection else None

    def entry_mark(self, entry: HistoryEntry) -> Optional[int]:
        """Mark corresponding to an observed history entry (the decoding
        direction used by the variant canonical DRIP's matcher)."""
        if entry is SILENCE:
            return None
        if entry is BEEP_ENTRY:
            return BEEP_MARK
        if entry is COLLISION:
            return STAR
        if isinstance(entry, Message):
            return ONE
        raise TypeError(f"not a history entry: {entry!r}")


#: The paper's model: full collision detection.
CD = Channel("cd", collision_detection=True, content_bearing=True)

#: Classic radio model without collision detection: noise ≡ silence.
NO_CD = Channel("no-cd", collision_detection=False, content_bearing=True)

#: Beeping model: carrier sensing only, no message content.
BEEP = Channel("beep", collision_detection=False, content_bearing=False)

#: All channels, reference model first.
CHANNELS = (CD, NO_CD, BEEP)

_BY_NAME = {c.name: c for c in CHANNELS}


def channel_by_name(name: str) -> Channel:
    """Look up a channel by its CLI name (``cd``, ``no-cd``, ``beep``)."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise ValueError(
            f"unknown channel {name!r}; choose from {sorted(_BY_NAME)}"
        ) from None
