"""Cross-model feasibility censuses.

For a population of configurations (exhaustive small ones or random
samples), classify each under every channel and tabulate: how many are
canonical-feasible per channel, and which inclusion relations hold. The
theory predicts:

* ``NO_CD``-feasible ⊆ ``CD``-feasible and ``BEEP``-feasible ⊆
  ``CD``-feasible: both weaker channels' labels are functions of the CD
  label (drop ∗-triples, or erase the multiplicity mark), so each weak
  partition is coarser than the CD partition phase by phase — a weak
  singleton forces a CD singleton.
* ``NO_CD`` and ``BEEP`` are *incomparable*: a slot with two transmitters
  is audible to a beeper but silent without collision detection, while a
  slot with one transmitter is distinguishable from a two-transmitter
  slot only with content/collision information. The census exhibits
  witnesses in both directions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..core.configuration import Configuration
from ..graphs.enumeration import enumerate_configurations
from .channels import BEEP, CD, CHANNELS, NO_CD, Channel
from .refinement import variant_classify


@dataclass
class CrossModelRow:
    """Per-configuration feasibility verdicts across channels."""

    config: Configuration
    feasible: Dict[str, bool]  #: channel name -> refinement verdict

    @property
    def pattern(self) -> Tuple[bool, ...]:
        """Verdicts in canonical channel order (CD, NO_CD, BEEP)."""
        return tuple(self.feasible[c.name] for c in CHANNELS)


@dataclass
class CrossModelCensus:
    """Aggregated census over a configuration population."""

    rows: List[CrossModelRow] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.rows)

    def count(self, channel: Channel) -> int:
        """Feasible configurations under ``channel``."""
        return sum(1 for r in self.rows if r.feasible[channel.name])

    def inclusion_holds(self, weaker: Channel, stronger: Channel) -> bool:
        """Every weaker-feasible configuration is stronger-feasible."""
        return all(
            r.feasible[stronger.name]
            for r in self.rows
            if r.feasible[weaker.name]
        )

    def witnesses(
        self, yes: Channel, no: Channel, limit: int = 5
    ) -> List[Configuration]:
        """Configurations feasible under ``yes`` but not under ``no``."""
        out = []
        for r in self.rows:
            if r.feasible[yes.name] and not r.feasible[no.name]:
                out.append(r.config)
                if len(out) >= limit:
                    break
        return out

    def pattern_histogram(self) -> Dict[Tuple[bool, ...], int]:
        """Counts per (cd, no-cd, beep) verdict pattern."""
        hist: Dict[Tuple[bool, ...], int] = {}
        for r in self.rows:
            hist[r.pattern] = hist.get(r.pattern, 0) + 1
        return hist

    def as_table(self) -> List[Tuple]:
        """Rows for :func:`repro.reporting.tables.format_table`."""
        return [
            (c.name, self.count(c), self.total, f"{self.count(c) / self.total:.3f}")
            for c in CHANNELS
        ]

    TABLE_HEADERS = ("channel", "feasible", "total", "fraction")


def cross_model_row(config: Configuration) -> CrossModelRow:
    """Classify one configuration under every channel."""
    return CrossModelRow(
        config=config,
        feasible={
            c.name: variant_classify(config, c).feasible for c in CHANNELS
        },
    )


def cross_model_census(
    configs: Iterable[Configuration],
    *,
    limit: Optional[int] = None,
) -> CrossModelCensus:
    """Census over an iterable of configurations (optionally truncated)."""
    census = CrossModelCensus()
    for i, cfg in enumerate(configs):
        if limit is not None and i >= limit:
            break
        census.rows.append(cross_model_row(cfg))
    return census


def exhaustive_cross_model_census(n: int, max_tag: int) -> CrossModelCensus:
    """Census over all connected configurations with ``n`` nodes and tags
    in ``0..max_tag`` (up to graph isomorphism of the untagged graph)."""
    return cross_model_census(enumerate_configurations(n, max_tag))


def disagreement_examples(
    n: int, max_tag: int, limit: int = 3
) -> Dict[str, List[Configuration]]:
    """Small witnesses for every strict separation between channels."""
    census = exhaustive_cross_model_census(n, max_tag)
    return {
        "cd_not_nocd": census.witnesses(CD, NO_CD, limit),
        "cd_not_beep": census.witnesses(CD, BEEP, limit),
        "nocd_not_beep": census.witnesses(NO_CD, BEEP, limit),
        "beep_not_nocd": census.witnesses(BEEP, NO_CD, limit),
    }
