"""Executable canonical-style protocols for arbitrary channels.

The schedule machinery of the canonical DRIP (phases of per-class
transmission blocks, ``2σ+1`` rounds each, plus σ trailing listen rounds)
is channel-independent; only the *observation decoding* differs — which
history entries correspond to which label marks. This module instantiates
the Section 3.3.1 protocol for any :class:`~repro.variants.channels.
Channel`, so a variant refinement's **Yes** can be validated as a genuine
distributed execution on the variant simulator.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.canonical import (
    CANONICAL_MESSAGE,
    CanonicalData,
    CanonicalMatchError,
    ListEntry,
    build_canonical_data,
    canonical_commitment,
    match_entry,
)
from ..core.configuration import Configuration
from ..core.partition import Label
from ..core.trace import ClassifierTrace
from ..radio.history import History
from ..radio.model import LISTEN, TERMINATE, Action, Transmit
from ..radio.protocol import (
    DRIP,
    Commitment,
    LeaderElectionAlgorithm,
    ScheduleOblivious,
)
from .channels import CD, Channel
from .refinement import variant_classify
from .simulator import variant_simulate


def variant_observed_triples(
    history: History,
    r_prev: int,
    num_blocks: int,
    sigma: int,
    channel: Channel,
) -> Label:
    """Triples a node observed during one phase's block region, decoded
    through ``channel`` (the Lemma 3.8 encoding, generalized)."""
    width = 2 * sigma + 1
    out = []
    for t, entry in history.events_in(r_prev + 1, r_prev + num_blocks * width):
        rel = t - r_prev - 1
        mark = channel.entry_mark(entry)
        if mark is None:  # pragma: no cover - silence is never stored
            continue
        out.append((rel // width + 1, rel % width + 1, mark))
    return tuple(out)


class VariantCanonicalDRIP(DRIP, ScheduleOblivious):
    """Per-node executor of the canonical-style protocol for a channel."""

    __slots__ = ("data", "channel", "_tblocks")

    def __init__(self, data: CanonicalData, channel: Channel) -> None:
        self.data = data
        self.channel = channel
        self._tblocks: Dict[int, int] = {1: 1}

    def _tblock(self, j: int, history: History) -> int:
        tb = self._tblocks.get(j)
        if tb is not None:
            return tb
        prev = self._tblock(j - 1, history)
        data = self.data
        observed = variant_observed_triples(
            history,
            data.phase_ends[j - 2],
            len(data.lists[j - 2]),
            data.sigma,
            self.channel,
        )
        tb = match_entry(data.lists[j - 1], prev, observed)
        if tb is None:
            raise CanonicalMatchError(
                f"phase {j} ({self.channel.name}): no matching entry in L_{j} "
                f"(old tBlock {prev}, observed {observed!r})"
            )
        self._tblocks[j] = tb
        return tb

    def decide(self, history: History) -> Action:
        data = self.data
        i = len(history)
        ends = data.phase_ends
        if i > ends[-1]:
            return TERMINATE
        j = bisect_left(ends, i)
        offset = i - ends[j - 1]
        width = data.block_width
        blocks_region = len(data.lists[j - 1]) * width
        if offset > blocks_region:
            return LISTEN
        block, pos = divmod(offset - 1, width)
        if pos + 1 == data.sigma + 1 and block + 1 == self._tblock(j, history):
            return Transmit(CANONICAL_MESSAGE)
        return LISTEN

    def next_commitment(self, history: History) -> Commitment:
        """Compiled schedule for the fast backend: the timetable is the
        canonical one — only the observation decoding is per-channel."""
        return canonical_commitment(self, history)


@dataclass
class VariantCanonicalProtocol:
    """The dedicated algorithm ``(D_G, f_G)`` for one channel."""

    data: CanonicalData
    channel: Channel

    @classmethod
    def from_trace(
        cls, trace: ClassifierTrace, channel: Channel
    ) -> "VariantCanonicalProtocol":
        return cls(build_canonical_data(trace), channel)

    def factory(self, _node_id: object) -> DRIP:
        """Identical per-node program (anonymity: the id is ignored)."""
        return VariantCanonicalDRIP(self.data, self.channel)

    def final_class_of(self, history: History) -> Optional[int]:
        """Terminal-partition class matched by this history, or None."""
        drip = VariantCanonicalDRIP(self.data, self.channel)
        p = self.data.num_phases
        try:
            tb = drip._tblock(p, history) if p >= 1 else 1
        except CanonicalMatchError:
            return None
        observed = variant_observed_triples(
            history,
            self.data.phase_ends[p - 1],
            len(self.data.lists[p - 1]),
            self.data.sigma,
            self.channel,
        )
        return match_entry(self.data.final_list, tb, observed)

    def decision(self, history: History) -> int:
        """``f_G``: 1 iff the final matched class is the leader class."""
        if not self.data.feasible:
            return 0
        return 1 if self.final_class_of(history) == self.data.leader_class else 0

    def algorithm(self) -> LeaderElectionAlgorithm:
        """Bundle ``(D_G, f_G)`` for this channel."""
        return LeaderElectionAlgorithm(
            self.factory, self.decision, name=f"canonical-{self.channel.name}"
        )

    def round_budget(self, span: int) -> int:
        """Global-round budget to simulate to completion."""
        return span + self.data.done_round + 2


@dataclass
class VariantElectionResult:
    """Outcome of running the variant canonical protocol end to end."""

    config: Configuration
    channel: Channel
    trace: ClassifierTrace
    leaders: List[object]
    rounds: int  #: common local termination round done_v

    @property
    def elected(self) -> bool:
        return len(self.leaders) == 1

    @property
    def leader(self) -> Optional[object]:
        return self.leaders[0] if self.elected else None


def variant_elect(
    config: Configuration,
    channel: Channel = CD,
    *,
    trace: Optional[ClassifierTrace] = None,
    check: bool = True,
) -> VariantElectionResult:
    """Classify under ``channel``, run the variant canonical protocol on
    the variant simulator, and apply the decision function.

    With ``check`` (default) the outcome is verified against the
    refinement's prediction: a unique leader — the refinement's isolated
    node — iff the refinement said Yes.
    """
    if trace is None:
        trace = variant_classify(config, channel)
    protocol = VariantCanonicalProtocol.from_trace(trace, channel)
    network = trace.config
    execution = variant_simulate(
        network,
        protocol.factory,
        channel=channel,
        max_rounds=protocol.round_budget(network.span),
    )
    leaders = execution.decide_leaders(protocol.decision)
    result = VariantElectionResult(
        config=network,
        channel=channel,
        trace=trace,
        leaders=leaders,
        rounds=execution.max_done_local(),
    )
    if check:
        if trace.feasible and leaders != [trace.leader]:
            raise AssertionError(
                f"variant refinement predicted leader {trace.leader!r} "
                f"under {channel.name}, execution elected {leaders!r}"
            )
        if not trace.feasible and leaders:
            raise AssertionError(
                f"refinement said No under {channel.name} but execution "
                f"elected {leaders!r}"
            )
    return result
