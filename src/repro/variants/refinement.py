"""Canonical-DRIP refinement under arbitrary channels.

This is the ``Classifier`` of Section 3.1 with one change: the label a
node receives for a phase records what it would hear *under the given
channel* when every class transmits in its own block. Under the paper's
collision-detection channel a slot with one transmitter yields mark ``1``
and a slot with two or more yields ``∗``; without collision detection the
``∗`` slots vanish (they sound like silence), and in the beeping model
both collapse to a single content-free *beep* mark.

Instantiated with :data:`~repro.variants.channels.CD` the refinement is
exactly the paper's Classifier (asserted in the test suite). For weaker
channels:

* **Yes** is sound: the variant canonical protocol
  (:mod:`repro.variants.canonical`) realizes the refinement as a real
  distributed execution, so a singleton class is a node with a provably
  unique history — leader election is feasible under that channel.
* **No** refutes only the canonical protocol family. The paper's converse
  direction (Lemma 3.14) relies on collision detection, so "No" under
  ``NO_CD``/``BEEP`` is a statement about this schedule, not about every
  conceivable protocol.
"""

from __future__ import annotations

import math
from typing import Dict

from ..core.configuration import Configuration
from ..core.partition import Label, refine, singleton_classes
from ..core.trace import NO, YES, ClassifierTrace, IterationRecord
from .channels import CD, Channel


def variant_label(
    config: Configuration,
    v: object,
    classes: Dict[object, int],
    channel: Channel,
) -> Label:
    """Phase label of ``v``: per (block, slot) transmitter counts mapped
    through the channel's mark function.

    Neighbours in ``v``'s class with ``v``'s tag transmit exactly when
    ``v`` does and are never heard (the paper's Algorithm 3 exclusion).
    """
    sigma = config.span
    tv = config.tag(v)
    v_class = classes[v]
    counts: Dict[tuple, int] = {}
    for w in config.neighbors(v):
        w_class = classes[w]
        tw = config.tag(w)
        if w_class != v_class or tw != tv:
            slot = (w_class, sigma + 1 + tw - tv)
            counts[slot] = counts.get(slot, 0) + 1
    label = []
    for (a, b), k in counts.items():
        mark = channel.triple_mark(k)
        if mark is not None:
            label.append((a, b, mark))
    label.sort()
    return tuple(label)


def variant_all_labels(
    config: Configuration, classes: Dict[object, int], channel: Channel
) -> Dict[object, Label]:
    """Labels of every node for one phase under ``channel``."""
    return {v: variant_label(config, v, classes, channel) for v in config.nodes}


def variant_classify(
    config: Configuration, channel: Channel = CD
) -> ClassifierTrace:
    """Run the channel-parameterized refinement; returns a standard
    :class:`~repro.core.trace.ClassifierTrace` (same shape as
    :func:`repro.core.classifier.classify`, which it equals for ``CD``).
    """
    config = config.normalize()
    nodes = config.nodes
    n = config.n

    classes = {v: 1 for v in nodes}
    reps: list = [None, nodes[0]]
    num_classes = 1

    trace = ClassifierTrace(
        config=config,
        sigma=config.span,
        initial_classes=dict(classes),
        initial_reps=tuple(reps),
    )

    max_iters = math.ceil(n / 2)
    for i in range(1, max_iters + 1):
        old_class_count = num_classes
        labels = variant_all_labels(config, classes, channel)
        classes, reps, num_classes = refine(
            nodes, classes, labels, reps, num_classes
        )
        trace.iterations.append(
            IterationRecord(
                index=i,
                labels=labels,
                classes_after=dict(classes),
                reps_after=tuple(reps),
                num_classes_after=num_classes,
            )
        )
        single = singleton_classes(classes)
        if single:
            trace.decision = YES
            trace.decided_at = i
            trace.leader_class = single[0]
            trace.leader = reps[single[0]]
            break
        if num_classes == old_class_count:
            trace.decision = NO
            trace.decided_at = i
            break
    else:  # pragma: no cover - contradicts the Lemma 3.4 argument
        raise AssertionError(
            f"variant refinement failed to decide within ⌈n/2⌉ = "
            f"{max_iters} iterations on {config!r}"
        )
    return trace


def variant_is_feasible(config: Configuration, channel: Channel) -> bool:
    """Feasibility under ``channel`` per the canonical-family refinement
    (exact for CD; sound-Yes for weaker channels — see the module note).
    """
    return variant_classify(config, channel).feasible
