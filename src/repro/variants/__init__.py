"""Channel-model ablations.

The paper makes one "well-established and practically motivated"
assumption about the channel: **collision detection** — a listener can
tell noise (two or more transmitting neighbours) apart from both silence
and any message. This package measures how load-bearing that assumption
is by re-running the paper's whole machinery under weaker channels:

* :data:`~repro.variants.channels.CD` — the paper's model (reference);
* :data:`~repro.variants.channels.NO_CD` — collisions are indistinguishable
  from silence (the classic radio model without collision detection);
* :data:`~repro.variants.channels.BEEP` — the beeping model: carrier
  sensing only; a listener hears a content-free *beep* iff at least one
  neighbour transmits (so single transmissions and collisions coincide).

For each channel we provide the analogue of the canonical-DRIP refinement
(:func:`~repro.variants.refinement.variant_classify`), the executable
canonical-style protocol (:mod:`repro.variants.canonical`), a
channel-parameterized simulator (:mod:`repro.variants.simulator`) and
cross-model feasibility censuses (:mod:`repro.variants.census`).

Soundness note: a **Yes** from a variant refinement is constructive — the
variant canonical protocol provably isolates a unique history, so leader
election is feasible under that channel. A **No** is complete only for
the canonical protocol family: the paper's converse (Lemma 3.14) uses
collision detection, so for weaker channels "No" means *this* symmetric
schedule cannot break the symmetry, not that no protocol can. The census
reports therefore treat variant No-instances as "canonical-infeasible".
"""

from .channels import BEEP, CD, NO_CD, Channel, channel_by_name, CHANNELS
from .refinement import variant_classify, variant_is_feasible
from .canonical import (
    VariantCanonicalProtocol,
    variant_elect,
    variant_observed_triples,
)
from .simulator import VariantRadioSimulator, variant_simulate
from .census import (
    CrossModelRow,
    cross_model_census,
    cross_model_row,
    disagreement_examples,
)

__all__ = [
    "BEEP",
    "CD",
    "CHANNELS",
    "Channel",
    "CrossModelRow",
    "NO_CD",
    "VariantCanonicalProtocol",
    "VariantRadioSimulator",
    "channel_by_name",
    "cross_model_census",
    "cross_model_row",
    "disagreement_examples",
    "variant_classify",
    "variant_elect",
    "variant_is_feasible",
    "variant_observed_triples",
    "variant_simulate",
]
