"""Channel-parameterized synchronous radio simulator.

Structurally the same round loop as :class:`repro.radio.simulator.
RadioSimulator`, but every reception decision is delegated to a
:class:`~repro.variants.channels.Channel`: what a listener records, what
wakes a sleeping node, and what the wakeup round's ``H[0]`` entry is.
Instantiated with :data:`~repro.variants.channels.CD` it reproduces the
reference simulator execution-for-execution (tested), which is the
correctness anchor for the two weaker channels.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..radio.events import FORCED, SPONTANEOUS, ExecutionResult, RoundRecord
from ..radio.history import History
from ..radio.model import LISTEN, SILENCE, TERMINATE, Transmit
from ..radio.protocol import ProgramFactory
from .channels import CD, Channel

DEFAULT_MAX_ROUNDS = 1_000_000

_ASLEEP, _AWAKE, _DONE = 0, 1, 2


class VariantRadioSimulator:
    """Simulate one protocol execution under an arbitrary channel."""

    def __init__(
        self,
        network,
        factory: ProgramFactory,
        *,
        channel: Channel = CD,
        max_rounds: int = DEFAULT_MAX_ROUNDS,
        record_trace: bool = False,
    ) -> None:
        self._nodes: List[object] = sorted(network.nodes)
        if not self._nodes:
            raise ValueError("network has no nodes")
        self._adj: Dict[object, Tuple[object, ...]] = {
            v: tuple(sorted(network.neighbors(v))) for v in self._nodes
        }
        self._tags: Dict[object, int] = {v: network.tag(v) for v in self._nodes}
        for v, t in self._tags.items():
            if t < 0:
                raise ValueError(f"negative wakeup tag at node {v!r}")
        self._programs = {v: factory(v) for v in self._nodes}
        self._channel = channel
        self._max_rounds = max_rounds
        self._record_trace = record_trace

    def run(self) -> ExecutionResult:
        """Execute until every node terminates under the channel."""
        from ..radio.simulator import ProtocolViolation, SimulationTimeout

        nodes = self._nodes
        adj = self._adj
        tags = self._tags
        programs = self._programs
        channel = self._channel

        state: Dict[object, int] = {v: _ASLEEP for v in nodes}
        histories: Dict[object, History] = {v: History() for v in nodes}
        wake_rounds: Dict[object, int] = {}
        wake_kinds: Dict[object, str] = {}
        done_local: Dict[object, int] = {}
        trace: Optional[List[RoundRecord]] = [] if self._record_trace else None

        remaining = len(nodes)
        by_tag = sorted(nodes, key=lambda v: (tags[v], v))
        next_spont = 0

        r = 0
        while remaining:
            if r > self._max_rounds:
                raise SimulationTimeout(
                    f"simulation exceeded {self._max_rounds} rounds "
                    f"({remaining} node(s) still active)"
                )

            transmitters: Dict[object, object] = {}
            terminating: List[object] = []
            for v in nodes:
                if state[v] != _AWAKE or wake_rounds[v] == r:
                    continue
                action = programs[v].decide(histories[v])
                if action is LISTEN:
                    continue
                if action is TERMINATE:
                    terminating.append(v)
                elif isinstance(action, Transmit):
                    transmitters[v] = action.message
                else:
                    raise ProtocolViolation(
                        f"node {v!r} returned invalid action {action!r} "
                        f"in local round {len(histories[v])}"
                    )

            recv_count: Dict[object, int] = {}
            recv_msg: Dict[object, object] = {}
            for t, msg in transmitters.items():
                for u in adj[t]:
                    recv_count[u] = recv_count.get(u, 0) + 1
                    recv_msg[u] = msg

            for v in nodes:
                if state[v] != _AWAKE or wake_rounds[v] == r:
                    continue
                if v in transmitters:
                    histories[v].append(SILENCE)
                else:
                    k = recv_count.get(v, 0)
                    histories[v].append(channel.entry(k, recv_msg.get(v)))

            for v in terminating:
                state[v] = _DONE
                done_local[v] = len(histories[v]) - 1
                remaining -= 1

            wakeups: List[Tuple[object, str]] = []
            for v, k in recv_count.items():
                if state[v] == _ASLEEP and channel.wakes(k):
                    state[v] = _AWAKE
                    wake_rounds[v] = r
                    wake_kinds[v] = FORCED
                    histories[v].append(channel.wake_entry(k, recv_msg.get(v)))
                    wakeups.append((v, FORCED))
            while next_spont < len(by_tag) and tags[by_tag[next_spont]] <= r:
                v = by_tag[next_spont]
                next_spont += 1
                if state[v] != _ASLEEP:
                    continue
                state[v] = _AWAKE
                wake_rounds[v] = r
                wake_kinds[v] = SPONTANEOUS
                histories[v].append(
                    channel.spontaneous_entry(recv_count.get(v, 0))
                )
                wakeups.append((v, SPONTANEOUS))

            if trace is not None:
                trace.append(
                    RoundRecord(
                        global_round=r,
                        transmitters=dict(transmitters),
                        wakeups=wakeups,
                        terminated=list(terminating),
                    )
                )
            r += 1

        return ExecutionResult(
            histories=histories,
            wake_rounds=wake_rounds,
            wake_kinds=wake_kinds,
            done_local=done_local,
            rounds_elapsed=r,
            trace=trace,
        )


def variant_simulate(
    network,
    factory: ProgramFactory,
    *,
    channel: Channel = CD,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
    record_trace: bool = False,
) -> ExecutionResult:
    """One-shot convenience wrapper around :class:`VariantRadioSimulator`."""
    return VariantRadioSimulator(
        network,
        factory,
        channel=channel,
        max_rounds=max_rounds,
        record_trace=record_trace,
    ).run()
