"""Channel-parameterized synchronous radio simulator.

Semantically the same execution as :class:`repro.radio.simulator.
RadioSimulator`, but every reception decision is delegated to a
:class:`~repro.variants.channels.Channel`: what a listener records, what
wakes a sleeping node, and what the wakeup round's ``H[0]`` entry is.
Instantiated with :data:`~repro.variants.channels.CD` it reproduces the
reference simulator execution-for-execution (tested), which is the
correctness anchor for the two weaker channels.

Since the backend refactor this module no longer carries its own round
loop: the channel rides on the shared
:class:`~repro.radio.backends.base.SimulationSpec` and execution is
delegated to :mod:`repro.radio.backends` — including the event-driven
``fast`` path when the protocols are
:class:`~repro.radio.protocol.ScheduleOblivious` (all shipped channels
are silent-neutral, so round-skipping stays sound).
"""

from __future__ import annotations

from ..radio.backends import (
    DEFAULT_MAX_ROUNDS,
    SimulationSpec,
    resolve_backend,
)
from ..radio.events import ExecutionResult
from ..radio.protocol import ProgramFactory
from .channels import CD, Channel


class VariantRadioSimulator:
    """Simulate one protocol execution under an arbitrary channel."""

    def __init__(
        self,
        network,
        factory: ProgramFactory,
        *,
        channel: Channel = CD,
        max_rounds: int = DEFAULT_MAX_ROUNDS,
        record_trace: bool = False,
        backend: str = "auto",
    ) -> None:
        self._spec = SimulationSpec(
            network,
            factory,
            channel=channel,
            max_rounds=max_rounds,
            record_trace=record_trace,
        )
        self._backend = backend

    def run(self) -> ExecutionResult:
        """Execute until every node terminates under the channel."""
        return resolve_backend(self._backend, self._spec).run(self._spec)


def variant_simulate(
    network,
    factory: ProgramFactory,
    *,
    channel: Channel = CD,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
    record_trace: bool = False,
    backend: str = "auto",
) -> ExecutionResult:
    """One-shot convenience wrapper around :class:`VariantRadioSimulator`."""
    return VariantRadioSimulator(
        network,
        factory,
        channel=channel,
        max_rounds=max_rounds,
        record_trace=record_trace,
        backend=backend,
    ).run()
