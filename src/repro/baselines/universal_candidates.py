"""Adversarial experiments for the impossibility results (Section 4).

Proposition 4.4 proves no single distributed algorithm elects a leader on
*all* feasible 4-node configurations. The proof is constructive given any
candidate ``U``: find the first global round ``t`` at which the tag-0
nodes transmit when ``U`` runs (this round cannot depend on the late
nodes' tags, which are still asleep), then ``U`` fails on ``H_{t+1}``
because the wakeups of ``a`` and ``d`` are both message-forced and the
configuration stays pairwise symmetric forever.

This module mechanizes that adversary: :func:`defeat` takes a candidate
universal algorithm, extracts its ``t``, builds the killer configuration
and verifies the failure (not exactly one leader, plus the symmetry
witness ``H_a = H_d`` and ``H_b = H_c``). A portfolio of natural
candidates — the canonical protocols of fixed configurations used
universally, plus hand-written heuristics — is provided for experiments
E5/E6.

The same machinery drives the Proposition 4.5 experiment:
:func:`compare_executions` shows that every node's history is identical on
the feasible ``H_{t+1}`` and the infeasible ``S_{t+1}``, so no distributed
algorithm can decide feasibility.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.canonical import CanonicalMatchError, CanonicalProtocol
from ..core.classifier import classify
from ..core.configuration import Configuration
from ..graphs.families import h_m
from ..radio.history import History
from ..radio.model import LISTEN, TERMINATE, Action, Transmit
from ..radio.protocol import DRIP, LeaderElectionAlgorithm
from ..radio.simulator import SimulationTimeout, simulate

#: Node ids of the 4-node line families (a, b, c, d).
A, B, C, D = 0, 1, 2, 3


# ----------------------------------------------------------------------
# candidate universal algorithms
# ----------------------------------------------------------------------
def canonical_for(config: Configuration, name: str = None) -> LeaderElectionAlgorithm:
    """The canonical dedicated algorithm of ``config``, *misused* as a
    universal algorithm (run on configurations it was not built for)."""
    protocol = CanonicalProtocol.from_trace(classify(config))
    algo = protocol.algorithm()
    if name:
        algo.name = name
    return algo


class EagerBeaconDRIP(DRIP):
    """Heuristic: spontaneously-woken nodes beacon immediately (local
    round 1), then everyone listens until ``horizon`` and terminates."""

    __slots__ = ("horizon",)

    def __init__(self, horizon: int) -> None:
        self.horizon = horizon

    def decide(self, history: History) -> Action:
        from ..radio.model import SILENCE

        if len(history) >= self.horizon:
            return TERMINATE
        if len(history) == 1 and history[0] is SILENCE:
            return Transmit("beacon")
        return LISTEN


def eager_beacon(horizon: int = 8) -> LeaderElectionAlgorithm:
    """Elect "the" spontaneous beaconer; fails whenever two nodes wake
    first simultaneously (e.g. b and c in every ``H_m``)."""

    def decision(history: History) -> int:
        from ..radio.model import SILENCE

        transmitted_first = len(history) > 1 and history[0] is SILENCE
        heard_nothing = history.first_message_round() is None
        return 1 if (transmitted_first and heard_nothing) else 0

    return LeaderElectionAlgorithm(
        lambda _v: EagerBeaconDRIP(horizon),
        decision,
        name=f"eager-beacon(h={horizon})",
    )


class QuietProberDRIP(DRIP):
    """Heuristic: listen ``quiet`` rounds; transmit iff still heard
    nothing; listen ``quiet`` more rounds; terminate."""

    __slots__ = ("quiet",)

    def __init__(self, quiet: int) -> None:
        if quiet < 1:
            raise ValueError("quiet must be >= 1")
        self.quiet = quiet

    def decide(self, history: History) -> Action:
        i = len(history)
        if i >= 2 * self.quiet + 2:
            return TERMINATE
        if i == self.quiet + 1 and history.first_message_round() is None:
            return Transmit("probe")
        return LISTEN


def quiet_prober(quiet: int = 3) -> LeaderElectionAlgorithm:
    """Candidate universal algorithm: listen ``quiet`` rounds, then beacon."""
    def decision(history: History) -> int:
        heard_nothing_before = (
            history.first_message_round() is None
            or history.first_message_round() > quiet
        )
        return 1 if (len(history) > quiet + 1 and heard_nothing_before) else 0

    return LeaderElectionAlgorithm(
        lambda _v: QuietProberDRIP(quiet),
        decision,
        name=f"quiet-prober(q={quiet})",
    )


def candidate_portfolio() -> List[LeaderElectionAlgorithm]:
    """The candidates attacked in experiment E5."""
    from ..graphs.families import g_m

    return [
        canonical_for(h_m(1), "universal<canonical(H_1)>"),
        canonical_for(h_m(5), "universal<canonical(H_5)>"),
        canonical_for(g_m(2), "universal<canonical(G_2)>"),
        eager_beacon(8),
        quiet_prober(2),
        quiet_prober(5),
    ]


# ----------------------------------------------------------------------
# the adversary
# ----------------------------------------------------------------------
@dataclass
class DefeatReport:
    """Evidence that a candidate universal algorithm fails."""

    candidate: str
    first_tag0_transmission: Optional[int]  #: the proof's round t
    killer: Configuration  #: H_{t+1}
    leaders: List[object]
    crashed: bool  #: simulation raised (timeout / failed canonical match)
    bc_histories_equal: bool
    ad_histories_equal: bool

    @property
    def defeated(self) -> bool:
        return self.crashed or len(self.leaders) != 1

    def describe(self) -> str:
        """One-line defeat summary."""
        t = self.first_tag0_transmission
        outcome = (
            "crashed"
            if self.crashed
            else f"leaders={self.leaders!r} "
            f"(H_b=H_c: {self.bc_histories_equal}, "
            f"H_a=H_d: {self.ad_histories_equal})"
        )
        return (
            f"{self.candidate}: t={t}, killer=H_{(t or 0) + 1} -> {outcome}"
            f" => {'DEFEATED' if self.defeated else 'survived?!'}"
        )


def first_tag0_transmission(
    algorithm: LeaderElectionAlgorithm,
    probe_m: int = 64,
    max_rounds: int = 500_000,
    backend: str = "auto",
) -> Optional[int]:
    """Global round of the first transmission by a tag-0 node (b or c)
    when ``algorithm`` runs on the probe configuration ``H_{probe_m}``.

    As long as ``probe_m`` exceeds the returned value, the round is
    determined by the algorithm alone (nodes a/d are still asleep), which
    is exactly the quantity the Proposition 4.4 proof extracts.
    """
    cfg = h_m(probe_m)
    try:
        execution = simulate(
            cfg,
            algorithm.factory,
            max_rounds=max_rounds,
            record_trace=True,
            backend=backend,
        )
    except (SimulationTimeout, CanonicalMatchError):
        return None
    for rec in execution.trace:
        if any(v in (B, C) for v in rec.transmitters):
            return rec.global_round
    return None


def defeat(
    algorithm: LeaderElectionAlgorithm,
    probe_m: int = 64,
    max_rounds: int = 500_000,
    backend: str = "auto",
) -> DefeatReport:
    """Run the Proposition 4.4 adversary against one candidate."""
    t = first_tag0_transmission(algorithm, probe_m, max_rounds, backend)
    # A candidate whose tag-0 nodes never transmit dies on any H_m (all-
    # silent symmetric histories); use H_1 as the killer then.
    killer = h_m((t + 1) if t is not None else 1)
    crashed = False
    leaders: List[object] = []
    bc_equal = ad_equal = False
    try:
        execution = simulate(
            killer, algorithm.factory, max_rounds=max_rounds, backend=backend
        )
        leaders = execution.decide_leaders(algorithm.decision)
        bc_equal = execution.histories[B] == execution.histories[C]
        ad_equal = execution.histories[A] == execution.histories[D]
    except (SimulationTimeout, CanonicalMatchError):
        crashed = True
    return DefeatReport(
        candidate=algorithm.name,
        first_tag0_transmission=t,
        killer=killer,
        leaders=leaders,
        crashed=crashed,
        bc_histories_equal=bc_equal,
        ad_histories_equal=ad_equal,
    )


# ----------------------------------------------------------------------
# Proposition 4.5: indistinguishability of H_{t+1} and S_{t+1}
# ----------------------------------------------------------------------
def compare_executions(
    cfg_a: Configuration,
    cfg_b: Configuration,
    algorithm: LeaderElectionAlgorithm,
    max_rounds: int = 500_000,
) -> Dict[object, bool]:
    """Run one algorithm on two same-node-set configurations; report, per
    node, whether its terminal histories coincide.

    All-True on ``(H_{t+1}, S_{t+1})`` for an algorithm whose tag-0 nodes
    first transmit in round t is the Proposition 4.5 witness: no node can
    tell the feasible configuration from the infeasible one.
    """
    ex_a = simulate(cfg_a, algorithm.factory, max_rounds=max_rounds)
    ex_b = simulate(cfg_b, algorithm.factory, max_rounds=max_rounds)
    if set(ex_a.histories) != set(ex_b.histories):
        raise ValueError("configurations have different node sets")
    return {
        v: ex_a.histories[v] == ex_b.histories[v] for v in sorted(ex_a.histories)
    }
