"""Simulation-based feasibility ground truth.

``Classifier``'s Yes/No logic is "singleton class appears" vs "partition
stabilizes". The theory (Lemmas 3.9/3.11/3.16) says this is equivalent to
"some node ends the canonical execution with a *unique history*". This
module decides feasibility from the executed histories alone — exercising
the simulator, the canonical protocol and the history machinery but *not*
the classifier's decision logic — so a bug on either side shows up as a
disagreement. Experiment E1 runs the two against each other exhaustively.

For very small configurations :func:`refutes_by_symmetry` gives a third,
fully independent *infeasibility* witness: a tag-preserving automorphism
without fixed points.
"""

from __future__ import annotations

from typing import Optional

from ..core.canonical import CanonicalProtocol
from ..core.classifier import classify
from ..core.configuration import Configuration
from ..radio.simulator import simulate


def simulation_feasible(config: Configuration) -> bool:
    """Feasibility decided from simulated canonical histories only."""
    trace = classify(config)
    protocol = CanonicalProtocol.from_trace(trace)
    execution = simulate(
        trace.config,
        protocol.factory,
        max_rounds=protocol.round_budget(trace.config.span),
    )
    return bool(execution.unique_history_nodes())


def simulation_leader(config: Configuration) -> Optional[object]:
    """The node with the lexicographically-smallest unique history, or
    None. (Any deterministic tiebreak over unique histories yields a valid
    dedicated decision function; smallest-key keeps it reproducible.)"""
    trace = classify(config)
    protocol = CanonicalProtocol.from_trace(trace)
    execution = simulate(
        trace.config,
        protocol.factory,
        max_rounds=protocol.round_budget(trace.config.span),
    )
    unique = execution.unique_history_nodes()
    if not unique:
        return None
    return min(unique, key=lambda v: execution.histories[v].key())


def refutes_by_symmetry(config: Configuration) -> bool:
    """True when a fixed-point-free tag-preserving automorphism exists —
    a direct witness of infeasibility, independent of every other layer."""
    from ..analysis.automorphisms import has_fixed_node

    return not has_fixed_node(config)
