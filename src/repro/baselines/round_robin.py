"""Labeled single-hop election without collision detection: round robin.

The classic contrast point for Section 1.3's table of single-hop results:
when nodes *have* distinct labels from a known space ``0..N-1``, leader
election needs no collision detection at all — each node transmits its
label in its own reserved slot, everyone hears every transmission
(single-hop, one transmitter per slot by construction), and the smallest
label wins. Time is Θ(N) slots, versus Θ(log n) for the tree-split
baseline that exploits collision detection, versus the *impossibility* of
any of this in the anonymous setting the paper studies (no labels — only
wakeup tags can break symmetry).

All nodes are assumed awake together (tags all zero): the labeled
baselines measure communication slots, not wakeup asymmetry.
"""

from __future__ import annotations

from ..radio.history import History
from ..radio.model import LISTEN, TERMINATE, Action, Message, Transmit
from ..radio.protocol import DRIP, LeaderElectionAlgorithm


class RoundRobinDRIP(DRIP):
    """Per-node protocol: transmit my label in slot ``label + 1``, listen
    in every other slot, terminate after the id space is exhausted."""

    __slots__ = ("label", "id_space")

    def __init__(self, label: int, id_space: int) -> None:
        if not 0 <= label < id_space:
            raise ValueError(f"label {label} outside id space 0..{id_space - 1}")
        self.label = label
        self.id_space = id_space

    def decide(self, history: History) -> Action:
        i = len(history)  # local round being decided
        if i > self.id_space:
            return TERMINATE
        if i == self.label + 1:
            return Transmit(self.label)
        return LISTEN


def round_robin_algorithm(id_space: int) -> LeaderElectionAlgorithm:
    """Dedicated labeled algorithm for a single-hop network whose node ids
    are exactly ``0..n-1`` within a known id space of size ``id_space``.

    The factory uses the node id — this is a *labeled* baseline and is
    exactly what anonymity forbids in the paper's setting.

    The decision function is a pure function of the terminal history:
    label 0 always exists (contiguous ids), transmits in slot 1 and hears
    nothing in that slot, while every other node receives label 0's
    message in slot 1 — so a node is the leader iff its first received
    message (if any) arrives after slot 1.
    """
    if id_space < 1:
        raise ValueError("id space must be non-empty")

    def factory(node_id: object) -> DRIP:
        return RoundRobinDRIP(int(node_id), id_space)

    def decision(history: History) -> int:
        first = history.first_message_round()
        return 1 if first is None or first > 1 else 0

    return LeaderElectionAlgorithm(factory, decision, name="round-robin")


def round_robin_slots(id_space: int) -> int:
    """Slots until termination: the full id space plus the closing round."""
    return id_space + 1


def heard_labels(history: History) -> list:
    """All integer labels received during an execution (sorted).

    In a full single-hop round-robin run a node hears every label except
    its own — handy for asserting the protocol's information guarantees.
    """
    out = []
    for _round, entry in history.events():
        if isinstance(entry, Message) and isinstance(entry.payload, int):
            out.append(entry.payload)
    return sorted(out)
