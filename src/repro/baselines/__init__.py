"""Baselines and adversaries: simulation ground truth, labeled and
randomized single-hop election, and the Section 4 impossibility
machinery."""

from .bruteforce import refutes_by_symmetry, simulation_feasible, simulation_leader
from .tree_split import (
    TreeSplitDRIP,
    tree_split_algorithm,
    tree_split_slot_bound,
)
from .universal_candidates import (
    DefeatReport,
    candidate_portfolio,
    canonical_for,
    compare_executions,
    defeat,
    eager_beacon,
    first_tag0_transmission,
    quiet_prober,
)
from .willard import WillardDRIP, willard_algorithm, willard_expected_slots_bound

from .round_robin import (
    RoundRobinDRIP,
    heard_labels,
    round_robin_algorithm,
    round_robin_slots,
)

__all__ = [
    "DefeatReport",
    "RoundRobinDRIP",
    "TreeSplitDRIP",
    "WillardDRIP",
    "candidate_portfolio",
    "canonical_for",
    "compare_executions",
    "defeat",
    "eager_beacon",
    "first_tag0_transmission",
    "heard_labels",
    "quiet_prober",
    "refutes_by_symmetry",
    "round_robin_algorithm",
    "round_robin_slots",
    "simulation_feasible",
    "simulation_leader",
    "tree_split_algorithm",
    "tree_split_slot_bound",
    "willard_algorithm",
    "willard_expected_slots_bound",
]
