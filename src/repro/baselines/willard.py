"""Randomized single-hop leader election (Willard-style contrast baseline).

Section 1.3: with collision detection, *randomized* election in a
single-hop network of unknown size runs in expected O(log log n) slots
(Willard 1986) — exponentially faster than the deterministic Θ(log n)
tree-split, and in sharp contrast to the anonymous deterministic setting,
where no algorithm exists at all without wakeup asymmetry.

The implementation keeps Willard's two-stage shape, adapted to our
(probe, ack) feedback idiom (a lone transmitter learns it was alone from
the non-silent ack slot):

1. **Doubling search** over exponents ``l = 1, 2, 4, 8, ...``: probe with
   transmission probability ``2^-l`` until a probe stops colliding. This
   brackets ``log₂ n`` within O(log log n) probes.
2. **Adaptive walk**: from the bracket, nudge the exponent by ±1 —
   collision means the probability is still too high (``l += 1``), empty
   means too low (``l -= 1``) — until some probe has exactly one
   transmitter, which wins. Near the critical exponent every probe
   succeeds with constant probability, so the walk adds O(1) expected
   slots (this replaces Willard's in-bracket binary search; same
   asymptotics, visibly better constants at benchmark sizes).

Nodes are anonymous but carry independent seeded RNGs; the level state
machine is common knowledge because it is a deterministic function of the
shared ternary feedback sequence. Every probe at any level has positive
success probability for n >= 2, so the protocol terminates almost surely.
"""

from __future__ import annotations

import random
from typing import Optional

from ..radio.history import History
from ..radio.model import COLLISION, LISTEN, TERMINATE, Action, Message, Transmit
from ..radio.protocol import DRIP, LeaderElectionAlgorithm

PROBE_MSG = "bid"
ACK_MSG = "ack"

#: Probe outcomes (shared knowledge after each (probe, ack) pair).
EMPTY, SINGLE, COLLIDE = "empty", "single", "collide"


class WillardDRIP(DRIP):
    """Per-node program; ``rng`` must be private to the node (n >= 2)."""

    __slots__ = ("rng", "_phase", "_level", "_i_probed", "_winner", "_max_slots")

    def __init__(self, rng: random.Random, max_slots: int = 10_000) -> None:
        self.rng = rng
        self._phase = "double"
        self._level = 1  # current exponent l: transmit w.p. 2^-l
        self._i_probed = False
        self._winner: Optional[bool] = None
        self._max_slots = max_slots

    # -- shared state machine -------------------------------------------
    def _advance(self, outcome: str) -> None:
        """Update (phase, level) from a probe outcome; identical at every
        node because outcomes are common knowledge."""
        if outcome == SINGLE:
            return  # handled by the winner logic
        if self._phase == "double":
            if outcome == COLLIDE:
                self._level *= 2
            else:  # EMPTY: overshot log₂ n — drop into the bracket & walk
                self._phase = "walk"
                self._level = max(0, (self._level + self._level // 2) // 2)
        else:  # adaptive ±1 walk around the critical exponent
            if outcome == COLLIDE:
                self._level += 1
            else:
                self._level = max(0, self._level - 1)

    # -- DRIP --------------------------------------------------------------
    def decide(self, history: History) -> Action:
        i = len(history)
        if i >= self._max_slots:
            return TERMINATE  # safety valve; n=1 runs cannot elect

        if i % 2 == 1:  # probe slot
            if i >= 3:
                self._digest(history, i)
            if self._winner is not None:
                return TERMINATE
            self._i_probed = self.rng.random() < 2.0 ** (-self._level)
            return Transmit(PROBE_MSG) if self._i_probed else LISTEN

        # ack slot
        probe = history[i - 1]
        if self._i_probed:
            return LISTEN  # learn my outcome from the acks
        if isinstance(probe, Message):
            return Transmit(ACK_MSG)
        return LISTEN

    def _digest(self, history: History, i: int) -> None:
        """At the start of a probe slot, fold in the previous pair."""
        probe, ack = history[i - 2], history[i - 1]
        if self._i_probed:
            self._i_probed = False
            if isinstance(ack, Message) or ack is COLLISION:
                self._winner = True
                return
            self._advance(COLLIDE)  # I transmitted but was not alone
            return
        if isinstance(probe, Message):
            self._winner = False
            return
        self._advance(COLLIDE if probe is COLLISION else EMPTY)


def willard_algorithm(seed: int, max_slots: int = 10_000) -> LeaderElectionAlgorithm:
    """Randomized single-hop election; per-node RNGs derived from ``seed``.

    Requires ``n >= 2`` nodes, all with tag 0 (single-hop, simultaneous
    wakeup). The decision function mirrors tree-split's: 1 iff one of my
    probes drew a non-silent ack.
    """

    def factory(node_id: object) -> DRIP:
        rng = random.Random(f"{seed}:{node_id}")
        return WillardDRIP(rng, max_slots=max_slots)

    def decision(history: History) -> int:
        for p in range(1, len(history) - 1, 2):
            probe, ack = history[p], history[p + 1]
            if isinstance(probe, Message):
                return 0
            if probe is not COLLISION and (
                isinstance(ack, Message) or ack is COLLISION
            ):
                return 1
        return 0

    return LeaderElectionAlgorithm(factory, decision, name=f"willard(seed={seed})")


def willard_expected_slots_bound(n: int, c: float = 10.0) -> float:
    """A generous c·log₂log₂(n)+c envelope for expectation shape checks."""
    import math

    if n < 4:
        return 4 * c
    return c * math.log2(math.log2(n)) + 4 * c
