"""Deterministic single-hop leader election with IDs (contrast baseline).

The paper's Section 1.3 surveys what *labeled* nodes buy in the radio
model: with collision detection, deterministic election in single-hop
networks takes Θ(log n) slots (Capetanakis 1979; Hayes 1978;
Tsybakov–Mikhailov 1978). This module implements the binary interval-
splitting algorithm on our simulator so experiment E9 can contrast it with
the anonymous setting (where deterministic election without wakeup
asymmetry is impossible) and with randomized election (Willard).

Protocol (all nodes awake in round 0, complete graph, IDs ``0..n-1``,
``n`` known):

Slots come in (probe, ack) pairs. Every node tracks a common candidate
interval ``[lo, hi)``, initially ``[0, n)``. In a probe slot, nodes with
ID in the left half ``[lo, mid)`` transmit; in the ack slot, every node
that *heard a single message* in the probe transmits an ack. The shared
feedback drives a common state machine:

* probe heard as silence → left half empty → recurse into the right half;
* probe heard as collision → ≥ 2 nodes in the left half → recurse left;
* probe heard as one message → the unique prober wins (listeners know
  immediately; the prober learns it from the non-silent ack slot).

Each split halves the interval, so a winner emerges within
``2·(⌊log₂ n⌋ + 1) + 2`` slots — Θ(log n), matching the classical bound.
"""

from __future__ import annotations

import math
from typing import Optional

from ..radio.history import History
from ..radio.model import COLLISION, LISTEN, TERMINATE, Action, Message, Transmit
from ..radio.protocol import DRIP, LeaderElectionAlgorithm

PROBE_MSG = "probe"
ACK_MSG = "ack"


class TreeSplitDRIP(DRIP):
    """Per-node program of the interval-splitting algorithm (``n >= 2``)."""

    __slots__ = ("node_id", "n", "_lo", "_hi", "_winner", "_i_probed")

    def __init__(self, node_id: int, n: int) -> None:
        if n < 2:
            raise ValueError("TreeSplitDRIP needs n >= 2 (see solo_algorithm)")
        if not 0 <= node_id < n:
            raise ValueError("node_id must be in 0..n-1")
        self.node_id = node_id
        self.n = n
        self._lo = 0
        self._hi = n
        self._winner: Optional[bool] = None  # True: me; False: someone else
        self._i_probed = False

    def _mid(self) -> int:
        """Split point; size-1 intervals probe their single candidate."""
        lo, hi = self._lo, self._hi
        return hi if hi - lo == 1 else (lo + hi) // 2

    def decide(self, history: History) -> Action:
        i = len(history)

        if i % 2 == 1:  # probe slot (local rounds 1, 3, 5, ...)
            if self._i_probed and i >= 3:
                # Digest the ack feedback of my previous probe: any sound
                # means everyone heard me alone — I win; silence means my
                # probe collided — recurse left.
                ack = history[i - 1]
                self._i_probed = False
                if ack is COLLISION or isinstance(ack, Message):
                    self._winner = True
                else:
                    self._hi = self._mid()
            if self._winner is not None:
                return TERMINATE
            self._i_probed = self._lo <= self.node_id < self._mid()
            return Transmit(PROBE_MSG) if self._i_probed else LISTEN

        # ack slot: listeners classify the probe outcome.
        if self._i_probed:
            return LISTEN  # await the ack feedback
        probe = history[i - 1]
        if isinstance(probe, Message):
            self._winner = False  # unique prober heard: it wins
            return Transmit(ACK_MSG)
        mid = self._mid()
        if probe is COLLISION:
            self._hi = mid  # ≥2 probers: recurse left
        else:
            self._lo = mid  # empty left half: recurse right
        return LISTEN


class _SoloDRIP(DRIP):
    """n = 1: transmit once (to a vacuum) and terminate."""

    def decide(self, history: History) -> Action:
        if len(history) == 1:
            return Transmit(PROBE_MSG)
        return TERMINATE


def tree_split_algorithm(n: int) -> LeaderElectionAlgorithm:
    """The labeled single-hop election algorithm for ``n`` nodes.

    Node ids must be ``0..n-1`` (sortable ints). The decision function is
    the natural one: a node outputs 1 iff one of its probes was followed
    by a non-silent ack slot (it probed alone); a node that ever *heard*
    a lone probe outputs 0.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    if n == 1:
        return LeaderElectionAlgorithm(
            lambda _v: _SoloDRIP(), lambda _h: 1, name="tree-split(n=1)"
        )

    def factory(node_id: object) -> DRIP:
        return TreeSplitDRIP(int(node_id), n)

    def decision(history: History) -> int:
        for p in range(1, len(history) - 1, 2):
            probe, ack = history[p], history[p + 1]
            if isinstance(probe, Message):
                return 0  # heard someone else's lone probe
            if probe is not COLLISION and (
                isinstance(ack, Message) or ack is COLLISION
            ):
                return 1  # my lone probe, acknowledged
        return 0

    return LeaderElectionAlgorithm(factory, decision, name=f"tree-split(n={n})")


def tree_split_slot_bound(n: int) -> int:
    """Worst-case slots: two per split, ⌊log₂ n⌋ + 1 splits, + 2 wrap-up."""
    if n <= 1:
        return 2
    return 2 * (int(math.log2(n)) + 1) + 2
