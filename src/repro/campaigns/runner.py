"""The Monte Carlo campaign driver: trials, shards, workers, metrics.

A campaign fans thousands of seeded adversarial trials through the
existing machinery: configurations are classified shard-wise through the
vectorized batch kernel (:func:`repro.core.batch.batch_outcomes`, with a
serial fallback when numpy is absent), simulations run through the
pluggable backends, and the distributed path rides the same durable
:class:`~repro.engine.queue.WorkQueue` the census uses — lease/heartbeat
semantics, retry caps and all.

Fault isolation is per trial: :func:`run_trial` never raises. A
pathological trial — a budget blowout, a jam-induced
:class:`~repro.core.canonical.CanonicalMatchError`, any crash — degrades
to a recorded failure with its own replayable digest, and the sweep
continues. Worker-process death is handled one level up by queue lease
expiry and retries.

Outcomes: ``survived`` (the recorded leader was elected), ``derailed``
(wrong or missing leader on a feasible configuration), ``infeasible``
(control arm: no leader expected, none elected), ``timeout``,
``match_error`` and ``error``.
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..adversary import adversary_to_spec
from ..adversary.strategies import (
    ReactiveJammer,
    phase_targeting_jammer,
    random_budget_jammer,
    random_crash_sleep,
)
from ..core.canonical import (
    CanonicalMatchError,
    CanonicalProtocol,
    build_canonical_data,
)
from ..core.classifier import classify
from ..core.configuration import Configuration
from ..engine.pipeline import plan_shards
from ..engine.queue import (
    DEFAULT_LEASE_TTL,
    DEFAULT_MAX_ATTEMPTS,
    QueueError,
    WorkQueue,
    default_owner,
    heartbeat_guard,
)
from ..obs.runtime import STATE as _OBS
from ..obs.runtime import registry as _registry
from ..obs.runtime import span as _obs_span
from ..radio.backends import SimulationTimeout
from ..radio.faults import JammedRadioSimulator
from .bundle import (
    config_spec,
    execution_digest,
    failure_digest,
    write_bundle,
)
from .spec import CampaignSpec, TrialPlan, derive_trial

__all__ = [
    "CampaignRun",
    "campaign_metrics",
    "campaign_queue_worker",
    "collect_campaign_queue",
    "create_campaign_queue",
    "distributed_campaign",
    "execute_trial",
    "instantiate_adversary",
    "run_campaign",
    "run_trial",
    "serial_trial_loop",
]

#: Default shard size for the in-process campaign loop (bounds how many
#: configurations one batch-kernel call classifies in lockstep).
DEFAULT_SHARD_SIZE = 256

#: Outcomes counted as failures by the obs counters.
_FAILURE_OUTCOMES = ("timeout", "match_error", "error")


def instantiate_adversary(
    choice: Dict, *, seed: int, trace, horizon: int
):
    """Build the jam schedule a strategy-mix entry describes.

    ``choice`` is one entry of :attr:`CampaignSpec.strategies`; ``seed``
    is the trial seed; ``trace`` the trial's classifier trace (the
    phase-targeting strategy reads the Lemma 3.7 schedule off it);
    ``horizon`` the trial's round budget. Returns ``None`` for the
    ``"none"`` control arm.
    """
    name = choice.get("strategy", "none")
    if name == "none":
        return None
    if name == "random_budget":
        return random_budget_jammer(
            seed, int(choice.get("budget", 3)), horizon
        )
    if name == "phase_targeting":
        data = build_canonical_data(trace)
        cfg = trace.config
        phase = min(int(choice.get("phase", 1)), data.num_phases)
        return phase_targeting_jammer(
            sigma=data.sigma,
            phase_ends=data.phase_ends,
            tags=[(v, cfg.tag(v)) for v in cfg.nodes],
            phase=phase,
            seed=seed,
            hits=int(choice.get("hits", 1)),
        )
    if name == "reactive":
        return ReactiveJammer(
            seed,
            probability=float(choice.get("probability", 0.5)),
            budget=int(choice.get("budget", 2)),
        )
    if name == "crash_sleep":
        return random_crash_sleep(
            seed,
            list(trace.config.nodes),
            count=int(choice.get("count", 1)),
            horizon=horizon,
            min_len=int(choice.get("min_len", 1)),
            max_len=int(choice.get("max_len", 8)),
        )
    raise ValueError(f"unknown strategy {name!r}")


def execute_trial(
    config: Configuration,
    jammer,
    *,
    max_rounds: Optional[int] = None,
    backend: str = "auto",
    trace=None,
) -> Dict:
    """Classify + simulate one adversarial trial. Never raises.

    The execution core shared by fresh trials (:func:`run_trial`) and
    manifest replay (:func:`~repro.campaigns.bundle.replay_trial`):
    classify ``config`` (or reuse ``trace``), build the canonical
    protocol, run it under ``jammer`` on the requested backend, decide
    leaders, and digest the result. Any failure — round-budget timeout,
    jam-induced canonical match error, or crash — is folded into the
    returned record with a failure digest of its deterministic
    diagnostics, so failed trials replay bit-for-bit too.
    """
    out: Dict = {
        "config": None,
        "feasible": None,
        "outcome": "error",
        "leaders": [],
        "rounds_elapsed": None,
        "done": None,
        "jams": 0,
        "max_rounds": max_rounds,
        "error": None,
        "digest": None,
    }
    try:
        if trace is None:
            trace = classify(config)
        network = trace.config  # normalized
        out["config"] = config_spec(network)
        out["feasible"] = trace.feasible
        protocol = CanonicalProtocol.from_trace(trace)
        if max_rounds is None:
            max_rounds = protocol.round_budget(network.span)
            out["max_rounds"] = max_rounds
        sim = JammedRadioSimulator(
            network,
            protocol.factory,
            jammer=jammer,
            max_rounds=max_rounds,
            backend=backend,
        )
        execution = sim.run()
        leaders = execution.decide_leaders(protocol.decision)
        out["leaders"] = leaders
        out["rounds_elapsed"] = execution.rounds_elapsed
        out["done"] = execution.max_done_local()
        out["jams"] = len(sim.effective_jams)
        if trace.feasible:
            out["outcome"] = (
                "survived" if leaders == [trace.leader] else "derailed"
            )
        else:
            out["outcome"] = "derailed" if leaders else "infeasible"
        out["digest"] = execution_digest(execution, leaders)
    except SimulationTimeout as exc:
        out["outcome"] = "timeout"
        out["error"] = str(exc)
        out["digest"] = failure_digest(
            "timeout",
            {
                "round_reached": exc.round_reached,
                "awake": exc.awake,
                "asleep": exc.asleep,
                "terminated": exc.terminated,
            },
        )
    except CanonicalMatchError as exc:
        out["outcome"] = "match_error"
        out["error"] = str(exc)
        out["digest"] = failure_digest("match_error", {"message": str(exc)})
    except Exception as exc:  # per-trial isolation: record, don't raise
        out["error"] = f"{type(exc).__name__}: {exc}"
        out["digest"] = failure_digest("error", {"message": out["error"]})
    return out


def run_trial(
    plan: TrialPlan, *, backend: str = "auto", trace=None
) -> Dict:
    """Run one derived trial end to end; return its manifest record.

    Fault-isolated: classification errors, adversary-construction
    errors and simulation failures all degrade to a recorded failure.
    The record is self-contained — configuration spec, finalized
    adversary spec, round budget, backend, outcome, digest — so
    :func:`~repro.campaigns.bundle.replay_trial` needs nothing else.
    """
    record: Dict = {
        "index": plan.index,
        "seed": plan.seed,
        "strategy": plan.strategy.get("strategy", "none"),
        "backend": backend,
        "adversary": None,
    }
    jammer = None
    try:
        if trace is None:
            trace = classify(plan.config)
        protocol = CanonicalProtocol.from_trace(trace)
        horizon = protocol.round_budget(trace.config.span)
        jammer = instantiate_adversary(
            plan.strategy, seed=plan.seed, trace=trace, horizon=horizon
        )
        record["adversary"] = adversary_to_spec(jammer)
    except Exception as exc:
        record.update(
            config=config_spec(plan.config),
            feasible=None,
            outcome="error",
            leaders=[],
            rounds_elapsed=None,
            done=None,
            jams=0,
            max_rounds=None,
            error=f"{type(exc).__name__}: {exc}",
            digest=failure_digest(
                "error", {"message": f"{type(exc).__name__}: {exc}"}
            ),
        )
        return record
    record.update(
        execute_trial(
            plan.config, jammer, max_rounds=None, backend=backend, trace=trace
        )
    )
    return record


def _batch_traces(configs: Sequence[Configuration]) -> List:
    """Classifier traces for a shard, via the vectorized batch kernel.

    Returns one trace (or ``None``) per configuration, in order. Uses
    :func:`repro.core.batch.batch_outcomes` in trace mode when numpy is
    available; otherwise (or for instances the kernel rejects) returns
    ``None`` so the caller's serial path classifies — and fault-isolates
    — that trial itself.
    """
    try:
        from ..core.batch import batch_outcomes, resolve_batch_algorithm

        if resolve_batch_algorithm("auto") != "batch":
            return [None] * len(configs)
        outcomes = batch_outcomes(list(configs), traces=True, errors="return")
        return [
            o.trace if o is not None and o.error is None else None
            for o in outcomes
        ]
    except Exception:
        return [None] * len(configs)


def _run_shard(spec: CampaignSpec, start: int, stop: int) -> List[Dict]:
    """Run trials ``[start, stop)`` of a campaign (one shard).

    Derives each trial plan, classifies the shard's configurations in
    one batch-kernel call, then runs the (fault-isolated) trials
    serially. Updates the campaign obs counters when tracing is on.
    """
    plans = [derive_trial(spec, i) for i in range(start, stop)]
    traces = _batch_traces([p.config for p in plans])
    records = [
        run_trial(plan, backend=spec.backend, trace=trace)
        for plan, trace in zip(plans, traces)
    ]
    if _OBS.enabled:
        _registry.inc("campaign.trials", len(records))
        outcomes = Counter(r["outcome"] for r in records)
        _registry.inc("campaign.survived", outcomes.get("survived", 0))
        _registry.inc("campaign.derailed", outcomes.get("derailed", 0))
        _registry.inc(
            "campaign.failures",
            sum(outcomes.get(o, 0) for o in _FAILURE_OUTCOMES),
        )
    return records


@dataclass
class CampaignRun:
    """A completed campaign: spec, per-trial records, robustness metrics."""

    spec: CampaignSpec
    results: List[Dict]
    metrics: Dict = field(default_factory=dict)

    def write_bundle(self, directory: str) -> str:
        """Write the self-contained replay bundle; return manifest path."""
        return write_bundle(directory, self.spec, self.results, self.metrics)

    def describe(self) -> str:
        """One-line campaign summary for CLI footers and logs."""
        m = self.metrics
        rate = m.get("survival_rate")
        rate_s = f"{rate:.1%}" if rate is not None else "n/a"
        return (
            f"campaign {self.spec.name!r}: {len(self.results)} trial(s), "
            f"{m.get('feasible_trials', 0)} feasible, survival {rate_s}, "
            f"outcomes {m.get('outcomes', {})}"
        )


def adversary_intensity(record: Dict) -> int:
    """Scalar adversary strength of a trial record (boundary-curve x-axis).

    Budgets for the budgeted jammers, per-node hits for the
    phase-targeting jammer, fault-window count for crash/sleep faults,
    0 for the failure-free control arm.
    """
    spec = record.get("adversary") or {"kind": "jam_nothing"}
    kind = spec.get("kind")
    if kind == "random_budget":
        return int(spec["budget"])
    if kind == "reactive":
        return int(spec["budget"])
    if kind == "phase_targeting":
        return int(spec["hits"])
    if kind == "crash_sleep":
        return len(spec["windows"])
    if kind == "jam_pairs":
        return len(spec["pairs"])
    if kind == "jam_rounds":
        return len(spec["rounds"])
    return 0


def campaign_metrics(results: List[Dict]) -> Dict:
    """Robustness metrics of a completed campaign.

    ``survival_rate`` is over the *feasible* trials (the control
    question — can the adversary break an election that should
    succeed); ``boundary`` is the derail-boundary curve: one row per
    (strategy, intensity) cell with its trial count and survival rate;
    ``witnesses`` are the extremal trial indices picked by
    :func:`repro.analysis.extremal.campaign_witnesses` (deduped up to
    isomorphism).
    """
    from ..analysis.extremal import campaign_witnesses

    outcomes = Counter(r["outcome"] for r in results)
    feasible = [r for r in results if r.get("feasible")]
    survived = sum(1 for r in feasible if r["outcome"] == "survived")
    cells: Dict = {}
    for r in results:
        key = (r.get("strategy", "none"), adversary_intensity(r))
        cell = cells.setdefault(
            key, {"trials": 0, "feasible": 0, "survived": 0}
        )
        cell["trials"] += 1
        if r.get("feasible"):
            cell["feasible"] += 1
            if r["outcome"] == "survived":
                cell["survived"] += 1
    boundary = [
        {
            "strategy": strategy,
            "intensity": intensity,
            "trials": cell["trials"],
            "feasible": cell["feasible"],
            "survived": cell["survived"],
            "survival_rate": (
                round(cell["survived"] / cell["feasible"], 4)
                if cell["feasible"]
                else None
            ),
        }
        for (strategy, intensity), cell in sorted(cells.items())
    ]
    return {
        "trials": len(results),
        "outcomes": dict(outcomes),
        "feasible_trials": len(feasible),
        "survived": survived,
        "survival_rate": (
            round(survived / len(feasible), 4) if feasible else None
        ),
        "boundary": boundary,
        "witnesses": campaign_witnesses(results),
    }


def run_campaign(
    spec: CampaignSpec, *, shard_size: int = DEFAULT_SHARD_SIZE
) -> CampaignRun:
    """Run a whole campaign in-process; return results plus metrics.

    Trials run shard by shard (each shard classified through the batch
    kernel in one lockstep call); ``shard_size`` only bounds per-shard
    memory, never results. For multi-process fan-out use
    :func:`distributed_campaign`.
    """
    results: List[Dict] = []
    with _obs_span(
        "campaign.run", campaign=spec.name, trials=spec.trials
    ):
        for start in range(0, spec.trials, max(1, shard_size)):
            stop = min(start + max(1, shard_size), spec.trials)
            with _obs_span("campaign.shard", start=start, stop=stop):
                results.extend(_run_shard(spec, start, stop))
    return CampaignRun(
        spec=spec, results=results, metrics=campaign_metrics(results)
    )


def serial_trial_loop(spec: CampaignSpec) -> List[Dict]:
    """The naive baseline: one-at-a-time trials, no batching, no workers.

    Classifies each trial's configuration individually (the compiled
    serial core) and simulates it inline. Produces records identical to
    :func:`run_campaign` — it exists as the throughput baseline the E28
    benchmark measures the campaign engine against.
    """
    return [
        run_trial(derive_trial(spec, i), backend=spec.backend)
        for i in range(spec.trials)
    ]


# ----------------------------------------------------------------------
# distributed campaigns (durable work queue + lease-based workers)
# ----------------------------------------------------------------------
def create_campaign_queue(
    queue_path: str,
    spec: CampaignSpec,
    *,
    num_shards: int,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
) -> WorkQueue:
    """Enumerate a campaign into a durable shard queue (coordinator side).

    The queue metadata carries the full campaign spec, so a standalone
    worker process rebuilds every trial from the queue file alone.
    Creation is idempotent exactly like the census queue: re-running the
    coordinator against a queue holding the same campaign resumes it.
    """
    shards = plan_shards(spec.trials, num_shards)
    meta = {
        "queue": "campaign",
        "campaign": spec.as_dict(),
        "total": spec.trials,
        "num_shards": len(shards),
    }
    return WorkQueue.create(
        queue_path,
        [(s.index, s.start, s.stop, float(s.size)) for s in shards],
        meta,
        lease_ttl=lease_ttl,
        max_attempts=max_attempts,
    )


def campaign_queue_worker(
    queue_path: str,
    *,
    owner: Optional[str] = None,
    max_shards: Optional[int] = None,
    wait: bool = True,
    poll: float = 0.5,
    lease_ttl: Optional[float] = None,
) -> int:
    """Drain campaign shards from a queue until it is finished.

    The worker half of a distributed campaign: rebuilds the
    :class:`CampaignSpec` from queue metadata and loops lease → run
    shard → commit under :func:`~repro.engine.queue.heartbeat_guard`.
    Individual trial failures are *recorded results*, not worker
    errors — only a whole-shard crash (or worker death, via lease
    expiry) sends a shard back for retry. Returns the number of trials
    this worker committed.
    """
    queue = WorkQueue(queue_path, lease_ttl=lease_ttl)
    trials = 0
    try:
        meta = queue.meta()
        if meta.get("queue") != "campaign":
            raise QueueError(
                f"queue {queue_path!r} is not a campaign queue "
                f"(queue={meta.get('queue')!r})"
            )
        spec = CampaignSpec.from_dict(meta["campaign"])
        owner = owner or default_owner()
        done = 0
        while True:
            lease = queue.lease(owner)
            if lease is None:
                if not wait or queue.finished():
                    break
                time.sleep(poll)
                continue
            try:
                with heartbeat_guard(queue, lease), _obs_span(
                    "campaign.shard", shard=lease.index, size=lease.size
                ):
                    records = _run_shard(spec, lease.start, lease.stop)
            except Exception as exc:
                queue.fail(lease, f"{type(exc).__name__}: {exc}")
                continue
            queue.commit(lease, records, {"trials": len(records)})
            trials += len(records)
            done += 1
            if max_shards is not None and done >= max_shards:
                break
    finally:
        queue.close()
    return trials


def collect_campaign_queue(
    queue_or_path,
    *,
    wait: bool = True,
    poll: float = 0.5,
    timeout: Optional[float] = None,
    strict: bool = True,
) -> CampaignRun:
    """Merge a campaign queue's committed shards into a :class:`CampaignRun`.

    Semantics mirror :func:`repro.engine.collect_census_queue`: with
    ``wait=True`` polls until every shard is done or failed (or
    ``timeout`` expires); ``strict=True`` raises on permanently failed
    shards, ``strict=False`` returns the trials that did complete.
    Records are ordered by trial index, so the merged result is
    identical regardless of which worker ran which shard.
    """
    own = isinstance(queue_or_path, str)
    queue = WorkQueue(queue_or_path) if own else queue_or_path
    try:
        deadline = time.monotonic() + timeout if timeout is not None else None
        while wait and not queue.finished():
            if deadline is not None and time.monotonic() > deadline:
                raise QueueError(
                    f"queue {queue.path!r} not finished after {timeout}s: "
                    + queue.describe()
                )
            time.sleep(poll)
        failures = queue.failures()
        if failures and strict:
            detail = "; ".join(
                f"shard {idx}: {err}" for idx, err in failures[:5]
            )
            raise QueueError(
                f"{len(failures)} shard(s) failed permanently ({detail})"
            )
        spec = CampaignSpec.from_dict(queue.meta()["campaign"])
        results: List[Dict] = []
        for _idx, rows, _stats in queue.results():
            results.extend(rows)
        results.sort(key=lambda r: r["index"])
        return CampaignRun(
            spec=spec, results=results, metrics=campaign_metrics(results)
        )
    finally:
        if own:
            queue.close()


def distributed_campaign(
    spec: CampaignSpec,
    queue_path: str,
    *,
    num_workers: int = 1,
    num_shards: Optional[int] = None,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    poll: float = 0.2,
) -> CampaignRun:
    """One-call distributed campaign: coordinator plus N local workers.

    Enumerates the campaign into a durable queue (resuming a matching
    half-finished one), spawns ``num_workers`` worker processes, waits,
    drains any leftovers in-process (expired leases are reclaimed as
    they age out), and merges. ``num_shards`` defaults to
    ``4 * num_workers`` for scheduling slack.
    """
    if num_workers < 1:
        raise ValueError("num_workers must be >= 1")
    if num_shards is None:
        num_shards = max(4 * num_workers, 1)
    queue = create_campaign_queue(
        queue_path,
        spec,
        num_shards=num_shards,
        lease_ttl=lease_ttl,
        max_attempts=max_attempts,
    )
    # close before forking: SQLite connections must not cross a fork
    queue.close()

    import multiprocessing

    procs = [
        multiprocessing.Process(
            target=campaign_queue_worker,
            args=(queue_path,),
            kwargs={"poll": poll},
            daemon=True,
        )
        for _ in range(num_workers)
    ]
    for p in procs:
        p.start()
    for p in procs:
        p.join()
    # drain guard: finish work of dead/killed workers once leases expire
    with WorkQueue(queue_path) as check:
        while not check.finished():
            campaign_queue_worker(queue_path, wait=False, poll=poll)
            if not check.finished():
                time.sleep(poll)
    return collect_campaign_queue(queue_path, wait=False)
