"""Campaign specifications: seeded Monte Carlo sweep descriptions.

A :class:`CampaignSpec` is the complete, JSON-able description of a
robustness campaign: how many trials, which configuration sizes, which
adversary strategy mix, which backend. Everything a trial does is a pure
function of ``(spec, trial index)`` — the per-trial seed is derived from
the campaign seed, the configuration from the per-trial seed via
:func:`repro.engine.workloads.seeded_config`, and the strategy by a
seeded weighted pick — so any trial can be re-derived (or the finalized
record replayed) from the manifest alone.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..core.configuration import Configuration
from ..engine.workloads import seeded_config

__all__ = [
    "STRATEGY_NAMES",
    "CampaignSpec",
    "TrialPlan",
    "derive_trial",
]

#: Strategy names a campaign mix may reference. ``"none"`` is the
#: failure-free control arm; the rest map onto :mod:`repro.adversary`.
STRATEGY_NAMES = (
    "none",
    "random_budget",
    "phase_targeting",
    "reactive",
    "crash_sleep",
)

#: Multiplier deriving per-trial seeds from the campaign seed (a prime
#: far larger than any trial count, so trial streams never overlap).
TRIAL_SEED_STRIDE = 1_000_003


@dataclass(frozen=True)
class CampaignSpec:
    """Seeded description of one Monte Carlo robustness campaign.

    ``strategies`` is the adversary mix: each entry is a dict with a
    ``"strategy"`` name from :data:`STRATEGY_NAMES`, a positive
    ``"weight"``, and strategy parameters (``budget``, ``phase``,
    ``hits``, ``probability``, ``count`` ...). Each trial picks one
    entry by seeded weighted choice. The spec round-trips through
    :meth:`as_dict` / :meth:`from_dict` for manifests and queue
    metadata.
    """

    name: str
    seed: int
    trials: int
    n_values: Tuple[int, ...]
    span: int = 2
    p: float = 0.3
    strategies: Tuple[Dict, ...] = field(
        default_factory=lambda: ({"strategy": "none", "weight": 1.0},)
    )
    backend: str = "auto"

    def __post_init__(self) -> None:
        """Validate counts, sizes and the strategy mix."""
        if self.trials < 1:
            raise ValueError("trials must be >= 1")
        if not self.n_values or any(n < 1 for n in self.n_values):
            raise ValueError("n_values must be non-empty positive sizes")
        if self.span < 0:
            raise ValueError("span must be >= 0")
        if not self.strategies:
            raise ValueError("the strategy mix must not be empty")
        for entry in self.strategies:
            name = entry.get("strategy")
            if name not in STRATEGY_NAMES:
                raise ValueError(
                    f"unknown strategy {name!r}; choose from "
                    f"{STRATEGY_NAMES}"
                )
            if float(entry.get("weight", 1.0)) <= 0:
                raise ValueError(f"strategy {name!r} has non-positive weight")
        object.__setattr__(self, "n_values", tuple(self.n_values))
        object.__setattr__(
            self, "strategies", tuple(dict(s) for s in self.strategies)
        )

    def trial_seed(self, index: int) -> int:
        """Deterministic seed of trial ``index``."""
        return self.seed + TRIAL_SEED_STRIDE * index

    def as_dict(self) -> Dict:
        """JSON-able spec (inverse of :meth:`from_dict`)."""
        return {
            "name": self.name,
            "seed": self.seed,
            "trials": self.trials,
            "n_values": list(self.n_values),
            "span": self.span,
            "p": self.p,
            "strategies": [dict(s) for s in self.strategies],
            "backend": self.backend,
        }

    @classmethod
    def from_dict(cls, spec: Dict) -> "CampaignSpec":
        """Rebuild a spec from :meth:`as_dict` output."""
        return cls(
            name=spec["name"],
            seed=spec["seed"],
            trials=spec["trials"],
            n_values=tuple(spec["n_values"]),
            span=spec.get("span", 2),
            p=spec.get("p", 0.3),
            strategies=tuple(spec.get("strategies", ())),
            backend=spec.get("backend", "auto"),
        )


@dataclass(frozen=True)
class TrialPlan:
    """The derived inputs of one trial: its seed, configuration and the
    strategy-mix entry it drew."""

    index: int
    seed: int
    config: Configuration
    strategy: Dict


def _weighted_pick(rng: random.Random, entries: Sequence[Dict]) -> Dict:
    """Seeded weighted choice over the strategy mix."""
    total = sum(float(e.get("weight", 1.0)) for e in entries)
    x = rng.random() * total
    for entry in entries:
        x -= float(entry.get("weight", 1.0))
        if x < 0:
            return entry
    return entries[-1]


def derive_trial(spec: CampaignSpec, index: int) -> TrialPlan:
    """Derive trial ``index`` of ``spec`` (pure, deterministic).

    The trial's own seed drives three independent draws: the
    configuration size (uniform over ``n_values``), the connected
    G(n, p) configuration with uniform tags, and the strategy-mix entry.
    Re-deriving the same ``(spec, index)`` always yields the same plan.
    """
    if not 0 <= index < spec.trials:
        raise IndexError(f"trial index {index} out of range")
    seed = spec.trial_seed(index)
    rng = random.Random(seed)
    n = spec.n_values[rng.randrange(len(spec.n_values))]
    strategy = _weighted_pick(rng, spec.strategies)
    config = seeded_config(seed, n, spec.span, p=spec.p)
    return TrialPlan(index=index, seed=seed, config=config, strategy=strategy)
