"""Campaign bundles: self-contained manifests and bit-for-bit replay.

A campaign bundle is a directory holding one ``manifest.json`` with
everything needed to reproduce any trial without the original process:
the campaign spec (seeds and strategy mix), and per trial the finalized
configuration spec, adversary spec, round budget, backend, outcome and a
result *digest*. The digest is a SHA-256 over a canonical rendering of
the :class:`~repro.radio.events.ExecutionResult` (per-node histories,
wake rounds/kinds, termination rounds, total rounds, elected leaders) —
or, for failed trials, over the failure diagnostics — so "replays
bit-for-bit" is checkable by digest equality alone.

:func:`replay_trial` is the check: rebuild the configuration and the
adversary from the record, re-run the trial through the same backend,
and compare digests.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.configuration import Configuration

__all__ = [
    "BUNDLE_FORMAT",
    "ReplayReport",
    "config_spec",
    "config_from_spec",
    "execution_digest",
    "failure_digest",
    "read_bundle",
    "replay_trial",
    "write_bundle",
]

#: Manifest format version (bumped on incompatible layout changes).
BUNDLE_FORMAT = 1


def config_spec(config: Configuration) -> Dict:
    """JSON-able description of a configuration (tags + edges).

    Node labels must be JSON scalars — the same restriction
    :class:`~repro.engine.workloads.SequenceWorkload` imposes — so the
    round-trip through a manifest reproduces the exact configuration.
    """
    for v in config.nodes:
        if not isinstance(v, (int, str)) or isinstance(v, bool):
            raise TypeError(
                f"node label {v!r} is not JSON-stable; campaign manifests "
                "need int or str node labels"
            )
    return {
        "tags": [[v, config.tag(v)] for v in config.nodes],
        "edges": [list(e) for e in config.edges],
    }


def config_from_spec(spec: Dict) -> Configuration:
    """Rebuild a configuration from :func:`config_spec` output."""
    return Configuration(
        edges=[tuple(e) for e in spec["edges"]],
        tags={v: t for v, t in spec["tags"]},
    )


def _digest(payload: object) -> str:
    """SHA-256 hex digest of a canonical JSON rendering."""
    blob = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=str
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def execution_digest(execution, leaders: List[object]) -> str:
    """Digest of a completed execution (the bit-for-bit replay check).

    Covers every field :class:`~repro.radio.events.ExecutionResult`
    equality covers — per-node history renderings, wake rounds and
    kinds, local termination rounds, total rounds elapsed — plus the
    decided leaders. Two executions with equal results always digest
    equally, on either backend.
    """
    rows = [
        [
            str(v),
            execution.histories[v].render(),
            execution.wake_rounds.get(v),
            execution.wake_kinds.get(v),
            execution.done_local.get(v),
        ]
        for v in sorted(execution.histories, key=str)
    ]
    return _digest(
        {
            "rows": rows,
            "rounds_elapsed": execution.rounds_elapsed,
            "leaders": [str(v) for v in leaders],
        }
    )


def failure_digest(kind: str, detail: Dict) -> str:
    """Digest of a failed trial (timeout / match error / crash).

    ``detail`` carries the deterministic diagnostics — e.g. the
    :class:`~repro.radio.backends.base.SimulationTimeout` round/state
    counts, which both backends report identically — so a failure
    replays to the same digest just like a success does.
    """
    return _digest({"failure": kind, **detail})


def write_bundle(
    directory: str,
    spec,
    results: List[Dict],
    metrics: Optional[Dict] = None,
) -> str:
    """Write a campaign bundle; return the manifest path.

    The manifest is written atomically (temp file + rename), so a
    crashed writer never leaves a torn bundle behind.
    """
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, "manifest.json")
    payload = {
        "format": BUNDLE_FORMAT,
        "campaign": spec.as_dict(),
        "trials": len(results),
        "results": results,
        "metrics": metrics,
    }
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, sort_keys=True, separators=(",", ":"))
    os.replace(tmp, path)
    return path


def read_bundle(path: str) -> Dict:
    """Load a bundle manifest (accepts the directory or the file path)."""
    if os.path.isdir(path):
        path = os.path.join(path, "manifest.json")
    with open(path, "r", encoding="utf-8") as fh:
        manifest = json.load(fh)
    fmt = manifest.get("format")
    if fmt != BUNDLE_FORMAT:
        raise ValueError(
            f"bundle format {fmt!r} is not supported (expected "
            f"{BUNDLE_FORMAT})"
        )
    return manifest


@dataclass(frozen=True)
class ReplayReport:
    """Outcome of replaying one recorded trial against its digest."""

    index: int
    outcome: str  #: outcome of the replayed execution
    recorded_outcome: str  #: outcome the manifest recorded
    digest: str
    recorded_digest: str

    @property
    def match(self) -> bool:
        """True iff the replay reproduced the record bit-for-bit."""
        return (
            self.digest == self.recorded_digest
            and self.outcome == self.recorded_outcome
        )

    def describe(self) -> str:
        """One-line replay verdict for CLI output."""
        verdict = "MATCH" if self.match else "MISMATCH"
        return (
            f"trial {self.index}: {verdict} "
            f"(outcome {self.outcome} / recorded {self.recorded_outcome}, "
            f"digest {self.digest[:12]} / recorded "
            f"{self.recorded_digest[:12]})"
        )


def replay_trial(
    manifest: Dict, index: int, *, backend: Optional[str] = None
) -> ReplayReport:
    """Re-execute a recorded trial from the manifest alone.

    Rebuilds the configuration (:func:`config_from_spec`) and the
    adversary (:func:`repro.adversary.adversary_from_spec`) from the
    trial record, re-runs classification and simulation under the
    recorded round budget and backend (overridable via ``backend``, e.g.
    to cross-check the other backend on explicit schedules), and
    compares result digests.
    """
    from ..adversary import adversary_from_spec
    from .runner import execute_trial

    records = {r["index"]: r for r in manifest["results"]}
    record = records.get(index)
    if record is None:
        raise KeyError(f"manifest holds no trial with index {index}")
    config = config_from_spec(record["config"])
    jammer = (
        adversary_from_spec(record["adversary"])
        if record.get("adversary") is not None
        else None
    )
    replayed = execute_trial(
        config,
        jammer,
        max_rounds=record["max_rounds"],
        backend=backend if backend is not None else record["backend"],
    )
    return ReplayReport(
        index=index,
        outcome=replayed["outcome"],
        recorded_outcome=record["outcome"],
        digest=replayed["digest"],
        recorded_digest=record["digest"],
    )
