"""``repro.campaigns`` — reproducible Monte Carlo robustness campaigns.

A campaign sweeps thousands of seeded adversarial trials — each one a
configuration drawn from :func:`~repro.engine.workloads.seeded_config`,
an adversary drawn from the :mod:`repro.adversary` strategy mix, and a
canonical-DRIP election simulated under it — and reduces them to
robustness metrics: survival rate, derail-boundary curves, and extremal
witness trials. Everything is a pure function of the
:class:`~repro.campaigns.spec.CampaignSpec`, and every campaign emits a
self-contained bundle (:mod:`~repro.campaigns.bundle`) from which any
trial replays bit-for-bit.

Three execution paths, identical results:

* :func:`run_campaign` — in-process, shard-wise through the vectorized
  batch classification kernel;
* :func:`distributed_campaign` (+ the ``create`` / ``worker`` /
  ``collect`` trio) — the durable :mod:`repro.engine.queue` path with
  lease/heartbeat retry isolation;
* :func:`serial_trial_loop` — the naive one-at-a-time baseline the E28
  benchmark measures the other two against.

See ``docs/robustness.md`` for a walkthrough.
"""

from .bundle import (
    BUNDLE_FORMAT,
    ReplayReport,
    config_from_spec,
    config_spec,
    execution_digest,
    failure_digest,
    read_bundle,
    replay_trial,
    write_bundle,
)
from .runner import (
    CampaignRun,
    campaign_metrics,
    campaign_queue_worker,
    collect_campaign_queue,
    create_campaign_queue,
    distributed_campaign,
    execute_trial,
    instantiate_adversary,
    run_campaign,
    run_trial,
    serial_trial_loop,
)
from .spec import (
    STRATEGY_NAMES,
    CampaignSpec,
    TrialPlan,
    derive_trial,
)

__all__ = [
    "BUNDLE_FORMAT",
    "CampaignRun",
    "CampaignSpec",
    "ReplayReport",
    "STRATEGY_NAMES",
    "TrialPlan",
    "campaign_metrics",
    "campaign_queue_worker",
    "collect_campaign_queue",
    "config_from_spec",
    "config_spec",
    "create_campaign_queue",
    "derive_trial",
    "distributed_campaign",
    "execute_trial",
    "execution_digest",
    "failure_digest",
    "instantiate_adversary",
    "read_bundle",
    "replay_trial",
    "run_campaign",
    "run_trial",
    "serial_trial_loop",
    "write_bundle",
]
