"""Command-line interface.

Commands: ``classify`` (feasibility of one configuration), ``elect``
(dedicated election), ``census`` (engine-backed random census),
``serve`` (batch classification HTTP service), ``defeat`` (Prop 4.4
adversary), ``program`` (canonical-DRIP export/run), ``variants``
(cross-model census), ``wired`` (radio vs wired contrast), ``minspan``
(least feasible span), ``timeline`` (space-time grid), ``quotient``
(classifier quotient / symmetry skeleton), ``campaign`` (seeded
adversarial robustness campaigns with replayable bundles).

::

    repro-radio classify --line 0,1,0
    repro-radio classify --family hm:3
    repro-radio elect --family gm:2 --verbose
    repro-radio census --n 6,8,10 --span 2 --p 0.3 --samples 20 --seed 1
    repro-radio census --n 8 --samples 200 --shards 8 --workers 4 \\
        --cache census.jsonl --checkpoint ckpt/
    repro-radio serve --port 8765 --cache service.jsonl
    repro-radio defeat

(Also runnable as ``python -m repro.cli ...``.)
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .core.classifier import ALGORITHM_NAMES, classify, resolve_algorithm
from .core.configuration import Configuration, line_configuration
from .core.election import elect_leader
from .reporting.tables import format_table, kv_block


def _parse_family(spec: str) -> Configuration:
    from .graphs import families

    kind, _, arg = spec.partition(":")
    m = int(arg) if arg else 2
    table = {"gm": families.g_m, "hm": families.h_m, "sm": families.s_m}
    if kind not in table:
        raise SystemExit(f"unknown family {kind!r} (choose gm, hm, sm)")
    return table[kind](m)


def _parse_config(args: argparse.Namespace) -> Configuration:
    if args.line:
        tags = [int(t) for t in args.line.split(",")]
        return line_configuration(tags)
    if args.family:
        return _parse_family(args.family)
    if args.gnp:
        from .graphs.generators import build, random_connected_gnp_edges
        from .graphs.tags import uniform_random

        n, p, span, seed = args.gnp.split(",")
        n, span, seed = int(n), int(span), int(seed)
        edges = random_connected_gnp_edges(n, float(p), seed)
        return build(edges, uniform_random(range(n), span, seed + 1), n=n)
    raise SystemExit("specify a configuration: --line, --family or --gnp")


def _add_config_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--line", help="comma-separated tags of a path, e.g. 0,1,0")
    p.add_argument("--family", help="paper family, e.g. hm:3, sm:5, gm:2")
    p.add_argument(
        "--gnp", help="random configuration 'n,p,span,seed', e.g. 12,0.3,2,7"
    )


def _add_backend_arg(p: argparse.ArgumentParser) -> None:
    from .radio.backends import BACKEND_NAMES

    p.add_argument(
        "--backend",
        choices=BACKEND_NAMES,
        default="auto",
        help=(
            "simulation backend: the per-round reference loop, the "
            "event-driven fast executor, or auto (fast when the protocol "
            "is schedule-oblivious; see docs/simulation.md)"
        ),
    )


def _add_obs_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--trace",
        metavar="PATH",
        help=(
            "append a JSONL run-event trace of this command to PATH "
            "(schema in docs/observability.md; render it with "
            "'repro-radio trace summarize PATH')"
        ),
    )
    p.add_argument(
        "--obs",
        action="store_true",
        help=(
            "enable in-memory tracing/telemetry without writing an event "
            "log; a span-tree/hotspot summary is printed to stderr at exit"
        ),
    )


def _add_algorithm_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--algorithm",
        choices=ALGORITHM_NAMES,
        default="auto",
        help=(
            "classifier implementation: the faithful O(n³Δ) reference, "
            "the hash-based fast ablation, the compiled incremental "
            "core, the vectorized batch kernel, or auto (compiled for "
            "one configuration; batch for population sweeps when numpy "
            "is available — see docs/performance.md) — all bit-for-bit "
            "equal"
        ),
    )


def cmd_classify(args: argparse.Namespace) -> int:
    """Decide feasibility of one configuration (Theorem 3.17)."""
    from . import obs
    from .core.partition import OpCounter

    cfg = _parse_config(args)
    algorithm = resolve_algorithm(args.algorithm)
    # the fast ablation and the batch kernel cannot meter ops; profile
    # them on wall time alone
    meters = args.profile and algorithm not in ("fast", "batch")
    counter = OpCounter() if meters else None
    # --profile is span-based: the timing below is the cli.classify
    # span's recorded duration, so the profile measures exactly what a
    # --trace event log would. Enable in-memory tracing if the user
    # didn't already (--trace/--obs).
    profile_enabled_obs = False
    if args.profile and not obs.STATE.enabled:
        obs.enable()
        profile_enabled_obs = True
    with obs.span("cli.classify", algorithm=algorithm, n=cfg.n) as sp:
        trace = classify(cfg, algorithm=algorithm, counter=counter)
    elapsed = sp.duration or 0.0
    if profile_enabled_obs:
        obs.disable()
    print(trace.describe() if args.verbose else "", end="" if args.verbose else "")
    print(
        kv_block(
            "Classifier",
            [
                ("decision", trace.decision),
                ("iterations", trace.num_iterations),
                ("leader", trace.leader if trace.feasible else "-"),
                ("n", trace.config.n),
                ("span", trace.sigma),
                ("max degree", trace.config.max_degree),
            ],
        )
    )
    if args.profile:
        iters = max(trace.num_iterations, 1)
        rows = [
            ("algorithm", algorithm),
            ("wall time", f"{elapsed * 1e3:.3f} ms"),
            ("per iteration", f"{elapsed * 1e3 / iters:.3f} ms"),
        ]
        if counter is not None:
            rows += [
                ("triple ops", counter.triple_ops),
                ("label ops", counter.label_ops),
                ("total ops", counter.total),
            ]
        else:
            rows.append(("total ops", f"- ({algorithm} does not meter)"))
        print(kv_block("Profile", rows))
    return 0


def cmd_elect(args: argparse.Namespace) -> int:
    """Run the dedicated election algorithm (Theorem 3.15)."""
    cfg = _parse_config(args)
    result = elect_leader(cfg, backend=args.backend)
    print(result.describe())
    if args.verbose:
        stats = result.backend_stats
        if stats is not None:
            print(f"  {stats.describe()}")
        if result.elected:
            leader_history = result.execution.histories[result.leader]
            print(f"leader history: {leader_history.render()}")
    return 0 if result.elected or not result.trace.feasible else 1


def _census_queue_mode(args: argparse.Namespace) -> int:
    """The distributed roles of ``census`` (see docs/distributed.md).

    ``--role worker`` attaches to an existing queue and drains it (the
    census options come from the queue metadata, not the command line);
    ``--role coordinator`` enumerates the census into the queue, waits
    for external workers, and merges; ``--role auto`` does everything:
    coordinator plus ``--workers`` local worker processes.
    """
    from .analysis.census import group_by_n, random_census_workload
    from .engine import (
        DEFAULT_LEASE_TTL,
        WorkQueue,
        census_queue_worker,
        collect_census_queue,
        create_census_queue,
        distributed_census,
    )

    lease_ttl = (
        args.lease_ttl if args.lease_ttl is not None else DEFAULT_LEASE_TTL
    )
    if args.role == "worker":
        # a worker may be launched before its coordinator has created
        # the queue; wait for the file instead of racing it
        import os as _os
        import time as _time

        deadline = (
            _time.monotonic() + args.queue_timeout
            if args.queue_timeout
            else None
        )
        while not _os.path.exists(args.queue):
            if deadline is not None and _time.monotonic() > deadline:
                raise SystemExit(
                    f"census: no work queue at {args.queue!r} after "
                    f"{args.queue_timeout}s"
                )
            _time.sleep(0.2)
        if args.workers > 1:
            import multiprocessing

            procs = [
                multiprocessing.Process(
                    target=census_queue_worker,
                    args=(args.queue,),
                    kwargs={"lease_ttl": args.lease_ttl},
                )
                for _ in range(args.workers)
            ]
            for proc in procs:
                proc.start()
            for proc in procs:
                proc.join()
            bad = sum(1 for proc in procs if proc.exitcode != 0)
            if bad:
                raise SystemExit(
                    f"census: {bad} worker process(es) exited abnormally"
                )
        else:
            stats = census_queue_worker(args.queue, lease_ttl=args.lease_ttl)
            if not args.stats_json:
                print(f"  worker: {stats.as_dict()}")
        with WorkQueue(args.queue) as queue:
            counts = queue.counts()
        if args.stats_json:
            _print_stats_json(queue_counts=counts)
        else:
            print(
                f"  queue: {counts['pending']} pending, "
                f"{counts['leased']} leased, {counts['done']} done, "
                f"{counts['failed']} failed"
            )
        return 0

    ns = [int(x) for x in args.n.split(",")]
    workload = random_census_workload(
        ns, args.span, args.p, args.samples, args.seed
    )
    num_shards = (
        args.shards if args.shards != 1 else max(4 * args.workers, 1)
    )
    if args.role == "coordinator":
        queue = create_census_queue(
            args.queue,
            workload,
            num_shards=num_shards,
            measure_rounds=args.rounds,
            algorithm=args.algorithm,
            group_by=group_by_n,
            cache_path=args.cache,
            lease_ttl=lease_ttl,
        )
        if not args.stats_json:
            print(f"  {queue.describe()} — waiting for workers")
        queue.close()
        run = collect_census_queue(
            args.queue, wait=True, timeout=args.queue_timeout
        )
    else:  # auto: coordinator + local workers in one call
        run = distributed_census(
            workload,
            args.queue,
            num_workers=args.workers,
            num_shards=args.shards if args.shards != 1 else None,
            measure_rounds=args.rounds,
            algorithm=args.algorithm,
            group_by=group_by_n,
            cache_path=args.cache,
            lease_ttl=lease_ttl,
        )
    with WorkQueue(args.queue) as queue:
        counts = queue.counts()
    if args.stats_json:
        _print_stats_json(engine=run.stats.as_dict, queue_counts=counts)
        return 0
    result = run.result
    print(
        format_table(
            result.TABLE_HEADERS,
            result.as_table(),
            title=(
                f"Feasibility census: p={args.p}, span={args.span}, "
                f"{args.samples} samples per n ({args.workers} worker(s))"
            ),
        )
    )
    print(f"  {run.describe()}")
    print(
        f"  queue: {counts['total']} shard(s), {counts['retried']} retried, "
        f"{counts['reclaimed']} reclaimed"
    )
    if args.stats:
        print(kv_block("Engine stats", sorted(run.stats.as_dict().items())))
        print(kv_block("Queue stats", sorted(counts.items())))
    return 0


def _print_stats_json(engine=None, queue_counts=None) -> None:
    """Emit ``obs.snapshot()`` as the sole stdout output (machine mode).

    ``engine`` is an ``as_dict`` callable; ``queue_counts`` is a queue's
    :meth:`~repro.engine.queue.WorkQueue.counts` dict — each becomes a
    registry group in the snapshot, mirroring what the gauges publish.
    """
    import json as _json

    from . import obs

    groups = []
    if engine is not None:
        obs.registry.register_group("engine", engine)
        groups.append("engine")
    if queue_counts is not None:
        obs.registry.register_group("queue", lambda: queue_counts)
        groups.append("queue")
    try:
        print(_json.dumps(obs.snapshot(), indent=2, sort_keys=True))
    finally:
        for name in groups:
            obs.registry.unregister_group(name)


def cmd_census(args: argparse.Namespace) -> int:
    """Feasibility census over random configurations (engine-backed)."""
    from .analysis.census import random_census_run
    from .engine import QueueError, ResultCache

    if args.shards < 1:
        raise SystemExit("census: --shards must be >= 1")
    if args.compact_cache and not args.cache:
        raise SystemExit("census: --compact-cache requires --cache")
    if args.queue is None and args.role != "auto":
        raise SystemExit("census: --role requires --queue")
    if args.queue:
        if args.checkpoint:
            raise SystemExit(
                "census: --queue and --checkpoint are mutually exclusive "
                "(the queue itself is the durable state)"
            )
        try:
            return _census_queue_mode(args)
        except QueueError as exc:
            raise SystemExit(f"census: {exc}")
        except OSError as exc:
            raise SystemExit(f"census: queue I/O failed: {exc}")
    ns = [int(x) for x in args.n.split(",")]
    try:
        cache = ResultCache(args.cache) if args.cache else ResultCache()
    except OSError as exc:
        raise SystemExit(f"census: cannot use cache file {args.cache!r}: {exc}")
    try:
        run = random_census_run(
            ns,
            span=args.span,
            p=args.p,
            samples=args.samples,
            seed=args.seed,
            measure_rounds=args.rounds,
            num_shards=args.shards,
            cache=cache,
            max_workers=args.workers,
            checkpoint_dir=args.checkpoint,
            algorithm=args.algorithm,
        )
    except OSError as exc:
        raise SystemExit(f"census: cache/checkpoint I/O failed: {exc}")
    result = run.result
    if args.stats_json:
        # machine-readable mode: emit exactly obs.snapshot() (with this
        # run's engine/cache counters registered as groups) as the only
        # stdout output, so scripts parse JSON instead of scraping the
        # human table
        import json as _json

        from . import obs

        if args.compact_cache:
            try:
                cache.compact()
            except OSError as exc:
                raise SystemExit(f"census: cache compaction failed: {exc}")
        obs.registry.register_group("engine", run.stats.as_dict)
        obs.registry.register_group("cache", cache.stats.as_dict)
        try:
            print(_json.dumps(obs.snapshot(), indent=2, sort_keys=True))
        finally:
            obs.registry.unregister_group("engine")
            obs.registry.unregister_group("cache")
        return 0
    print(
        format_table(
            result.TABLE_HEADERS,
            result.as_table(),
            title=(
                f"Feasibility census: p={args.p}, span={args.span}, "
                f"{args.samples} samples per n"
            ),
        )
    )
    print(f"  {run.describe()}")
    print(f"  {cache.describe()}")
    if args.compact_cache:
        try:
            dropped = cache.compact()
        except OSError as exc:
            raise SystemExit(f"census: cache compaction failed: {exc}")
        print(
            f"  compacted {args.cache}: dropped {dropped} superseded "
            f"line(s), {len(cache)} live key(s)"
        )
    if args.stats:
        engine_counts = sorted(run.stats.as_dict().items())
        cache_counts = sorted(cache.stats.as_dict().items())
        print(kv_block("Engine stats", engine_counts))
        print(kv_block("Cache stats", cache_counts))
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Serve batch classification over HTTP (see docs/service.md)."""
    from .engine import ResultCache
    from .service import BatchClassifier, make_server
    from .service.server import run_server

    try:
        cache = ResultCache(args.cache) if args.cache else ResultCache()
    except OSError as exc:
        raise SystemExit(f"serve: cannot use cache file {args.cache!r}: {exc}")
    classifier = BatchClassifier(
        cache,
        max_batch=args.max_batch,
        max_pending=args.max_pending,
        batch_window=args.batch_window,
        max_workers=args.workers,
        algorithm=args.algorithm,
    )
    try:
        server = make_server(
            args.host,
            args.port,
            classifier,
            max_connections=args.max_connections,
            request_timeout=args.request_timeout,
            drain_timeout=args.drain_timeout,
        )
    except OSError as exc:
        raise SystemExit(f"serve: cannot bind {args.host}:{args.port}: {exc}")
    except ValueError as exc:
        raise SystemExit(f"serve: {exc}")
    run_server(server)
    return 0


def cmd_defeat(args: argparse.Namespace) -> int:
    """Run the Proposition 4.4 universal-algorithm adversary."""
    from .baselines.universal_candidates import candidate_portfolio, defeat

    rows = []
    all_defeated = True
    for cand in candidate_portfolio():
        rep = defeat(cand, probe_m=args.probe_m, backend=args.backend)
        all_defeated &= rep.defeated
        rows.append(
            (
                rep.candidate,
                rep.first_tag0_transmission
                if rep.first_tag0_transmission is not None
                else "-",
                f"H_{(rep.first_tag0_transmission or 0) + 1}",
                "crash" if rep.crashed else len(rep.leaders),
                "yes" if rep.defeated else "NO",
            )
        )
    print(
        format_table(
            ("candidate", "t", "killer", "leaders", "defeated"),
            rows,
            title="Proposition 4.4 adversary: every universal candidate fails",
        )
    )
    return 0 if all_defeated else 1


def cmd_program(args: argparse.Namespace) -> int:
    """Compile a canonical-DRIP program to JSON, or run one."""
    from .core.program import (
        compile_program,
        dumps,
        load,
        program_algorithm,
    )
    from .radio.simulator import simulate

    if args.run:
        program = load(args.run)
        cfg = _parse_config(args)
        algo = program_algorithm(program)
        execution = simulate(
            cfg.normalize(),
            algo.factory,
            max_rounds=cfg.span + program.done_round + 2,
        )
        leaders = execution.decide_leaders(algo.decision)
        print(
            kv_block(
                "Program run",
                [
                    ("program phases", program.num_phases),
                    ("done round", program.done_round),
                    ("leaders", leaders if leaders else "-"),
                ],
            )
        )
        return 0
    cfg = _parse_config(args)
    program = compile_program(cfg)
    text = dumps(program, indent=2)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.out} ({len(text)} bytes, "
              f"{program.num_phases} phase(s), feasible={program.feasible})")
    else:
        print(text)
    return 0


def cmd_variants(args: argparse.Namespace) -> int:
    """Cross-model feasibility census (cd / no-cd / beep)."""
    from .reporting.tables import format_table as ft
    from .variants.census import cross_model_census, exhaustive_cross_model_census
    from .variants.channels import BEEP, CD, NO_CD

    if args.exhaustive:
        n, max_tag = (int(x) for x in args.exhaustive.split(","))
        census = exhaustive_cross_model_census(n, max_tag)
        title = f"Cross-model census: all connected configs n={n}, tags 0..{max_tag}"
    else:
        from .graphs.generators import build, random_connected_gnp_edges
        from .graphs.tags import uniform_random

        def configs():
            for k in range(args.samples):
                edges = random_connected_gnp_edges(args.n, args.p, args.seed + k)
                tags = uniform_random(range(args.n), args.span, args.seed + k + 1)
                yield build(edges, tags, n=args.n)

        census = cross_model_census(configs())
        title = (
            f"Cross-model census: {args.samples} random configs "
            f"n={args.n}, span={args.span}"
        )
    print(ft(census.TABLE_HEADERS, census.as_table(), title=title))
    checks = [
        ("no-cd ⊆ cd", census.inclusion_holds(NO_CD, CD)),
        ("beep ⊆ cd", census.inclusion_holds(BEEP, CD)),
        ("no-cd ⊆ beep", census.inclusion_holds(NO_CD, BEEP)),
        ("beep ⊆ no-cd", census.inclusion_holds(BEEP, NO_CD)),
    ]
    for label, ok in checks:
        print(f"  {label}: {'holds' if ok else 'violated'}")
    return 0


def cmd_wired(args: argparse.Namespace) -> int:
    """Radio vs wired (view refinement) feasibility contrast."""
    from .analysis.views import radio_vs_wired
    from .graphs.enumeration import enumerate_configurations
    from .reporting.tables import format_table as ft

    n, max_tag = (int(x) for x in args.exhaustive.split(","))
    census = radio_vs_wired(enumerate_configurations(n, max_tag))
    print(
        ft(
            census.TABLE_HEADERS,
            census.as_table(),
            title=f"Radio vs wired feasibility: n={n}, tags 0..{max_tag}",
        )
    )
    print(
        "  dominance (radio ⊆ wired): "
        + ("holds" if census.dominance_holds() else "VIOLATED")
    )
    return 0 if census.dominance_holds() else 1


def cmd_minspan(args: argparse.Namespace) -> int:
    """Least span making a graph shape feasible."""
    from .analysis.extremal import min_feasible_span
    from .graphs import generators as gen

    shapes = {
        "path": lambda n: gen.path_edges(n),
        "cycle": lambda n: gen.cycle_edges(n),
        "star": lambda n: gen.star_edges(n),
        "complete": lambda n: gen.complete_edges(n),
        "wheel": lambda n: gen.wheel_edges(n),
    }
    if args.shape not in shapes:
        raise SystemExit(f"unknown shape {args.shape!r} (choose {sorted(shapes)})")
    edges = shapes[args.shape](args.n)
    result = min_feasible_span(edges, args.n, max_span=args.max_span)
    print(
        kv_block(
            f"Minimal feasible span: {args.shape} n={args.n}",
            [
                ("span", result.span if result.span is not None else "> max-span"),
                ("exhaustive", result.exhaustive),
                ("witness tags", result.witness if result.witness else "-"),
            ],
        )
    )
    return 0


def cmd_timeline(args: argparse.Namespace) -> int:
    """Render a canonical election as a space-time grid."""
    from .core.canonical import CanonicalProtocol
    from .radio.simulator import simulate
    from .reporting.timeline import legend, timeline, transmission_density

    cfg = _parse_config(args)
    trace = classify(cfg, algorithm=args.algorithm)
    protocol = CanonicalProtocol.from_trace(trace)
    network = trace.config
    execution = simulate(
        network,
        protocol.factory,
        max_rounds=protocol.round_budget(network.span),
        record_trace=True,
    )
    leaders = execution.decide_leaders(protocol.decision)
    print(f"decision: {trace.decision}; leaders: {leaders or '-'}")
    print(legend())
    end = args.end if args.end is not None else None
    print(timeline(execution, start=args.start, end=end))
    print(f"transmission density: {transmission_density(execution):.3f}")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Inspect a JSONL run-event trace (``trace summarize PATH``)."""
    from .obs import EventSchemaError, summarize_file

    try:
        summary = summarize_file(args.path, validate=not args.no_validate)
    except OSError as exc:
        raise SystemExit(f"trace: cannot read {args.path!r}: {exc}")
    except EventSchemaError as exc:
        raise SystemExit(f"trace: invalid event log: {exc}")
    print(summary.render(top=args.top, max_depth=args.depth))
    return 0


def cmd_queue_status(args: argparse.Namespace) -> int:
    """Show a work queue's shard-state summary (``queue status PATH``)."""
    from .engine import QueueError, WorkQueue

    try:
        with WorkQueue(args.path) as queue:
            counts = queue.counts()
            meta = queue.meta()
            shards = queue.shard_states() if args.shards or args.json else []
    except QueueError as exc:
        raise SystemExit(f"queue: {exc}")
    if args.json:
        import json as _json

        print(
            _json.dumps(
                {"counts": counts, "meta": meta, "shards": shards},
                indent=2,
                sort_keys=True,
            )
        )
        return 0
    rows = [(k, counts[k]) for k in
            ("total", "pending", "leased", "done", "failed", "retried",
             "reclaimed")]
    workload = meta.get("workload")
    rows.append(
        ("workload", workload.get("kind", "?"))
        if isinstance(workload, dict)
        else ("workload", workload)
    )
    rows.append(("items", meta.get("total", "?")))
    print(kv_block(f"Queue {args.path}", rows))
    if args.shards:
        print(
            format_table(
                ("shard", "range", "status", "attempts", "owner", "error"),
                [
                    (
                        s["index"],
                        f"[{s['start']},{s['stop']})",
                        s["status"],
                        s["attempts"],
                        s["owner"] or "-",
                        s["error"] or "-",
                    )
                    for s in shards
                ],
            )
        )
    return 0


def cmd_queue_requeue(args: argparse.Namespace) -> int:
    """Force leased/failed shards back to pending (``queue requeue``).

    An operator tool for queues whose workers are known dead; run it
    only when no worker is active (live leases are reset too).
    """
    from .engine import QueueError, WorkQueue

    try:
        with WorkQueue(args.path) as queue:
            reset = queue.requeue(include_failed=args.include_failed)
            print(f"requeued {reset} shard(s)")
            print(f"  {queue.describe()}")
    except QueueError as exc:
        raise SystemExit(f"queue: {exc}")
    return 0


def _parse_strategy_mix(spec: str) -> List[dict]:
    """Parse ``--mix`` entries like ``none=1,reactive=2,crash_sleep=1``.

    Each comma-separated entry is ``strategy`` or ``strategy=weight``;
    strategy parameters beyond the weight use their zoo defaults (run a
    campaign through the Python API for full parameter control).
    """
    entries: List[dict] = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        name, _, weight = part.partition("=")
        entries.append(
            {"strategy": name.strip(), "weight": float(weight) if weight else 1.0}
        )
    if not entries:
        raise SystemExit("campaign: --mix must name at least one strategy")
    return entries


def _campaign_spec_from_args(args: argparse.Namespace):
    from .campaigns import CampaignSpec

    try:
        return CampaignSpec(
            name=args.name,
            seed=args.seed,
            trials=args.trials,
            n_values=tuple(int(n) for n in args.n.split(",")),
            span=args.span,
            p=args.p,
            strategies=tuple(_parse_strategy_mix(args.mix)),
            backend=args.backend,
        )
    except ValueError as exc:
        raise SystemExit(f"campaign: {exc}")


def cmd_campaign_run(args: argparse.Namespace) -> int:
    """Run a seeded robustness campaign and write its bundle."""
    from .campaigns import distributed_campaign, run_campaign

    spec = _campaign_spec_from_args(args)
    if args.queue:
        extra = {} if args.lease_ttl is None else {"lease_ttl": args.lease_ttl}
        run = distributed_campaign(
            spec, args.queue, num_workers=max(1, args.workers), **extra
        )
    else:
        run = run_campaign(spec)
    if args.out:
        manifest = run.write_bundle(args.out)
        print(f"bundle: {manifest}")
    if args.json:
        import json as _json

        print(_json.dumps(run.metrics, indent=2, sort_keys=True))
        return 0
    print(run.describe())
    return 0


def cmd_campaign_status(args: argparse.Namespace) -> int:
    """Show a campaign work queue's progress (``campaign status PATH``)."""
    from .engine import QueueError, WorkQueue

    try:
        with WorkQueue(args.path) as queue:
            counts = queue.counts()
            meta = queue.meta()
    except QueueError as exc:
        raise SystemExit(f"campaign: {exc}")
    if meta.get("queue") != "campaign":
        raise SystemExit(
            f"campaign: {args.path!r} is not a campaign queue "
            f"(meta kind {meta.get('queue')!r})"
        )
    campaign = meta.get("campaign") or {}
    rows = [
        ("campaign", campaign.get("name", "?")),
        ("trials", meta.get("total", "?")),
        ("shards", meta.get("num_shards", "?")),
    ]
    rows.extend(
        (k, counts[k])
        for k in ("total", "pending", "leased", "done", "failed", "retried",
                  "reclaimed")
    )
    print(kv_block(f"Campaign queue {args.path}", rows))
    return 0


def cmd_campaign_replay(args: argparse.Namespace) -> int:
    """Replay recorded trials from a bundle; non-zero exit on mismatch."""
    from .campaigns import read_bundle, replay_trial

    try:
        manifest = read_bundle(args.bundle)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"campaign: cannot read bundle: {exc}")
    if args.index is not None:
        indices = [args.index]
    elif args.all:
        indices = [r["index"] for r in manifest["results"]]
    else:
        witnesses = (manifest.get("metrics") or {}).get("witnesses") or {}
        indices = sorted({i for ids in witnesses.values() for i in ids})
        if not indices:
            indices = [r["index"] for r in manifest["results"][:3]]
    failures = 0
    for index in indices:
        report = replay_trial(manifest, index, backend=args.backend)
        print(report.describe())
        if not report.match:
            failures += 1
    if failures:
        print(f"{failures} of {len(indices)} replay(s) MISMATCHED")
        return 1
    print(f"all {len(indices)} replay(s) matched bit-for-bit")
    return 0


def cmd_quotient(args: argparse.Namespace) -> int:
    """Show the classifier quotient / symmetry skeleton."""
    from .analysis.quotient import classifier_quotient, infeasibility_certificate

    cfg = _parse_config(args)
    cert = infeasibility_certificate(cfg)
    if cert is None:
        print("configuration is feasible; classifier quotient:")
        print(classifier_quotient(cfg).render())
    else:
        print("configuration is INFEASIBLE; symmetry skeleton:")
        print(cert.render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro-radio",
        description=(
            "Deterministic leader election in anonymous radio networks "
            "(Miller, Pelc, Yadav; SPAA 2020)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("classify", help="decide feasibility of a configuration")
    _add_config_args(p)
    p.add_argument("-v", "--verbose", action="store_true")
    _add_algorithm_arg(p)
    p.add_argument(
        "--profile",
        action="store_true",
        help=(
            "print OpCounter totals and span-based wall time for the "
            "chosen algorithm (speedups observable without the benchmark "
            "harness)"
        ),
    )
    _add_obs_args(p)
    p.set_defaults(func=cmd_classify)

    p = sub.add_parser("elect", help="run the dedicated election algorithm")
    _add_config_args(p)
    p.add_argument("-v", "--verbose", action="store_true")
    _add_backend_arg(p)
    _add_obs_args(p)
    p.set_defaults(func=cmd_elect)

    p = sub.add_parser("census", help="feasibility census over random configs")
    p.add_argument("--n", default="6,8,10", help="comma-separated sizes")
    p.add_argument("--span", type=int, default=2)
    p.add_argument("--p", type=float, default=0.3)
    p.add_argument("--samples", type=int, default=20)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--rounds", action="store_true", help="measure election rounds")
    p.add_argument(
        "--shards", type=int, default=1, help="split the workload into N shards"
    )
    p.add_argument(
        "--cache", help="JSONL classification cache file (reused across runs)"
    )
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process-pool workers for cache misses (default serial)",
    )
    p.add_argument(
        "--checkpoint", help="directory for per-shard resume checkpoints"
    )
    p.add_argument(
        "--queue",
        metavar="PATH",
        help=(
            "distributed mode: durable SQLite work queue shared by "
            "cooperating worker processes (see docs/distributed.md); "
            "--workers then counts worker processes"
        ),
    )
    p.add_argument(
        "--role",
        choices=("auto", "coordinator", "worker"),
        default="auto",
        help=(
            "distributed role: 'coordinator' enumerates the census into "
            "--queue and waits for external workers, 'worker' attaches "
            "to an existing queue and drains it, 'auto' (default) runs "
            "coordinator plus --workers local worker processes"
        ),
    )
    p.add_argument(
        "--lease-ttl",
        type=float,
        default=None,
        help=(
            "seconds a leased shard stays claimed without a heartbeat "
            "before it is reclaimed (default 30)"
        ),
    )
    p.add_argument(
        "--queue-timeout",
        type=float,
        default=None,
        help=(
            "distributed mode: seconds a coordinator waits for workers "
            "to finish the queue, and a worker waits for the queue file "
            "to appear (default: wait indefinitely)"
        ),
    )
    p.add_argument(
        "--compact-cache",
        action="store_true",
        help=(
            "after the census, atomically rewrite the --cache JSONL "
            "store dropping superseded duplicate keys"
        ),
    )
    p.add_argument(
        "--stats",
        action="store_true",
        help="print detailed engine/cache hit, miss and collapse counters",
    )
    p.add_argument(
        "--stats-json",
        action="store_true",
        help=(
            "machine-readable mode: print the obs.snapshot() dict (with "
            "this run's engine/cache counters as groups) as JSON instead "
            "of the human table — see docs/observability.md"
        ),
    )
    _add_algorithm_arg(p)
    _add_obs_args(p)
    p.set_defaults(func=cmd_census)

    p = sub.add_parser(
        "serve", help="serve batch classification over HTTP (JSON endpoint)"
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8765, help="0 picks a free port")
    p.add_argument(
        "--cache", help="JSONL classification cache file (shared with census)"
    )
    p.add_argument(
        "--max-batch", type=int, default=64, help="max requests per engine batch"
    )
    p.add_argument(
        "--max-pending",
        type=int,
        default=1024,
        help="cold-miss queue bound; submits beyond it block (backpressure)",
    )
    p.add_argument(
        "--batch-window",
        type=float,
        default=0.002,
        help="seconds to wait for stragglers when forming a batch",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "process-pool workers for cache misses (default serial; "
            "pool startup is paid per cold batch — only worth it for "
            "large, expensive cold batches)"
        ),
    )
    p.add_argument(
        "--max-connections",
        type=int,
        default=128,
        help="concurrent connection cap; extras get an immediate 503",
    )
    p.add_argument(
        "--request-timeout",
        type=float,
        default=30.0,
        help=(
            "per-request deadline in seconds (body read + classification); "
            "slow reads get 408, slow classifications 503 with their "
            "pending batch slots freed"
        ),
    )
    p.add_argument(
        "--drain-timeout",
        type=float,
        default=5.0,
        help="seconds to let in-flight requests finish on shutdown",
    )
    _add_algorithm_arg(p)
    _add_obs_args(p)
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "trace", help="inspect JSONL run-event traces (--trace logs)"
    )
    tsub = p.add_subparsers(dest="trace_command", required=True)
    ps = tsub.add_parser(
        "summarize",
        help="render the span tree, top-N hotspots and shard progress",
    )
    ps.add_argument("path", help="JSONL event log written by --trace")
    ps.add_argument(
        "--top", type=int, default=10, help="hotspot rows to show"
    )
    ps.add_argument(
        "--depth", type=int, default=4, help="span-tree depth to render"
    )
    ps.add_argument(
        "--no-validate",
        action="store_true",
        help="skip per-event schema validation while reading",
    )
    ps.set_defaults(func=cmd_trace)

    p = sub.add_parser(
        "queue",
        help="inspect/repair a distributed census work queue (census --queue)",
    )
    qsub = p.add_subparsers(dest="queue_command", required=True)
    qs = qsub.add_parser(
        "status", help="shard-state counts and metadata of a work queue"
    )
    qs.add_argument("path", help="SQLite work queue file (census --queue PATH)")
    qs.add_argument(
        "--shards", action="store_true", help="also list per-shard rows"
    )
    qs.add_argument(
        "--json", action="store_true", help="machine-readable JSON output"
    )
    qs.set_defaults(func=cmd_queue_status)
    qr = qsub.add_parser(
        "requeue",
        help=(
            "force leased (and with --include-failed, failed) shards back "
            "to pending; run only when no worker is active"
        ),
    )
    qr.add_argument("path", help="SQLite work queue file")
    qr.add_argument(
        "--include-failed",
        action="store_true",
        help="also requeue permanently failed shards with a fresh attempt budget",
    )
    qr.set_defaults(func=cmd_queue_requeue)

    p = sub.add_parser(
        "campaign",
        help="seeded adversarial robustness campaigns (see docs/robustness.md)",
    )
    csub = p.add_subparsers(dest="campaign_command", required=True)
    cr = csub.add_parser(
        "run", help="run a Monte Carlo campaign and write a replayable bundle"
    )
    cr.add_argument("--name", default="cli", help="campaign name for the bundle")
    cr.add_argument("--seed", type=int, default=1)
    cr.add_argument("--trials", type=int, default=100)
    cr.add_argument("--n", default="4,5,6", help="comma-separated config sizes")
    cr.add_argument("--span", type=int, default=2)
    cr.add_argument("--p", type=float, default=0.3)
    cr.add_argument(
        "--mix",
        default="none=1,random_budget=1,reactive=1,crash_sleep=1",
        help=(
            "adversary strategy mix as 'name=weight,...' over "
            "none, random_budget, phase_targeting, reactive, crash_sleep"
        ),
    )
    cr.add_argument(
        "--out", metavar="DIR", help="write the bundle manifest to DIR"
    )
    cr.add_argument(
        "--queue",
        metavar="PATH",
        help=(
            "distributed mode: fan shards through a durable SQLite work "
            "queue at PATH with --workers worker processes"
        ),
    )
    cr.add_argument(
        "--workers", type=int, default=2, help="worker processes with --queue"
    )
    cr.add_argument(
        "--lease-ttl",
        type=float,
        default=None,
        help="seconds a leased shard survives without a heartbeat",
    )
    cr.add_argument(
        "--json", action="store_true", help="print metrics as JSON"
    )
    _add_backend_arg(cr)
    _add_obs_args(cr)
    cr.set_defaults(func=cmd_campaign_run)
    cs = csub.add_parser(
        "status", help="progress of a distributed campaign work queue"
    )
    cs.add_argument("path", help="SQLite work queue file (campaign run --queue)")
    cs.set_defaults(func=cmd_campaign_status)
    cp = csub.add_parser(
        "replay",
        help=(
            "re-execute recorded trials from a bundle manifest and check "
            "their digests bit-for-bit (witness trials by default)"
        ),
    )
    cp.add_argument("bundle", help="bundle directory or manifest.json path")
    cp.add_argument(
        "--index", type=int, default=None, help="replay one specific trial"
    )
    cp.add_argument(
        "--all", action="store_true", help="replay every recorded trial"
    )
    cp.add_argument(
        "--backend",
        default=None,
        help=(
            "override the recorded simulation backend (reference, fast "
            "or auto); default replays on the backend the record names"
        ),
    )
    cp.set_defaults(func=cmd_campaign_replay)

    p = sub.add_parser("defeat", help="run the Prop 4.4 universal-algorithm adversary")
    p.add_argument("--probe-m", type=int, default=64)
    _add_backend_arg(p)
    p.set_defaults(func=cmd_defeat)

    p = sub.add_parser(
        "program",
        help="compile a configuration's canonical DRIP to JSON, or run one",
    )
    _add_config_args(p)
    p.add_argument("--out", help="write the program JSON here (default stdout)")
    p.add_argument("--run", help="run a previously exported program file")
    p.set_defaults(func=cmd_program)

    p = sub.add_parser(
        "variants", help="cross-model feasibility census (cd / no-cd / beep)"
    )
    p.add_argument(
        "--exhaustive", help="'n,max_tag': enumerate all small configurations"
    )
    p.add_argument("--n", type=int, default=8)
    p.add_argument("--span", type=int, default=2)
    p.add_argument("--p", type=float, default=0.3)
    p.add_argument("--samples", type=int, default=30)
    p.add_argument("--seed", type=int, default=1)
    p.set_defaults(func=cmd_variants)

    p = sub.add_parser(
        "wired", help="radio vs wired (view refinement) feasibility contrast"
    )
    p.add_argument("--exhaustive", default="4,1", help="'n,max_tag'")
    p.set_defaults(func=cmd_wired)

    p = sub.add_parser(
        "minspan", help="least span making a graph shape feasible"
    )
    p.add_argument("--shape", default="path")
    p.add_argument("--n", type=int, default=5)
    p.add_argument("--max-span", type=int, default=4)
    p.set_defaults(func=cmd_minspan)

    p = sub.add_parser(
        "timeline", help="render a canonical election as a space-time grid"
    )
    _add_config_args(p)
    p.add_argument("--start", type=int, default=0)
    p.add_argument("--end", type=int, default=None)
    _add_algorithm_arg(p)
    p.set_defaults(func=cmd_timeline)

    p = sub.add_parser(
        "quotient", help="show the classifier quotient / symmetry skeleton"
    )
    _add_config_args(p)
    p.set_defaults(func=cmd_quotient)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code.

    The global observability flags (``--trace PATH`` / ``--obs``, on the
    commands that do real work) are honored here: tracing is enabled
    before the command runs and disabled after, so every span the
    command's layers open lands in one run-event log.
    """
    args = build_parser().parse_args(argv)
    trace_path = getattr(args, "trace", None)
    want_obs = bool(trace_path) or getattr(args, "obs", False)
    if not want_obs:
        return args.func(args)
    from . import obs

    obs.enable(trace_path=trace_path)
    try:
        return args.func(args)
    finally:
        tracer = obs.disable()
        if getattr(args, "obs", False) and tracer is not None:
            from .obs.summary import summarize_events

            print(summarize_events(tracer.events).render(), file=sys.stderr)


if __name__ == "__main__":
    sys.exit(main())
