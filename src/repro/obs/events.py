"""The run-event log: a stable, validated JSONL schema.

Every traced run (:mod:`repro.obs.tracing`) appends its events to one
JSON-lines file — one event object per line, in emission order. The
schema is deliberately small and **closed**: every event kind has an
exact field set, and :func:`validate_event` rejects unknown fields, so
the log format cannot drift silently (CI runs a traced census and
validates every emitted line against this module).

Schema (``"schema": 1``). All events carry the common fields

=========  =======================================================
``run``    run id (hex string; constant for one tracer lifetime)
``seq``    0-based emission index (strictly increasing per run)
``ts``     seconds since the run started (monotonic clock, float)
``kind``   one of :data:`EVENT_KINDS`
``name``   span/event name (dotted, e.g. ``census.shard``)
=========  =======================================================

plus per-kind fields:

==============  =====================================================
``run.start``   ``schema`` (int); optional ``attrs``
``span.start``  ``span`` (id), ``parent`` (id or null); opt. ``attrs``
``span.end``    ``span``, ``parent``, ``dur`` (seconds), ``status``
                (``"ok"``/``"error"``); optional ``error`` (string),
                ``counters`` (name → number)
``event``       ``span`` (enclosing span id or null); opt. ``attrs``
``run.end``     ``dur``, ``spans``, ``events`` (totals for the run)
==============  =====================================================

``attrs`` values are JSON scalars (string / int / float / bool /
null) — the tracer stringifies anything richer at emission time, so a
reader never needs application types. The full schema table, with
examples, is documented in ``docs/observability.md``.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, Iterator, List

#: Version stamped into every ``run.start`` event.
EVENT_SCHEMA_VERSION = 1

#: The closed set of event kinds.
EVENT_KINDS = ("run.start", "span.start", "span.end", "event", "run.end")

_COMMON = frozenset({"run", "seq", "ts", "kind", "name"})

#: Required fields per kind (beyond these, only the optional set below
#: may appear; anything else fails validation).
REQUIRED_FIELDS: Dict[str, frozenset] = {
    "run.start": _COMMON | {"schema"},
    "span.start": _COMMON | {"span", "parent"},
    "span.end": _COMMON | {"span", "parent", "dur", "status"},
    "event": _COMMON | {"span"},
    "run.end": _COMMON | {"dur", "spans", "events"},
}

#: Optional fields per kind.
OPTIONAL_FIELDS: Dict[str, frozenset] = {
    "run.start": frozenset({"attrs"}),
    "span.start": frozenset({"attrs"}),
    "span.end": frozenset({"error", "counters"}),
    "event": frozenset({"attrs"}),
    "run.end": frozenset(),
}

#: JSON scalar types allowed as ``attrs`` values.
SCALAR_TYPES = (str, int, float, bool, type(None))


class EventSchemaError(ValueError):
    """An event violates the documented run-event schema."""


def _fail(msg: str, obj: object) -> None:
    raise EventSchemaError(f"{msg}: {obj!r}")


def validate_event(obj: object) -> Dict:
    """Validate one decoded event against the schema; returns it.

    Raises :class:`EventSchemaError` on a non-dict, an unknown
    ``kind``, a missing required field, an **unknown field** (the
    schema is closed), or a mistyped value. This is the honesty gate
    CI runs over real traced censuses.
    """
    if not isinstance(obj, dict):
        _fail("event is not an object", obj)
    kind = obj.get("kind")
    if kind not in REQUIRED_FIELDS:
        _fail(f"unknown event kind {kind!r}", obj)
    required = REQUIRED_FIELDS[kind]
    allowed = required | OPTIONAL_FIELDS[kind]
    missing = required - obj.keys()
    if missing:
        _fail(f"missing field(s) {sorted(missing)}", obj)
    unknown = obj.keys() - allowed
    if unknown:
        _fail(f"unknown field(s) {sorted(unknown)}", obj)
    if not isinstance(obj["run"], str):
        _fail("run must be a string", obj)
    if not isinstance(obj["seq"], int) or isinstance(obj["seq"], bool):
        _fail("seq must be an integer", obj)
    if not isinstance(obj["ts"], (int, float)) or isinstance(obj["ts"], bool):
        _fail("ts must be a number", obj)
    if not isinstance(obj["name"], str):
        _fail("name must be a string", obj)
    if "span" in obj:
        span = obj["span"]
        # an "event" outside any span carries span=null; span.start/end
        # always belong to a real span and must carry its integer id
        span_ok = isinstance(span, int) and not isinstance(span, bool)
        if kind == "event":
            span_ok = span_ok or span is None
        if not span_ok:
            _fail("span must be an integer id", obj)
    if "parent" in obj and obj["parent"] is not None and not (
        isinstance(obj["parent"], int) and not isinstance(obj["parent"], bool)
    ):
        _fail("parent must be an integer id or null", obj)
    if "dur" in obj and (
        not isinstance(obj["dur"], (int, float)) or isinstance(obj["dur"], bool)
    ):
        _fail("dur must be a number", obj)
    if "status" in obj and obj["status"] not in ("ok", "error"):
        _fail('status must be "ok" or "error"', obj)
    if "error" in obj and not isinstance(obj["error"], str):
        _fail("error must be a string", obj)
    if "counters" in obj:
        counters = obj["counters"]
        if not isinstance(counters, dict) or not all(
            isinstance(k, str)
            and isinstance(v, (int, float))
            and not isinstance(v, bool)
            for k, v in counters.items()
        ):
            _fail("counters must map names to numbers", obj)
    if "attrs" in obj:
        attrs = obj["attrs"]
        if not isinstance(attrs, dict) or not all(
            isinstance(k, str) and isinstance(v, SCALAR_TYPES)
            for k, v in attrs.items()
        ):
            _fail("attrs must map strings to JSON scalars", obj)
    return obj


def sanitize_attrs(attrs: Dict[str, object]) -> Dict[str, object]:
    """Coerce attribute values to JSON scalars (``repr`` for the rest).

    The write-side half of the schema's scalar rule: whatever callers
    attach to a span, what lands in the log always validates.
    """
    return {
        str(k): (v if isinstance(v, SCALAR_TYPES) else repr(v))
        for k, v in attrs.items()
    }


def iter_events(path: str, *, validate: bool = True) -> Iterator[Dict]:
    """Stream events from a JSONL log, validating each by default.

    Blank lines are skipped; a line that is not valid JSON, or (with
    ``validate``) an event violating the schema, raises
    :class:`EventSchemaError` naming its line number.
    """
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                raise EventSchemaError(
                    f"{path}:{lineno}: not valid JSON ({exc})"
                ) from None
            if validate:
                try:
                    validate_event(obj)
                except EventSchemaError as exc:
                    raise EventSchemaError(f"{path}:{lineno}: {exc}") from None
            yield obj


def read_events(path: str, *, validate: bool = True) -> List[Dict]:
    """All events of a JSONL log as a list (see :func:`iter_events`)."""
    return list(iter_events(path, validate=validate))


def validate_events(events: Iterable[Dict]) -> int:
    """Validate a decoded event stream; returns the number checked."""
    count = 0
    for obj in events:
        validate_event(obj)
        count += 1
    return count
