"""Turn a run-event log into a human-readable trace report.

``repro-radio trace summarize PATH`` is a thin wrapper over
:func:`summarize_file`: parse the validated JSONL events back into a
span tree, aggregate per-name hotspot rows (count / total / mean /
max), pull out census shard progress (timings, cache hit rates) from
the ``shard.*`` events, and render everything as indented text. The
summarizer is deliberately tolerant of *unclosed* spans (a crashed or
still-running run has ``span.start`` without ``span.end``); those rows
render with ``?`` durations rather than failing.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from .events import read_events


class SpanNode:
    """One reconstructed span in the summarized tree."""

    __slots__ = (
        "span_id", "parent_id", "name", "attrs", "start_ts",
        "duration", "status", "error", "counters", "children",
    )

    def __init__(self, span_id: int, parent_id: Optional[int], name: str,
                 attrs: Dict, start_ts: float) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.attrs = attrs
        self.start_ts = start_ts
        self.duration: Optional[float] = None
        self.status: Optional[str] = None
        self.error: Optional[str] = None
        self.counters: Dict[str, float] = {}
        self.children: "List[SpanNode]" = []


class TraceSummary:
    """The digest of one run: span tree, hotspots, shard rows, events.

    Built by :func:`summarize_events`; :meth:`render` produces the
    report ``trace summarize`` prints.
    """

    def __init__(self, run_id: str) -> None:
        self.run_id = run_id
        self.schema: Optional[int] = None
        self.total_duration: Optional[float] = None
        self.span_total = 0
        self.event_total = 0
        self.roots: "List[SpanNode]" = []
        self.spans: Dict[int, SpanNode] = {}
        self.hotspots: "List[Dict]" = []
        self.shard_rows: "List[Dict]" = []
        self.events_by_name: Dict[str, int] = {}
        self.error_spans: "List[SpanNode]" = []

    # ------------------------------------------------------------------
    def render(self, top: int = 10, max_depth: int = 4,
               max_children: int = 12) -> str:
        """The report as text: header, span tree, hotspots, shards.

        ``top`` bounds the hotspot table; ``max_depth`` /
        ``max_children`` bound the tree so enormous runs stay
        readable (elided rows say how many were cut).
        """
        lines: "List[str]" = []
        dur = "?" if self.total_duration is None else f"{self.total_duration:.3f}s"
        lines.append(
            f"run {self.run_id}  spans={self.span_total}  "
            f"events={self.event_total}  wall={dur}"
        )
        if self.error_spans:
            lines.append(f"errors: {len(self.error_spans)} span(s) failed")
            for node in self.error_spans[:5]:
                lines.append(f"  ✗ {node.name} [{node.span_id}]: {node.error}")
        lines.append("")
        lines.append("span tree:")
        for root in self.roots:
            self._render_node(root, lines, 1, max_depth, max_children)
        if self.hotspots:
            lines.append("")
            lines.append(
                f"hotspots (top {min(top, len(self.hotspots))} by total time):"
            )
            lines.append(
                "  {:<28} {:>6} {:>10} {:>10} {:>10}".format(
                    "name", "count", "total", "mean", "max"
                )
            )
            for row in self.hotspots[:top]:
                lines.append(
                    "  {:<28} {:>6} {:>9.3f}s {:>9.4f}s {:>9.4f}s".format(
                        row["name"][:28], row["count"], row["total"],
                        row["mean"], row["max"],
                    )
                )
        if self.shard_rows:
            lines.append("")
            lines.append("census shards:")
            lines.append(
                "  {:<6} {:>10} {:>10} {:>9} {:>10}".format(
                    "shard", "status", "wall", "hit rate", "rows"
                )
            )
            for row in self.shard_rows:
                wall = row.get("wall")
                hit = row.get("hit_rate")
                lines.append(
                    "  {:<6} {:>10} {:>10} {:>9} {:>10}".format(
                        row["shard"],
                        row["status"],
                        "?" if wall is None else f"{wall:.3f}s",
                        "?" if hit is None else f"{hit:.1%}",
                        row.get("rows", "?"),
                    )
                )
        if self.events_by_name:
            lines.append("")
            lines.append("events:")
            for name in sorted(self.events_by_name):
                lines.append(f"  {name}: {self.events_by_name[name]}")
        return "\n".join(lines)

    def _render_node(self, node: SpanNode, lines: "List[str]", depth: int,
                     max_depth: int, max_children: int) -> None:
        dur = "?" if node.duration is None else f"{node.duration:.4f}s"
        mark = "✗ " if node.status == "error" else ""
        attrs = ""
        if node.attrs:
            inner = ", ".join(f"{k}={v}" for k, v in node.attrs.items())
            attrs = f" ({inner})"
        counters = ""
        if node.counters:
            inner = ", ".join(
                f"{k}={node.counters[k]:g}" for k in sorted(node.counters)
            )
            counters = f" [{inner}]"
        lines.append("  " * depth + f"{mark}{node.name}{attrs}  {dur}{counters}")
        if depth >= max_depth and node.children:
            lines.append("  " * (depth + 1) + f"… {len(node.children)} child span(s)")
            return
        for child in node.children[:max_children]:
            self._render_node(child, lines, depth + 1, max_depth, max_children)
        if len(node.children) > max_children:
            lines.append(
                "  " * (depth + 1)
                + f"… {len(node.children) - max_children} more sibling span(s)"
            )


def summarize_events(events: Iterable[Dict]) -> TraceSummary:
    """Fold a decoded event stream into a :class:`TraceSummary`.

    Tolerates unclosed spans (no matching ``span.end``) and a missing
    ``run.end`` — the report marks their durations ``?``. Hotspots are
    aggregated per span name over *closed* spans only.
    """
    summary = TraceSummary(run_id="?")
    agg: Dict[str, Dict] = {}
    shards: Dict[object, Dict] = {}
    for obj in events:
        kind = obj["kind"]
        summary.run_id = obj["run"]
        if kind == "run.start":
            summary.schema = obj["schema"]
        elif kind == "span.start":
            node = SpanNode(
                obj["span"], obj["parent"], obj["name"],
                obj.get("attrs", {}), obj["ts"],
            )
            summary.spans[node.span_id] = node
            parent = (
                summary.spans.get(node.parent_id)
                if node.parent_id is not None else None
            )
            if parent is not None:
                parent.children.append(node)
            else:
                summary.roots.append(node)
            summary.span_total += 1
        elif kind == "span.end":
            node = summary.spans.get(obj["span"])
            if node is None:  # log sliced mid-run: synthesize a root
                node = SpanNode(obj["span"], obj.get("parent"),
                                obj["name"], {}, obj["ts"])
                summary.spans[node.span_id] = node
                summary.roots.append(node)
                summary.span_total += 1
            node.duration = obj["dur"]
            node.status = obj["status"]
            node.error = obj.get("error")
            node.counters = obj.get("counters", {})
            if node.status == "error":
                summary.error_spans.append(node)
            row = agg.setdefault(
                node.name, {"name": node.name, "count": 0, "total": 0.0,
                            "max": 0.0},
            )
            row["count"] += 1
            row["total"] += node.duration
            row["max"] = max(row["max"], node.duration)
        elif kind == "event":
            summary.event_total += 1
            name = obj["name"]
            summary.events_by_name[name] = (
                summary.events_by_name.get(name, 0) + 1
            )
            attrs = obj.get("attrs", {})
            if name.startswith("shard.") and "shard" in attrs:
                row = shards.setdefault(
                    attrs["shard"], {"shard": attrs["shard"], "status": "?"},
                )
                row["status"] = name.split(".", 1)[1]
                for key in ("wall", "hit_rate", "rows"):
                    if key in attrs:
                        row[key] = attrs[key]
        elif kind == "run.end":
            summary.total_duration = obj["dur"]
    for row in agg.values():
        row["mean"] = row["total"] / row["count"]
    summary.hotspots = sorted(
        agg.values(), key=lambda r: r["total"], reverse=True
    )
    summary.shard_rows = sorted(
        shards.values(), key=lambda r: str(r["shard"])
    )
    return summary


def summarize_file(path: str, *, validate: bool = True) -> TraceSummary:
    """Summarize a JSONL event log from disk (validating by default)."""
    return summarize_events(read_events(path, validate=validate))
