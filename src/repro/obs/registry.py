"""Process-wide counter/gauge/histogram registry behind one snapshot.

The repo grew several per-instance accounting surfaces —
:class:`~repro.engine.cache.CacheStats`,
:class:`~repro.engine.pipeline.EngineStats`,
:class:`~repro.service.batcher.ServiceStats`, the classifier's
``OpCounter`` — each with its own ``as_dict()``. The registry absorbs
them behind one :meth:`MetricsRegistry.snapshot`: components register
their ``as_dict`` as a *group provider* (read live at snapshot time, so
the numbers are always the instance's own — equality with the legacy
surfaces is pinned by ``tests/test_obs.py``), while instrumented code
paths increment flat counters/gauges directly.

Rendering reuses :mod:`repro.service.metrics`'s Prometheus text
encoder, so a CLI run (``census --stats-json`` /
``trace summarize``) and the HTTP server's ``/metrics`` route export
the exact same format — group gauges under ``repro_<group>_*`` (the
server's existing names) and registry-native series under
``repro_obs_*``.

Everything is stdlib-only. Counter updates are single ``int`` adds —
atomic enough under the GIL for the threads involved (server loop,
dispatcher loop, main thread), same as the serving metrics.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence

#: Default histogram buckets (seconds) for registry histograms.
DEFAULT_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
    5.0, 10.0,
)


def _sanitize(name: str) -> str:
    """Dots (the registry's namespace separator) become underscores."""
    return name.replace(".", "_").replace("-", "_")


class Counter:
    """A monotonically increasing named value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (default 1)."""
        self.value += n


class Gauge:
    """A named value that can move both ways."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Replace the current value."""
        self.value = value


class MetricsRegistry:
    """Counters, gauges, histograms, heartbeats, and group providers.

    One module-level instance (:data:`repro.obs.runtime.registry`)
    serves the whole process; tests build private ones. Names are
    dotted (``engine.cache_hits``); creation is on first use.
    """

    def __init__(self) -> None:
        self._counters: "Dict[str, Counter]" = {}
        self._gauges: "Dict[str, Gauge]" = {}
        self._histograms: Dict[str, object] = {}
        self._heartbeats: Dict[str, float] = {}
        self._groups: "Dict[str, Callable[[], Dict]]" = {}

    # ------------------------------------------------------------------
    # native instruments
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        """The counter named ``name``, created at zero on first use."""
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def inc(self, name: str, n: int = 1) -> None:
        """Increment counter ``name`` by ``n``."""
        self.counter(name).inc(n)

    def gauge(self, name: str) -> Gauge:
        """The gauge named ``name``, created at zero on first use."""
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name)
        return g

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value``."""
        self.gauge(name).set(value)

    def histogram(self, name: str, buckets: Optional[Sequence[float]] = None):
        """The histogram named ``name`` (reuses the service encoder's
        :class:`~repro.service.metrics.Histogram`); bucket bounds are
        fixed at first use."""
        h = self._histograms.get(name)
        if h is None:
            # imported lazily: repro.obs must stay import-light so the
            # engine/service import graph has no cycle through it
            from ..service.metrics import Histogram

            h = self._histograms[name] = Histogram(
                f"repro_obs_{_sanitize(name)}",
                f"Observability histogram ({name}).",
                tuple(buckets) if buckets else DEFAULT_BUCKETS,
            )
        return h

    def observe(
        self, name: str, value: float,
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        """Record one observation into histogram ``name``."""
        self.histogram(name, buckets).observe(value)

    def heartbeat(self, name: str) -> None:
        """Record that component ``name`` is alive *now* (monotonic)."""
        self._heartbeats[name] = time.monotonic()

    def heartbeat_age(self, name: str) -> Optional[float]:
        """Seconds since ``name`` last heartbeat, or None if it never has."""
        last = self._heartbeats.get(name)
        return None if last is None else max(0.0, time.monotonic() - last)

    # ------------------------------------------------------------------
    # group providers (the legacy as_dict surfaces)
    # ------------------------------------------------------------------
    def register_group(
        self, group: str, provider: Callable[[], Dict]
    ) -> None:
        """Attach a live counter-dict provider under ``group``.

        ``provider`` is called at every snapshot/render (typically a
        stats object's ``as_dict``), so the group always reflects the
        instance's current numbers. Re-registering a group replaces it.
        """
        self._groups[group] = provider

    def unregister_group(self, group: str) -> None:
        """Detach a group provider (missing groups are a no-op)."""
        self._groups.pop(group, None)

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict:
        """One JSON-ready dict of everything the registry knows.

        Shape: ``{"counters": {...}, "gauges": {...}, "histograms":
        {name: {"count", "sum", "buckets"}}, "heartbeats": {name:
        age_seconds}, "groups": {group: provider()}}`` — keys sorted,
        values plain scalars. ``census --stats-json`` prints exactly
        this.
        """
        histograms = {}
        for name in sorted(self._histograms):
            h = self._histograms[name]
            cumulative, counts = 0, {}
            for bound, count in zip(h.buckets, h.counts):
                cumulative += count
                counts[repr(float(bound))] = cumulative
            histograms[name] = {
                "count": h.count,
                "sum": round(h.sum, 9),
                "buckets": counts,
            }
        return {
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].value
                for name in sorted(self._gauges)
            },
            "histograms": histograms,
            "heartbeats": {
                name: round(self.heartbeat_age(name), 3)
                for name in sorted(self._heartbeats)
            },
            "groups": {
                group: dict(provider())
                for group, provider in sorted(self._groups.items())
            },
        }

    def render_prometheus(self) -> str:
        """The registry as Prometheus text exposition.

        Group providers render exactly like the server's gauge groups
        (``repro_<group>_<key>``, via
        :func:`repro.service.metrics.render_gauge_group`); native
        counters/gauges render under ``repro_obs_*``; heartbeats render
        as ``repro_obs_heartbeat_age_seconds{name="..."}``. The server
        appends this to its ``/metrics`` payload, so the classic series
        stay bit-for-bit and the registry is a strict superset.
        """
        from ..service.metrics import _format_value, render_gauge_group

        lines: List[str] = []
        for group, provider in sorted(self._groups.items()):
            lines.extend(
                render_gauge_group(
                    f"repro_{_sanitize(group)}",
                    provider(),
                    f"Observability group counter ({group})",
                )
            )
        for name in sorted(self._counters):
            series = f"repro_obs_{_sanitize(name)}_total"
            lines.append(f"# HELP {series} Observability counter ({name}).")
            lines.append(f"# TYPE {series} counter")
            lines.append(f"{series} {self._counters[name].value}")
        for name in sorted(self._gauges):
            series = f"repro_obs_{_sanitize(name)}"
            lines.append(f"# HELP {series} Observability gauge ({name}).")
            lines.append(f"# TYPE {series} gauge")
            lines.append(f"{series} {_format_value(self._gauges[name].value)}")
        if self._heartbeats:
            series = "repro_obs_heartbeat_age_seconds"
            lines.append(
                f"# HELP {series} Seconds since a component's last heartbeat."
            )
            lines.append(f"# TYPE {series} gauge")
            for name in sorted(self._heartbeats):
                age = self.heartbeat_age(name)
                lines.append(
                    f'{series}{{name="{name}"}} {_format_value(age)}'
                )
        for name in sorted(self._histograms):
            lines.extend(self._histograms[name].render())
        return "\n".join(lines) + ("\n" if lines else "")

    def reset(self) -> None:
        """Drop every instrument, heartbeat, and group (test isolation)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self._heartbeats.clear()
        self._groups.clear()
