"""Unified tracing + runtime telemetry for the whole stack.

``repro.obs`` is the repo's zero-dependency observability layer:
hierarchical trace spans with a validated JSONL run-event log
(:mod:`~repro.obs.tracing`, :mod:`~repro.obs.events`), a process-wide
counter/gauge/histogram registry that absorbs the legacy per-component
stats surfaces and renders the same Prometheus text as the server
(:mod:`~repro.obs.registry`), and a span-tree/hotspot summarizer
behind ``repro-radio trace summarize`` (:mod:`~repro.obs.summary`).

Design rule: **disabled is the default and costs one attribute
check** — instrumented hot paths guard on ``STATE.enabled``
(:mod:`~repro.obs.runtime`), and ``benchmarks/bench_e26_obs_overhead.py``
gates the overhead both ways (disabled within 5% of pre-instrumentation
wall time, enabled tracing ≤ 15%). See ``docs/observability.md`` for
the event schema and span naming conventions.
"""

from .events import (
    EVENT_KINDS,
    EVENT_SCHEMA_VERSION,
    EventSchemaError,
    iter_events,
    read_events,
    sanitize_attrs,
    validate_event,
    validate_events,
)
from .registry import Counter, Gauge, MetricsRegistry
from .runtime import (
    STATE,
    ObsState,
    current_span_id,
    disable,
    enable,
    event,
    registry,
    render_prometheus,
    snapshot,
    span,
)
from .summary import (
    SpanNode,
    TraceSummary,
    summarize_events,
    summarize_file,
)
from .tracing import NOOP_SPAN, Span, Tracer

__all__ = [
    "EVENT_KINDS",
    "EVENT_SCHEMA_VERSION",
    "EventSchemaError",
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "NOOP_SPAN",
    "ObsState",
    "STATE",
    "Span",
    "SpanNode",
    "TraceSummary",
    "Tracer",
    "current_span_id",
    "disable",
    "enable",
    "event",
    "iter_events",
    "read_events",
    "registry",
    "render_prometheus",
    "sanitize_attrs",
    "snapshot",
    "span",
    "summarize_events",
    "summarize_file",
    "validate_event",
    "validate_events",
]
