"""Hierarchical trace spans and the JSONL run-event tracer.

A :class:`Span` is a context manager: entering it records the start,
exiting records wall time, span-local counters, and — when the body
raised — the exception (``status: "error"`` plus a one-line ``error``
string; the exception always propagates). Nesting is tracked through a
:class:`contextvars.ContextVar` holding an *immutable* span tuple, so
parent ids are correct per ``asyncio`` task as well as per thread — the
serving layer opens request spans on the event-loop thread where a
``threading.local`` stack would interleave concurrent connections.

A :class:`Tracer` owns one *run*: a random run id, a monotonic clock
zeroed at construction, a strictly increasing sequence number, an
in-memory span tree for same-process summaries, and (optionally) an
append-only JSONL event log following :mod:`repro.obs.events`'
validated schema. Instrumented call sites never touch these classes
directly — they go through :mod:`repro.obs.runtime`, whose disabled
fast path hands out the shared :data:`NOOP_SPAN` at the cost of a
single attribute check.
"""

from __future__ import annotations

import contextvars
import json
import secrets
import threading
import time
from typing import Dict, List, Optional, TextIO

from .events import EVENT_SCHEMA_VERSION, sanitize_attrs

#: In-memory event-list cap per run; beyond it events still go to the
#: JSONL log but only a drop counter is kept in memory.
DEFAULT_MAX_EVENTS = 100_000

_SPAN_STACK: "contextvars.ContextVar[tuple]" = contextvars.ContextVar(
    "repro_obs_span_stack", default=()
)


class Span:
    """One timed, nested unit of work (use as a context manager).

    Created by :meth:`Tracer.span`; ``with tracer.span("census.shard",
    shard=3) as sp:`` assigns the span an id and a parent (the
    innermost live span of the current task, if any), emits
    ``span.start``, and on exit emits ``span.end`` carrying duration,
    status, span-local counters, and the stringified exception when the
    body raised. Exceptions are never swallowed.
    """

    __slots__ = (
        "tracer", "name", "attrs", "span_id", "parent_id",
        "start", "duration", "status", "error", "counters",
        "children", "_token",
    )

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict) -> None:
        self.tracer = tracer
        self.name = name
        self.attrs = sanitize_attrs(attrs)
        self.span_id: Optional[int] = None
        self.parent_id: Optional[int] = None
        self.start: Optional[float] = None
        self.duration: Optional[float] = None
        self.status: Optional[str] = None
        self.error: Optional[str] = None
        self.counters: Dict[str, float] = {}
        self.children: "List[Span]" = []
        self._token = None

    def add(self, counter: str, n: float = 1) -> None:
        """Bump a span-local counter (lands in this span's ``span.end``)."""
        self.counters[counter] = self.counters.get(counter, 0) + n

    def __enter__(self) -> "Span":
        """Open the span: assign ids, push onto the task-local stack."""
        stack = _SPAN_STACK.get()
        parent = stack[-1] if stack else None
        self.parent_id = parent.span_id if parent is not None else None
        self.tracer._open(self, parent)
        self._token = _SPAN_STACK.set(stack + (self,))
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        """Close the span: record duration/status, pop the stack."""
        self.duration = time.perf_counter() - self.start
        if exc_type is None:
            self.status = "ok"
        else:
            self.status = "error"
            self.error = f"{exc_type.__name__}: {exc}"
        _SPAN_STACK.reset(self._token)
        self.tracer._close(self)
        return False


class _NoopSpan:
    """The disabled-mode span: every operation is a cheap no-op.

    A single shared instance (:data:`NOOP_SPAN`) is handed to every
    call site while tracing is off, so instrumented code runs the same
    ``with`` statement either way.
    """

    __slots__ = ()

    #: Mirrors :class:`Span` so duration reads are safe either way.
    duration = None
    span_id = None
    status = None

    def add(self, counter: str, n: float = 1) -> None:
        """Discard the counter bump."""

    def __enter__(self) -> "_NoopSpan":
        """Return self; nothing is recorded."""
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        """Propagate any exception; nothing is recorded."""
        return False


#: The shared disabled-mode span.
NOOP_SPAN = _NoopSpan()


class Tracer:
    """One traced run: id, clock, span tree, and optional JSONL log.

    ``path=None`` keeps the run purely in memory (``classify
    --profile`` works this way); with a path, every event is appended
    as one JSON line the moment it happens, so a crashed run still
    leaves a parseable log. All bookkeeping happens under one lock;
    the per-event cost is what the E26 benchmark bounds at ≤ 15%.
    """

    def __init__(
        self,
        path: Optional[str] = None,
        run_id: Optional[str] = None,
        max_events: int = DEFAULT_MAX_EVENTS,
    ) -> None:
        self.run_id = run_id or secrets.token_hex(8)
        self.path = path
        self.t0 = time.perf_counter()
        self.max_events = max_events
        self.spans: Dict[int, Span] = {}
        self.roots: "List[Span]" = []
        self.events: "List[Dict]" = []
        self.dropped_events = 0
        self.span_count = 0
        self.event_count = 0
        self.closed = False
        self._seq = 0
        self._next_span_id = 1
        self._lock = threading.Lock()
        self._fh: Optional[TextIO] = None
        if path is not None:
            self._fh = open(path, "a", encoding="utf-8")
        self._emit(
            "run.start", name="run", extra={"schema": EVENT_SCHEMA_VERSION}
        )

    # ------------------------------------------------------------------
    # emission
    # ------------------------------------------------------------------
    def _emit(self, kind: str, name: str, extra: Dict) -> None:
        with self._lock:
            obj = {
                "run": self.run_id,
                "seq": self._seq,
                "ts": round(time.perf_counter() - self.t0, 6),
                "kind": kind,
                "name": name,
            }
            obj.update(extra)
            self._seq += 1
            if len(self.events) < self.max_events:
                self.events.append(obj)
            else:
                self.dropped_events += 1
            if self._fh is not None:
                self._fh.write(json.dumps(obj, sort_keys=True) + "\n")
                self._fh.flush()

    def span(self, name: str, /, **attrs) -> Span:
        """A new (not yet entered) span named ``name`` with ``attrs``.

        ``name`` is positional-only so an attribute may itself be
        called ``name`` without colliding with the parameter.
        """
        return Span(self, name, attrs)

    def event(self, name: str, /, **attrs) -> None:
        """Emit a point-in-time event inside the current span (if any)."""
        stack = _SPAN_STACK.get()
        span_id = stack[-1].span_id if stack else None
        extra: Dict = {"span": span_id}
        if attrs:
            extra["attrs"] = sanitize_attrs(attrs)
        self.event_count += 1
        self._emit("event", name=name, extra=extra)

    def _open(self, span: Span, parent: Optional[Span]) -> None:
        with self._lock:
            span.span_id = self._next_span_id
            self._next_span_id += 1
            self.span_count += 1
            self.spans[span.span_id] = span
            if parent is not None:
                parent.children.append(span)
            else:
                self.roots.append(span)
        extra: Dict = {"span": span.span_id, "parent": span.parent_id}
        if span.attrs:
            extra["attrs"] = span.attrs
        self._emit("span.start", name=span.name, extra=extra)

    def _close(self, span: Span) -> None:
        extra: Dict = {
            "span": span.span_id,
            "parent": span.parent_id,
            "dur": round(span.duration, 6),
            "status": span.status,
        }
        if span.error is not None:
            extra["error"] = span.error
        if span.counters:
            extra["counters"] = {
                k: span.counters[k] for k in sorted(span.counters)
            }
        self._emit("span.end", name=span.name, extra=extra)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Emit ``run.end`` (totals) and release the log handle.

        Idempotent — only the first call emits.
        """
        if self.closed:
            return
        self.closed = True
        self._emit(
            "run.end",
            name="run",
            extra={
                "dur": round(time.perf_counter() - self.t0, 6),
                "spans": self.span_count,
                "events": self.event_count,
            },
        )
        if self._fh is not None:
            self._fh.close()
            self._fh = None
