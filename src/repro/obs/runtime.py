"""Process-wide observability state: the one-attribute-check fast path.

Hot paths are instrumented like this::

    from ..obs.runtime import STATE as _OBS
    ...
    if _OBS.enabled:
        _OBS.tracer.event("shard.finished", shard=i)

Disabled (the default), the guard costs one attribute load on a
slotted singleton — the E26 benchmark proves the whole census pipeline
stays within 5% of its pre-instrumentation wall time. For spans, the
convenience :func:`span` returns the shared
:data:`~repro.obs.tracing.NOOP_SPAN` when disabled so ``with
obs.span(...)`` reads identically either way.

The module also owns the process-wide :data:`registry`
(:class:`~repro.obs.registry.MetricsRegistry`). Low-frequency
instruments (dispatcher heartbeats, cancelled-ticket counts) write to
it unconditionally — that is how they reach ``/metrics`` without the
tracer being on; only per-item hot-path counters hide behind the
enabled guard.
"""

from __future__ import annotations

from typing import Dict, Optional

from .registry import MetricsRegistry
from .tracing import NOOP_SPAN, Tracer


class ObsState:
    """The global enabled flag plus the active tracer (slotted: the
    disabled-path guard is a single attribute load)."""

    __slots__ = ("enabled", "tracer")

    def __init__(self) -> None:
        self.enabled = False
        self.tracer: Optional[Tracer] = None


#: The singleton instrumented call sites check.
STATE = ObsState()

#: The process-wide metrics registry (always live, even when tracing
#: is off — the server and ``census --stats-json`` read it directly).
registry = MetricsRegistry()


def enable(
    trace_path: Optional[str] = None, run_id: Optional[str] = None
) -> Tracer:
    """Turn tracing on, returning the new active :class:`Tracer`.

    ``trace_path`` appends the run's JSONL event log there
    (``--trace PATH``); without it the run is in-memory only
    (``--obs`` / ``--profile``). An already-active tracer is closed
    first, so re-enabling is safe.
    """
    if STATE.tracer is not None:
        STATE.tracer.close()
    STATE.tracer = Tracer(path=trace_path, run_id=run_id)
    STATE.enabled = True
    return STATE.tracer


def disable() -> Optional[Tracer]:
    """Turn tracing off; returns the closed tracer (for summaries).

    The returned tracer's in-memory tree and event list stay readable —
    ``classify --profile`` and ``trace summarize`` of a live run use
    exactly this.
    """
    tracer, STATE.tracer = STATE.tracer, None
    STATE.enabled = False
    if tracer is not None:
        tracer.close()
    return tracer


def span(name: str, /, **attrs):
    """A span under the active tracer — or :data:`NOOP_SPAN` when off.

    ``name`` is positional-only, so ``attrs`` may carry a key called
    ``name``. The instrumentation idiom for timed regions::

        with obs.span("census.shard", shard=i) as sp:
            ...
            sp.add("rows", len(rows))
    """
    if STATE.enabled:
        return STATE.tracer.span(name, **attrs)
    return NOOP_SPAN


def event(name: str, /, **attrs) -> None:
    """Emit a point-in-time event (no-op while tracing is off)."""
    if STATE.enabled:
        STATE.tracer.event(name, **attrs)


def current_span_id() -> Optional[int]:
    """The innermost live span's id for this task, or None.

    The serving layer stamps this into its structured request logs so
    log lines correlate to trace spans.
    """
    if not STATE.enabled:
        return None
    from .tracing import _SPAN_STACK

    stack = _SPAN_STACK.get()
    return stack[-1].span_id if stack else None


def snapshot() -> Dict:
    """The process registry's full snapshot (see
    :meth:`~repro.obs.registry.MetricsRegistry.snapshot`)."""
    return registry.snapshot()


def render_prometheus() -> str:
    """The process registry as Prometheus text (see
    :meth:`~repro.obs.registry.MetricsRegistry.render_prometheus`)."""
    return registry.render_prometheus()
