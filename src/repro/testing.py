"""Test-support utilities shared by the test and benchmark harnesses.

Hosts the hypothesis strategy for random configurations (guarded —
hypothesis is an optional extra) and re-exports the seeded workload
builders of :mod:`repro.engine.workloads`, so both ``tests/conftest.py``
and ``benchmarks/conftest.py`` can expose one implementation under
identical names instead of shadowing each other when pytest collects
both directories in a single run.
"""

from __future__ import annotations

from .core.configuration import Configuration
from .engine.workloads import (  # noqa: F401  (re-exported)
    feasible_batch,
    make_random_config,
    random_config_batch,
    seeded_config,
)

try:
    from hypothesis import strategies as st

    @st.composite
    def configurations(draw, max_n: int = 8, max_span: int = 3):
        """Random connected tagged graphs: a random spanning tree plus a
        random subset of extra edges, with uniform tags."""
        n = draw(st.integers(min_value=1, max_value=max_n))
        # random spanning tree: attach node i to a uniform earlier node
        edges = set()
        for i in range(1, n):
            parent = draw(st.integers(min_value=0, max_value=i - 1))
            edges.add((parent, i))
        # optional extra edges
        if n >= 3:
            extras = draw(
                st.lists(
                    st.tuples(
                        st.integers(0, n - 1), st.integers(0, n - 1)
                    ),
                    max_size=n,
                )
            )
            for u, v in extras:
                if u != v:
                    edges.add((min(u, v), max(u, v)))
        tags = {
            i: draw(st.integers(min_value=0, max_value=max_span))
            for i in range(n)
        }
        return Configuration(sorted(edges), tags)

except ImportError:  # pragma: no cover - hypothesis is an install extra
    configurations = None
