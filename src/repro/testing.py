"""Test-support utilities shared by the test and benchmark harnesses.

Hosts three things every differential suite wants but none should own:

* **the differential assertions** — :func:`assert_trace_equal` and
  :func:`assert_execution_equal` pinpoint the *first* divergence between
  two classifier traces / simulation results (which iteration, which
  field, which node) instead of dumping two multi-kilobyte reprs, so a
  kernel regression reads as ``iteration 3, field labels, node 2`` and
  not as a wall of text. The classifier benchmarks (E23/E24) gate on the
  same assertions the test suite uses;
* **workload generators** — the exhaustive :func:`sweep_configurations`
  small-``n`` sweep, :func:`random_relabel`, and the hypothesis
  strategies :func:`configurations` / :func:`diverse_configurations`
  (guarded — hypothesis is an optional extra);
* **re-exports** of the seeded workload builders of
  :mod:`repro.engine.workloads`, so both ``tests/conftest.py`` and
  ``benchmarks/conftest.py`` can expose one implementation under
  identical names instead of shadowing each other when pytest collects
  both directories in a single run.
"""

from __future__ import annotations

import random
from typing import Iterable, Iterator, Tuple

from .core.configuration import Configuration
from .engine.workloads import (  # noqa: F401  (re-exported)
    feasible_batch,
    make_random_config,
    random_config_batch,
    seeded_config,
)

# ----------------------------------------------------------------------
# differential assertions
# ----------------------------------------------------------------------


def _fail(context: str, where: str, actual: object, expected: object) -> None:
    prefix = f"{context}: " if context else ""
    raise AssertionError(
        f"{prefix}first divergence at {where}:\n"
        f"  actual:   {actual!r}\n"
        f"  expected: {expected!r}"
    )


def _assert_mapping_equal(
    actual: dict, expected: dict, context: str, where: str
) -> None:
    """Per-key comparison so the failure names the diverging node."""
    if actual.keys() != expected.keys():
        _fail(
            context,
            f"{where} (key sets)",
            sorted(actual.keys(), key=repr),
            sorted(expected.keys(), key=repr),
        )
    for key in expected:
        if actual[key] != expected[key]:
            _fail(context, f"{where}, node {key!r}", actual[key], expected[key])


def assert_trace_equal(actual, expected, *, context: str = "") -> None:
    """Assert bit-for-bit :class:`~repro.core.trace.ClassifierTrace`
    equality, failing with first-divergence diagnostics.

    The comparison follows :func:`repro.core.fast_classifier.traces_equal`
    — every field except op metering (``total_ops``), which backends
    legitimately differ on — but walks iterations in order and mappings
    per node, so the error message names the exact iteration, field and
    node where the traces part ways. ``context`` is prepended to the
    failure (e.g. a description of the workload instance).
    """
    if actual.config != expected.config:
        _fail(context, "config", actual.config, expected.config)
    if actual.sigma != expected.sigma:
        _fail(context, "sigma", actual.sigma, expected.sigma)
    _assert_mapping_equal(
        actual.initial_classes, expected.initial_classes, context,
        "initial_classes",
    )
    if actual.initial_reps != expected.initial_reps:
        _fail(context, "initial_reps", actual.initial_reps, expected.initial_reps)
    for ra, rb in zip(actual.iterations, expected.iterations):
        it = f"iteration {rb.index}"
        if ra.index != rb.index:
            _fail(context, f"{it}, field index", ra.index, rb.index)
        _assert_mapping_equal(ra.labels, rb.labels, context, f"{it}, field labels")
        _assert_mapping_equal(
            ra.classes_after, rb.classes_after, context,
            f"{it}, field classes_after",
        )
        if ra.reps_after != rb.reps_after:
            _fail(context, f"{it}, field reps_after", ra.reps_after, rb.reps_after)
        if ra.num_classes_after != rb.num_classes_after:
            _fail(
                context,
                f"{it}, field num_classes_after",
                ra.num_classes_after,
                rb.num_classes_after,
            )
    if len(actual.iterations) != len(expected.iterations):
        _fail(
            context,
            "number of iterations",
            len(actual.iterations),
            len(expected.iterations),
        )
    for name in ("decision", "decided_at", "leader_class", "leader"):
        a, b = getattr(actual, name), getattr(expected, name)
        if a != b:
            _fail(context, name, a, b)


def assert_execution_equal(actual, expected, *, context: str = "") -> None:
    """Assert bit-for-bit simulation-result equality, failing with
    first-divergence diagnostics.

    Compares the :class:`~repro.radio.events.ExecutionResult` equality
    contract — ``histories``, ``wake_rounds``, ``wake_kinds``,
    ``done_local``, ``rounds_elapsed`` and the recorded ``trace``;
    ``backend_stats`` is excluded, backends legitimately differ there —
    naming the node (and for histories, the local round) where the two
    executions part ways.
    """
    for name in ("wake_rounds", "wake_kinds", "done_local"):
        _assert_mapping_equal(
            getattr(actual, name), getattr(expected, name), context, name
        )
    if actual.histories.keys() != expected.histories.keys():
        _fail(
            context,
            "histories (key sets)",
            sorted(actual.histories.keys(), key=repr),
            sorted(expected.histories.keys(), key=repr),
        )
    for v in expected.histories:
        ha, hb = actual.histories[v], expected.histories[v]
        if ha != hb:
            for r, (ea, eb) in enumerate(zip(ha, hb)):
                if ea != eb:
                    _fail(
                        context,
                        f"histories, node {v!r}, local round {r}", ea, eb,
                    )
            _fail(context, f"histories, node {v!r} (length)", len(ha), len(hb))
    if actual.rounds_elapsed != expected.rounds_elapsed:
        _fail(
            context, "rounds_elapsed",
            actual.rounds_elapsed, expected.rounds_elapsed,
        )
    if actual.trace != expected.trace:
        ta, tb = actual.trace or [], expected.trace or []
        for i, (ra, rb) in enumerate(zip(ta, tb)):
            if ra != rb:
                _fail(context, f"trace, round record {i}", ra, rb)
        _fail(context, "trace (length)", len(ta), len(tb))


# ----------------------------------------------------------------------
# workload generators
# ----------------------------------------------------------------------

#: ``(n, max_tag)`` cells of the exhaustive small-n sweep: every
#: configuration shape with every tag vector, the grid the canon oracle
#: tests and the E24 equality gate share. ``(5, 1)`` keeps the largest
#: cell's tag space binary so the whole sweep stays a few thousand
#: configurations.
SMALL_SWEEP_GRID: Tuple[Tuple[int, int], ...] = (
    (1, 2), (2, 2), (3, 2), (4, 2), (5, 1),
)


def sweep_configurations(
    grid: Iterable[Tuple[int, int]] = SMALL_SWEEP_GRID,
) -> Iterator[Configuration]:
    """Yield every configuration of every ``(n, max_tag)`` grid cell.

    Wraps :func:`repro.graphs.enumeration.enumerate_configurations` —
    connected shape representatives crossed with all tag vectors — so
    exhaustive differential sweeps share one definition of "all small
    configurations" instead of each suite hard-coding its own grid.
    """
    from .graphs.enumeration import enumerate_configurations

    for n, max_tag in grid:
        yield from enumerate_configurations(n, max_tag)


def random_relabel(cfg: Configuration, seed: int) -> Configuration:
    """A uniformly shuffled relabeling of ``cfg`` (same node-id set)."""
    nodes = list(cfg.nodes)
    shuffled = list(nodes)
    random.Random(seed).shuffle(shuffled)
    return cfg.relabel(dict(zip(nodes, shuffled)))


try:
    from hypothesis import strategies as st

    @st.composite
    def configurations(draw, max_n: int = 8, max_span: int = 3):
        """Random connected tagged graphs: a random spanning tree plus a
        random subset of extra edges, with uniform tags."""
        n = draw(st.integers(min_value=1, max_value=max_n))
        # random spanning tree: attach node i to a uniform earlier node
        edges = set()
        for i in range(1, n):
            parent = draw(st.integers(min_value=0, max_value=i - 1))
            edges.add((parent, i))
        # optional extra edges
        if n >= 3:
            extras = draw(
                st.lists(
                    st.tuples(
                        st.integers(0, n - 1), st.integers(0, n - 1)
                    ),
                    max_size=n,
                )
            )
            for u, v in extras:
                if u != v:
                    edges.add((min(u, v), max(u, v)))
        tags = {
            i: draw(st.integers(min_value=0, max_value=max_span))
            for i in range(n)
        }
        return Configuration(sorted(edges), tags)

    @st.composite
    def diverse_configurations(draw, max_n: int = 8, max_span: int = 3):
        """:func:`configurations` plus the representation hazards every
        implementation must be transparent to: an optional uniform tag
        shift (normalization must undo it identically) and an optional
        relabeling to string node names (indexing must not assume
        integer ids)."""
        cfg = draw(configurations(max_n=max_n, max_span=max_span))
        shift = draw(st.integers(min_value=0, max_value=4))
        if shift:
            cfg = cfg.shift_tags(shift)
        if draw(st.booleans()):
            cfg = cfg.relabel({v: f"node-{v:03d}" for v in cfg.nodes})
        return cfg

except ImportError:  # pragma: no cover - hypothesis is an install extra
    configurations = None
    diverse_configurations = None
