"""repro — Deterministic Leader Election in Anonymous Radio Networks.

A complete, executable reproduction of Miller, Pelc & Yadav (SPAA 2020,
arXiv:2002.02641): the synchronous radio model with collision detection,
the centralized feasibility classifier (Algorithms 1–4), the canonical
DRIP and dedicated O(n²σ) leader election (Theorem 3.15), the negative
results of Section 4 as executable experiments, plus graph/tag workload
generators, analysis tooling, contrast baselines, a census engine
(:mod:`repro.engine`) with canonical-form memoization and sharded,
resumable sweeps, and a batch classification service
(:mod:`repro.service`) that serves ``decide``/``elect`` over HTTP with
request coalescing and backpressure.

Quickstart::

    >>> from repro import Configuration, decide, elect
    >>> cfg = Configuration([(0, 1), (1, 2)], {0: 0, 1: 1, 2: 0})
    >>> decide(cfg).feasible
    True
    >>> elect(cfg).leader
    1
"""

from .core import (
    CanonicalProtocol,
    ClassifierTrace,
    Configuration,
    ConfigurationError,
    ElectionResult,
    FeasibilityReport,
    classify,
    decide,
    elect,
    elect_leader,
    fast_classify,
    is_feasible,
    line_configuration,
)
from .radio import (
    COLLISION,
    LISTEN,
    SILENCE,
    TERMINATE,
    DRIP,
    Commitment,
    History,
    LeaderElectionAlgorithm,
    Message,
    RadioSimulator,
    ScheduleOblivious,
    Transmit,
    make_patient,
    simulate,
)
__version__ = "1.0.0"

#: Service-layer re-exports, resolved lazily (PEP 562): the asyncio +
#: http.server stack should not tax `import repro` for consumers that
#: only want decide/elect — the same discipline that keeps repro.engine
#: out of the top-level import.
_SERVICE_EXPORTS = ("BatchClassifier", "Ticket", "serial_report")


def __getattr__(name):
    """Lazy attribute hook for the service-layer re-exports."""
    if name in _SERVICE_EXPORTS:
        from . import service

        return getattr(service, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "BatchClassifier",
    "COLLISION",
    "CanonicalProtocol",
    "ClassifierTrace",
    "Commitment",
    "Configuration",
    "ConfigurationError",
    "DRIP",
    "ElectionResult",
    "FeasibilityReport",
    "History",
    "LISTEN",
    "LeaderElectionAlgorithm",
    "Message",
    "RadioSimulator",
    "SILENCE",
    "ScheduleOblivious",
    "TERMINATE",
    "Ticket",
    "Transmit",
    "__version__",
    "classify",
    "decide",
    "elect",
    "elect_leader",
    "fast_classify",
    "is_feasible",
    "line_configuration",
    "make_patient",
    "serial_report",
    "simulate",
]
