"""The canonical DRIP ``D_G`` (paper Section 3.3.1).

For a configuration ``G``, the canonical DRIP is the distributed protocol
whose hard-coded data is read off the ``Classifier`` trace:

* a sequence of lists ``L_1, L_2, ...`` where ``L_1 = [(1, null)]``,
  ``L_j[k] = (reps_j[k]_{CLASS,j-1}, reps_j[k]_{LBL,j})`` for ``j >= 2``,
  and the first ``L_j`` whose construction round saw no class-count growth
  or saw a singleton class is replaced by the string *terminate*;
* the span ``σ``.

Locally each node executes phases: phase ``P_j`` consists of
``numClasses_j = len(L_j)`` transmission blocks of ``2σ+1`` rounds followed
by ``σ`` listening rounds. At the start of ``P_j`` the node matches its
phase-``P_{j-1}`` history against the entries of ``L_j`` to find its class
number ``tBlock``; during the phase it transmits ``'1'`` exactly once, in
the ``(σ+1)``-th round of block ``tBlock``, and listens otherwise. When
``L_j`` is *terminate*, the node terminates in the first round of the
phase. Lemma 3.8 shows the matching always succeeds and reproduces the
classifier's class assignment; Lemma 3.9 shows two nodes share a class iff
they share a history.

This module also derives the dedicated decision function ``f_G``
(Lemma 3.11): a node outputs 1 iff its final matched class equals the
classifier's singleton leader class. The decision is a genuine function of
the node's own terminal history (plus the hard-coded protocol data), so
``(D_G, f_G)`` is a *dedicated leader election algorithm* in the paper's
sense.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..radio.history import History
from ..radio.model import LISTEN, TERMINATE, Action, Message, Transmit
from ..radio.protocol import (
    DRIP,
    Commitment,
    LeaderElectionAlgorithm,
    ScheduleOblivious,
)
from .partition import Label, ONE, STAR
from .trace import ClassifierTrace

#: The message every canonical transmission carries (paper: the string '1').
CANONICAL_MESSAGE = "1"


class CanonicalMatchError(RuntimeError):
    """A node's history matched no entry of ``L_j`` — impossible in a real
    canonical execution (Lemma 3.8); indicates protocol/simulator skew."""


#: One ``L_j`` entry: (class number at the previous partition, label).
ListEntry = Tuple[int, Label]


@dataclass
class CanonicalData:
    """Hard-coded data of ``D_G``: everything a node needs, and nothing
    derived from its identity (all nodes receive an identical copy)."""

    sigma: int
    #: ``L_1 .. L_P`` for the P real (non-terminate) phases.
    lists: List[List[ListEntry]]
    #: entries of the would-be ``L_{P+1}`` (the partition at termination);
    #: used only by the decision function, not by the protocol.
    final_list: List[ListEntry]
    #: class number of the leader's singleton class, or None if infeasible.
    leader_class: Optional[int]
    feasible: bool
    #: phase-end local rounds ``r_0 .. r_P`` (``r_0 = 0``).
    phase_ends: List[int]

    @property
    def num_phases(self) -> int:
        return len(self.lists)

    @property
    def block_width(self) -> int:
        return 2 * self.sigma + 1

    @property
    def done_round(self) -> int:
        """``done_v``: the local round in which every node terminates
        (``r_{jterm-1} + 1``, identical across nodes)."""
        return self.phase_ends[-1] + 1


def build_canonical_data(trace: ClassifierTrace) -> CanonicalData:
    """Construct the canonical DRIP data from a classifier trace."""
    if not trace.decision:
        raise ValueError("trace has no decision; run classify() first")
    sigma = trace.sigma
    p = trace.decided_at  # number of real phases (L_{p+1} = terminate)

    lists: List[List[ListEntry]] = [[(1, ())]]  # L_1 = [(1, null)]
    for j in range(2, p + 1):
        reps_j = trace.reps_at(j)
        prev_classes = trace.classes_at(j - 1)
        labels_j = trace.labels_at(j)
        entries = [
            (prev_classes[reps_j[k]], labels_j[reps_j[k]])
            for k in range(1, trace.num_classes_at(j) + 1)
        ]
        lists.append(entries)

    # The would-be L_{p+1}: the partition Classifier stopped with.
    jterm = p + 1
    reps_f = trace.reps_at(jterm)
    prev_classes_f = trace.classes_at(jterm - 1)
    labels_f = trace.labels_at(jterm) if jterm >= 2 else {}
    final_list: List[ListEntry] = [
        (prev_classes_f[reps_f[k]], labels_f[reps_f[k]])
        for k in range(1, trace.num_classes_at(jterm) + 1)
    ]

    width = 2 * sigma + 1
    phase_ends = [0]
    for entries in lists:
        phase_ends.append(phase_ends[-1] + len(entries) * width + sigma)

    return CanonicalData(
        sigma=sigma,
        lists=lists,
        final_list=final_list,
        leader_class=trace.leader_class,
        feasible=trace.feasible,
        phase_ends=phase_ends,
    )


# ----------------------------------------------------------------------
# history matching
# ----------------------------------------------------------------------
def observed_triples(
    history: History, r_prev: int, num_blocks: int, sigma: int
) -> Label:
    """Triples a node observed during one phase's block region.

    Round ``t = r_prev + (a-1)(2σ+1) + b`` (``a``-th block, ``b``-th round
    within it) contributes ``(a, b, 1)`` for a received message and
    ``(a, b, ∗)`` for collision noise; silent rounds contribute nothing.
    The result is sorted by ``≺hist`` — directly comparable to a
    Partitioner label (Lemma 3.8 statement (1)).
    """
    width = 2 * sigma + 1
    out = []
    for t, entry in history.events_in(r_prev + 1, r_prev + num_blocks * width):
        rel = t - r_prev - 1
        mark = ONE if isinstance(entry, Message) else STAR
        out.append((rel // width + 1, rel % width + 1, mark))
    return tuple(out)


def match_entry(
    entries: List[ListEntry], old_tblock: int, observed: Label
) -> Optional[int]:
    """First ``k`` (1-based) whose entry matches ``(old_tblock, observed)``."""
    for k, (old_class, label) in enumerate(entries, start=1):
        if old_class == old_tblock and label == observed:
            return k
    return None


def replay_tblocks(data: CanonicalData, history: History) -> List[int]:
    """Recompute the node's ``tBlock`` for every phase from its history.

    Returns ``[tb_1, ..., tb_P]``. Requires the history to cover at least
    through ``r_{P-1}`` (i.e. all phases whose matching data it needs).
    Raises :class:`CanonicalMatchError` on a failed match.
    """
    tblocks = [1]  # phase 1: initial tBlock 1 matches L_1 = [(1, null)]
    for j in range(2, data.num_phases + 1):
        observed = observed_triples(
            history, data.phase_ends[j - 2], len(data.lists[j - 2]), data.sigma
        )
        k = match_entry(data.lists[j - 1], tblocks[-1], observed)
        if k is None:
            raise CanonicalMatchError(
                f"phase {j}: history matched no entry of L_{j} "
                f"(old tBlock {tblocks[-1]}, observed {observed!r})"
            )
        tblocks.append(k)
    return tblocks


def final_class_of(data: CanonicalData, history: History) -> Optional[int]:
    """The node's class in the terminal partition, from its own history."""
    tblocks = replay_tblocks(data, history)
    p = data.num_phases
    observed = observed_triples(
        history, data.phase_ends[p - 1], len(data.lists[p - 1]), data.sigma
    )
    return match_entry(data.final_list, tblocks[-1], observed)


# ----------------------------------------------------------------------
# the protocol
# ----------------------------------------------------------------------
def canonical_commitment(drip, history: History) -> Commitment:
    """The next commitment of a canonical-style DRIP (shared with the
    channel variants).

    The canonical schedule is oblivious *phase-wise*: once the phase-``j``
    ``tBlock`` match is made (which needs history only through
    ``r_{j-1}``), the node's single transmission round of the phase is
    fixed and nothing heard mid-phase changes it (Lemma 3.8). So from any
    local round the node can promise: its phase transmission if still
    ahead, termination after the last phase, or a re-query at the next
    phase boundary.
    """
    data = drip.data
    i = len(history)
    ends = data.phase_ends
    if i > ends[-1]:
        return Commitment.terminate(i)
    j = bisect_left(ends, i)
    tb = drip._tblock(j, history)
    t = ends[j - 1] + (tb - 1) * data.block_width + data.sigma + 1
    if i <= t:
        return Commitment.transmit(t, CANONICAL_MESSAGE)
    if j < data.num_phases:
        return Commitment.recheck(ends[j] + 1)
    return Commitment.terminate(ends[-1] + 1)


class CanonicalDRIP(DRIP, ScheduleOblivious):
    """Per-node executor of ``D_G``.

    The per-round action is O(1) arithmetic on the phase schedule; the
    per-phase ``tBlock`` matching is cached and costs O(events + |L_j|·Δ).
    """

    __slots__ = ("data", "_tblocks")

    def __init__(self, data: CanonicalData) -> None:
        self.data = data
        self._tblocks: Dict[int, int] = {1: 1}

    def _tblock(self, j: int, history: History) -> int:
        tb = self._tblocks.get(j)
        if tb is not None:
            return tb
        prev = self._tblock(j - 1, history)
        data = self.data
        observed = observed_triples(
            history, data.phase_ends[j - 2], len(data.lists[j - 2]), data.sigma
        )
        tb = match_entry(data.lists[j - 1], prev, observed)
        if tb is None:
            raise CanonicalMatchError(
                f"phase {j}: no matching entry in L_{j} "
                f"(old tBlock {prev}, observed {observed!r})"
            )
        self._tblocks[j] = tb
        return tb

    def decide(self, history: History) -> Action:
        data = self.data
        i = len(history)  # local round being decided
        ends = data.phase_ends
        if i > ends[-1]:
            return TERMINATE  # local round r_P + 1 (and permanently after)
        # phase j with r_{j-1} < i <= r_j
        j = bisect_left(ends, i)
        offset = i - ends[j - 1]
        width = data.block_width
        blocks_region = len(data.lists[j - 1]) * width
        if offset > blocks_region:
            return LISTEN  # trailing σ rounds of the phase
        block, pos = divmod(offset - 1, width)
        if pos + 1 == data.sigma + 1 and block + 1 == self._tblock(j, history):
            return Transmit(CANONICAL_MESSAGE)
        return LISTEN

    def next_commitment(self, history: History) -> Commitment:
        """Compiled schedule for the fast backend (phase-wise oblivious)."""
        return canonical_commitment(self, history)


class CanonicalProtocol:
    """Bundles ``D_G`` with its decision function ``f_G`` (Lemma 3.11)."""

    __slots__ = ("data",)

    def __init__(self, data: CanonicalData) -> None:
        self.data = data

    @classmethod
    def from_trace(cls, trace: ClassifierTrace) -> "CanonicalProtocol":
        return cls(build_canonical_data(trace))

    # -- DRIP side -----------------------------------------------------
    def factory(self, _node_id: object) -> DRIP:
        """Program factory: every node runs an identical ``CanonicalDRIP``
        (anonymity — the node id is ignored)."""
        return CanonicalDRIP(self.data)

    # -- decision side ---------------------------------------------------
    def decision(self, history: History) -> int:
        """``f_G``: 1 iff the node's final matched class is the leader's
        singleton class."""
        if not self.data.feasible:
            return 0
        try:
            k = final_class_of(self.data, history)
        except CanonicalMatchError:
            return 0
        return 1 if k == self.data.leader_class else 0

    def algorithm(self) -> LeaderElectionAlgorithm:
        """Bundle ``(D_G, f_G)`` as a LeaderElectionAlgorithm."""
        return LeaderElectionAlgorithm(
            self.factory, self.decision, name="canonical"
        )

    # -- schedule facts --------------------------------------------------
    @property
    def expected_done(self) -> int:
        """The common local termination round ``done_v``."""
        return self.data.done_round

    def round_budget(self, span: int) -> int:
        """Global rounds needed to simulate to completion, with margin."""
        return span + self.data.done_round + 2

    def phase_of_round(self, i: int) -> Optional[int]:
        """Phase number j whose local-round range contains ``i`` (1-based),
        or None outside all phases."""
        ends = self.data.phase_ends
        if i < 1 or i > ends[-1]:
            return None
        return bisect_left(ends, i)
