"""Serializable canonical-DRIP programs.

The paper stresses (Section 3) that once ``Classifier`` has run, the
dedicated distributed leader election algorithm for the configuration is
available *"without any additional computation"*: the protocol is fully
determined by the hard-coded lists ``L_1, L_2, ...`` plus the span σ. This
module makes that claim concrete by giving the hard-coded data a stable,
portable wire format:

* :class:`CanonicalProgram` — a frozen, versioned value object holding
  exactly the data a node needs (σ, the lists, the terminal list, the
  leader class), independent of any :class:`~repro.core.trace.ClassifierTrace`;
* :func:`export_program` / :func:`import_program` — lossless conversion to
  and from plain JSON-able dictionaries (and strings/files), so a program
  compiled on one machine can be installed on the nodes of another;
* :func:`program_drip` / :func:`program_algorithm` — an interpreter that
  executes an imported program and is action-for-action equivalent to
  :class:`~repro.core.canonical.CanonicalDRIP` (tested exhaustively).

The wire format deliberately contains no node identities: installing the
same program blob on every node is precisely the paper's anonymity
requirement.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..radio.protocol import DRIP, LeaderElectionAlgorithm
from .canonical import (
    CanonicalData,
    CanonicalDRIP,
    CanonicalProtocol,
    build_canonical_data,
)
from .classifier import classify
from .configuration import Configuration
from .partition import Label, ONE, STAR
from .trace import ClassifierTrace

#: Wire-format version; bump on incompatible changes.
FORMAT_VERSION = 1

#: JSON encoding of multiplicity marks.
_MARK_TO_WIRE = {ONE: "1", STAR: "*"}
_WIRE_TO_MARK = {"1": ONE, "*": STAR}


class ProgramFormatError(ValueError):
    """Raised when an imported program blob is malformed."""


@dataclass(frozen=True)
class CanonicalProgram:
    """The portable form of a canonical DRIP ``D_G``.

    Equality is structural: two programs are equal iff they would make
    every node behave identically in every execution.
    """

    sigma: int
    #: ``L_1 .. L_P`` — entries are ``(old_class, label)`` pairs.
    lists: Tuple[Tuple[Tuple[int, Label], ...], ...]
    #: the would-be ``L_{P+1}`` (terminal partition data for ``f_G``).
    final_list: Tuple[Tuple[int, Label], ...]
    leader_class: Optional[int]
    feasible: bool

    @property
    def num_phases(self) -> int:
        return len(self.lists)

    @property
    def phase_ends(self) -> List[int]:
        """Local phase-end rounds ``r_0 .. r_P`` (recomputed, not stored)."""
        width = 2 * self.sigma + 1
        ends = [0]
        for entries in self.lists:
            ends.append(ends[-1] + len(entries) * width + self.sigma)
        return ends

    @property
    def done_round(self) -> int:
        """The common local termination round ``done_v``."""
        return self.phase_ends[-1] + 1

    def to_canonical_data(self) -> CanonicalData:
        """Rehydrate the executable form used by the interpreter."""
        return CanonicalData(
            sigma=self.sigma,
            lists=[list(entries) for entries in self.lists],
            final_list=list(self.final_list),
            leader_class=self.leader_class,
            feasible=self.feasible,
            phase_ends=self.phase_ends,
        )


# ----------------------------------------------------------------------
# compilation
# ----------------------------------------------------------------------
def compile_program(config: Configuration) -> CanonicalProgram:
    """Classify ``config`` and package its canonical DRIP as a program."""
    return program_from_trace(classify(config))


def program_from_trace(trace: ClassifierTrace) -> CanonicalProgram:
    """Package an existing classifier trace (no re-classification)."""
    return program_from_data(build_canonical_data(trace))


def program_from_data(data: CanonicalData) -> CanonicalProgram:
    """Package executable canonical data as a frozen program value."""
    return CanonicalProgram(
        sigma=data.sigma,
        lists=tuple(tuple(entries) for entries in data.lists),
        final_list=tuple(data.final_list),
        leader_class=data.leader_class,
        feasible=data.feasible,
    )


# ----------------------------------------------------------------------
# wire format
# ----------------------------------------------------------------------
def _label_to_wire(label: Label) -> List[List[object]]:
    return [[a, b, _MARK_TO_WIRE[c]] for (a, b, c) in label]


def _label_from_wire(wire: object) -> Label:
    if not isinstance(wire, list):
        raise ProgramFormatError(f"label must be a list, got {type(wire).__name__}")
    out = []
    for item in wire:
        if not (isinstance(item, list) and len(item) == 3):
            raise ProgramFormatError(f"label triple must be [a, b, mark], got {item!r}")
        a, b, mark = item
        if not isinstance(a, int) or not isinstance(b, int):
            raise ProgramFormatError(f"triple coordinates must be ints, got {item!r}")
        if mark not in _WIRE_TO_MARK:
            raise ProgramFormatError(f"unknown multiplicity mark {mark!r}")
        out.append((a, b, _WIRE_TO_MARK[mark]))
    return tuple(out)


def _entries_to_wire(entries) -> List[List[object]]:
    return [[old, _label_to_wire(label)] for (old, label) in entries]


def _entries_from_wire(wire: object, where: str) -> Tuple[Tuple[int, Label], ...]:
    if not isinstance(wire, list):
        raise ProgramFormatError(f"{where} must be a list")
    out = []
    for item in wire:
        if not (isinstance(item, list) and len(item) == 2):
            raise ProgramFormatError(
                f"{where} entry must be [old_class, label], got {item!r}"
            )
        old, label = item
        if not isinstance(old, int) or old < 1:
            raise ProgramFormatError(f"{where}: old_class must be a positive int")
        out.append((old, _label_from_wire(label)))
    return tuple(out)


def export_program(program: CanonicalProgram) -> Dict[str, object]:
    """Render a program as a plain JSON-able dictionary."""
    return {
        "format": "repro-canonical-drip",
        "version": FORMAT_VERSION,
        "sigma": program.sigma,
        "feasible": program.feasible,
        "leader_class": program.leader_class,
        "lists": [_entries_to_wire(entries) for entries in program.lists],
        "final_list": _entries_to_wire(program.final_list),
    }


def import_program(blob: Dict[str, object]) -> CanonicalProgram:
    """Parse a dictionary produced by :func:`export_program`.

    Raises :class:`ProgramFormatError` on any structural problem; the
    checks are strict because a corrupted program silently misbehaves as
    a distributed protocol.
    """
    if not isinstance(blob, dict):
        raise ProgramFormatError("program blob must be a dict")
    if blob.get("format") != "repro-canonical-drip":
        raise ProgramFormatError(f"unknown format {blob.get('format')!r}")
    if blob.get("version") != FORMAT_VERSION:
        raise ProgramFormatError(f"unsupported version {blob.get('version')!r}")
    sigma = blob.get("sigma")
    if not isinstance(sigma, int) or sigma < 0:
        raise ProgramFormatError("sigma must be a non-negative int")
    feasible = blob.get("feasible")
    if not isinstance(feasible, bool):
        raise ProgramFormatError("feasible must be a bool")
    leader_class = blob.get("leader_class")
    if leader_class is not None and (
        not isinstance(leader_class, int) or leader_class < 1
    ):
        raise ProgramFormatError("leader_class must be a positive int or null")
    if feasible and leader_class is None:
        raise ProgramFormatError("feasible program must name a leader class")
    lists_wire = blob.get("lists")
    if not isinstance(lists_wire, list) or not lists_wire:
        raise ProgramFormatError("lists must be a non-empty list")
    lists = tuple(
        _entries_from_wire(entries, f"L_{j + 1}")
        for j, entries in enumerate(lists_wire)
    )
    for j, entries in enumerate(lists):
        if not entries:
            raise ProgramFormatError(f"L_{j + 1} is empty")
    if lists[0] != ((1, ()),):
        raise ProgramFormatError("L_1 must be the single entry (1, null)")
    final_list = _entries_from_wire(blob.get("final_list"), "final_list")
    if not final_list:
        raise ProgramFormatError("final_list is empty")
    if leader_class is not None and leader_class > len(final_list):
        raise ProgramFormatError("leader_class exceeds the final partition size")
    return CanonicalProgram(
        sigma=sigma,
        lists=lists,
        final_list=final_list,
        leader_class=leader_class,
        feasible=feasible,
    )


def dumps(program: CanonicalProgram, *, indent: Optional[int] = None) -> str:
    """Serialize a program to a JSON string."""
    return json.dumps(export_program(program), indent=indent, sort_keys=True)


def loads(text: str) -> CanonicalProgram:
    """Parse a program from a JSON string."""
    try:
        blob = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ProgramFormatError(f"invalid JSON: {exc}") from exc
    return import_program(blob)


def save(program: CanonicalProgram, path) -> None:
    """Write a program to a JSON file."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(dumps(program, indent=2))
        fh.write("\n")


def load(path) -> CanonicalProgram:
    """Read a program from a JSON file."""
    with open(path, "r", encoding="utf-8") as fh:
        return loads(fh.read())


# ----------------------------------------------------------------------
# interpretation
# ----------------------------------------------------------------------
def program_drip(program: CanonicalProgram) -> DRIP:
    """A fresh per-node executor for ``program``.

    The interpreter reuses :class:`~repro.core.canonical.CanonicalDRIP`
    on the rehydrated data — by construction action-for-action identical
    to the protocol compiled directly from the classifier trace.
    """
    return CanonicalDRIP(program.to_canonical_data())


def program_algorithm(program: CanonicalProgram) -> LeaderElectionAlgorithm:
    """The full dedicated algorithm ``(D_G, f_G)`` from a program blob."""
    protocol = CanonicalProtocol(program.to_canonical_data())
    return LeaderElectionAlgorithm(
        protocol.factory, protocol.decision, name="canonical-program"
    )


def roundtrip_equal(program: CanonicalProgram) -> bool:
    """True iff export → JSON → import reproduces the program exactly."""
    return loads(dumps(program)) == program
