"""Compiled classifier core: the hot loop on a compiled representation.

Every census shard, service request and replay ultimately runs the
paper's ``Classifier`` (Algorithms 1–4), and the reference
implementation pays for its faithfulness three times over: node ids are
arbitrary hashable objects (every adjacency walk is a dict probe),
labels are tuples of int triples (every ``Refine`` comparison walks
them), and each iteration recomputes every node's label from scratch
even when nothing near it changed. This module removes all three costs
while keeping the *output* — the full
:class:`~repro.core.trace.ClassifierTrace` — bit-for-bit identical:

* :class:`IndexedConfiguration` — a one-time compilation of a
  :class:`~repro.core.configuration.Configuration` to dense ``0..n-1``
  node indices with flat CSR-style adjacency and tag arrays. It is the
  single compiled representation shared across the repo: the canonical
  labeler's ``IndexedGraph`` (:mod:`repro.canon.refine`) is this class,
  so the classifier, 1-WL refinement and the canonizer all compile a
  configuration exactly once and the same way.
* **Label interning** — each distinct Partitioner label tuple is
  assigned a dense int the first time it appears; ``Refine`` then
  compares ints instead of tuple-of-tuples. (The paper's ``≺hist``
  ordering is only needed *inside* a label, which stays a sorted tuple;
  equality is all ``Refine`` ever asks between labels.)
* **Split-driven incremental refinement** — a node's label depends only
  on its own ``(class, tag)`` and its neighbours' ``(class, tag)``
  pairs, so after an iteration only nodes in or adjacent to a class
  that just *split* can change label. The classifier keeps a worklist
  (the split frontier) and recomputes exactly those labels, cutting
  per-iteration label work from all nodes to the frontier; likewise
  only classes containing a frontier node can split, so ``Refine``
  scans only their members (in global vertex order, which preserves
  the paper's fresh-class numbering exactly).

:func:`compiled_classify` is wired as the default through the
``algorithm`` knob of :func:`repro.core.classifier.classify` (``auto``
resolves to ``compiled``); the E23 benchmark gates bit-for-bit trace
equality against the reference on exhaustive small-n sweeps and a ≥ 5×
wall-time speedup on large-n workloads. See ``docs/performance.md``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..obs.runtime import STATE as _OBS
from ..obs.runtime import registry as _registry
from .classifier import ClassifierInvariantError
from .configuration import Configuration
from .partition import Label, ONE, OpCounter, STAR
from .trace import NO, YES, ClassifierTrace, IterationRecord


# ----------------------------------------------------------------------
# the compiled representation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class IndexedConfiguration:
    """A configuration compiled to dense ``0..n-1`` node indices.

    The one translation layer between arbitrary (hashable, sortable)
    node ids and the flat integer arrays the hot loops run on.
    ``nodes[i]`` recovers the original id of index ``i``; ``tags`` and
    ``adj`` are indexed by position; ``adj_offsets``/``adj_targets``
    are the same adjacency in CSR form (the neighbours of ``i`` are
    ``adj_targets[adj_offsets[i]:adj_offsets[i+1]]``, sorted), which
    the compiled classifier iterates without building row tuples.

    Instances are produced by :func:`compile_configuration` from a
    *normalized* configuration, so ``span == max(tags)``. This class is
    also exported as ``repro.canon.refine.IndexedGraph`` — the canon
    subsystem's refinement, certificates and canonizer all run on it.
    """

    nodes: Tuple[object, ...]
    tags: Tuple[int, ...]
    adj: Tuple[Tuple[int, ...], ...]
    adj_offsets: Tuple[int, ...]
    adj_targets: Tuple[int, ...]

    @property
    def n(self) -> int:
        """Number of nodes."""
        return len(self.nodes)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return len(self.adj_targets) // 2

    @property
    def span(self) -> int:
        """``σ`` of the compiled (normalized) configuration."""
        return max(self.tags)

    def degree(self, i: int) -> int:
        """Number of neighbours of index ``i``."""
        return self.adj_offsets[i + 1] - self.adj_offsets[i]


def compile_configuration(cfg: Configuration) -> IndexedConfiguration:
    """Normalize ``cfg`` and compile it to an :class:`IndexedConfiguration`.

    Normalization (shifting the smallest tag to 0) happens here so every
    compiled consumer — classifier, 1-WL refinement, canonizer — treats
    tag-shifted copies identically, matching the convention of
    :func:`repro.analysis.isomorphism.canonical_form`. Cost is
    ``O(n + m)`` beyond the one sort Configuration already did.
    """
    cfg = cfg.normalize()
    nodes = cfg.nodes
    pos = {v: i for i, v in enumerate(nodes)}
    adj = tuple(
        tuple(sorted(pos[w] for w in cfg.neighbors(v))) for v in nodes
    )
    offsets: List[int] = [0]
    targets: List[int] = []
    for row in adj:
        targets.extend(row)
        offsets.append(len(targets))
    return IndexedConfiguration(
        nodes=nodes,
        tags=tuple(cfg.tag(v) for v in nodes),
        adj=adj,
        adj_offsets=tuple(offsets),
        adj_targets=tuple(targets),
    )


# ----------------------------------------------------------------------
# label interning
# ----------------------------------------------------------------------
class LabelInterner:
    """Dense-int interning table for Partitioner labels.

    Each distinct label tuple gets the next free int the first time it
    is seen; ``Refine`` then compares label *ids* (single int equality)
    instead of tuple-of-tuples. Ids are only ever compared for
    equality, so their numeric order carries no meaning.
    """

    __slots__ = ("_ids", "_labels")

    def __init__(self) -> None:
        self._ids: Dict[Label, int] = {}
        self._labels: List[Label] = []

    def intern(self, label: Label) -> int:
        """Id of ``label``, assigning the next dense int if new."""
        lid = self._ids.get(label)
        if lid is None:
            lid = len(self._labels)
            self._ids[label] = lid
            self._labels.append(label)
        return lid

    def label(self, lid: int) -> Label:
        """The label tuple behind id ``lid``."""
        return self._labels[lid]

    def __len__(self) -> int:
        """Number of distinct labels interned so far."""
        return len(self._labels)


# ----------------------------------------------------------------------
# the compiled classifier
# ----------------------------------------------------------------------
def compiled_classify(
    config: Configuration,
    *,
    count_ops: bool = False,
    counter: Optional[OpCounter] = None,
) -> ClassifierTrace:
    """Run ``Classifier`` on the compiled representation.

    Drop-in replacement for the reference
    :func:`repro.core.classifier.reference_classify`: the returned
    :class:`~repro.core.trace.ClassifierTrace` is bit-for-bit equal —
    same labels, same class numbering, same representatives, same
    decision, leader and iteration count — while the work per iteration
    is proportional to the *split frontier* (nodes in or adjacent to
    classes that split last iteration), not to ``n·numClasses``.

    With ``count_ops`` (or an explicit ``counter``) the *compiled*
    path's work is metered: ``triple_ops`` counts neighbour
    contributions scanned while (re)building labels, ``label_ops``
    counts ``Refine`` key lookups. The units deliberately mirror the
    reference accounting so op totals are comparable order-of-magnitude
    witnesses of the incremental win — they are not the Lemma 3.5
    figures (use ``algorithm="reference"`` for those).
    """
    if counter is None and count_ops:
        counter = OpCounter()
    cfg = config.normalize()
    comp = compile_configuration(cfg)
    n = comp.n
    nodes = comp.nodes
    tags = comp.tags
    offsets = comp.adj_offsets
    targets = comp.adj_targets
    sigma = comp.span

    # --- Init-Aug (Algorithm 1), on dense indices ----------------------
    classes: List[int] = [1] * n  # 1-based class id per node index
    reps: List[int] = [-1, 0]  # reps[k] = node index of class k's rep
    members: Dict[int, List[int]] = {1: list(range(n))}
    num_classes = 1

    interner = LabelInterner()
    label_ids: List[int] = [-1] * n  # current interned label per node
    node_labels: List[Label] = [()] * n  # current label tuple per node
    frontier: List[int] = list(range(n))  # iteration 1 labels everyone

    trace = ClassifierTrace(
        config=cfg,
        sigma=sigma,
        initial_classes={v: 1 for v in nodes},
        initial_reps=(None, nodes[0]),
    )

    # --- main loop (Algorithm 4) ---------------------------------------
    max_iters = math.ceil(n / 2)
    for i in range(1, max_iters + 1):
        old_class_count = num_classes

        # Partitioner labels, recomputed only on the split frontier.
        for v in frontier:
            tv = tags[v]
            vc = classes[v]
            counts: Dict[Tuple[int, int], int] = {}
            for j in range(offsets[v], offsets[v + 1]):
                w = targets[j]
                wc = classes[w]
                tw = tags[w]
                if wc != vc or tw != tv:
                    key = (wc, sigma + 1 + tw - tv)
                    counts[key] = counts.get(key, 0) + 1
            label = tuple(
                (a, b, ONE if c == 1 else STAR)
                for (a, b), c in sorted(counts.items())
            )
            if counter is not None:
                counter.triple_ops += (
                    offsets[v + 1] - offsets[v] + len(label)
                )
            label_ids[v] = interner.intern(label)
            node_labels[v] = label

        # Refine (Algorithm 2) via interned-key lookup, restricted to
        # classes holding a frontier node — the only ones that can
        # split. Candidates run in global vertex order so fresh class
        # numbers appear exactly where the reference assigns them.
        touched = sorted({classes[v] for v in frontier})
        by_key: Dict[Tuple[int, int], int] = {}
        for c in touched:
            by_key[(c, label_ids[reps[c]])] = c
        candidates: List[int] = []
        for c in touched:
            candidates.extend(members[c])
        candidates.sort()
        old_of: List[int] = []
        for v in candidates:
            old = classes[v]
            old_of.append(old)
            if counter is not None:
                counter.label_ops += 1
            k = by_key.get((old, label_ids[v]))
            if k is None:
                num_classes += 1
                k = num_classes
                by_key[(old, label_ids[v])] = k
                reps.append(v)
                members[k] = []
            classes[v] = k
        for c in touched:
            members[c] = []
        moved: List[int] = []
        for v, old in zip(candidates, old_of):
            members[classes[v]].append(v)  # ascending: lists stay sorted
            if classes[v] != old:
                moved.append(v)

        trace.iterations.append(
            IterationRecord(
                index=i,
                labels={nodes[v]: node_labels[v] for v in range(n)},
                classes_after={nodes[v]: classes[v] for v in range(n)},
                reps_after=(None, *(nodes[r] for r in reps[1:])),
                num_classes_after=num_classes,
            )
        )

        single = min(
            (
                k
                for k in range(1, num_classes + 1)
                if len(members[k]) == 1
            ),
            default=None,
        )
        if single is not None:
            trace.decision = YES
            trace.decided_at = i
            trace.leader_class = single  # the smallest such m (Lemma 3.11)
            trace.leader = nodes[reps[single]]
            break
        if num_classes == old_class_count:
            trace.decision = NO
            trace.decided_at = i
            break

        # Next frontier: every node whose class changed, plus its
        # neighbours — the only nodes whose (class, tag) view, and
        # hence label, can differ next iteration.
        next_frontier = set(moved)
        for v in moved:
            next_frontier.update(targets[offsets[v] : offsets[v + 1]])
        frontier = sorted(next_frontier)
    else:
        raise ClassifierInvariantError(
            f"compiled_classify failed to decide within ⌈n/2⌉ = {max_iters} "
            f"iterations on {cfg!r} — contradicts Lemma 3.4"
        )

    if counter is not None:
        trace.total_ops = counter.total
    if _OBS.enabled:  # per-call: guarded, one attribute check when off
        _registry.inc("compiled.calls")
        _registry.inc("compiled.iterations", len(trace.iterations))
    return trace
