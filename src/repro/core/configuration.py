"""Configurations: tagged radio networks (paper Section 2.1).

A *configuration* is a simple undirected connected graph in which every
node ``v`` carries a non-negative integer wakeup tag ``t_v``. The node
wakes up spontaneously in global round ``t_v`` unless it receives a message
earlier (forced wakeup). The *size* ``n`` is the number of nodes; the
*span* ``σ`` is the difference between the largest and smallest tag. Since
nodes cannot read the global clock, configurations whose tags differ by a
constant shift are operationally identical; :meth:`Configuration.normalize`
shifts the smallest tag to 0, after which ``σ`` equals the largest tag.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence, Tuple


class ConfigurationError(ValueError):
    """Raised for malformed configurations."""


class Configuration:
    """An immutable tagged graph.

    Parameters
    ----------
    edges:
        iterable of node-id pairs; ids must be hashable and mutually
        sortable (ints in practice).
    tags:
        mapping node -> non-negative wakeup tag. Every node in ``tags``
        is a node of the configuration, including isolated ones (only the
        single-node configuration may be edgeless, since configurations
        must be connected).
    """

    __slots__ = ("_adj", "_tags", "_nodes", "_hash")

    def __init__(
        self,
        edges: Iterable[Tuple[object, object]],
        tags: Mapping[object, int],
    ) -> None:
        adj: Dict[object, set] = {v: set() for v in tags}
        for e in edges:
            try:
                u, v = e
            except (TypeError, ValueError):
                raise ConfigurationError(f"edge {e!r} is not a pair")
            if u == v:
                raise ConfigurationError(f"self-loop at {u!r} (graph must be simple)")
            for x in (u, v):
                if x not in adj:
                    raise ConfigurationError(f"edge endpoint {x!r} has no tag")
            adj[u].add(v)
            adj[v].add(u)
        if not adj:
            raise ConfigurationError("configuration must have at least one node")
        for v, t in tags.items():
            if not isinstance(t, int) or isinstance(t, bool) or t < 0:
                raise ConfigurationError(
                    f"tag of node {v!r} must be a non-negative int, got {t!r}"
                )
        self._nodes: Tuple[object, ...] = tuple(sorted(adj))
        self._adj: Dict[object, Tuple[object, ...]] = {
            v: tuple(sorted(nbrs)) for v, nbrs in adj.items()
        }
        self._tags: Dict[object, int] = dict(tags)
        self._hash = None
        self._check_connected()

    def _check_connected(self) -> None:
        start = self._nodes[0]
        seen = {start}
        stack = [start]
        while stack:
            v = stack.pop()
            for w in self._adj[v]:
                if w not in seen:
                    seen.add(w)
                    stack.append(w)
        if len(seen) != len(self._nodes):
            missing = sorted(set(self._nodes) - seen)[:5]
            raise ConfigurationError(
                f"graph is not connected (e.g. {missing!r} unreachable "
                f"from {start!r})"
            )

    # ------------------------------------------------------------------
    # basic accessors (the simulator's network protocol)
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> Tuple[object, ...]:
        """All node ids in sorted order (the paper's fixed vertex order)."""
        return self._nodes

    def neighbors(self, v: object) -> Tuple[object, ...]:
        """Sorted neighbours of ``v``."""
        return self._adj[v]

    def tag(self, v: object) -> int:
        """Wakeup tag ``t_v``."""
        return self._tags[v]

    @property
    def tags(self) -> Dict[object, int]:
        """Copy of the node -> tag mapping."""
        return dict(self._tags)

    def degree(self, v: object) -> int:
        """Number of neighbours of ``v``."""
        return len(self._adj[v])

    @property
    def edges(self) -> List[Tuple[object, object]]:
        """Each undirected edge once, as a sorted pair, sorted overall."""
        out = []
        for v in self._nodes:
            for w in self._adj[v]:
                if v < w:
                    out.append((v, w))
        return out

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of nodes (the paper's ``n``)."""
        return len(self._nodes)

    @property
    def num_edges(self) -> int:
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    @property
    def span(self) -> int:
        """``σ``: difference between the largest and smallest wakeup tag."""
        values = self._tags.values()
        return max(values) - min(values)

    @property
    def min_tag(self) -> int:
        return min(self._tags.values())

    @property
    def max_tag(self) -> int:
        return max(self._tags.values())

    @property
    def max_degree(self) -> int:
        """``Δ``: the maximum node degree."""
        return max(len(nbrs) for nbrs in self._adj.values())

    @property
    def is_normalized(self) -> bool:
        return self.min_tag == 0

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def normalize(self) -> "Configuration":
        """Shift tags so the smallest is 0 (w.l.o.g. per Section 2.1)."""
        lo = self.min_tag
        if lo == 0:
            return self
        # the graph is unchanged and immutable, so share the validated
        # adjacency instead of reconstructing and re-checking it
        clone = Configuration.__new__(Configuration)
        clone._nodes = self._nodes
        clone._adj = self._adj
        clone._tags = {v: t - lo for v, t in self._tags.items()}
        clone._hash = None
        return clone

    def with_tags(self, tags: Mapping[object, int]) -> "Configuration":
        """Same graph, different tags."""
        if set(tags) != set(self._nodes):
            raise ConfigurationError("new tags must cover exactly the same nodes")
        return Configuration(self.edges, tags)

    def shift_tags(self, delta: int) -> "Configuration":
        """Add ``delta`` to every tag (must stay non-negative)."""
        return Configuration(
            self.edges, {v: t + delta for v, t in self._tags.items()}
        )

    def relabel(self, mapping: Mapping[object, object]) -> "Configuration":
        """Rename nodes via ``mapping`` (must be a bijection on nodes)."""
        if set(mapping) != set(self._nodes):
            raise ConfigurationError("mapping must cover exactly the nodes")
        if len(set(mapping.values())) != len(self._nodes):
            raise ConfigurationError("mapping must be injective")
        edges = [(mapping[u], mapping[v]) for u, v in self.edges]
        tags = {mapping[v]: t for v, t in self._tags.items()}
        return Configuration(edges, tags)

    def canonical_relabel(self) -> "Configuration":
        """Relabel nodes as 0..n-1 following the sorted node order."""
        mapping = {v: i for i, v in enumerate(self._nodes)}
        return self.relabel(mapping)

    # ------------------------------------------------------------------
    # interop
    # ------------------------------------------------------------------
    def to_networkx(self):
        """Export as a ``networkx.Graph`` with ``tag`` node attributes."""
        import networkx as nx

        g = nx.Graph()
        for v in self._nodes:
            g.add_node(v, tag=self._tags[v])
        g.add_edges_from(self.edges)
        return g

    @classmethod
    def from_networkx(cls, graph, tags: Mapping[object, int] = None) -> "Configuration":
        """Build from a ``networkx.Graph``; tags default to the ``tag``
        node attribute."""
        if tags is None:
            try:
                tags = {v: graph.nodes[v]["tag"] for v in graph.nodes}
            except KeyError as exc:
                raise ConfigurationError(
                    "graph nodes lack 'tag' attributes and no tags were given"
                ) from exc
        return cls(graph.edges, tags)

    # ------------------------------------------------------------------
    # equality / hashing / repr
    # ------------------------------------------------------------------
    def _key(self) -> Tuple:
        return (
            self._nodes,
            tuple(self._adj[v] for v in self._nodes),
            tuple(self._tags[v] for v in self._nodes),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Configuration):
            return NotImplemented
        return self._key() == other._key()

    def __ne__(self, other: object) -> bool:
        eq = self.__eq__(other)
        return NotImplemented if eq is NotImplemented else not eq

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(self._key())
        return self._hash

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Configuration(n={self.n}, m={self.num_edges}, "
            f"span={self.span}, tags={self._tags!r})"
        )

    def describe(self) -> str:
        """Multi-line human-readable description."""
        lines = [
            f"Configuration: n={self.n} nodes, {self.num_edges} edges, "
            f"span σ={self.span}, max degree Δ={self.max_degree}"
        ]
        for v in self._nodes:
            nbrs = ", ".join(map(str, self._adj[v]))
            lines.append(f"  node {v} (tag {self._tags[v]}): [{nbrs}]")
        return "\n".join(lines)


def line_configuration(tags: Sequence[int]) -> Configuration:
    """Path graph with nodes ``0..len(tags)-1`` tagged left to right.

    The paper's negative-result families are all line configurations; this
    helper keeps their construction one line long.
    """
    if not tags:
        raise ConfigurationError("need at least one tag")
    n = len(tags)
    edges = [(i, i + 1) for i in range(n - 1)]
    return Configuration(edges, {i: tags[i] for i in range(n)})
