"""Equivalence-class machinery shared by the classifier implementations.

This module implements the two inner procedures of the paper's
``Classifier`` (Section 3.1):

* ``Partitioner`` label construction (Algorithm 3, lines 1–22): for node
  ``v``, each neighbour ``w`` with ``(w_CLASS, t_w) != (v_CLASS, t_v)``
  contributes a tuple ``(w_CLASS, σ+1+t_w−t_v)``; tuples contributed by
  exactly one neighbour get multiplicity mark ``1``, tuples contributed by
  two or more get ``∗``. The label is the resulting triple list sorted by
  the ordering ``≺hist`` (Definition 3.1).
* ``Refine`` (Algorithm 2): nodes stay in the same class iff they were in
  the same class before and their new labels are equal; class numbers are
  stable (old classes keep their number and representative, splits create
  fresh numbers at the end).

Triples are plain int 3-tuples ``(a, b, c)`` with the multiplicity mark
encoded as ``ONE = 1`` and ``STAR = 2`` so that native tuple comparison
coincides with ``≺hist`` (``c = 1`` sorts before ``c = ∗``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

#: Multiplicity mark: the tuple was contributed by exactly one neighbour.
ONE = 1
#: Multiplicity mark: the tuple was contributed by two or more neighbours
#: (the corresponding round is a collision at the listening node).
STAR = 2

#: A label triple ``(a, b, c)``: class ``a`` transmits in the listener's
#: local round ``b`` of each transmission block; ``c`` in {ONE, STAR}.
Triple = Tuple[int, int, int]

#: A node label: triples sorted by ``≺hist``; ``()`` is the paper's *null*.
Label = Tuple[Triple, ...]

NULL_LABEL: Label = ()


def triple_str(triple: Triple) -> str:
    """Render a triple the way the paper writes it, e.g. ``(2,5,*)``."""
    a, b, c = triple
    return f"({a},{b},{'*' if c == STAR else '1'})"


def label_str(label: Label) -> str:
    """Render a label; the empty label renders as ``null``."""
    if not label:
        return "null"
    return "".join(triple_str(t) for t in label)


def compute_label(
    config,
    v: object,
    classes: Dict[object, int],
    counter: Optional["OpCounter"] = None,
) -> Label:
    """Partitioner label for node ``v`` (Algorithm 3, lines 2–21).

    Faithful to the paper including its quadratic duplicate scan; pass an
    :class:`OpCounter` to meter the work for the complexity experiment.
    """
    sigma = config.span
    tv = config.tag(v)
    v_class = classes[v]
    nv: List[List[int]] = []
    for w in config.neighbors(v):
        w_class = classes[w]
        tw = config.tag(w)
        if w_class != v_class or tw != tv:
            b = sigma + 1 + tw - tv
            new_tuple = True
            for triple in nv:
                if counter is not None:
                    counter.triple_ops += 1
                if triple[0] == w_class and triple[1] == b:
                    new_tuple = False
                    triple[2] = STAR
            if new_tuple:
                nv.append([w_class, b, ONE])
    nv.sort()
    if counter is not None:
        counter.triple_ops += len(nv)
    return tuple(tuple(t) for t in nv)


def compute_all_labels(
    config,
    classes: Dict[object, int],
    counter: Optional["OpCounter"] = None,
) -> Dict[object, Label]:
    """Labels of every node for the current partition (one Partitioner
    pass, before its final Refine call)."""
    return {v: compute_label(config, v, classes, counter) for v in config.nodes}


def refine(
    nodes: Sequence[object],
    old_classes: Dict[object, int],
    labels: Dict[object, Label],
    reps: List[Optional[object]],
    num_classes: int,
    counter: Optional["OpCounter"] = None,
) -> Tuple[Dict[object, int], List[Optional[object]], int]:
    """The paper's ``Refine`` (Algorithm 2).

    Parameters mirror the augmented-configuration state: ``reps`` is the
    1-based representative array (``reps[0]`` unused), persisted across
    iterations; ``old_classes`` are the classes before this refinement and
    ``labels`` the labels just assigned by ``Partitioner``.

    Returns the new classes, the (possibly extended) ``reps`` array and the
    new class count. ``reps`` is extended in place, matching the paper's
    mutation of the augmented configuration.
    """
    new_classes: Dict[object, int] = {}
    for v in nodes:
        assigned = False
        # Compare v to the representative of every existing class, in
        # order, exactly as the paper's inner loop does (no early break).
        for k in range(1, num_classes + 1):
            rep = reps[k]
            if counter is not None:
                counter.label_ops += _label_compare_cost(labels[v], labels[rep])
            if old_classes[v] == old_classes[rep] and labels[v] == labels[rep]:
                new_classes[v] = k
                assigned = True
        if not assigned:
            num_classes += 1
            new_classes[v] = num_classes
            reps.append(v)
            assert len(reps) - 1 == num_classes
    return new_classes, reps, num_classes


def _label_compare_cost(a: Label, b: Label) -> int:
    """Triple comparisons needed to compare two sorted labels left-to-right."""
    return min(len(a), len(b)) + 1


def class_members(classes: Dict[object, int]) -> Dict[int, List[object]]:
    """Invert a class assignment: class number -> sorted member list."""
    out: Dict[int, List[object]] = {}
    for v in sorted(classes):
        out.setdefault(classes[v], []).append(v)
    return out


def singleton_classes(classes: Dict[object, int]) -> List[int]:
    """Class numbers containing exactly one node, ascending."""
    return sorted(k for k, vs in class_members(classes).items() if len(vs) == 1)


def partition_key(classes: Dict[object, int]) -> Tuple[Tuple[object, ...], ...]:
    """Canonical, numbering-independent form of a partition (sorted blocks).

    Used to compare partitions across classifier implementations and
    against simulated history partitions.
    """
    blocks = class_members(classes)
    return tuple(tuple(vs) for vs in sorted(blocks.values()))


class OpCounter:
    """Crude step meter for the complexity experiment (Lemma 3.5).

    Counts triple-level operations in label construction (``triple_ops``)
    and triple comparisons during refinement (``label_ops``); their sum
    tracks the paper's O(n³Δ) unit-cost accounting.
    """

    __slots__ = ("triple_ops", "label_ops")

    def __init__(self) -> None:
        self.triple_ops = 0
        self.label_ops = 0

    @property
    def total(self) -> int:
        return self.triple_ops + self.label_ops

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"OpCounter(triple_ops={self.triple_ops}, "
            f"label_ops={self.label_ops})"
        )
